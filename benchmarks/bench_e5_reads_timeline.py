"""E5 — disk read volume over time (Figure-17 analog).

Paper claim: the SS curve shows the same workload-induced jitter but
lower read volume in most time buckets, and the run ends sooner.
"""

from benchmarks.conftest import once
from repro.experiments import e5_reads_timeline


def test_e5_reads_timeline(benchmark, settings):
    result = once(benchmark, lambda: e5_reads_timeline(settings))
    print()
    print("E5 — Figure 17 analog: pages read per time bucket")
    print(result.render())
    assert result.shared_total_lower()
    # SS must be lower in a clear majority of overlapping buckets.
    paired = [
        (base, shared)
        for base, shared in zip(result.base_series, result.shared_series)
        if base > 0 or shared > 0
    ]
    lower = sum(1 for base, shared in paired if shared <= base)
    assert lower >= 0.5 * len(paired)
