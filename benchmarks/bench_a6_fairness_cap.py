"""A6 — ablation: the accumulated-slowdown fairness cap.

The prototype stops throttling a scan once inserted waits exceed 80 % of
its estimated scan time.  cap=0 disables throttling entirely; cap=1
allows unbounded delay.  The sweep shows the design point is not
fragile: all caps land near each other, well ahead of no-throttling.
"""

from benchmarks.conftest import once
from repro.experiments import ablation_fairness_cap


def test_a6_fairness_cap(benchmark, settings):
    result = once(benchmark, lambda: ablation_fairness_cap(settings))
    print()
    print("A6 — fairness-cap sweep (paper default: 80 %)")
    print(result.render())
    makespans = result.makespans()
    best = min(makespans.values())
    # The paper's 80 % point must be near the sweep's best.
    assert makespans["cap 80%"] <= best * 1.10
