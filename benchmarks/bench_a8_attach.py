"""A8 — related-work baseline: QPipe-style attach sharing vs the paper.

The paper's related-work section concedes attach-style shared scans
(Harizopoulos et al.) work well "for scans with similar speeds", but
argues scan speeds vary in practice and the group drifts — its
grouping + throttling bounds the damage via the fairness cap instead.
This bench measures both regimes:

* homogeneous consumers — attach sharing is excellent (one producer);
* heterogeneous consumers — the broadcast chains fast queries to the
  slowest one, while throttled sharing caps the fast query's delay.
"""

from repro.core.config import SharingConfig
from repro.extensions.attach_sharing import AttachScanManager
from repro.metrics.report import format_table
from repro.scans.shared_scan import SharedTableScan
from repro.scans.table_scan import TableScan

from benchmarks.conftest import once
from tests.conftest import make_database

TABLE_PAGES = 512
POOL_PAGES = 64
FAST_CPU = 1e-6
SLOW_CPU = 1.5e-3


def run_mode(mode: str, speeds):
    """mode: 'base' | 'attach' | 'sharing'; returns (fast elapsed, makespan,
    pages read)."""
    db = make_database(
        n_pages=TABLE_PAGES, pool_pages=POOL_PAGES, n_cpus=4,
        sharing=SharingConfig(enabled=(mode == "sharing")),
    )
    procs = []
    stagger = 0.04  # beyond the pool's reach, so base cannot share by luck
    if mode == "attach":
        manager = AttachScanManager(db)
        for i, cpu in enumerate(speeds):
            def process(sim, cpu=cpu, delay=i * stagger):
                yield sim.timeout(delay)
                result = yield from manager.scan(
                    "t", lambda p, d, n, cpu=cpu: cpu
                )
                return result
            procs.append(db.sim.spawn(process(db.sim)))
    else:
        scan_cls = SharedTableScan if mode == "sharing" else TableScan
        for i, cpu in enumerate(speeds):
            def process(sim, cpu=cpu, delay=i * stagger):
                yield sim.timeout(delay)
                scan = scan_cls(db, "t", 0, TABLE_PAGES - 1,
                                on_page=lambda p, d, n, cpu=cpu: cpu)
                result = yield from scan.run()
                return result
            procs.append(db.sim.spawn(process(db.sim)))
    db.sim.run()
    results = [p.completion.value for p in procs]
    fastest = min(r.elapsed for r in results)
    return fastest, db.sim.now, db.disk.stats.pages_read


def experiment():
    out = {}
    for label, speeds in (
        ("homogeneous", [FAST_CPU] * 3),
        ("heterogeneous", [FAST_CPU, FAST_CPU, SLOW_CPU]),
    ):
        for mode in ("base", "attach", "sharing"):
            out[(label, mode)] = run_mode(mode, speeds)
    return out


def test_a8_attach(benchmark):
    results = once(benchmark, experiment)
    print()
    print("A8 — attach-style sharing vs grouping+throttling")
    rows = []
    for (label, mode), (fast, makespan, pages) in sorted(results.items()):
        rows.append([label, mode, fast, makespan, pages])
    print(format_table(
        ["consumer speeds", "mode", "fastest scan (s)", "makespan (s)",
         "pages read"],
        rows,
    ))
    # Homogeneous speeds: both sharing styles beat base on I/O.
    assert results[("homogeneous", "attach")][2] < results[("homogeneous", "base")][2]
    assert results[("homogeneous", "sharing")][2] < results[("homogeneous", "base")][2]
    # Heterogeneous speeds: attach chains the fast query to the slow one;
    # throttled sharing keeps the fast query far quicker.
    fast_attach = results[("heterogeneous", "attach")][0]
    fast_sharing = results[("heterogeneous", "sharing")][0]
    assert fast_sharing < 0.6 * fast_attach
