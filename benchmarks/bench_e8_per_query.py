"""E8 — per-query gains (Figure-20 analog).

Paper claims: gains vary by query but "no query shows a negative
effect", and scan-heavy queries (e.g. Q21 with its two lineitem scans)
benefit most.
"""

from benchmarks.conftest import once
from repro.experiments import e8_per_query


def test_e8_per_query(benchmark, settings):
    result = once(benchmark, lambda: e8_per_query(settings))
    print()
    print("E8 — Figure 20 analog: mean per-query elapsed times")
    print(result.render())
    gains = result.gains()
    # The paper's fairness claim, with a small tolerance for timing noise
    # at reduced scale.
    regressions = result.regressions(tolerance_percent=10.0)
    assert not regressions, f"queries regressed: {regressions}"
    # Scan-heavy queries must benefit clearly.
    assert max(gains.values()) > 15.0
