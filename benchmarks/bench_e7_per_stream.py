"""E7 — per-stream gains (Figure-19 analog).

Paper claim: "each stream gained similarly from the improved bufferpool
sharing" — the mechanism is fair across streams.
"""

from benchmarks.conftest import once
from repro.experiments import e7_per_stream


def test_e7_per_stream(benchmark, settings):
    result = once(benchmark, lambda: e7_per_stream(settings))
    print()
    print("E7 — Figure 19 analog: per-stream elapsed times")
    print(result.render())
    gains = result.gains()
    # Every stream gains; no stream is sacrificed for the others.
    assert all(gain > 0 for gain in gains.values()), gains
