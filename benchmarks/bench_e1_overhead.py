"""E1 — single-stream overhead of the sharing machinery.

Paper claim: the observed overhead in single-stream runs "was well below
1 % of the end-to-end time".
"""

from benchmarks.conftest import once
from repro.experiments import e1_overhead


def test_e1_overhead(benchmark, settings):
    result = once(benchmark, lambda: e1_overhead(settings))
    print()
    print("E1 — single-stream overhead (paper: < 1 %)")
    print(result.render())
    assert result.overhead_percent < 2.0
