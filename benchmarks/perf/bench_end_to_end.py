"""End-to-end perf benchmark: the staggered-Q6 experiment (E2).

This is the experiment the acceptance gate tracks: the same
``execute_task`` path as ``run-all --jobs 1``, at battery defaults.
"""

from __future__ import annotations

from repro.experiments.harness import ExperimentSettings
from repro.experiments.runner import ExperimentTask, execute_task
from repro.perf.bench import bench_staggered_q6


def test_staggered_q6_wall_clock_measured():
    wall = bench_staggered_q6(repeats=1)
    assert wall > 0


def test_staggered_q6_digest_stable_across_timed_runs():
    """Timing instrumentation must not perturb the metrics digest."""
    task = ExperimentTask(
        experiment="e2",
        settings=ExperimentSettings(scale=0.1, n_streams=2, seed=42),
    )
    first = execute_task(task)
    second = execute_task(task)
    assert first.digest == second.digest
