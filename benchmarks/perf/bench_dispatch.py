"""Microbenchmarks for the simulator dispatch loop."""

from __future__ import annotations

from repro.perf.bench import bench_dispatch
from repro.sim.kernel import Simulator
from repro.trace.sinks import RingBufferSink
from repro.trace.tracer import tracing


def test_dispatch_throughput_sane():
    """A bare dispatch should sustain well over 100k events/sec."""
    assert bench_dispatch(20_000) > 100_000


def test_dispatch_traced_still_emits_every_event():
    """The hoisted tracer handle must not drop or duplicate dispatches."""
    sim = Simulator()
    n = 500
    for i in range(n):
        sim.timeout(float(i))
    with tracing(RingBufferSink(capacity=10 * n)) as tracer:
        sim.run()
    assert tracer.events_emitted == n
