"""Microbenchmarks for the bufferpool fix paths.

The headline assertion lives here: the ``try_fix`` hit fast path must be
at least 3x faster than driving the generator ``fix`` path for the same
resident-page workload.  Both sides run in the same process back to
back, so the ratio is robust to machine speed and CI noise.
"""

from __future__ import annotations

from repro.perf.bench import bench_fix_hit, bench_fix_hit_generator, bench_fix_miss

_ITERS = 20_000


def test_fix_hit_fast_path_speedup():
    """try_fix must beat the pre-PR generator hit path by >= 3x."""
    fast = max(bench_fix_hit(_ITERS) for _ in range(3))
    slow = max(bench_fix_hit_generator(_ITERS) for _ in range(3))
    ratio = fast / slow
    assert ratio >= 3.0, (
        f"try_fix only {ratio:.2f}x faster than the generator hit path "
        f"({fast:,.0f} vs {slow:,.0f} ops/s); fast path degraded"
    )


def test_fix_hit_throughput_sane():
    """The fast path should sustain well over 100k pins/sec anywhere."""
    assert bench_fix_hit(_ITERS) > 100_000


def test_fix_miss_path_completes():
    """Miss-path benchmark runs a full prefetch+evict workload cleanly."""
    assert bench_fix_miss(512) > 0
