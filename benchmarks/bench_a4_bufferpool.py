"""A4 — ablation: bufferpool-size sweep.

The mechanism needs a pool big enough to hold a scan group's span
(grouping is budgeted by pool size), so the benefit *grows* with the
pool through the small-pool regime — and collapses once the pool caches
the entire database (the 1.5× point), where even unshared scans stop
doing I/O.  The paper's 100 GB / 5 GB operating point sits in the wide
middle where sharing pays off.
"""

from benchmarks.conftest import once
from repro.experiments import ablation_bufferpool_sweep
from repro.metrics.report import format_table


def test_a4_bufferpool(benchmark, settings):
    comparisons = once(benchmark, lambda: ablation_bufferpool_sweep(settings))
    print()
    print("A4 — bufferpool-size sweep (pool as fraction of database)")
    rows = [
        [f"{fraction:.0%}", c.base.makespan, c.shared.makespan,
         c.end_to_end_gain, c.disk_read_gain]
        for fraction, c in sorted(comparisons.items())
    ]
    print(format_table(
        ["pool", "Base (s)", "SS (s)", "e2e gain %", "read gain %"], rows
    ))
    gains = {f: c.end_to_end_gain for f, c in comparisons.items()}
    peak_fraction = max(gains, key=gains.get)
    # Sharing pays off clearly somewhere in the middle regime...
    assert gains[peak_fraction] > 10.0
    # ...and the cache-everything pool needs it much less than the peak.
    assert gains[max(gains)] < gains[peak_fraction]
