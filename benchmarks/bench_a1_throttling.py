"""A1 — ablation: throttling on/off.

Design claim: without throttling, scans placed together drift apart over
time and sharing decays; throttling keeps groups tight, so the full
mechanism beats sharing-without-throttling.
"""

from benchmarks.conftest import once
from repro.experiments import ablation_throttling


def test_a1_throttling(benchmark, settings):
    result = once(benchmark, lambda: ablation_throttling(settings))
    print()
    print("A1 — throttling ablation")
    print(result.render())
    makespans = result.makespans()
    # Any sharing beats base; full mechanism is at least as good as
    # sharing without throttling (small tolerance for scheduling noise).
    assert makespans["full"] < makespans["base"]
    assert makespans["no-throttle"] < makespans["base"]
    assert makespans["full"] <= makespans["no-throttle"] * 1.05
