"""A2 — ablation: adaptive page prioritization on/off.

Design claim: leader-HIGH/trailer-LOW release priorities protect exactly
the pages group followers are about to fix, so the full mechanism should
match or beat sharing with fixed priorities.
"""

from benchmarks.conftest import once
from repro.experiments import ablation_priority


def test_a2_priority(benchmark, settings):
    result = once(benchmark, lambda: ablation_priority(settings))
    print()
    print("A2 — page-prioritization ablation")
    print(result.render())
    makespans = result.makespans()
    assert makespans["full"] < makespans["base"]
    assert makespans["no-priority"] < makespans["base"]
    assert makespans["full"] <= makespans["no-priority"] * 1.05
