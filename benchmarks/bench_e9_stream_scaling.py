"""E9 — stream scaling.

Paper (conclusion of Table 1's discussion): "The reduced disk
utilization may be used to scale to a larger number of streams with the
same hardware."  This bench sweeps the stream count and measures
queries-per-second throughput for Base and SS.
"""

from benchmarks.conftest import once
from repro.experiments import e9_stream_scaling

STREAM_COUNTS = (2, 4, 6)


def test_e9_stream_scaling(benchmark, settings):
    result = once(
        benchmark, lambda: e9_stream_scaling(settings, stream_counts=STREAM_COUNTS)
    )
    print()
    print("E9 — throughput vs concurrency (paper: savings buy extra streams)")
    print(result.render())
    # SS sustains higher throughput at every concurrency level...
    for n_streams in STREAM_COUNTS:
        assert result.throughput(n_streams, shared=True) > result.throughput(
            n_streams, shared=False
        )
    # ...and SS at the highest tested concurrency beats Base at the
    # lowest — the "more streams on the same hardware" claim.
    assert result.throughput(max(STREAM_COUNTS), shared=True) > result.throughput(
        min(STREAM_COUNTS), shared=False
    )
