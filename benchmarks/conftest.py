"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints it.  ``REPRO_BENCH_SCALE`` (default 0.25) and
``REPRO_BENCH_STREAMS`` (default 5) trade fidelity for runtime; scale 1.0
reproduces the headline configuration (lineitem 1600 pages, bufferpool
≈ 5 % of the database) at a few minutes per benchmark.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.harness import ExperimentSettings

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))
BENCH_STREAMS = int(os.environ.get("REPRO_BENCH_STREAMS", "5"))


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    """Benchmark-wide experiment settings."""
    return ExperimentSettings(scale=BENCH_SCALE, n_streams=BENCH_STREAMS)


def once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
