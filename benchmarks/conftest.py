"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints it.  ``REPRO_BENCH_SCALE`` (default 0.25) and
``REPRO_BENCH_STREAMS`` (default 5) trade fidelity for runtime; scale 1.0
reproduces the headline configuration (lineitem 1600 pages, bufferpool
≈ 5 % of the database) at a few minutes per benchmark.

Benchmarks dispatch through :mod:`repro.experiments.registry` — the same
table the CLI and the parallel runner use — so an experiment renamed or
added in one place is renamed or added everywhere.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.harness import ExperimentSettings
from repro.experiments.registry import all_experiments, get

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))
BENCH_STREAMS = int(os.environ.get("REPRO_BENCH_STREAMS", "5"))


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    """Benchmark-wide experiment settings."""
    return ExperimentSettings(scale=BENCH_SCALE, n_streams=BENCH_STREAMS)


@pytest.fixture(scope="session")
def registry_ids():
    """Every registered experiment id (for coverage assertions)."""
    return [spec.name for spec in all_experiments()]


def run_experiment(name: str, settings: ExperimentSettings):
    """Run one registered experiment and return its raw result object."""
    return get(name).execute(settings)


def once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
