"""A3 — ablation: leader–trailer drift threshold sweep.

The prototype throttles once the gap exceeds ~two prefetch extents.  The
sweep shows the trade-off: very tight thresholds over-throttle, very
loose ones let groups drift apart; every setting still beats base.
"""

from benchmarks.conftest import once
from repro.experiments import ablation_threshold, e4_throughput


def test_a3_threshold(benchmark, settings):
    result = once(benchmark, lambda: ablation_threshold(settings))
    print()
    print("A3 — drift-threshold sweep (paper default: 2 extents)")
    print(result.render())
    makespans = list(result.makespans().values())
    # The sweep stays within a sane band: no setting catastrophically
    # worse than the best one.
    assert max(makespans) < 2.0 * min(makespans)
