"""E3 — three staggered Q1 streams (CPU-intensive; Figure-16 analog).

Paper claims: I/O wait and idle are negligible next to user time, yet
even here bufferpool sharing improves each run noticeably.
"""

from benchmarks.conftest import once
from repro.experiments import e3_staggered_q1


def test_e3_staggered_q1(benchmark, settings):
    result = once(benchmark, lambda: e3_staggered_q1(settings))
    print()
    print("E3 — 3 staggered Q1 runs (paper: CPU-bound, still gains)")
    print(result.render())
    # Q1 is CPU-bound: user share dominates iowait in the base run.
    base_cpu = result.comparison.base.cpu
    assert base_cpu.user > base_cpu.iowait
    # Sharing must not regress any run.
    for base, shared in zip(result.per_run_base, result.per_run_shared):
        assert shared <= base * 1.05
