"""E6 — disk seeks over time (Figure-18 analog).

Paper claim: with synchronized scans the disk seeks much less often in
most time intervals, because grouped scans demand pages in an order the
disk can serve with fewer head movements.
"""

from benchmarks.conftest import once
from repro.experiments import e6_seeks_timeline


def test_e6_seeks_timeline(benchmark, settings):
    result = once(benchmark, lambda: e6_seeks_timeline(settings))
    print()
    print("E6 — Figure 18 analog: seeks per time bucket")
    print(result.render())
    assert result.shared_total_lower()
