"""E4 — multi-stream TPC-H throughput run (Table 1 analog).

Paper (Table 1, 5-stream TPC-H): end-to-end gain 21 %, average disk
read gain 33 %, average disk seek gain 34 %.
"""

from benchmarks.conftest import once
from repro.experiments import e4_throughput


def test_e4_throughput(benchmark, settings):
    result = once(benchmark, lambda: e4_throughput(settings))
    print()
    print("E4 — Table 1 analog (paper: 21% / 33% / 34%)")
    print(result.render())
    comparison = result.comparison
    print(
        f"Base: makespan {comparison.base.makespan:.2f}s, "
        f"{comparison.base.pages_read} pages, {comparison.base.seeks} seeks"
    )
    print(
        f"SS:   makespan {comparison.shared.makespan:.2f}s, "
        f"{comparison.shared.pages_read} pages, {comparison.shared.seeks} seeks "
        f"({comparison.shared.scans_joined} scans joined, "
        f"{comparison.shared.throttle_waits} throttle waits)"
    )
    # Shape assertions: double-digit end-to-end gain, reads and seeks
    # reduced by a similar order as the paper's ~third.
    assert result.end_to_end_gain > 10.0
    assert result.disk_read_gain > 10.0
    assert result.disk_seek_gain > 5.0
