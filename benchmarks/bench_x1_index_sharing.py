"""X1 — future-work extension: index-scan (SISCAN) sharing.

The target paper names index-scan sharing as future work; its authors'
follow-up (VLDB 2007) reports >50 % per-query gains for staggered
I/O-bound index scans.  This bench staggers several SISCANs over a
scattered MDC-style block index and compares against plain IXSCANs.
"""

from repro.core.config import SharingConfig
from repro.engine.database import Database, SystemConfig
from repro.extensions.index_sharing import (
    BlockIndex,
    IndexScan,
    IndexScanSharingManager,
    SharedIndexScan,
)
from repro.metrics.report import format_table, percent_gain
from repro.workloads.synthetic import simple_table_schema

from benchmarks.conftest import once

N_SCANS = 3
TABLE_PAGES = 1024
POOL_PAGES = 96
BLOCK_PAGES = 16


def run_mode(shared: bool):
    db = Database(SystemConfig(
        pool_pages=POOL_PAGES,
        sharing=SharingConfig(enabled=shared),
    ))
    db.create_table(simple_table_schema("fact"), n_pages=TABLE_PAGES,
                    extent_size=BLOCK_PAGES)
    db.open()
    index = BlockIndex(db.catalog.table("fact"), block_size_pages=BLOCK_PAGES)
    ism = IndexScanSharingManager(
        db.sim, pages_per_entry=BLOCK_PAGES, pool_capacity=POOL_PAGES,
        config=db.config.sharing,
    )

    def scan_process(sim, delay):
        yield sim.timeout(delay)
        if shared:
            scan = SharedIndexScan(db, index, ism, 0, index.n_entries - 1)
        else:
            scan = IndexScan(db, index, 0, index.n_entries - 1)
        result = yield from scan.run()
        return result

    # Stagger each scan to ~an eighth of a solo scan's runtime.
    solo_estimate = TABLE_PAGES * db.config.geometry.transfer_time(1)
    procs = [
        db.sim.spawn(scan_process(db.sim, i * solo_estimate / 8))
        for i in range(N_SCANS)
    ]
    db.sim.run()
    results = [p.completion.value for p in procs]
    return db, results


def experiment():
    base_db, base_results = run_mode(shared=False)
    shared_db, shared_results = run_mode(shared=True)
    return base_db, base_results, shared_db, shared_results


def test_x1_index_sharing(benchmark):
    base_db, base_results, shared_db, shared_results = once(benchmark, experiment)
    print()
    print("X1 — staggered index scans over a scattered block index")
    rows = []
    for i, (base, shared) in enumerate(zip(base_results, shared_results)):
        rows.append([
            f"scan {i}", base.elapsed, shared.elapsed,
            percent_gain(base.elapsed, shared.elapsed),
        ])
    rows.append([
        "pages read", base_db.disk.stats.pages_read,
        shared_db.disk.stats.pages_read,
        percent_gain(base_db.disk.stats.pages_read,
                     shared_db.disk.stats.pages_read),
    ])
    rows.append([
        "disk seeks", base_db.disk.stats.seeks, shared_db.disk.stats.seeks,
        percent_gain(float(base_db.disk.stats.seeks),
                     float(shared_db.disk.stats.seeks)),
    ])
    print(format_table(["metric", "IXSCAN", "SISCAN", "gain %"], rows))
    # Sharing must cut physical reads and end-to-end time materially.
    assert shared_db.disk.stats.pages_read < base_db.disk.stats.pages_read
    assert shared_db.sim.now < base_db.sim.now
