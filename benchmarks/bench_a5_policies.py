"""A5 — related-work baseline: smarter victim policies vs scan sharing.

The related-work section argues that general-purpose replacement
policies (LRU-K, 2Q, ARC, …) cannot exploit the *ordered* access
pattern of concurrent scans the way explicit coordination can.  This
bench runs the same workload under each policy without sharing, then
under the full mechanism.
"""

from benchmarks.conftest import once
from repro.experiments import ablation_policies


def test_a5_policies(benchmark, settings):
    result = once(benchmark, lambda: ablation_policies(settings))
    print()
    print("A5 — victim-policy comparison (no policy matches coordination)")
    print(result.render())
    makespans = result.makespans()
    sharing = makespans["priority-lru + sharing"]
    baselines = {k: v for k, v in makespans.items() if k != "priority-lru + sharing"}
    # The coordinated mechanism beats every pure caching policy.
    assert sharing < min(baselines.values())
