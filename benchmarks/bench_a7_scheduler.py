"""A7 — device-level elevator scheduling vs scan coordination.

A LOOK elevator shortens seek travel at the device, but it cannot
remove the duplicated read volume that uncoordinated concurrent scans
generate — that requires coordination above the device.  This bench
runs the same workload under FIFO and elevator service orders, with and
without the sharing manager.
"""

from benchmarks.conftest import once
from repro.experiments import ablation_disk_scheduler


def test_a7_scheduler(benchmark, settings):
    result = once(benchmark, lambda: ablation_disk_scheduler(settings))
    print()
    print("A7 — disk scheduler vs scan coordination")
    print(result.render())
    makespans = result.makespans()
    # Sharing beats the elevator-only configuration: the elevator cannot
    # reduce read volume.
    assert makespans["fifo + sharing"] < makespans["elevator"]
    # The two levers are complementary.
    assert makespans["elevator + sharing"] <= makespans["fifo + sharing"] * 1.05
