"""E2 — three staggered Q6 streams (I/O-intensive; Figure-15 analog).

Paper claims: I/O-wait time halved, idle reduced, user share up; each of
the three runs gains more than 50 %, the middle run gaining most.
"""

from benchmarks.conftest import once
from repro.experiments import e2_staggered_q6


def test_e2_staggered_q6(benchmark, settings):
    result = once(benchmark, lambda: e2_staggered_q6(settings))
    print()
    print("E2 — 3 staggered Q6 runs (paper: >50% per-run gains, iowait halved)")
    print(result.render())
    gains = result.per_run_gains()
    # Every overlapped run must gain; the paper reports > 50 % each.
    assert all(g > 20.0 for g in gains), gains
    # I/O wait share must shrink under sharing.
    assert (
        result.comparison.shared.cpu.iowait
        < result.comparison.base.cpu.iowait
    )
