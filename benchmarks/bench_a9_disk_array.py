"""A9 — storage scaling vs coordination.

Striping over more spindles shortens I/O *service* time; the sharing
mechanism removes I/O *demand*.  This bench sweeps the array size to
show the two are orthogonal: read-volume gains are hardware-independent
and the mechanism keeps improving end-to-end time on every array size.
"""

from benchmarks.conftest import once
from repro.experiments import ablation_disk_array
from repro.metrics.report import format_table

DISK_COUNTS = (1, 2, 4)


def test_a9_disk_array(benchmark, settings):
    comparisons = once(
        benchmark, lambda: ablation_disk_array(settings, disk_counts=DISK_COUNTS)
    )
    print()
    print("A9 — spindle-count sweep (striping vs coordination)")
    rows = [
        [n, c.base.makespan, c.shared.makespan, c.end_to_end_gain,
         c.disk_read_gain]
        for n, c in sorted(comparisons.items())
    ]
    print(format_table(
        ["disks", "Base (s)", "SS (s)", "e2e gain %", "read gain %"], rows
    ))
    # Striping helps the baseline...
    assert comparisons[4].base.makespan < comparisons[1].base.makespan
    # ...but the demand reduction is hardware-independent: sharing keeps
    # cutting reads by a similar factor on every array size.
    for n in DISK_COUNTS:
        assert comparisons[n].disk_read_gain > 10.0
