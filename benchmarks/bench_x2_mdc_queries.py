"""X2 — engine-integrated index-scan sharing on an MDC warehouse.

Extends X1 from bare operators to full queries: a fact table carries a
scattered MDC-style block index, and analyst queries declare
``via_index=True`` so the executor runs them as IXSCANs (Base) or
ISM-coordinated SISCANs (SS).  The staggered hotspot mix mirrors the
sequel's staggered-index-scan experiment at the query level.
"""

from repro.core.config import SharingConfig
from repro.engine.database import Database, SystemConfig
from repro.engine.executor import run_workload
from repro.engine.expressions import col
from repro.engine.operators import AggSpec
from repro.engine.query import QuerySpec, ScanStep
from repro.metrics.report import format_table, percent_gain
from repro.workloads.synthetic import simple_table_schema

from benchmarks.conftest import once

TABLE_PAGES = 768
POOL_PAGES = 96
BLOCK_PAGES = 16
N_ANALYSTS = 4


def analyst_query(i: int, lo: float, hi: float) -> QuerySpec:
    return QuerySpec(
        name=f"ix-analyst-{i}",
        steps=(
            ScanStep(
                table="fact",
                via_index=True,
                fraction=(lo, hi),
                aggregates=(AggSpec("total", "sum", col("value")),
                            AggSpec("rows", "count")),
                label="fact",
            ),
        ),
    )


def run_mode(shared: bool):
    db = Database(SystemConfig(
        pool_pages=POOL_PAGES,
        sharing=SharingConfig(enabled=shared),
    ))
    db.create_table(simple_table_schema("fact"), n_pages=TABLE_PAGES,
                    extent_size=BLOCK_PAGES)
    db.open()
    db.create_block_index("fact", block_size_pages=BLOCK_PAGES)
    # Overlapping hot key ranges, staggered arrivals.
    streams = [
        [analyst_query(i, lo, hi)]
        for i, (lo, hi) in enumerate(
            [(0.2, 1.0), (0.25, 1.0), (0.1, 0.9), (0.3, 1.0)][:N_ANALYSTS]
        )
    ]
    delays = [i * 0.12 for i in range(N_ANALYSTS)]
    result = run_workload(db, streams, stagger_list=delays)
    return db, result


def test_x2_mdc_queries(benchmark):
    def experiment():
        base_db, base = run_mode(shared=False)
        shared_db, shared = run_mode(shared=True)
        return base_db, base, shared_db, shared

    base_db, base, shared_db, shared = once(benchmark, experiment)
    print()
    print("X2 — MDC warehouse queries through the block index")
    rows = [
        ["makespan (s)", base.makespan, shared.makespan,
         percent_gain(base.makespan, shared.makespan)],
        ["pages read", base.pages_read, shared.pages_read,
         percent_gain(base.pages_read, shared.pages_read)],
        ["disk seeks", base_db.disk.stats.seeks, shared_db.disk.stats.seeks,
         percent_gain(float(base_db.disk.stats.seeks),
                      float(shared_db.disk.stats.seeks))],
    ]
    print(format_table(["metric", "IXSCAN", "SISCAN", "gain %"], rows))
    ism = shared_db.index_sharing_manager("fact")
    print(f"ISM: {ism.stats.scans_joined}/{ism.stats.scans_started} joins, "
          f"{ism.stats.throttle_waits} throttle waits")
    # Query answers must match across modes.
    base_totals = sorted(
        q.values["fact"]["rows"] for s in base.streams for q in s.queries
    )
    shared_totals = sorted(
        q.values["fact"]["rows"] for s in shared.streams for q in s.queries
    )
    assert base_totals == shared_totals
    # And sharing must cut physical reads.
    assert shared.pages_read < base.pages_read
    assert shared.makespan < base.makespan
