#!/usr/bin/env python
"""Using the library on your own schema (not TPC-H).

Builds a small telemetry warehouse from scratch — devices, and a large
``readings`` fact table clustered by timestamp — then runs a mixed
dashboard workload: several widgets refreshing over the most recent
data window, plus one nightly full-table aggregation.  Shows the public
API end to end: schemas, expressions, query specs, streams, and the
sharing manager's statistics.

Run:  python examples/custom_database.py
"""

from repro import (
    AggSpec,
    ColumnSpec,
    Database,
    QuerySpec,
    ScanStep,
    SharingConfig,
    SystemConfig,
    TableSchema,
    col,
    lit,
    run_workload,
)
from repro.metrics.report import format_table, percent_gain

READINGS_PAGES = 800
HOT_WINDOW = (800.0, 1000.0)  # the most recent fifth of the data


def build_database(sharing_enabled: bool) -> Database:
    readings = TableSchema(
        name="readings",
        rows_per_page=120,
        columns=(
            ColumnSpec("reading_id", "sequence"),
            ColumnSpec("device_id", "int_uniform", 1, 5_000),
            ColumnSpec("temperature", "float_uniform", -20.0, 90.0),
            ColumnSpec("humidity", "float_uniform", 0.0, 100.0),
            ColumnSpec("status", "choice", categories=("ok", "warn", "fail")),
            ColumnSpec("ts", "clustered", 0.0, 1000.0),
        ),
    )
    devices = TableSchema(
        name="devices",
        rows_per_page=120,
        columns=(
            ColumnSpec("device_id", "sequence"),
            ColumnSpec("site", "int_uniform", 1, 40),
            ColumnSpec("battery", "float_uniform", 0.0, 100.0),
        ),
    )
    db = Database(SystemConfig(
        pool_pages=72,
        sharing=SharingConfig(enabled=sharing_enabled),
    ))
    db.create_table(readings, n_pages=READINGS_PAGES)
    db.create_table(devices, n_pages=48)
    return db.open()


def widget(name: str, lo: float, hi: float) -> QuerySpec:
    """A dashboard widget: aggregate a recent time window."""
    return QuerySpec(
        name=name,
        steps=(
            ScanStep(
                table="readings",
                cluster_range=(lo, hi),
                predicate=col("status").ne(lit("fail")),
                aggregates=(
                    AggSpec("avg_temp", "avg", col("temperature")),
                    AggSpec("max_hum", "max", col("humidity")),
                    AggSpec("n", "count"),
                ),
                label="readings",
            ),
        ),
    )


def nightly_rollup() -> QuerySpec:
    """The heavy job: full-table grouped aggregation."""
    return QuerySpec(
        name="nightly-rollup",
        steps=(
            ScanStep(
                table="readings",
                group_by=("status",),
                aggregates=(
                    AggSpec("avg_temp", "avg", col("temperature")),
                    AggSpec("n", "count"),
                ),
                extra_units_per_row=4.0,
                label="readings",
            ),
            ScanStep(
                table="devices",
                aggregates=(AggSpec("low_battery", "min", col("battery")),),
                label="devices",
            ),
        ),
    )


def run(sharing_enabled: bool):
    db = build_database(sharing_enabled)
    lo, hi = HOT_WINDOW
    streams = [
        [widget("widget-temps", lo, hi), widget("widget-temps-2", lo + 40, hi)],
        [widget("widget-humidity", lo + 20, hi), nightly_rollup()],
        [nightly_rollup(), widget("widget-recent", lo + 60, hi)],
        [widget("widget-sites", lo, hi - 20), widget("widget-alerts", lo, hi)],
    ]
    result = run_workload(db, streams, stagger=0.05)
    return db, result


def main():
    _, base = run(sharing_enabled=False)
    db, shared = run(sharing_enabled=True)

    print("Telemetry dashboard: 4 concurrent streams over one fact table")
    print()
    print(format_table(
        ["metric", "Base", "SS", "gain %"],
        [
            ["end-to-end (s)", base.makespan, shared.makespan,
             percent_gain(base.makespan, shared.makespan)],
            ["pages read", base.pages_read, shared.pages_read,
             percent_gain(base.pages_read, shared.pages_read)],
            ["disk seeks", base.seeks, shared.seeks,
             percent_gain(float(base.seeks), float(shared.seeks))],
        ],
    ))
    print()
    sample = shared.streams[0].queries[0]
    print(f"Sample widget result ({sample.name}): {sample.values['readings']}")
    stats = db.sharing.stats
    print(f"Sharing: {stats.scans_joined_ongoing} joins, "
          f"{stats.throttle_waits} throttle waits, "
          f"{stats.regroups} regroupings.")


if __name__ == "__main__":
    main()
