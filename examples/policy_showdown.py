#!/usr/bin/env python
"""Why smarter caching alone doesn't solve scan thrashing.

The paper's related-work section argues that general-purpose replacement
policies (LRU and its descendants) cannot exploit the *ordered* access
pattern of concurrent table scans, while explicit coordination can.
This example pits every policy in the library against the same
scan-heavy concurrent workload — first as pure caches (no sharing),
then the paper's mechanism on top of priority-LRU.

Run:  python examples/policy_showdown.py
"""

from repro import SharingConfig, SystemConfig, run_workload
from repro.metrics.report import format_table
from repro.workloads import make_tpch_database, tpch_streams

POLICIES = ["fifo", "lru", "mru", "clock", "lru-k", "2q", "lfu", "arc",
            "priority-lru"]
QUERIES = ["Q1", "Q9", "Q18", "Q21"]


def run(policy: str, sharing_enabled: bool):
    config = SystemConfig(
        policy=policy,
        sharing=SharingConfig(enabled=sharing_enabled),
    )
    db = make_tpch_database(config, scale=0.25)
    return run_workload(db, tpch_streams(4, query_names=QUERIES))


def main():
    rows = []
    for policy in POLICIES:
        result = run(policy, sharing_enabled=False)
        rows.append([f"{policy} (cache only)", result.makespan,
                     result.pages_read, result.seeks])
    shared = run("priority-lru", sharing_enabled=True)
    rows.append(["priority-lru + scan sharing", shared.makespan,
                 shared.pages_read, shared.seeks])

    print("Concurrent scan workload under each victim policy")
    print()
    print(format_table(
        ["configuration", "end-to-end (s)", "pages read", "seeks"], rows
    ))
    print()
    best_cache = min(rows[:-1], key=lambda r: r[1])
    print(f"Best pure cache: {best_cache[0]} at {best_cache[1]:.3f}s — "
          f"coordination still wins at {shared.makespan:.3f}s.")


if __name__ == "__main__":
    main()
