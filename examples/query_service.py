#!/usr/bin/env python
"""The query service: workload classes, admission control, backpressure.

The paper's throughput test pins concurrency by construction (N closed
streams).  A warehouse front-end is an open system, and once arrivals
outpace the engine, *admitting everything* is exactly what destroys the
buffer locality the sharing mechanism builds.  This example defines a
two-class service — a latency-sensitive interactive class over a
best-effort batch class — runs it twice over the same seed with the
AIMD admission controller on and off, and prints the per-class SLO
tables side by side.

The interactive class arrives in heavy-tailed (lognormal) clumps over a
multi-table query mix, so unbounded admission genuinely interleaves
scans on different tables and thrashes the (deliberately small) pool.

Run:  python examples/query_service.py
"""

from dataclasses import replace

from repro import SharingConfig, SystemConfig
from repro.engine.database import Database
from repro.service import ControllerConfig, QueryService, ServiceClass, ServiceSpec
from repro.workloads import make_tpch_database

SCALE = 0.1
#: Rough Q6 service time at this scale; rates/horizon below are
#: expressed in multiples of it so the example stays scale-invariant.
Q6_COST = 0.014

SPEC = ServiceSpec(
    classes=(
        ServiceClass(
            name="interactive",
            weight=3.0,                      # 3x the batch class's fair share
            arrival="lognormal", sigma=1.2,  # clumped analyst traffic
            rate=2.0 / Q6_COST,
            query_names=("Q6", "Q14", "Q3"),
            query_weights=(("Q6", 6.0), ("Q14", 2.0), ("Q3", 1.0)),
            latency_slo=8.0 * Q6_COST,
            patience=12.0 * Q6_COST,         # abandon rather than queue forever
        ),
        ServiceClass(
            name="batch",
            weight=1.0,
            arrival="closed", n_streams=2,   # TPC-H-style looping streams
            max_mpl=1,                       # at most one batch query running
            query_names=("Q1",),
        ),
    ),
    horizon=80.0 * Q6_COST,
    controller=ControllerConfig(initial_mpl=4, min_mpl=1, max_mpl=6,
                                interval=0.5 * Q6_COST),
)


def build_database() -> Database:
    config = SystemConfig(
        pool_pages=72,   # tight on purpose: locality is worth protecting
        sharing=SharingConfig(enabled=True),
        record_page_visits=False,
    )
    return make_tpch_database(config, scale=SCALE)


def run(controlled: bool):
    spec = SPEC if controlled else replace(
        SPEC, controller=replace(SPEC.controller, enabled=False)
    )
    service = QueryService(build_database(), spec, scenario="example")
    return service.run()


def main():
    controlled = run(controlled=True)
    uncontrolled = run(controlled=False)

    for label, result in (("WITH admission control", controlled),
                          ("WITHOUT admission control", uncontrolled)):
        print(f"=== {label} ===")
        print(result.render())
        print()

    print("The point:")
    print(f"  peak concurrent queries : {controlled.peak_running:4d} vs "
          f"{uncontrolled.peak_running:4d}")
    print(f"  peak in-system requests : {controlled.peak_in_system:4d} vs "
          f"{uncontrolled.peak_in_system:4d}")
    print(f"  bufferpool miss rate    : {controlled.buffer_miss_rate:.3f} vs "
          f"{uncontrolled.buffer_miss_rate:.3f}")
    interactive = controlled.class_metrics("interactive")
    print(f"  interactive p99 latency : {interactive.latency_p99:.3f}s "
          f"(SLO attainment "
          f"{100.0 * (interactive.slo_attainment or 0.0):.0f}%)")


if __name__ == "__main__":
    main()
