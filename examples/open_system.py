#!/usr/bin/env python
"""An open system: Poisson query arrivals instead of fixed streams.

TPC-H's throughput test is a closed system, but the paper's motivating
warehouse is open — analysts submit queries whenever they like, and the
instantaneous concurrency level fluctuates.  This example drives the
database with a Poisson arrival process biased toward scan-heavy report
templates and compares Base vs SS on mean and *tail* query latency —
the metric an open system's users actually feel.

Run:  python examples/open_system.py
"""

from repro import SharingConfig, SystemConfig, run_workload
from repro.metrics.report import format_table, percent_gain
from repro.workloads import make_tpch_database, poisson_arrivals

RATE = 3.0          # queries per simulated second
HORIZON = 8.0       # arrival window
#: Scan-heavy templates dominate (the warehouse's big reports), so the
#: instantaneous concurrency on lineitem stays well above one.
HOT_QUERIES = {"Q9": 3.0, "Q17": 3.0, "Q18": 2.0, "Q21": 1.0, "Q6": 2.0}


def run(sharing_enabled: bool):
    config = SystemConfig(
        pool_pages=64,  # ~5 % of the scaled database, the paper's regime
        sharing=SharingConfig(enabled=sharing_enabled),
        record_page_visits=False,
    )
    db = make_tpch_database(config, scale=0.25)
    plan = poisson_arrivals(
        RATE, HORIZON, seed=11,
        query_names=list(HOT_QUERIES),
        query_weights=HOT_QUERIES,
    )
    streams, delays = plan.as_streams()
    result = run_workload(db, streams, stagger_list=delays)
    return db, result


def latencies(result):
    values = sorted(
        query.elapsed for stream in result.streams for query in stream.queries
    )
    mean = sum(values) / len(values)
    p95 = values[int(0.95 * (len(values) - 1))]
    return mean, p95, values[-1]


def main():
    _, base = run(sharing_enabled=False)
    db, shared = run(sharing_enabled=True)

    base_mean, base_p95, base_max = latencies(base)
    ss_mean, ss_p95, ss_max = latencies(shared)
    n = sum(len(s.queries) for s in base.streams)
    print(f"Open system: {n} Poisson arrivals over {HORIZON:.0f}s "
          f"(rate {RATE}/s), hotspot-biased templates\n")
    print(format_table(
        ["latency metric", "Base (s)", "SS (s)", "gain %"],
        [
            ["mean", base_mean, ss_mean, percent_gain(base_mean, ss_mean)],
            ["p95", base_p95, ss_p95, percent_gain(base_p95, ss_p95)],
            ["max", base_max, ss_max, percent_gain(base_max, ss_max)],
        ],
    ))
    print()
    print(format_table(
        ["metric", "Base", "SS"],
        [
            ["pages read", base.pages_read, shared.pages_read],
            ["disk seeks", base.seeks, shared.seeks],
        ],
    ))
    stats = db.sharing.stats
    print(f"\nSharing: {stats.scans_joined_ongoing} joins / "
          f"{stats.scans_started} scans, "
          f"{stats.throttle_waits} throttle waits.")


if __name__ == "__main__":
    main()
