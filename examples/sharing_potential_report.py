#!/usr/bin/env python
"""Measuring a workload's sharing potential before turning the knob on.

The paper's introduction analyzes a customer warehouse (150 users, 215
query types, 553 scans, two tables with over 100 scans each) to argue
the sharing opportunity is real.  This example runs a TPC-H throughput
workload with page-visit recording enabled, then produces the same kind
of report: scans per table, requested vs. distinct pages, and how much
of the re-read volume comes from temporally overlapping scans — i.e.
what the sharing manager can actually recover.

Run:  python examples/sharing_potential_report.py
"""

from repro import SharingConfig, SystemConfig, run_workload
from repro.metrics.access_log import analyze_sharing_potential
from repro.workloads import make_tpch_database, tpch_streams


def main():
    config = SystemConfig(
        sharing=SharingConfig(enabled=False),  # observe the raw workload
        record_page_visits=True,
    )
    db = make_tpch_database(config, scale=0.25)
    result = run_workload(db, tpch_streams(4))
    report = analyze_sharing_potential(result)

    print(f"Workload: {report.total_scans} scans across "
          f"{len(report.tables)} tables\n")
    print(report.render())
    print()
    hot = report.hot_tables(min_scans=10)
    print(f"Tables with 10+ scans: {len(hot)} "
          f"({', '.join(t.table for t in hot)})")
    best = max(report.tables.values(), key=lambda t: t.potential_fraction)
    print(f"Biggest opportunity: {best.table!r} — {best.n_scans} scans "
          f"re-request {100 * best.potential_fraction:.0f}% of their pages, "
          f"{best.overlapping_pairs} scan pairs overlap in time.")


if __name__ == "__main__":
    main()
