#!/usr/bin/env python
"""Quickstart: see scan sharing beat the baseline in two minutes.

Builds a small TPC-H-shaped database twice — once vanilla, once with the
scan sharing manager enabled — runs the same three concurrent query
streams against both, and prints the paper's three headline metrics:
end-to-end time, pages read from disk, and disk seeks.

Run:  python examples/quickstart.py
"""

from repro import SharingConfig, SystemConfig, run_workload
from repro.metrics.report import format_table, percent_gain
from repro.workloads import make_tpch_database, tpch_streams


def run(sharing_enabled: bool):
    config = SystemConfig(sharing=SharingConfig(enabled=sharing_enabled))
    db = make_tpch_database(config, scale=0.25)
    streams = tpch_streams(3, query_names=["Q1", "Q6", "Q9", "Q18", "Q21"])
    result = run_workload(db, streams)
    return db, result


def main():
    print("Running baseline (no sharing) ...")
    _, base = run(sharing_enabled=False)
    print("Running with the scan sharing manager ...")
    db, shared = run(sharing_enabled=True)

    print()
    print(format_table(
        ["metric", "Base", "SS", "gain %"],
        [
            ["end-to-end time (s)", base.makespan, shared.makespan,
             percent_gain(base.makespan, shared.makespan)],
            ["pages read", base.pages_read, shared.pages_read,
             percent_gain(base.pages_read, shared.pages_read)],
            ["disk seeks", base.seeks, shared.seeks,
             percent_gain(base.seeks, shared.seeks)],
            ["bufferpool hit ratio", base.buffer_hit_ratio,
             shared.buffer_hit_ratio, 0.0],
        ],
    ))
    print()
    stats = db.sharing.stats
    print(f"Sharing manager: {stats.scans_started} scans, "
          f"{stats.scans_joined_ongoing} joined an ongoing scan, "
          f"{stats.throttle_waits} throttle waits "
          f"({stats.total_throttle_time:.2f}s inserted).")


if __name__ == "__main__":
    main()
