#!/usr/bin/env python
"""Does scan sharing still matter once the load is sharded?

A natural objection to buffer-locality coordination is that horizontal
scaling makes it redundant: shard a million users across enough
replicas and no single bufferpool ever thrashes.  The hot-shard skew
scenario shows why that fails — zipf-distributed users concentrate on
one replica no matter how the ring is cut, so the hot replica still
runs many concurrent scans over the same tables.  This example replays
that scenario under each sharing policy and compares fleet-level
outcomes: the policy only acts *inside* each replica, yet it moves the
fleet's miss rate and SLO attainment.

Run:  python examples/cluster_showdown.py
"""

from repro.experiments.harness import ExperimentSettings
from repro.experiments.runner import run_sweep
from repro.metrics.report import format_table

POLICIES = ["grouping-throttling", "cooperative", "pbm"]


def main():
    settings = ExperimentSettings(scale=0.1, seed=42)
    suite = run_sweep(
        "sv-cluster-skew", "sharing_policy", POLICIES, settings,
        jobs=len(POLICIES), use_cache=False,
    )

    rows = []
    for task in suite.tasks:
        metrics = task.metrics
        policy = task.sweep_point.split("=", 1)[1]
        slo = metrics["fleet_slo_attainment"]
        rows.append([
            policy,
            metrics["n_completed"],
            metrics["n_abandoned"],
            f"{metrics['fleet_throughput']:.1f}",
            f"{100.0 * metrics['fleet_miss_rate']:.1f}",
            "-" if slo is None else f"{100.0 * slo:.1f}",
            metrics["pages_read"],
        ])

    print("Hot-shard cluster scenario (zipf users) under each sharing "
          "policy")
    print()
    print(format_table(
        ["policy", "done", "abandoned", "fleet qps", "miss %", "slo %",
         "pages read"],
        rows,
    ))
    print()
    by_qps = sorted(rows, key=lambda r: float(r[3]), reverse=True)
    best, worst = by_qps[0], by_qps[-1]
    print(f"Fleet throughput: {best[0]} serves {best[3]} q/s with {best[2]} "
          f"abandonments vs {worst[3]} q/s / {worst[2]} for {worst[0]} — "
          f"replica-local scan coordination still shapes fleet-wide "
          f"behaviour.")


if __name__ == "__main__":
    main()
