#!/usr/bin/env python
"""The paper's motivating scenario: a data-warehouse hotspot.

"A Data Warehouse might have 7 years of data and multiple analysts might
be interested in the last year or month of data."  This example builds a
7-year lineitem table and lets a group of analysts fire overlapping
range queries against the most recent year, arriving a few seconds
apart.  It then shows how the sharing manager places each new scan at an
ongoing scan's position, groups them, and keeps the group together with
throttling — and what that does to disk traffic.

Run:  python examples/warehouse_hotspot.py
"""

import numpy as np

from repro import SharingConfig, SystemConfig, col, lit, run_workload
from repro.engine.operators import AggSpec
from repro.engine.query import QuerySpec, ScanStep
from repro.metrics.report import format_table, percent_gain
from repro.workloads import make_tpch_database
from repro.workloads.tpch_schema import DATE_RANGE_DAYS

N_ANALYSTS = 6
#: Everyone cares about roughly the last two years of the warehouse —
#: a hot region several times larger than the bufferpool.
HOT_DAYS = 800.0


def analyst_query(analyst_id: int, rng: np.random.Generator) -> QuerySpec:
    """Each analyst slices a random sub-window of the hot year."""
    window = float(rng.uniform(500.0, HOT_DAYS))
    start = DATE_RANGE_DAYS - window
    return QuerySpec(
        name=f"analyst-{analyst_id}",
        steps=(
            ScanStep(
                table="lineitem",
                cluster_range=(start, DATE_RANGE_DAYS),
                aggregates=(
                    AggSpec("revenue", "sum",
                            col("l_extendedprice") * (lit(1.0) - col("l_discount"))),
                    AggSpec("orders", "count"),
                ),
                extra_units_per_row=2.0,
                label="hot-lineitem",
            ),
        ),
    )


def run(sharing_enabled: bool):
    # Pool pinned to ~5 % of the database, the paper's operating point.
    config = SystemConfig(
        pool_pages=64,
        sharing=SharingConfig(enabled=sharing_enabled),
    )
    db = make_tpch_database(config, scale=0.5)
    rng = np.random.default_rng(17)
    streams = [[analyst_query(i, rng)] for i in range(N_ANALYSTS)]
    # Analysts arrive staggered, not in lockstep, while earlier scans are
    # still running.
    delays = [float(i) * 0.03 for i in range(N_ANALYSTS)]
    result = run_workload(db, streams, stagger_list=delays)
    return db, result


def main():
    print(f"{N_ANALYSTS} analysts querying the last ~2 years of a 7-year warehouse")
    print()
    _, base = run(sharing_enabled=False)
    db, shared = run(sharing_enabled=True)

    rows = []
    for stream in sorted(base.streams, key=lambda s: s.stream_id):
        other = next(s for s in shared.streams
                     if s.stream_id == stream.stream_id)
        rows.append([
            f"analyst-{stream.stream_id}",
            stream.elapsed,
            other.elapsed,
            percent_gain(stream.elapsed, other.elapsed),
        ])
    print(format_table(["analyst", "Base (s)", "SS (s)", "gain %"], rows))

    print()
    print(format_table(
        ["metric", "Base", "SS"],
        [
            ["pages read", base.pages_read, shared.pages_read],
            ["disk seeks", base.seeks, shared.seeks],
            ["end-to-end (s)", base.makespan, shared.makespan],
        ],
    ))
    stats = db.sharing.stats
    print()
    print(f"{stats.scans_joined_ongoing} of {stats.scans_started} scans "
          f"joined an ongoing scan's position; "
          f"{stats.throttle_waits} throttle waits kept the groups tight.")


if __name__ == "__main__":
    main()
