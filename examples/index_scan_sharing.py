#!/usr/bin/env python
"""Future work in action: sharing for index-based scans (SISCAN).

The ICDE 2007 paper closes by naming index scans as future work — and
they are harder: an index scan visits blocks in *key* order, which on an
MDC-style block index is nothing like page order, so two scans' distance
cannot be read off their current positions.  The `repro.extensions.
index_sharing` package implements the anchors/offsets solution the
authors published next (VLDB 2007).

This example builds a fact table with a fully *scattered* block index,
fires staggered range scans at it, and compares plain IXSCANs against
ISM-coordinated SISCANs.

Run:  python examples/index_scan_sharing.py
"""

from repro import Database, SharingConfig, SystemConfig
from repro.extensions.index_sharing import (
    BlockIndex,
    IndexScan,
    IndexScanSharingManager,
    SharedIndexScan,
)
from repro.metrics.report import format_table, percent_gain
from repro.workloads.synthetic import simple_table_schema

TABLE_PAGES = 1024
BLOCK_PAGES = 16
POOL_PAGES = 96
N_SCANS = 4


def build(shared: bool):
    db = Database(SystemConfig(
        pool_pages=POOL_PAGES,
        sharing=SharingConfig(enabled=shared),
    ))
    db.create_table(simple_table_schema("fact"), n_pages=TABLE_PAGES,
                    extent_size=BLOCK_PAGES)
    db.open()
    index = BlockIndex(db.catalog.table("fact"), block_size_pages=BLOCK_PAGES)
    ism = IndexScanSharingManager(
        db.sim, pages_per_entry=BLOCK_PAGES, pool_capacity=POOL_PAGES,
        config=db.config.sharing,
    )
    return db, index, ism


def run(shared: bool):
    db, index, ism = build(shared)
    print(f"  index scatter factor: {index.scatter_factor():.2f} "
          f"(1.0 = key order is unrelated to page order)")

    def scan_process(sim, delay):
        yield sim.timeout(delay)
        if shared:
            scan = SharedIndexScan(db, index, ism, 0, index.n_entries - 1)
        else:
            scan = IndexScan(db, index, 0, index.n_entries - 1)
        result = yield from scan.run()
        return result

    solo = TABLE_PAGES * db.config.geometry.transfer_time(1)
    procs = [db.sim.spawn(scan_process(db.sim, i * solo / 8))
             for i in range(N_SCANS)]
    db.sim.run()
    return db, ism, [p.completion.value for p in procs]


def main():
    print("Plain IXSCANs:")
    base_db, _, base_results = run(shared=False)
    print("ISM-coordinated SISCANs:")
    shared_db, ism, shared_results = run(shared=True)

    print()
    rows = [
        [f"scan {i}", base.elapsed, shared.elapsed,
         percent_gain(base.elapsed, shared.elapsed)]
        for i, (base, shared) in enumerate(zip(base_results, shared_results))
    ]
    rows.append(["pages read", base_db.disk.stats.pages_read,
                 shared_db.disk.stats.pages_read,
                 percent_gain(base_db.disk.stats.pages_read,
                              shared_db.disk.stats.pages_read)])
    rows.append(["disk seeks", base_db.disk.stats.seeks,
                 shared_db.disk.stats.seeks,
                 percent_gain(float(base_db.disk.stats.seeks),
                              float(shared_db.disk.stats.seeks))])
    print(format_table(["metric", "IXSCAN", "SISCAN", "gain %"], rows))
    print()
    print(f"ISM: {ism.stats.scans_joined} of {ism.stats.scans_started} scans "
          f"joined an anchor group; {ism.stats.throttle_waits} throttle "
          f"waits; {ism.stats.rebases_on_wrap} anchor rebases on wrap.")


if __name__ == "__main__":
    main()
