"""Build script.

The package is pure python by default.  The optional ``repro._speedups``
extension (the compiled event-queue backend, see ``repro.sim.backend``)
is only declared when explicitly requested — either via
``REPRO_BUILD_SPEEDUPS=1`` or by invoking ``build_ext`` directly — so a
plain ``pip install .`` never needs a C compiler.  The extension is
marked optional: a failed compile degrades to the pure backend instead
of failing the install.
"""

import os
import sys

from setuptools import setup

ext_modules = []
if os.environ.get("REPRO_BUILD_SPEEDUPS") == "1" or "build_ext" in sys.argv:
    from setuptools import Extension

    ext_modules.append(
        Extension(
            "repro._speedups",
            sources=["src/repro/_speedups.c"],
            optional=True,
        )
    )

setup(ext_modules=ext_modules)
