# Entry points for the common developer loops.  Everything runs against
# the source tree directly (PYTHONPATH=src), no install required.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast bench bench-quick bench-check bench-guards bench-soak compiled test-compiled policy-smoke agg-smoke cluster-smoke serve-quick serve-soak

test:            ## full tier-1 suite
	$(PYTHON) -m pytest -x -q

compiled:        ## build the optional C event-queue backend in place
	REPRO_BUILD_SPEEDUPS=1 $(PYTHON) setup.py build_ext --inplace

test-compiled:   ## digest + bench gate on the compiled backend (build first)
	REPRO_COMPILED=require $(PYTHON) -m repro run-all --jobs 4 --no-cache --out compiled-digests.json
	$(PYTHON) -m pytest -x -q tests/test_compiled_backend.py
	REPRO_COMPILED=require $(PYTHON) -m repro bench --quick --check BENCH_kernel.json

test-fast:       ## everything not marked slow
	$(PYTHON) -m pytest -x -q -m "not slow"

bench:           ## regenerate the committed kernel perf baseline
	$(PYTHON) -m repro bench --out BENCH_kernel.json

bench-quick:     ## quick benchmark run, report only
	$(PYTHON) -m repro bench --quick

bench-check:     ## quick run gated against the committed baseline (CI gate)
	$(PYTHON) -m repro bench --quick --check BENCH_kernel.json --tolerance 0.20

bench-guards:    ## pytest-level perf guards (fix-hit speedup, dispatch sanity)
	$(PYTHON) -m pytest -x -q benchmarks/perf

bench-soak:      ## soak-scale benchmark only (multi-device, multi-stream)
	$(PYTHON) -m repro bench --only soak_multi_device

policy-smoke:    ## three sharing policies on the quick staggered scenario, digest-checked
	$(PYTHON) -m repro sweep e2 --param sharing_policy \
		--values grouping-throttling,cooperative,pbm \
		--scale 0.1 --streams 2 --jobs 1 --no-cache --out policy-serial.json
	$(PYTHON) -m repro sweep e2 --param sharing_policy \
		--values grouping-throttling,cooperative,pbm \
		--scale 0.1 --streams 2 --jobs 3 --no-cache --out policy-parallel.json
	$(PYTHON) -c "import json; s=json.load(open('policy-serial.json')); \
		p=json.load(open('policy-parallel.json')); \
		assert s['suite_digest'] == p['suite_digest'], 'policy sweep diverged under --jobs'; \
		print('policy smoke OK:', s['suite_digest'][:12])"

agg-smoke:       ## budgeted-aggregation mix across three policies, digest-checked
	$(PYTHON) -m repro sweep ag-mix --param sharing_policy \
		--values grouping-throttling,cooperative,pbm \
		--scale 0.1 --streams 2 --jobs 1 --no-cache --out agg-serial.json
	$(PYTHON) -m repro sweep ag-mix --param sharing_policy \
		--values grouping-throttling,cooperative,pbm \
		--scale 0.1 --streams 2 --jobs 3 --no-cache --out agg-parallel.json
	$(PYTHON) -c "import json; s=json.load(open('agg-serial.json')); \
		p=json.load(open('agg-parallel.json')); \
		assert s['suite_digest'] == p['suite_digest'], 'agg sweep diverged under --jobs'; \
		spilled = sum(pt['metrics'].get('spilled_partitions', 0) for pt in s['experiments']); \
		assert spilled > 0, 'agg smoke never spilled'; \
		print('agg smoke OK:', s['suite_digest'][:12], f'({spilled:.0f} partitions spilled)')"

cluster-smoke:   ## two cluster scenarios, serial digest == --jobs digest
	$(PYTHON) -m repro cluster-sim steady,skew --quick --replicas 2 \
		--jobs 1 --no-cache --out cluster-serial.json
	$(PYTHON) -m repro cluster-sim steady,skew --quick --replicas 2 \
		--jobs 2 --no-cache --out cluster-parallel.json
	$(PYTHON) -c "import json; s=json.load(open('cluster-serial.json')); \
		p=json.load(open('cluster-parallel.json')); \
		assert s['suite_digest'] == p['suite_digest'], 'cluster sims diverged under --jobs'; \
		assert all(pt['metrics']['drained'] for pt in s['experiments']), 'a cluster run failed to drain'; \
		print('cluster smoke OK:', s['suite_digest'][:12])"

serve-quick:     ## service-layer smoke: steady scenario, bounds asserted
	$(PYTHON) -m repro serve-sim steady --quick --no-cache --assert-bounded

serve-soak:      ## long mixed soak under pool-pressure chaos, bounds asserted
	$(PYTHON) -m repro serve-sim soak --quick --no-cache --assert-bounded \
		--faults "pool-pressure:fraction=0.6,from=1.0,until=3.0"
