"""Unit tests for the index scan sharing manager (anchors/offsets)."""

import pytest

from repro.buffer.page import Priority
from repro.core.config import SharingConfig
from repro.extensions.index_sharing.manager import (
    IndexScanDescriptor,
    IndexScanSharingManager,
)
from repro.sim.kernel import Simulator


def make_ism(config=None, pages_per_entry=8, pool=96):
    sim = Simulator()
    return sim, IndexScanSharingManager(
        sim, pages_per_entry=pages_per_entry, pool_capacity=pool,
        config=config or SharingConfig(),
    )


def descriptor(first=0, last=99, speed=100.0, name="ix"):
    return IndexScanDescriptor(
        index_name=name, first_entry=first, last_entry=last,
        estimated_speed=speed,
    )


class TestDescriptor:
    def test_range_and_time(self):
        d = descriptor(first=10, last=29, speed=10.0)
        assert d.range_entries == 20
        assert d.estimated_total_time == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            descriptor(first=5, last=4)
        with pytest.raises(ValueError):
            descriptor(speed=0.0)


class TestAnchors:
    def test_first_scan_gets_own_anchor(self):
        _, ism = make_ism()
        state = ism.start_scan(descriptor())
        assert state.anchor_id >= 0
        assert state.anchor_offset == 0
        assert state.start_entry == 0

    def test_joining_scan_shares_anchor_and_offset(self):
        sim, ism = make_ism()
        first = ism.start_scan(descriptor())
        sim.schedule(1.0, lambda: None)
        sim.run()
        ism.update_location(first.scan_id, location=50, entries_scanned=50)
        second = ism.start_scan(descriptor())
        assert second.anchor_id == first.anchor_id
        assert second.anchor_offset == first.anchor_offset
        assert second.start_entry == first.location
        assert ism.stats.scans_joined == 1

    def test_offset_advances_with_entries(self):
        sim, ism = make_ism()
        state = ism.start_scan(descriptor())
        ism.update_location(state.scan_id, location=30, entries_scanned=30)
        assert state.anchor_offset == 30

    def test_offset_distance_orders_group(self):
        sim, ism = make_ism()
        a = ism.start_scan(descriptor())
        ism.update_location(a.scan_id, location=40, entries_scanned=40)
        b = ism.start_scan(descriptor())
        sim.schedule(1.0, lambda: None)
        sim.run()
        ism.update_location(a.scan_id, location=60, entries_scanned=60)
        ism.update_location(b.scan_id, location=45, entries_scanned=5)
        groups = ism.anchor_groups()
        assert len(groups) == 1
        assert groups[0].leader.scan_id == a.scan_id
        assert groups[0].trailer.scan_id == b.scan_id

    def test_wrap_rebases_anchor(self):
        sim, ism = make_ism()
        a = ism.start_scan(descriptor())
        ism.update_location(a.scan_id, location=40, entries_scanned=40)
        b = ism.start_scan(descriptor())
        old_anchor = b.anchor_id
        ism.update_location(b.scan_id, location=0, entries_scanned=60,
                            wrapped_since_last=True)
        assert b.anchor_id != old_anchor
        assert b.anchor_offset == 0
        assert ism.stats.rebases_on_wrap == 1
        # A and B no longer share a group.
        assert len(ism.anchor_groups()) == 2

    def test_separate_starts_make_separate_groups(self):
        _, ism = make_ism(config=SharingConfig(min_share_pages=10_000))
        ism.start_scan(descriptor())
        ism.start_scan(descriptor())
        assert len(ism.anchor_groups()) == 2


class TestPlacement:
    def test_no_candidates_starts_at_first(self):
        _, ism = make_ism()
        assert ism.start_scan(descriptor(first=5)).start_entry == 5

    def test_candidate_outside_range_not_joined(self):
        _, ism = make_ism()
        a = ism.start_scan(descriptor(first=0, last=99))
        ism.update_location(a.scan_id, location=90, entries_scanned=90)
        b = ism.start_scan(descriptor(first=0, last=49))
        assert b.start_entry == 0
        assert b.anchor_id != a.anchor_id

    def test_expected_shared_pages_speed_discount(self):
        sim, ism = make_ism()
        slow = ism.start_scan(descriptor(speed=10.0))
        ism.update_location(slow.scan_id, location=50, entries_scanned=50)
        fast_desc = descriptor(speed=100.0)
        pages = ism.expected_shared_pages(fast_desc, slow)
        # Overlap limited by the slower scan's pace over the fast scan's
        # phase-one window: 0.5s * 10 entries/s * 8 pages.
        assert pages == pytest.approx(0.5 * 10 * 8)

    def test_last_finished_reused_when_idle(self):
        sim, ism = make_ism(pool=96, pages_per_entry=8)
        a = ism.start_scan(descriptor())
        ism.update_location(a.scan_id, location=99, entries_scanned=99)
        ism.end_scan(a.scan_id)
        b = ism.start_scan(descriptor())
        # Backed off by pool/(2*pages_per_entry) = 6 entries.
        assert b.start_entry == 99 - 6 + 1

    def test_placement_disabled(self):
        _, ism = make_ism(config=SharingConfig(placement_enabled=False))
        a = ism.start_scan(descriptor())
        ism.update_location(a.scan_id, location=50, entries_scanned=50)
        b = ism.start_scan(descriptor())
        assert b.start_entry == 0


class TestThrottleAndPriority:
    def _drifted_pair(self, gap=40):
        sim, ism = make_ism()
        trailer = ism.start_scan(descriptor())
        ism.update_location(trailer.scan_id, location=10, entries_scanned=10)
        leader = ism.start_scan(descriptor())
        sim.schedule(1.0, lambda: None)
        sim.run()
        ism.update_location(trailer.scan_id, location=12, entries_scanned=12)
        wait = ism.update_location(
            leader.scan_id, location=10 + gap, entries_scanned=gap
        )
        return ism, leader, trailer, wait

    def test_leader_throttled_beyond_threshold(self):
        ism, leader, trailer, wait = self._drifted_pair(gap=40)
        assert wait > 0
        assert ism.stats.throttle_waits == 1

    def test_no_throttle_within_threshold(self):
        ism, leader, trailer, wait = self._drifted_pair(gap=3)
        assert wait == 0.0

    def test_priorities_reflect_roles(self):
        ism, leader, trailer, _ = self._drifted_pair(gap=40)
        assert ism.page_priority(leader.scan_id) is Priority.HIGH
        assert ism.page_priority(trailer.scan_id) is Priority.LOW

    def test_fairness_cap(self):
        ism, leader, trailer, _ = self._drifted_pair(gap=40)
        state = leader
        state.accumulated_delay = 1e9
        wait = ism.update_location(state.scan_id, location=60,
                                   entries_scanned=50)
        assert wait == 0.0
        assert state.throttle_exempt

    def test_monotonic_entries_enforced(self):
        _, ism = make_ism()
        state = ism.start_scan(descriptor())
        ism.update_location(state.scan_id, location=20, entries_scanned=20)
        with pytest.raises(ValueError):
            ism.update_location(state.scan_id, location=5, entries_scanned=5)

    def test_lifecycle_accounting(self):
        _, ism = make_ism()
        state = ism.start_scan(descriptor())
        assert ism.active_scan_count == 1
        ism.end_scan(state.scan_id)
        assert ism.active_scan_count == 0
        with pytest.raises(KeyError):
            ism.update_location(state.scan_id, location=1, entries_scanned=1)
