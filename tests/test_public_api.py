"""Smoke tests for the public API surface."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.sim",
    "repro.disk",
    "repro.buffer",
    "repro.storage",
    "repro.scans",
    "repro.core",
    "repro.engine",
    "repro.workloads",
    "repro.metrics",
    "repro.experiments",
    "repro.service",
    "repro.cluster",
    "repro.extensions.index_sharing",
    "repro.extensions.attach_sharing",
    "repro.cli",
]


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackages_import(self, module_name):
        module = importlib.import_module(module_name)
        assert module is not None

    @pytest.mark.parametrize(
        "module_name",
        [m for m in SUBPACKAGES if m not in ("repro.cli",
                                             "repro.extensions.attach_sharing")],
    )
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert getattr(module, name, None) is not None, (module_name, name)

    def test_every_public_item_documented(self):
        """Every name the top-level package exports carries a docstring."""
        import inspect

        for name in repro.__all__:
            if name == "__version__":
                continue
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{name} lacks a docstring"

    def test_config_validation_n_disks(self):
        from repro.engine.database import SystemConfig

        with pytest.raises(ValueError):
            SystemConfig(n_disks=0)
        with pytest.raises(ValueError):
            SystemConfig(disk_stripe_pages=0)
