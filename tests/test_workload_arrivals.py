"""Unit tests for the open-system arrival generator."""

import pytest

from repro.core.config import SharingConfig
from repro.engine.database import SystemConfig
from repro.engine.executor import run_workload
from repro.workloads.arrivals import poisson_arrivals
from repro.workloads.tpch_schema import make_tpch_database


class TestPoissonArrivals:
    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(rate_per_second=0, horizon_seconds=1.0)
        with pytest.raises(ValueError):
            poisson_arrivals(rate_per_second=1.0, horizon_seconds=0)
        with pytest.raises(ValueError):
            poisson_arrivals(1.0, 1.0, query_names=["Q6"],
                             query_weights={"Q6": 0.0})

    def test_arrivals_within_horizon_and_sorted(self):
        plan = poisson_arrivals(rate_per_second=5.0, horizon_seconds=10.0)
        assert all(0 <= t < 10.0 for t in plan.arrival_times)
        assert plan.arrival_times == sorted(plan.arrival_times)
        assert plan.n_arrivals == len(plan.queries)

    def test_rate_roughly_respected(self):
        plan = poisson_arrivals(rate_per_second=10.0, horizon_seconds=50.0,
                                seed=3)
        # Expect ~500; allow generous stochastic slack.
        assert 350 < plan.n_arrivals < 650

    def test_deterministic_per_seed(self):
        a = poisson_arrivals(2.0, 20.0, seed=9)
        b = poisson_arrivals(2.0, 20.0, seed=9)
        assert a.arrival_times == b.arrival_times
        assert [q.name for q in a.queries] == [q.name for q in b.queries]

    def test_query_subset_and_weights(self):
        plan = poisson_arrivals(
            5.0, 30.0, seed=1, query_names=["Q1", "Q6"],
            query_weights={"Q6": 50.0, "Q1": 1.0},
        )
        names = [q.name for q in plan.queries]
        assert set(names) <= {"Q1", "Q6"}
        assert names.count("Q6") > names.count("Q1")

    def test_as_streams_plugs_into_run_workload(self):
        plan = poisson_arrivals(8.0, 0.5, seed=2, query_names=["Q6", "Q14"])
        if plan.n_arrivals == 0:
            pytest.skip("no arrivals drawn in the tiny horizon")
        db = make_tpch_database(
            SystemConfig(sharing=SharingConfig(enabled=True)), scale=0.05
        )
        streams, delays = plan.as_streams()
        result = run_workload(db, streams, stagger_list=delays)
        assert len(result.streams) == plan.n_arrivals
        starts = sorted(s.started_at for s in result.streams)
        assert starts == sorted(plan.arrival_times)
