"""Unit tests for the open-system arrival generators."""

import pytest

from repro.core.config import SharingConfig
from repro.engine.database import SystemConfig
from repro.engine.executor import run_workload
from repro.workloads.arrivals import (
    ARRIVAL_KINDS,
    lognormal_arrivals,
    make_arrivals,
    mmpp_arrivals,
    pareto_arrivals,
    poisson_arrivals,
)
from repro.workloads.tpch_schema import make_tpch_database


class TestPoissonArrivals:
    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(rate_per_second=0, horizon_seconds=1.0)
        with pytest.raises(ValueError):
            poisson_arrivals(rate_per_second=1.0, horizon_seconds=0)
        with pytest.raises(ValueError):
            poisson_arrivals(1.0, 1.0, query_names=["Q6"],
                             query_weights={"Q6": 0.0})

    def test_arrivals_within_horizon_and_sorted(self):
        plan = poisson_arrivals(rate_per_second=5.0, horizon_seconds=10.0)
        assert all(0 <= t < 10.0 for t in plan.arrival_times)
        assert plan.arrival_times == sorted(plan.arrival_times)
        assert plan.n_arrivals == len(plan.queries)

    def test_rate_roughly_respected(self):
        plan = poisson_arrivals(rate_per_second=10.0, horizon_seconds=50.0,
                                seed=3)
        # Expect ~500; allow generous stochastic slack.
        assert 350 < plan.n_arrivals < 650

    def test_deterministic_per_seed(self):
        a = poisson_arrivals(2.0, 20.0, seed=9)
        b = poisson_arrivals(2.0, 20.0, seed=9)
        assert a.arrival_times == b.arrival_times
        assert [q.name for q in a.queries] == [q.name for q in b.queries]

    def test_query_subset_and_weights(self):
        plan = poisson_arrivals(
            5.0, 30.0, seed=1, query_names=["Q1", "Q6"],
            query_weights={"Q6": 50.0, "Q1": 1.0},
        )
        names = [q.name for q in plan.queries]
        assert set(names) <= {"Q1", "Q6"}
        assert names.count("Q6") > names.count("Q1")

    def test_as_streams_plugs_into_run_workload(self):
        plan = poisson_arrivals(8.0, 0.5, seed=2, query_names=["Q6", "Q14"])
        if plan.n_arrivals == 0:
            pytest.skip("no arrivals drawn in the tiny horizon")
        db = make_tpch_database(
            SystemConfig(sharing=SharingConfig(enabled=True)), scale=0.05
        )
        streams, delays = plan.as_streams()
        result = run_workload(db, streams, stagger_list=delays)
        assert len(result.streams) == plan.n_arrivals
        starts = sorted(s.started_at for s in result.streams)
        assert starts == sorted(plan.arrival_times)


class TestHeavyTailedArrivals:
    """Lognormal and Pareto generators share the Poisson contract."""

    GENERATORS = [
        (lognormal_arrivals, {"sigma": 1.0}),
        (pareto_arrivals, {"alpha": 1.5}),
    ]

    @pytest.mark.parametrize("generate,kwargs", GENERATORS)
    def test_validation(self, generate, kwargs):
        with pytest.raises(ValueError):
            generate(0.0, 1.0, **kwargs)
        with pytest.raises(ValueError):
            generate(1.0, 0.0, **kwargs)

    def test_shape_parameters_validated(self):
        with pytest.raises(ValueError, match="sigma"):
            lognormal_arrivals(1.0, 1.0, sigma=0.0)
        with pytest.raises(ValueError, match="alpha"):
            pareto_arrivals(1.0, 1.0, alpha=1.0)  # infinite-mean regime

    @pytest.mark.parametrize("generate,kwargs", GENERATORS)
    def test_sorted_within_horizon_and_deterministic(self, generate, kwargs):
        a = generate(5.0, 20.0, seed=11, **kwargs)
        b = generate(5.0, 20.0, seed=11, **kwargs)
        assert a.arrival_times == b.arrival_times
        assert [q.name for q in a.queries] == [q.name for q in b.queries]
        assert all(0 <= t < 20.0 for t in a.arrival_times)
        assert a.arrival_times == sorted(a.arrival_times)

    @pytest.mark.parametrize("generate,kwargs", GENERATORS)
    def test_mean_rate_preserved(self, generate, kwargs):
        # Both are parameterised so the mean gap is 1/rate regardless of
        # the tail shape: expect ~rate*horizon arrivals, generous slack
        # because heavy tails converge slowly.
        plan = generate(10.0, 200.0, seed=4, **kwargs)
        assert 1_200 < plan.n_arrivals < 2_800

    def test_lognormal_tail_heavier_with_sigma(self):
        light = lognormal_arrivals(10.0, 500.0, seed=5, sigma=0.25)
        heavy = lognormal_arrivals(10.0, 500.0, seed=5, sigma=2.0)

        def max_gap(plan):
            times = plan.arrival_times
            return max(b - a for a, b in zip(times, times[1:]))

        assert max_gap(heavy) > 4 * max_gap(light)


class TestMmppArrivals:
    def test_validation(self):
        with pytest.raises(ValueError):
            mmpp_arrivals(0.0, 1.0)
        with pytest.raises(ValueError):
            mmpp_arrivals(1.0, 1.0, rate_off=-0.1)
        with pytest.raises(ValueError):
            mmpp_arrivals(1.0, 1.0, mean_on_seconds=0.0)
        with pytest.raises(ValueError):
            mmpp_arrivals(1.0, 1.0, mean_off_seconds=0.0)

    def test_deterministic_and_sorted(self):
        a = mmpp_arrivals(20.0, 50.0, seed=8, mean_on_seconds=2.0,
                          mean_off_seconds=3.0)
        b = mmpp_arrivals(20.0, 50.0, seed=8, mean_on_seconds=2.0,
                          mean_off_seconds=3.0)
        assert a.arrival_times == b.arrival_times
        assert a.arrival_times == sorted(a.arrival_times)
        assert all(0 <= t < 50.0 for t in a.arrival_times)

    def test_silent_off_phase_produces_gaps(self):
        plan = mmpp_arrivals(50.0, 100.0, seed=3, rate_off=0.0,
                             mean_on_seconds=1.0, mean_off_seconds=2.0)
        times = plan.arrival_times
        gaps = [b - a for a, b in zip(times, times[1:])]
        # ON gaps ~0.02s; OFF sojourns ~2s: the trace must show both.
        assert min(gaps) < 0.1
        assert max(gaps) > 0.5

    def test_off_rate_fills_the_gaps(self):
        silent = mmpp_arrivals(50.0, 100.0, seed=3, rate_off=0.0)
        trickle = mmpp_arrivals(50.0, 100.0, seed=3, rate_off=5.0)
        assert trickle.n_arrivals > silent.n_arrivals

    def test_effective_rate_between_on_and_off(self):
        plan = mmpp_arrivals(40.0, 300.0, seed=6, rate_off=0.0,
                             mean_on_seconds=1.0, mean_off_seconds=1.0)
        # Equal sojourns, silent OFF phase: effective rate ~ on/2.
        effective = plan.n_arrivals / 300.0
        assert 10.0 < effective < 30.0


class TestMakeArrivals:
    def test_dispatches_every_kind(self):
        for kind in ARRIVAL_KINDS:
            plan = make_arrivals(kind, 5.0, 10.0, seed=1)
            assert plan.n_arrivals > 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown arrival kind"):
            make_arrivals("uniform", 5.0, 10.0)

    def test_dispatch_matches_direct_call(self):
        via_dispatch = make_arrivals("lognormal", 4.0, 15.0, seed=2, sigma=1.3)
        direct = lognormal_arrivals(4.0, 15.0, seed=2, sigma=1.3)
        assert via_dispatch.arrival_times == direct.arrival_times

    def test_max_arrivals_caps_plan(self):
        plan = make_arrivals("poisson", 100.0, 100.0, max_arrivals=25)
        assert plan.n_arrivals == 25
