"""Unit tests for the LRFU and LIRS policies."""

import pytest

from repro.buffer.page import PageKey
from repro.buffer.replacement import make_policy
from repro.buffer.replacement.lirs import LirsPolicy
from repro.buffer.replacement.lrfu import LrfuPolicy


def key(n: int) -> PageKey:
    return PageKey(0, n)


def always(_key: PageKey) -> bool:
    return True


class TestLrfu:
    def test_registry(self):
        assert make_policy("lrfu").name == "lrfu"

    def test_lambda_validated(self):
        with pytest.raises(ValueError):
            LrfuPolicy(lam=0.0)
        with pytest.raises(ValueError):
            LrfuPolicy(lam=1.5)

    def test_crf_grows_with_accesses(self):
        policy = LrfuPolicy()
        policy.on_admit(key(0))
        one_access = policy.current_crf(key(0))
        policy.on_hit(key(0))
        assert policy.current_crf(key(0)) > one_access

    def test_frequent_page_survives(self):
        policy = LrfuPolicy(lam=0.01)
        policy.on_admit(key(0))
        for _ in range(5):
            policy.on_hit(key(0))
        policy.on_admit(key(1))
        assert policy.choose_victim(always) == key(1)

    def test_large_lambda_behaves_like_lru(self):
        policy = LrfuPolicy(lam=1.0)
        policy.on_admit(key(0))
        for _ in range(10):
            policy.on_hit(key(0))
        policy.on_admit(key(1))
        policy.on_hit(key(1))  # key 1 accessed most recently
        # With lambda=1 the history decays almost instantly: the victim is
        # the least recently touched page regardless of frequency.
        assert policy.choose_victim(always) == key(0)

    def test_evict_removes_tracking(self):
        policy = LrfuPolicy()
        policy.on_admit(key(0))
        policy.on_evict(key(0))
        assert policy.choose_victim(always) is None

    def test_respects_evictability(self):
        policy = LrfuPolicy()
        policy.on_admit(key(0))
        policy.on_admit(key(1))
        assert policy.choose_victim(lambda k: k != key(0)) == key(1)


class TestLirs:
    def test_registry_needs_capacity(self):
        with pytest.raises(ValueError):
            make_policy("lirs")
        assert make_policy("lirs", capacity=16).name == "lirs"

    def test_validation(self):
        with pytest.raises(ValueError):
            LirsPolicy(capacity=1)
        with pytest.raises(ValueError):
            LirsPolicy(capacity=16, hir_fraction=1.0)

    def test_cold_fill_makes_lir(self):
        policy = LirsPolicy(capacity=10, hir_fraction=0.2)
        for n in range(policy.lir_capacity):
            policy.on_admit(key(n))
        assert policy.sizes()["lir"] == policy.lir_capacity
        assert policy.sizes()["resident_hir"] == 0

    def test_overflow_becomes_resident_hir(self):
        policy = LirsPolicy(capacity=10, hir_fraction=0.2)
        for n in range(policy.lir_capacity + 2):
            policy.on_admit(key(n))
        assert policy.sizes()["resident_hir"] == 2

    def test_victims_come_from_hir_queue_first(self):
        policy = LirsPolicy(capacity=6, hir_fraction=0.34)
        for n in range(6):
            policy.on_admit(key(n))
        victim = policy.choose_victim(always)
        # Victims are resident HIR (admitted after the LIR set filled).
        assert victim == key(policy.lir_capacity)

    def test_hir_hit_in_stack_promotes_to_lir(self):
        policy = LirsPolicy(capacity=6, hir_fraction=0.34)
        for n in range(6):
            policy.on_admit(key(n))
        hir_key = key(policy.lir_capacity)
        before = policy.sizes()["lir"]
        policy.on_hit(hir_key)
        sizes = policy.sizes()
        assert sizes["lir"] <= before  # rebalanced back to budget
        # The promoted page is no longer an eviction candidate from Q.
        assert hir_key not in list(policy._queue)

    def test_ghost_readmit_promotes(self):
        policy = LirsPolicy(capacity=6, hir_fraction=0.34)
        for n in range(6):
            policy.on_admit(key(n))
        hir_key = key(policy.lir_capacity)
        policy.on_evict(hir_key)
        assert policy.sizes()["ghosts"] >= 1
        policy.on_admit(hir_key)  # re-reference within stack window
        assert hir_key not in list(policy._queue)

    def test_scan_resistance(self):
        """A burst of one-shot pages must not displace the LIR set."""
        policy = LirsPolicy(capacity=8, hir_fraction=0.25)
        workers = [key(n) for n in range(policy.lir_capacity)]
        for k in workers:
            policy.on_admit(k)
            policy.on_hit(k)
        # Scan: 20 cold pages, each evicted after use.
        for n in range(100, 120):
            policy.on_admit(key(n))
            victim = policy.choose_victim(always)
            assert victim is not None
            assert victim not in workers, "scan displaced the working set"
            policy.on_evict(victim)

    def test_evicting_everything_is_safe(self):
        policy = LirsPolicy(capacity=4)
        for n in range(4):
            policy.on_admit(key(n))
        for _ in range(4):
            victim = policy.choose_victim(always)
            assert victim is not None
            policy.on_evict(victim)
        assert policy.choose_victim(always) is None
