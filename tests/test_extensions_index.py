"""Unit tests for the simulated block index."""

import pytest

from repro.extensions.index_sharing.index import BlockIndex

from tests.conftest import make_database


def make_index(n_pages=128, block=8, scatter=True, seed=0):
    db = make_database(n_pages=n_pages, pool_pages=48, extent_size=block)
    table = db.catalog.table("t")
    return db, BlockIndex(table, block_size_pages=block, scatter=scatter,
                          scatter_seed=seed)


class TestBlockIndex:
    def test_entry_count_matches_blocks(self):
        _, index = make_index(n_pages=128, block=8)
        assert index.n_entries == 16

    def test_partial_last_block(self):
        _, index = make_index(n_pages=100, block=8)
        assert index.n_blocks == 13
        # The last block holds only the remaining pages.
        last_block_pages = index.block_pages(12)
        assert last_block_pages == [96, 97, 98, 99]

    def test_blocks_partition_table_pages(self):
        _, index = make_index(n_pages=120, block=8)
        seen = []
        for block_id in range(index.n_blocks):
            seen.extend(index.block_pages(block_id))
        assert sorted(seen) == list(range(120))

    def test_entries_cover_each_block_once(self):
        _, index = make_index()
        blocks = [block for _e, block in index.entries(0, index.n_entries - 1)]
        assert sorted(blocks) == list(range(index.n_blocks))

    def test_scattered_index_is_scattered(self):
        _, index = make_index(scatter=True)
        assert index.scatter_factor() > 0.5

    def test_clustered_index_is_sequential(self):
        _, index = make_index(scatter=False)
        assert index.scatter_factor() == 0.0

    def test_scatter_deterministic_per_seed(self):
        _, a = make_index(seed=3)
        _, b = make_index(seed=3)
        _, c = make_index(seed=4)
        order = lambda ix: [blk for _e, blk in ix.entries(0, ix.n_entries - 1)]
        assert order(a) == order(b)
        assert order(a) != order(c)

    def test_key_fraction_ranges(self):
        _, index = make_index(n_pages=128, block=8)  # 16 entries
        assert index.entries_for_key_fraction(0.0, 1.0) == (0, 15)
        assert index.entries_for_key_fraction(0.0, 0.5) == (0, 7)
        assert index.entries_for_key_fraction(0.5, 1.0) == (8, 15)

    def test_validation(self):
        db, index = make_index()
        with pytest.raises(IndexError):
            index.block_of_entry(index.n_entries)
        with pytest.raises(IndexError):
            index.block_pages(index.n_blocks)
        with pytest.raises(ValueError):
            index.entries_for_key_fraction(0.9, 0.1)
        with pytest.raises(ValueError):
            BlockIndex(db.catalog.table("t"), block_size_pages=0)
