"""Unit tests for predicate-driven scan planning."""

import pytest

from repro.engine.executor import execute_query
from repro.engine.expressions import col, lit
from repro.engine.planner import (
    extract_cluster_interval,
    plan_query,
    plan_step,
)
from repro.engine.query import QuerySpec, ScanStep

from tests.conftest import make_database

# The conftest table 't' is clustered on "day" over [0, 1000].
DAY = "day"


class TestIntervalExtraction:
    def test_no_predicate_unbounded(self):
        assert extract_cluster_interval(None, DAY) == (None, None)

    def test_between(self):
        pred = col(DAY).between(100.0, 200.0)
        assert extract_cluster_interval(pred, DAY) == (100.0, 200.0)

    def test_upper_bound(self):
        assert extract_cluster_interval(col(DAY) < lit(300.0), DAY) == (None, 300.0)
        assert extract_cluster_interval(col(DAY) <= lit(300.0), DAY) == (None, 300.0)

    def test_lower_bound(self):
        assert extract_cluster_interval(col(DAY) >= lit(50.0), DAY) == (50.0, None)

    def test_equality(self):
        assert extract_cluster_interval(col(DAY).eq(lit(42.0)), DAY) == (42.0, 42.0)

    def test_flipped_operands(self):
        # lit < col means col > lit.
        assert extract_cluster_interval(lit(10.0) < col(DAY), DAY) == (10.0, None)

    def test_conjunction_intersects(self):
        pred = (col(DAY) >= lit(100.0)) & (col(DAY) < lit(400.0))
        assert extract_cluster_interval(pred, DAY) == (100.0, 400.0)

    def test_conjunction_with_other_columns(self):
        pred = (col(DAY) >= lit(100.0)) & (col("value") < lit(5.0))
        assert extract_cluster_interval(pred, DAY) == (100.0, None)

    def test_disjunction_is_conservative(self):
        pred = (col(DAY) < lit(100.0)) | (col(DAY) > lit(900.0))
        assert extract_cluster_interval(pred, DAY) == (None, None)

    def test_negation_is_conservative(self):
        assert extract_cluster_interval(~(col(DAY) < lit(100.0)), DAY) == (None, None)

    def test_column_vs_column_ignored(self):
        pred = col(DAY) < col("value")
        assert extract_cluster_interval(pred, DAY) == (None, None)

    def test_other_column_ignored(self):
        assert extract_cluster_interval(col("value") < lit(5.0), DAY) == (None, None)


class TestPlanStep:
    def test_narrows_range_from_predicate(self, small_db):
        step = ScanStep(table="t", predicate=col(DAY).between(250.0, 500.0))
        planned = plan_step(step, small_db.catalog)
        assert planned.cluster_range == (250.0, 500.0)

    def test_clamps_to_column_domain(self, small_db):
        step = ScanStep(table="t", predicate=col(DAY) >= lit(-50.0))
        planned = plan_step(step, small_db.catalog)
        assert planned.cluster_range == (0.0, 1000.0)

    def test_explicit_range_untouched(self, small_db):
        step = ScanStep(table="t", cluster_range=(0.0, 10.0),
                        predicate=col(DAY) < lit(999.0))
        assert plan_step(step, small_db.catalog) is step

    def test_unconstraining_predicate_untouched(self, small_db):
        step = ScanStep(table="t", predicate=col("value") < lit(5.0))
        assert plan_step(step, small_db.catalog) is step

    def test_contradiction_scans_minimal_range(self, small_db):
        pred = (col(DAY) > lit(800.0)) & (col(DAY) < lit(100.0))
        planned = plan_step(ScanStep(table="t", predicate=pred),
                            small_db.catalog)
        low, high = planned.cluster_range
        assert low == high


class TestPlannedExecution:
    def test_planned_query_scans_fewer_pages_same_answer(self, small_db):
        spec = QuerySpec(
            name="range-count",
            steps=(ScanStep(table="t",
                            predicate=col(DAY).between(200.0, 400.0),
                            label="t"),),
        )
        planned = plan_query(spec, small_db.catalog)

        proc_full = small_db.sim.spawn(execute_query(small_db, spec))
        small_db.sim.run()
        full = proc_full.completion.value

        proc_planned = small_db.sim.spawn(execute_query(small_db, planned))
        small_db.sim.run()
        narrowed = proc_planned.completion.value

        assert narrowed.pages_scanned < full.pages_scanned
        assert narrowed.values["t"]["rows"] == full.values["t"]["rows"]
