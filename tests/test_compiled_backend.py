"""Equivalence tests for the optional compiled kernel backend.

The compiled ``repro._speedups.CEventQueue`` must be observationally
identical to the pure-python two-lane queue: same dispatch order, same
trace events, same error behavior, and — the acceptance bar — the same
experiment metric digests.  Every test here is skipped when the
extension has not been built (``make compiled``); the compiled CI lane
builds it and runs this module under ``REPRO_COMPILED=require``.
"""

from __future__ import annotations

import pytest

from repro.sim import backend
from repro.sim.events import SimulationError
from repro.sim.kernel import Simulator
from repro.trace.tracer import Tracer, set_tracer

pytestmark = pytest.mark.skipif(
    not backend.compiled_available(),
    reason="repro._speedups not built (run 'make compiled')",
)


def make_sim(compiled: bool, **kwargs) -> Simulator:
    with backend.forced(compiled):
        sim = Simulator(**kwargs)
    assert sim.backend_name == ("compiled" if compiled else "python")
    return sim


class TestBackendSelection:
    def test_forced_compiled_uses_extension(self):
        sim = make_sim(True)
        assert type(sim._queue).__module__ == "repro._speedups"

    def test_forced_pure_ignores_extension(self):
        sim = make_sim(False)
        assert type(sim._queue).__module__ == "repro.sim.events"


class TestQueueParity:
    """Direct queue-level parity on the EventQueue API surface."""

    def test_pop_order_matches(self):
        def drive(compiled):
            sim = make_sim(compiled)
            q = sim._queue
            q.push(1.0, lambda: "a")
            q.push(2.0, lambda: "b")
            q.push_many(1.0, [lambda: "c", lambda: "d"])
            out = []
            while len(q):
                time, callback = q.pop()
                out.append((time, callback()))
            return out, q.time

        assert drive(True) == drive(False)

    def test_ready_slab_routing_matches(self):
        def drive(compiled):
            sim = make_sim(compiled)
            q = sim._queue
            q.push(0.0, lambda: "now")       # cursor time: ready slab
            q.push(0.5, lambda: "later")
            assert q.peek_time() == 0.0
            first = q.pop()
            second = q.pop()
            return first[0], first[1](), second[0], second[1]()

        assert drive(True) == drive(False)

    def test_heap_beats_slab_at_cursor(self):
        """Heap entries at the cursor time pop before slab entries."""
        def drive(compiled):
            sim = make_sim(compiled)
            q = sim._queue
            q.push(1.0, lambda: "heap")
            time, callback = q.pop()        # cursor advances to 1.0
            out = [(time, callback())]
            q.push(2.0, lambda: "heap2")
            time, _ = q.pop()               # cursor advances to 2.0
            out.append((time, "heap2"))
            q.push(2.0, lambda: "slab")     # at cursor: slab
            out.append(q.peek_time())
            time, callback = q.pop()
            out.append((time, callback()))
            return out

        assert drive(True) == drive(False)

    @pytest.mark.parametrize("bad", [-0.5, float("nan"), float("inf")])
    def test_push_rejects_bad_times(self, bad):
        for compiled in (True, False):
            q = make_sim(compiled)._queue
            with pytest.raises(SimulationError):
                q.push(bad, lambda: None)
            with pytest.raises(SimulationError):
                q.push_many(bad, [lambda: None])
            assert len(q) == 0

    def test_pop_empty_raises_indexerror(self):
        for compiled in (True, False):
            with pytest.raises(IndexError):
                make_sim(compiled)._queue.pop()

    def test_error_messages_match(self):
        def message(compiled):
            q = make_sim(compiled)._queue
            with pytest.raises(SimulationError) as err:
                q.push(-0.5, lambda: None)
            return str(err.value)

        assert message(True) == message(False)


def _scripted_run(compiled: bool, until=None, sample: int = 1):
    """A deterministic multi-process script, returning everything
    observable: dispatch order, trace events, end time, return values."""

    class ListSink:
        def __init__(self):
            self.events = []

        def write(self, event):
            self.events.append(event)

    sim = make_sim(compiled, trace_dispatch_sample=sample)
    log = []

    def worker(sim, name, delay, hops):
        for hop in range(hops):
            yield sim.timeout(delay)
            log.append((name, hop, sim.now))
        return f"{name}-done"

    procs = [
        sim.spawn(worker(sim, "a", 1.0, 4)),
        sim.spawn(worker(sim, "b", 0.75, 5)),
        sim.spawn(worker(sim, "c", 1.5, 2)),
    ]
    sim.schedule(2.0, lambda: log.append(("direct", None, sim.now)))
    sim.schedule_many(1.0, [
        (lambda i=i: log.append(("batch", i, sim.now))) for i in range(3)
    ])
    sink = ListSink()
    previous = set_tracer(Tracer([sink]))
    try:
        end = sim.run(until=until)
    finally:
        set_tracer(previous)
    values = [p.completion.value if p.completion.triggered else None
              for p in procs]
    dispatches = [(e.time, e.queue_len) for e in sink.events
                  if e.kind == "dispatch"]
    return log, dispatches, end, sim.now, values


class TestRunParity:
    def test_unbounded_run_matches(self):
        assert _scripted_run(True) == _scripted_run(False)

    @pytest.mark.parametrize("until", [0.0, 0.75, 2.5, 100.0])
    def test_bounded_run_matches(self, until):
        assert _scripted_run(True, until=until) == \
            _scripted_run(False, until=until)

    @pytest.mark.parametrize("sample", [0, 2, 7])
    def test_dispatch_sampling_matches(self, sample):
        assert _scripted_run(True, sample=sample) == \
            _scripted_run(False, sample=sample)

    def test_callback_exception_propagates(self):
        for compiled in (True, False):
            sim = make_sim(compiled)
            sim.schedule(1.0, lambda: (_ for _ in ()).throw(ValueError("boom")))
            with pytest.raises(ValueError, match="boom"):
                sim.run()
            # The clock stopped at the failing dispatch.
            assert sim.now == 1.0

    def test_resumed_runs_match(self):
        """run(until=...) then run() must agree across backends."""
        def drive(compiled):
            sim = make_sim(compiled)
            seen = []
            for t in (1.0, 2.0, 3.0):
                sim.schedule(t, lambda t=t: seen.append(t))
            marks = [sim.run(until=1.5), sim.run(until=2.5), sim.run()]
            return seen, marks

        assert drive(True) == drive(False)


class TestDigestEquality:
    """The acceptance bar: identical experiment metric digests."""

    @pytest.mark.slow
    @pytest.mark.parametrize("experiment", ["e2", "st-push", "sv-steady"])
    def test_experiment_digest_matches(self, experiment):
        from repro.experiments.harness import ExperimentSettings
        from repro.experiments.runner import ExperimentTask, execute_task

        task = ExperimentTask(
            experiment=experiment,
            settings=ExperimentSettings(scale=0.1, n_streams=3, seed=7),
        )

        def digest(compiled):
            with backend.forced(compiled):
                return execute_task(task).digest

        assert digest(True) == digest(False)

    def test_quick_e2_digest_matches(self):
        from repro.experiments.harness import ExperimentSettings
        from repro.experiments.runner import ExperimentTask, execute_task

        task = ExperimentTask(
            experiment="e2",
            settings=ExperimentSettings(scale=0.05, n_streams=2, seed=11),
        )

        def digest(compiled):
            with backend.forced(compiled):
                return execute_task(task).digest

        assert digest(True) == digest(False)
