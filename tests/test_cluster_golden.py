"""Golden-result test for the pinned cluster steady scenario.

``sv-cluster-steady`` at scale 0.1 / seed 42 — two replicas, rf=2,
least-loaded routing over a generated two-class user load — is replayed
on every test run and compared field-by-field against a reference
checked into ``tests/golden/``.  Any change that moves a single load
draw, routing decision, or replica engine counter fails here with the
exact diverging field.

To bless an intentional change::

    PYTHONPATH=src python -m pytest tests/test_cluster_golden.py --regen-golden

then commit the updated golden file alongside the code change.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.harness import ExperimentSettings
from repro.experiments.runner import (
    ExperimentTask,
    execute_task,
    first_divergence,
)

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
GOLDEN_FILE = GOLDEN_DIR / "cluster_steady.json"

SCENARIO = ExperimentSettings(scale=0.1, seed=42)


def _run_scenario() -> dict:
    result = execute_task(ExperimentTask("sv-cluster-steady", SCENARIO))
    return {
        "scenario": {
            "experiment": "sv-cluster-steady",
            "scale": SCENARIO.scale,
            "seed": SCENARIO.seed,
        },
        "digest": result.digest,
        "metrics": result.metrics,
    }


def test_cluster_steady_matches_golden(regen_golden):
    actual = _run_scenario()
    if regen_golden or not GOLDEN_FILE.exists():
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        GOLDEN_FILE.write_text(
            json.dumps(actual, indent=2, sort_keys=True) + "\n"
        )
        assert GOLDEN_FILE.exists()
        return
    golden = json.loads(GOLDEN_FILE.read_text())
    divergence = first_divergence(golden, actual)
    assert divergence is None, (
        f"sv-cluster-steady diverged from tests/golden/{GOLDEN_FILE.name} "
        f"at {divergence}; if this change is intentional, regenerate with "
        f"--regen-golden (or REPRO_REGEN_GOLDEN=1) and commit the new "
        f"golden file"
    )


def test_cluster_golden_file_is_committed():
    """The reference must exist in the tree, not be a regen artifact."""
    assert GOLDEN_FILE.exists(), (
        "tests/golden/cluster_steady.json is missing; run with "
        "--regen-golden once and commit it"
    )
    golden = json.loads(GOLDEN_FILE.read_text())
    assert golden["scenario"]["experiment"] == "sv-cluster-steady"
    assert len(golden["digest"]) == 64  # full sha256 metrics digest
    assert golden["metrics"]["drained"] is True
    assert golden["metrics"]["n_completed"] > 0
    assert set(golden["metrics"]["replicas"]) == {"0", "1"}
    assert golden["metrics"]["spec"]["replication_factor"] == 2
