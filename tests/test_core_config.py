"""Unit tests for SharingConfig validation and helpers."""

import pytest

from repro.core.config import BASELINE, FULL_SHARING, SharingConfig


class TestValidation:
    def test_defaults_valid(self):
        SharingConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"update_interval_pages": 0},
            {"distance_threshold_extents": 0.5, "target_distance_extents": 1.0},
            {"slowdown_cap_fraction": -0.1},
            {"slowdown_cap_fraction": 1.1},
            {"max_wait_per_update": -1.0},
            {"speed_smoothing": 0.0},
            {"speed_smoothing": 1.5},
            {"pool_budget_fraction": 0.0},
            {"pool_budget_fraction": 1.2},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SharingConfig(**kwargs)


class TestHelpers:
    def test_disabled_copy(self):
        config = SharingConfig()
        off = config.disabled()
        assert not off.enabled
        assert config.enabled  # original untouched

    def test_with_modifies_one_field(self):
        config = SharingConfig()
        changed = config.with_(throttling_enabled=False)
        assert not changed.throttling_enabled
        assert changed.placement_enabled == config.placement_enabled

    def test_presets(self):
        assert not BASELINE.enabled
        assert FULL_SHARING.enabled

    def test_frozen(self):
        with pytest.raises(Exception):
            SharingConfig().enabled = False  # type: ignore[misc]
