"""Tests for the QPipe-style attach/detach baseline."""

import pytest

from repro.core.config import SharingConfig
from repro.extensions.attach_sharing import AttachScanManager
from repro.scans.shared_scan import SharedTableScan

from tests.conftest import make_database


def cheap(page_no, data, n_rows):
    return 1e-6


def attach_scan_process(manager, table, on_page, delay=0.0):
    def process(sim):
        if delay > 0:
            yield sim.timeout(delay)
        result = yield from manager.scan(table, on_page)
        return result

    return process


class TestCircularDaemon:
    def test_single_consumer_sees_whole_table(self):
        db = make_database(n_pages=64, sharing=SharingConfig(enabled=False))
        manager = AttachScanManager(db)
        proc = db.sim.spawn(attach_scan_process(manager, "t", cheap)(db.sim))
        db.sim.run()
        result = proc.completion.value
        assert result.pages_scanned == 64
        assert result.rows_seen == 64 * 100

    def test_daemon_stops_when_no_consumers(self):
        db = make_database(n_pages=64, sharing=SharingConfig(enabled=False))
        manager = AttachScanManager(db)
        proc = db.sim.spawn(attach_scan_process(manager, "t", cheap)(db.sim))
        db.sim.run()
        assert proc.completion.value is not None
        assert manager.daemon("t").active_consumers == 0
        pages_after = db.disk.stats.pages_read
        db.sim.run()  # nothing scheduled: the daemon is not spinning
        assert db.disk.stats.pages_read == pages_after

    def test_late_consumer_attaches_mid_circle(self):
        db = make_database(n_pages=64, sharing=SharingConfig(enabled=False))
        manager = AttachScanManager(db)
        first = db.sim.spawn(attach_scan_process(manager, "t", cheap)(db.sim))
        second = db.sim.spawn(
            attach_scan_process(manager, "t", cheap, delay=0.005)(db.sim)
        )
        db.sim.run()
        result = second.completion.value
        assert result.pages_scanned == 64
        assert result.start_page > 0  # joined mid-circle
        assert not first.completion.failed

    def test_two_attached_consumers_share_all_reads(self):
        """Perfect case for attach sharing: equal speeds, one producer."""
        db = make_database(n_pages=64, pool_pages=32,
                           sharing=SharingConfig(enabled=False))
        manager = AttachScanManager(db)
        procs = [
            db.sim.spawn(attach_scan_process(manager, "t", cheap)(db.sim))
            for _ in range(3)
        ]
        db.sim.run()
        for proc in procs:
            assert proc.completion.value.pages_scanned == 64
        # One producer: the table is read at most ~once plus the catch-up
        # circle for late attachments.
        assert db.disk.stats.pages_read <= 2 * 64

    def test_slow_consumer_drags_the_group(self):
        """The paper's critique: the broadcast group runs at the slowest
        consumer's pace, so a fast query is penalized unboundedly."""
        db = make_database(n_pages=64, sharing=SharingConfig(enabled=False))
        manager = AttachScanManager(db)
        fast = db.sim.spawn(attach_scan_process(manager, "t", cheap)(db.sim))
        slow = db.sim.spawn(
            attach_scan_process(manager, "t", lambda p, d, n: 2e-3)(db.sim)
        )
        db.sim.run()
        fast_result = fast.completion.value
        # Alone, the fast scan would need ~64 * (I/O + 1us) ~ 0.02s; the
        # broadcast chains it to the slow consumer's ~0.128s of CPU.
        assert fast_result.elapsed > 0.1

    def test_throttled_sharing_bounds_the_fast_scans_penalty(self):
        """Contrast: the paper's mechanism caps the fast scan's delay at
        the 80 % fairness cap instead of chaining it to the slow scan."""
        db = make_database(n_pages=64, sharing=SharingConfig())
        fast_scan = SharedTableScan(db, "t", 0, 63, on_page=cheap)
        slow_scan = SharedTableScan(db, "t", 0, 63, on_page=lambda p, d, n: 2e-3)
        fast = db.sim.spawn(fast_scan.run())
        slow = db.sim.spawn(slow_scan.run())
        db.sim.run()
        fast_result = fast.completion.value
        solo_estimate = fast_result.elapsed - fast_result.throttle_seconds
        cap = 0.8 * 2 * solo_estimate + 0.05  # generous bound around 80 %
        assert fast_result.throttle_seconds <= cap
        assert not slow.completion.failed
