"""Backpressure acceptance tests: the controller bounds what unbounded
admission lets grow.

The overload scenario (heavy-tailed multi-table arrivals at ~2.5x the
service rate onto a halved bufferpool) is run controller-on vs
controller-off over the same seed.  The ISSUE acceptance criterion lives
here: the controlled run keeps miss rate, concurrency, and queue length
bounded, while the uncontrolled baseline's population and miss rate keep
growing as the arrival window stretches.

These runs take ~1s each at scale 0.1, so the module stays well inside
the tier-1 budget; the comparison fixture is shared across tests.
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import ExperimentSettings
from repro.experiments.registry import get
from repro.service.metrics import bounded_problems
from repro.service.scenarios import build_service_spec, run_scenario

TINY = ExperimentSettings(scale=0.1, seed=42)


@pytest.fixture(scope="module")
def comparison():
    """sv-overload at scale 0.1: controlled vs uncontrolled, same seed."""
    return get("sv-overload").execute(TINY)


class TestOverloadBackpressure:
    def test_controller_bounds_concurrency(self, comparison):
        spec = build_service_spec("overload", TINY)
        assert comparison.controlled.peak_running <= spec.controller.max_mpl
        # Without the controller every arrival runs at once.
        assert comparison.uncontrolled.peak_running > 4 * spec.controller.max_mpl

    def test_controller_bounds_population(self, comparison):
        # Uncontrolled in-system population blows past the controlled one.
        assert comparison.uncontrolled.peak_in_system >= (
            2 * comparison.controlled.peak_in_system
        )

    def test_controller_preserves_locality(self, comparison):
        # Unbounded admission destroys temporal locality in the shared
        # pool: its miss rate is several times the throttled run's.
        assert comparison.uncontrolled.buffer_miss_rate >= (
            1.5 * comparison.controlled.buffer_miss_rate
        )

    def test_controlled_run_passes_bounds_check(self, comparison):
        assert bounded_problems("overload", comparison.metrics()) == []

    def test_uncontrolled_run_would_fail_bounds_check(self, comparison):
        # Sanity for the checker itself: held to the same standard, the
        # baseline's concurrency/queueing is out of bounds.
        metrics = comparison.uncontrolled.metrics()
        metrics["controller"]["enabled"] = True
        metrics["controller"]["mpl_max"] = (
            build_service_spec("overload", TINY).controller.max_mpl
        )
        assert bounded_problems("uncontrolled", metrics)

    def test_both_runs_drain_eventually(self, comparison):
        # Boundedness is about the steady state, not liveness: once the
        # arrival window closes, both runs must finish their backlog.
        assert comparison.controlled.drained
        assert comparison.uncontrolled.drained


class TestGrowthWithHorizon:
    """Stretch the arrival window: uncontrolled grows, controlled doesn't."""

    @pytest.fixture(scope="class")
    def short_and_long(self):
        spec = build_service_spec("overload", TINY)
        short = TINY
        long = TINY.with_(service_horizon=2.0 * spec.horizon)
        return (
            run_scenario("overload", short, controller_enabled=False),
            run_scenario("overload", long, controller_enabled=False),
            run_scenario("overload", short, controller_enabled=True),
            run_scenario("overload", long, controller_enabled=True),
        )

    def test_uncontrolled_population_grows_with_horizon(self, short_and_long):
        unc_short, unc_long, _, _ = short_and_long
        assert unc_long.peak_in_system >= 1.5 * unc_short.peak_in_system

    def test_controlled_population_stays_flat(self, short_and_long):
        _, _, con_short, con_long = short_and_long
        # Twice the offered work, same admission bound: the steady-state
        # population must not scale with the horizon.
        assert con_long.peak_in_system <= 1.2 * con_short.peak_in_system
        assert bounded_problems("overload-2x", con_long.metrics()) == []

    def test_controlled_miss_rate_stays_flat(self, short_and_long):
        unc_short, unc_long, con_short, con_long = short_and_long
        assert con_long.buffer_miss_rate <= con_short.buffer_miss_rate + 0.1
        assert unc_long.buffer_miss_rate > con_long.buffer_miss_rate
