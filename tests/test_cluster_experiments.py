"""Determinism and scaling-claim tests for the sv-cluster-* experiments."""

import pytest

from repro.cluster.scenarios import (
    CLUSTER_SCENARIOS,
    build_cluster_spec,
    scale_axis,
)
from repro.experiments.harness import ExperimentSettings
from repro.experiments.registry import REGISTRY
from repro.experiments.runner import ExperimentTask, execute_task, run_tasks

SETTINGS = ExperimentSettings(scale=0.1, seed=42)

CLUSTER_EXPERIMENTS = ("sv-cluster-steady", "sv-cluster-skew",
                      "sv-cluster-scale")


class TestRegistration:
    def test_cluster_experiments_registered(self):
        for name in CLUSTER_EXPERIMENTS:
            assert name in REGISTRY

    def test_every_scenario_has_a_spec(self):
        for name in CLUSTER_SCENARIOS:
            spec = build_cluster_spec(name, SETTINGS)
            assert spec.n_replicas >= 1

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            build_cluster_spec("nope", SETTINGS)

    def test_replicas_override_shapes_the_fleet(self):
        spec = build_cluster_spec(
            "steady", SETTINGS.with_(cluster_replicas=4)
        )
        assert spec.n_replicas == 4

    def test_scale_axis_doubles_to_override(self):
        assert tuple(scale_axis(SETTINGS)) == (1, 2, 4)
        assert tuple(
            scale_axis(SETTINGS.with_(cluster_replicas=6))
        ) == (1, 2, 4, 6)
        assert tuple(
            scale_axis(SETTINGS.with_(cluster_replicas=1))
        ) == (1,)

    def test_horizon_override_applies(self):
        spec = build_cluster_spec(
            "steady", SETTINGS.with_(service_horizon=0.25)
        )
        assert spec.load.horizon == 0.25


class TestDeterminism:
    def test_serial_equals_parallel_digests(self):
        """--jobs N must be byte-identical to --jobs 1 for every
        cluster experiment (the acceptance invariant)."""
        tasks = [ExperimentTask(name, SETTINGS)
                 for name in CLUSTER_EXPERIMENTS]
        serial = run_tasks(tasks, jobs=1, use_cache=False)
        parallel = run_tasks(tasks, jobs=3, use_cache=False)
        assert serial.suite_digest() == parallel.suite_digest()
        for a, b in zip(serial.tasks, parallel.tasks):
            assert a.digest == b.digest, a.label

    def test_rerun_reproduces_digest(self):
        task = ExperimentTask("sv-cluster-skew", SETTINGS)
        assert execute_task(task).digest == execute_task(task).digest


class TestScalingClaim:
    def test_fleet_throughput_monotone_in_replicas(self):
        """Adding replicas to the identical offered load must never
        reduce fleet throughput (ISSUE acceptance criterion)."""
        result = execute_task(
            ExperimentTask("sv-cluster-scale", SETTINGS)
        ).metrics
        assert result["monotone_throughput"] is True
        throughputs = result["fleet_throughput"]
        assert set(throughputs) == {"1", "2", "4"}
        assert throughputs["4"] > throughputs["1"]

    def test_every_point_serves_the_same_arrivals(self):
        result = execute_task(
            ExperimentTask("sv-cluster-scale", SETTINGS)
        ).metrics
        offered = {
            point["n_offered"] for point in result["points"].values()
        }
        assert len(offered) == 1


class TestSkewScenario:
    def test_skew_concentrates_load(self):
        """The hot-shard scenario must actually produce a hot replica."""
        result = execute_task(
            ExperimentTask("sv-cluster-skew", SETTINGS)
        ).metrics
        routed = sorted(
            replica["arrivals_routed"]
            for replica in result["replicas"].values()
        )
        assert routed[-1] > 2 * routed[0]
