"""Unit tests for counted FIFO resources."""

import pytest

from repro.sim.events import SimulationError
from repro.sim.resource import Resource


def hold(sim, resource, duration, log, name):
    yield resource.acquire()
    log.append(("start", name, sim.now))
    yield sim.timeout(duration)
    resource.release()
    log.append(("end", name, sim.now))


class TestResource:
    def test_capacity_must_be_positive(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, 0)

    def test_grants_up_to_capacity(self, sim):
        res = Resource(sim, 2)
        log = []
        for name in ("a", "b", "c"):
            sim.spawn(hold(sim, res, 1.0, log, name))
        sim.run()
        starts = {name: t for kind, name, t in log if kind == "start"}
        assert starts["a"] == 0.0
        assert starts["b"] == 0.0
        assert starts["c"] == 1.0  # waited for a slot

    def test_fifo_grant_order(self, sim):
        res = Resource(sim, 1)
        log = []
        for name in ("first", "second", "third"):
            sim.spawn(hold(sim, res, 1.0, log, name))
        sim.run()
        start_order = [name for kind, name, _ in log if kind == "start"]
        assert start_order == ["first", "second", "third"]

    def test_release_without_acquire_raises(self, sim):
        res = Resource(sim, 1)
        with pytest.raises(SimulationError):
            res.release()

    def test_in_use_and_queue_length(self, sim):
        res = Resource(sim, 1)
        log = []
        sim.spawn(hold(sim, res, 5.0, log, "holder"))
        sim.spawn(hold(sim, res, 1.0, log, "waiter"))
        sim.run(until=1.0)
        assert res.in_use == 1
        assert res.queue_length == 1

    def test_busy_time_integral(self, sim):
        res = Resource(sim, 2)
        log = []
        sim.spawn(hold(sim, res, 2.0, log, "a"))
        sim.spawn(hold(sim, res, 4.0, log, "b"))
        sim.run()
        # a holds for 2s, b for 4s -> 6 slot-seconds.
        assert res.busy_time(sim.now) == pytest.approx(6.0)

    def test_busy_timeline_levels(self, sim):
        res = Resource(sim, 2)
        log = []
        sim.spawn(hold(sim, res, 1.0, log, "a"))
        sim.spawn(hold(sim, res, 2.0, log, "b"))
        sim.run()
        timeline = res.busy_timeline
        assert timeline.level_at(0.5) == 2
        assert timeline.level_at(1.5) == 1
        assert timeline.level_at(2.5) == 0
