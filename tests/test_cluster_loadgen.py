"""Tests for the templated load generator and the sweep grammar."""

import numpy as np
import pytest

from repro.workloads.loadgen import (
    ExplicitScan,
    LoadSpec,
    NoScan,
    RangeScan,
    Scannable,
    UserClass,
    generate_load,
)


class TestSweepGrammar:
    def test_no_scan_repeats_one_value(self):
        axis = NoScan(7, repetitions=3)
        assert list(axis) == [7, 7, 7]
        assert len(axis) == 3
        assert axis.describe()["kind"] == "no-scan"

    def test_no_scan_rejects_zero_repetitions(self):
        with pytest.raises(ValueError):
            NoScan(1, repetitions=0)

    def test_range_scan_spans_inclusive(self):
        axis = RangeScan(0.0, 1.0, 5)
        values = list(axis)
        assert values[0] == 0.0
        assert values[-1] == 1.0
        assert len(values) == len(axis) == 5

    def test_range_scan_single_point(self):
        assert list(RangeScan(2.0, 9.0, 1)) == [2.0]

    def test_explicit_scan_preserves_order(self):
        axis = ExplicitScan((1, 2, 4))
        assert list(axis) == [1, 2, 4]
        assert axis.describe()["sequence"] == [1, 2, 4]

    def test_explicit_scan_rejects_empty(self):
        with pytest.raises(ValueError):
            ExplicitScan(())

    def test_scannable_wraps_and_describes(self):
        axis = Scannable("replicas", ExplicitScan((1, 2)), unit="nodes")
        assert list(axis) == [1, 2]
        description = axis.describe()
        assert description["name"] == "replicas"
        assert description["unit"] == "nodes"

    def test_scannable_rejects_bare_sequences(self):
        with pytest.raises(TypeError):
            Scannable("replicas", (1, 2, 4))


def _spec(**changes) -> LoadSpec:
    base = dict(
        classes=(UserClass(name="u", templates=("Q6", "Q14")),),
        n_users=1000,
        horizon=5.0,
        max_arrivals_per_class=200,
    )
    base.update(changes)
    return LoadSpec(**base)


class TestSpecValidation:
    def test_user_class_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            UserClass(name="")
        with pytest.raises(ValueError):
            UserClass(name="u", share=0.0)
        with pytest.raises(ValueError):
            UserClass(name="u", templates=("NOPE",))
        with pytest.raises(ValueError):
            UserClass(name="u", think_mean=0.0)

    def test_load_spec_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            LoadSpec(classes=())
        with pytest.raises(ValueError):
            _spec(user_zipf=0.5)  # must be 0 or > 1
        with pytest.raises(ValueError):
            LoadSpec(classes=(UserClass(name="a"), UserClass(name="a")))

    def test_class_rate_algebra(self):
        """share=rate with think_mean=n_users/total reproduces the rate."""
        a = UserClass(name="a", share=3.0, think_mean=1000 / 4.0)
        b = UserClass(name="b", share=1.0, think_mean=1000 / 4.0)
        spec = _spec(classes=(a, b), n_users=1000)
        assert spec.class_rate(a) == pytest.approx(3.0)
        assert spec.class_rate(b) == pytest.approx(1.0)

    def test_template_probabilities_zipf_shape(self):
        flat = UserClass(name="u", templates=("Q6", "Q14"), table_zipf=0.0)
        skew = UserClass(name="u", templates=("Q6", "Q14"), table_zipf=2.0)
        assert flat.template_probabilities()[0] == pytest.approx(0.5)
        assert skew.template_probabilities()[0] > 0.7


class TestGenerateLoad:
    def test_deterministic_for_same_seed(self):
        spec = _spec()
        a = generate_load(spec, seed=7)
        b = generate_load(spec, seed=7)
        assert a.n_arrivals == b.n_arrivals
        for plan_a, plan_b in zip(a.classes, b.classes):
            for left, right in zip(plan_a.arrivals, plan_b.arrivals):
                assert left.time == right.time
                assert left.user_id == right.user_id
                assert left.query.name == right.query.name

    def test_seed_changes_the_plan(self):
        spec = _spec()
        a = generate_load(spec, seed=7)
        b = generate_load(spec, seed=8)
        assert [x.time for p in a.classes for x in p.arrivals] != \
               [x.time for p in b.classes for x in p.arrivals]

    def test_arrivals_ordered_and_bounded(self):
        spec = _spec(horizon=3.0, max_arrivals_per_class=50)
        plan = generate_load(spec, seed=1)
        for class_plan in plan.classes:
            times = [a.time for a in class_plan.arrivals]
            assert times == sorted(times)
            assert all(0 < t < spec.horizon for t in times)
            assert class_plan.n_arrivals <= 50

    def test_rate_roughly_honoured(self):
        cls = UserClass(name="u", think_mean=100 / 40.0)  # rate 40/s
        spec = _spec(classes=(cls,), n_users=100, horizon=10.0,
                     max_arrivals_per_class=10_000)
        plan = generate_load(spec, seed=3)
        assert 250 < plan.n_arrivals < 550  # ~400 expected

    def test_user_zipf_concentrates_arrivals(self):
        uniform = generate_load(_spec(n_users=100_000), seed=5)
        skewed = generate_load(
            _spec(n_users=100_000, user_zipf=1.3), seed=5
        )
        assert skewed.distinct_users() < uniform.distinct_users()
        # Skew must send some users multiple queries.
        counts = {}
        for class_plan in skewed.classes:
            for arrival in class_plan.arrivals:
                counts[arrival.user_id] = counts.get(arrival.user_id, 0) + 1
        assert max(counts.values()) > 1

    def test_table_zipf_biases_per_user_templates(self):
        """A heavily skewed user keeps hitting their favourite table."""
        cls = UserClass(
            name="u", templates=("Q6", "Q1", "Q14"), table_zipf=4.0,
            think_mean=10 / 50.0,
        )
        spec = _spec(
            classes=(cls,), n_users=10, horizon=20.0,
            max_arrivals_per_class=500,
        )
        plan = generate_load(spec, seed=11)
        by_user = {}
        for arrival in plan.classes[0].arrivals:
            by_user.setdefault(arrival.user_id, []).append(arrival.table)
        for user_id, tables in by_user.items():
            if len(tables) < 10:
                continue
            top_share = max(tables.count(t) for t in set(tables)) / len(tables)
            assert top_share > 0.5

    def test_arrival_table_matches_query(self):
        plan = generate_load(_spec(), seed=2)
        arrival = plan.classes[0].arrivals[0]
        assert arrival.table == arrival.query.steps[0].table
