"""Steady-state properties of the full mechanism under random workloads.

These run complete concurrent-scan simulations with randomized speed
mixes and check the *dynamic* guarantees the unit tests cannot: drift
stays controlled, throttling respects the fairness cap end to end, and
the system always drains.

Marked ``slow``: the fast CI lane (``-m "not slow"``) skips this module.
"""

import pytest

pytestmark = pytest.mark.slow
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import SharingConfig
from repro.scans.shared_scan import SharedTableScan

from tests.conftest import make_database

# Per-scan CPU cost per page, spanning I/O-bound to heavily CPU-bound.
cpu_costs = st.lists(
    st.floats(min_value=1e-6, max_value=2e-3),
    min_size=2,
    max_size=4,
)


def run_scans(costs, n_pages=96, pool=48, config=None):
    db = make_database(n_pages=n_pages, pool_pages=pool,
                       sharing=config or SharingConfig())
    procs = []
    for cost in costs:
        scan = SharedTableScan(db, "t", 0, n_pages - 1,
                               on_page=lambda p, d, n, c=cost: c)
        procs.append(db.sim.spawn(scan.run()))
    db.sim.run()
    results = []
    for proc in procs:
        if proc.completion.failed:
            raise proc.completion.value
        results.append(proc.completion.value)
    return db, results


class TestSteadyState:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(costs=cpu_costs)
    def test_all_scans_complete(self, costs):
        """No speed mix may deadlock or starve a scan."""
        db, results = run_scans(costs)
        assert all(r.pages_scanned == 96 for r in results)
        assert db.sharing.active_scan_count == 0

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(costs=cpu_costs)
    def test_fairness_cap_holds_dynamically(self, costs):
        """Accumulated throttle time never exceeds the cap fraction of a
        scan's own elapsed time (plus one wait of slack for the final
        inserted wait)."""
        config = SharingConfig()
        _, results = run_scans(costs, config=config)
        for result in results:
            cap = config.slowdown_cap_fraction * result.elapsed
            assert result.throttle_seconds <= cap + config.max_wait_per_update

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(costs=cpu_costs)
    def test_slowest_scan_never_throttled(self, costs):
        """The group's rear scan is by definition never the leader; the
        scan with the heaviest CPU cost must accumulate (almost) no
        throttle time."""
        _, results = run_scans(costs)
        slowest = max(range(len(costs)), key=lambda i: costs[i])
        # Allow a single spurious wait from transient leadership during
        # the initial grouping.
        assert results[slowest].throttle_seconds <= SharingConfig().max_wait_per_update

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(costs=cpu_costs)
    def test_throttling_never_slows_the_workload_down_much(self, costs):
        """End-to-end, the mechanism must stay within a small factor of
        the no-throttling configuration for any speed mix (it exists to
        help, and the fairness cap bounds the harm)."""
        db_full, _ = run_scans(costs, config=SharingConfig())
        db_nothrottle, _ = run_scans(
            costs, config=SharingConfig(throttling_enabled=False)
        )
        assert db_full.sim.now <= 1.5 * db_nothrottle.sim.now
