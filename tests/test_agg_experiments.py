"""Determinism, spill, and rendering coverage for ``ag-*``/``mj-*``.

The budgeted experiments must be byte-identical run-to-run (their
metrics are digest-cached by the runner), must demonstrably spill in
their default scenarios, and must render the spill counters alongside
the paper's headline numbers.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.aggregation import (
    AGG_MIX_QUERIES,
    JOIN_MIX_QUERIES,
    SPILL_KEYS,
    ag_compete,
    ag_mix,
    mj_join,
)
from repro.experiments.harness import ExperimentSettings
from repro.experiments.registry import REGISTRY, metrics_of, render_result
from repro.experiments.runner import metrics_digest, run_suite

#: Small enough for the test lane, sized so the AG18 template's group
#: table genuinely outgrows its frame budget and spills.
SCENARIO = ExperimentSettings(scale=0.1, n_streams=2, seed=7)


class TestAgCompete:
    def test_spills_and_reports_both_modes(self):
        result = ag_compete(SCENARIO)
        metrics = result.metrics()
        assert metrics["base_spill"]["spilled_partitions"] > 0
        assert metrics["shared_spill"]["spilled_partitions"] > 0
        assert metrics["base_spill"]["granted_pages"] > 0
        assert set(metrics["base_spill"]) == set(SPILL_KEYS)
        rendered = render_result(result)
        assert "spill" in rendered and "end-to-end gain" in rendered

    def test_deterministic_across_runs(self):
        first = metrics_digest(metrics_of(ag_compete(SCENARIO)))
        second = metrics_digest(metrics_of(ag_compete(SCENARIO)))
        assert first == second

    def test_strategy_changes_cost_not_registration(self):
        hash_run = ag_compete(SCENARIO)
        sort_run = ag_compete(SCENARIO.with_(agg_strategy="sort"))
        assert hash_run.agg_strategy == "hash"
        assert sort_run.agg_strategy == "sort"
        assert (
            metrics_digest(metrics_of(hash_run))
            != metrics_digest(metrics_of(sort_run))
        ), "agg_strategy must be part of the metrics identity"


class TestAgMix:
    def test_metrics_shaped_for_policy_sweep_table(self):
        result = ag_mix(SCENARIO)
        metrics = result.metrics()
        # The sweep table aggregator keys on these (pl-mix shape).
        for key in ("policy", "makespan", "pages_read", "hit_percent"):
            assert key in metrics
        for key in SPILL_KEYS:
            assert key in metrics
        assert metrics["spilled_partitions"] > 0
        assert "spill [hash]" in render_result(result)

    def test_policy_flows_through(self):
        result = ag_mix(SCENARIO.with_(sharing_policy="cooperative"))
        assert result.policy == "cooperative"
        assert result.metrics()["policy"] == "cooperative"

    def test_custom_query_names_respected(self):
        result = ag_mix(SCENARIO.with_(query_names=("Q6", "AG18")))
        assert result.metrics()["spill_events"] > 0


class TestMjJoin:
    def test_chunks_and_determinism(self):
        result = mj_join(SCENARIO)
        metrics = result.metrics()
        assert metrics["join_chunks"] >= 1
        assert metrics["build_pages_needed"] > 0
        assert "probe passes" in render_result(result)
        repeat = mj_join(SCENARIO)
        assert metrics_digest(metrics) == metrics_digest(metrics_of(repeat))


@pytest.mark.slow
@pytest.mark.parametrize("experiment", ["ag-mix", "mj-join"])
def test_digest_stable_under_jobs(experiment):
    """Serial and multi-process runner executions must be byte-identical."""
    digests = []
    for jobs in (1, 2):
        suite = run_suite(
            SCENARIO, experiments=[experiment], jobs=jobs, use_cache=False
        )
        (task,) = suite.tasks
        digests.append(task.digest)
    assert digests[0] == digests[1], (
        f"{experiment} digest differs between --jobs 1 and --jobs 2"
    )


class TestRegistration:
    def test_budgeted_experiments_registered(self):
        for name in ("ag-compete", "ag-mix", "mj-join"):
            assert name in REGISTRY
            assert "budgeted" in REGISTRY[name].description

    def test_default_mixes_stay_budgeted(self):
        assert any(name.startswith("AG") for name in AGG_MIX_QUERIES)
        assert any(name.startswith("MJ") for name in JOIN_MIX_QUERIES)


class TestCli:
    def test_run_ag_mix_renders_spill_line(self, capsys):
        code = main(["run", "ag-mix", "--scale", "0.1", "--streams", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "spill [hash]" in out

    def test_sweep_agg_strategy_grid(self, capsys, tmp_path):
        out_file = tmp_path / "grid.json"
        code = main([
            "sweep", "ag-mix", "--param", "agg_strategy",
            "--values", "hash,sort", "--scale", "0.1", "--streams", "2",
            "--jobs", "1", "--no-cache", "--cache-dir", str(tmp_path),
            "--out", str(out_file),
        ])
        assert code == 0
        points = json.loads(out_file.read_text())["experiments"]
        strategies = {pt["metrics"]["agg_strategy"] for pt in points}
        assert strategies == {"hash", "sort"}

    def test_cli_rejects_unknown_agg_strategy(self):
        with pytest.raises(SystemExit):
            main(["run", "ag-mix", "--agg-strategy", "bogus"])
