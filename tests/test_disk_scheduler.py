"""Unit tests for the elevator (LOOK) disk scheduler."""

import pytest

from repro.disk.device import Disk
from repro.disk.geometry import DiskGeometry
from repro.sim.events import SimulationError
from repro.sim.kernel import Simulator


@pytest.fixture
def geo():
    return DiskGeometry(total_pages=1000)


def submit_batch(sim, disk, starts, completions):
    def submitter(sim):
        for start in starts:
            ev = disk.read(start, 1)
            ev.add_callback(lambda e: completions.append(e.value.start_page))
        yield sim.timeout(0)

    sim.spawn(submitter(sim))


class TestElevator:
    def test_unknown_scheduler_rejected(self, sim, geo):
        with pytest.raises(SimulationError):
            Disk(sim, geo, scheduler="cfq")

    def test_sweep_serves_in_address_order(self, sim, geo):
        disk = Disk(sim, geo, scheduler="elevator")
        completions = []
        submit_batch(sim, disk, [500, 100, 300, 700], completions)
        sim.run()
        # First request (500) starts service immediately on arrival; the
        # rest are swept upward from there, then downward.
        assert completions == [500, 700, 300, 100]

    def test_fifo_serves_in_arrival_order(self, sim, geo):
        disk = Disk(sim, geo, scheduler="fifo")
        completions = []
        submit_batch(sim, disk, [500, 100, 300, 700], completions)
        sim.run()
        assert completions == [500, 100, 300, 700]

    def test_elevator_reverses_at_extremes(self, sim, geo):
        disk = Disk(sim, geo, scheduler="elevator")
        completions = []
        submit_batch(sim, disk, [900, 100, 950, 50], completions)
        sim.run()
        assert completions == [900, 950, 100, 50]

    def test_elevator_reduces_seek_time_for_scattered_load(self, sim, geo):
        """Same requests, same seek count, but shorter total seek travel."""
        import random

        starts = list(range(0, 1000, 37))
        random.Random(7).shuffle(starts)

        def run(scheduler):
            local_sim = Simulator()
            disk = Disk(local_sim, geo, scheduler=scheduler)

            def submitter(sim):
                for start in starts:
                    disk.read(start, 1)
                yield sim.timeout(0)

            local_sim.spawn(submitter(local_sim))
            local_sim.run()
            return disk.stats.seek_time

        assert run("elevator") < run("fifo")

    def test_all_requests_complete(self, sim, geo):
        disk = Disk(sim, geo, scheduler="elevator")
        completions = []
        submit_batch(sim, disk, [10, 900, 500, 20, 800, 450], completions)
        sim.run()
        assert sorted(completions) == [10, 20, 450, 500, 800, 900]
        assert disk.stats.reads == 6
