"""Unit tests for the elevator (LOOK) disk scheduler."""

import pytest

from repro.disk.device import Disk
from repro.disk.geometry import DiskGeometry
from repro.sim.events import SimulationError
from repro.sim.kernel import Simulator


@pytest.fixture
def geo():
    return DiskGeometry(total_pages=1000)


def submit_batch(sim, disk, starts, completions):
    def submitter(sim):
        for start in starts:
            ev = disk.read(start, 1)
            ev.add_callback(lambda e: completions.append(e.value.start_page))
        yield sim.timeout(0)

    sim.spawn(submitter(sim))


class TestElevator:
    def test_unknown_scheduler_rejected(self, sim, geo):
        with pytest.raises(SimulationError):
            Disk(sim, geo, scheduler="cfq")

    def test_sweep_serves_in_address_order(self, sim, geo):
        disk = Disk(sim, geo, scheduler="elevator")
        completions = []
        submit_batch(sim, disk, [500, 100, 300, 700], completions)
        sim.run()
        # First request (500) starts service immediately on arrival; the
        # rest are swept upward from there, then downward.
        assert completions == [500, 700, 300, 100]

    def test_fifo_serves_in_arrival_order(self, sim, geo):
        disk = Disk(sim, geo, scheduler="fifo")
        completions = []
        submit_batch(sim, disk, [500, 100, 300, 700], completions)
        sim.run()
        assert completions == [500, 100, 300, 700]

    def test_elevator_reverses_at_extremes(self, sim, geo):
        disk = Disk(sim, geo, scheduler="elevator")
        completions = []
        submit_batch(sim, disk, [900, 100, 950, 50], completions)
        sim.run()
        assert completions == [900, 950, 100, 50]

    def test_elevator_reduces_seek_time_for_scattered_load(self, sim, geo):
        """Same requests, same seek count, but shorter total seek travel."""
        import random

        starts = list(range(0, 1000, 37))
        random.Random(7).shuffle(starts)

        def run(scheduler):
            local_sim = Simulator()
            disk = Disk(local_sim, geo, scheduler=scheduler)

            def submitter(sim):
                for start in starts:
                    disk.read(start, 1)
                yield sim.timeout(0)

            local_sim.spawn(submitter(local_sim))
            local_sim.run()
            return disk.stats.seek_time

        assert run("elevator") < run("fifo")

    def test_all_requests_complete(self, sim, geo):
        disk = Disk(sim, geo, scheduler="elevator")
        completions = []
        submit_batch(sim, disk, [10, 900, 500, 20, 800, 450], completions)
        sim.run()
        assert sorted(completions) == [10, 20, 450, 500, 800, 900]
        assert disk.stats.reads == 6


class TestElevatorAging:
    """The LOOK policy's starvation bound: a far request is force-served
    once it has waited through ``aging_limit`` dispatches."""

    def submit_starvation_load(self, sim, disk, completions):
        # One far request drowned by a batch of near ones: the nearest-
        # in-direction policy would serve every near request first.
        def submitter(sim):
            disk.read(10, 1).add_callback(
                lambda e: completions.append(e.value.start_page)
            )
            far = disk.read(900, 1)
            far.add_callback(lambda e: completions.append(e.value.start_page))
            for start in range(11, 41):
                ev = disk.read(start, 1)
                ev.add_callback(lambda e: completions.append(e.value.start_page))
            yield sim.timeout(0)

        sim.spawn(submitter(sim))

    def test_aging_bounds_starvation(self, sim, geo):
        disk = Disk(sim, geo, scheduler="elevator", aging_limit=8)
        completions = []
        self.submit_starvation_load(sim, disk, completions)
        sim.run()
        assert len(completions) == 32
        # Without aging the far request finishes last; the bound forces
        # it through within aging_limit dispatches of its enqueue.
        assert completions.index(900) <= 10
        assert disk.stats.aged_dispatches >= 1

    def test_default_limit_leaves_small_loads_untouched(self, sim, geo):
        disk = Disk(sim, geo, scheduler="elevator")
        assert disk.aging_limit == Disk.DEFAULT_AGING_LIMIT
        completions = []
        self.submit_starvation_load(sim, disk, completions)
        sim.run()
        # 32 requests never age past 512 dispatches: pure LOOK order,
        # far request last.
        assert completions[-1] == 900
        assert disk.stats.aged_dispatches == 0

    def test_fifo_never_ages(self, sim, geo):
        disk = Disk(sim, geo, scheduler="fifo", aging_limit=1)
        completions = []
        self.submit_starvation_load(sim, disk, completions)
        sim.run()
        # FIFO serves in arrival order; the aging path is elevator-only.
        assert completions[1] == 900
        assert disk.stats.aged_dispatches == 0

    def test_bad_aging_limit_rejected(self, sim, geo):
        with pytest.raises(SimulationError):
            Disk(sim, geo, scheduler="elevator", aging_limit=0)

    def test_aged_request_completes_exactly_once(self, sim, geo):
        disk = Disk(sim, geo, scheduler="elevator", aging_limit=4)
        completions = []
        self.submit_starvation_load(sim, disk, completions)
        sim.run()
        assert sorted(completions) == sorted([10, 900] + list(range(11, 41)))
