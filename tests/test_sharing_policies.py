"""Unit tests for the pluggable sharing-policy axis.

Covers the :class:`~repro.core.policy.SharingPolicy` factory, the
``cooperative`` attach/elevator manager, the ``pbm`` scan registry with
its reuse-time-predictive replacement policy, the database wiring of the
axis, and the policy-specific invariant sets — including the scan
abort/end lifecycle edges the rival policies introduce (ghost attach
targets, lingering reuse-time entries).
"""

import math

import pytest

from repro.buffer.page import PageKey, Priority
from repro.buffer.replacement import make_policy
from repro.buffer.replacement.pbm import PbmPolicy
from repro.core.config import SharingConfig
from repro.core.cooperative import CooperativeScanManager
from repro.core.manager import ScanSharingManager
from repro.core.pbm import PbmScanManager
from repro.core.policy import (
    SHARING_POLICY_NAMES,
    SharingPolicy,
    make_sharing_policy,
)
from repro.core.scan_state import ScanDescriptor
from repro.faults.invariants import InvariantChecker, InvariantViolation
from repro.sim.kernel import Simulator
from repro.storage.catalog import Catalog
from repro.storage.schema import ColumnSpec, make_schema
from repro.storage.table import Table
from repro.storage.tablespace import Tablespace

from tests.conftest import make_database


def make_catalog(table_pages=1000, extent=16):
    sim = Simulator()
    catalog = Catalog(Tablespace(10_000))
    schema = make_schema("t", [ColumnSpec("id", "sequence")])
    catalog.create_table(Table(schema, n_pages=table_pages, extent_size=extent))
    return sim, catalog


def make_manager(name, config=None, table_pages=1000, pool=200, extent=16):
    sim, catalog = make_catalog(table_pages, extent)
    manager = make_sharing_policy(
        name, sim, catalog, pool_capacity=pool, config=config or SharingConfig()
    )
    return sim, manager


def full_scan(speed=100.0, table_pages=1000):
    return ScanDescriptor("t", 0, table_pages - 1, estimated_speed=speed)


class TestFactory:
    def test_every_registered_name_constructs(self):
        for name in SHARING_POLICY_NAMES:
            _, manager = make_manager(name)
            assert isinstance(manager, SharingPolicy)
            assert manager.policy_name == name

    def test_unknown_name_rejected(self):
        sim, catalog = make_catalog()
        with pytest.raises(ValueError, match="unknown sharing policy"):
            make_sharing_policy("elevator", sim, catalog, 200)

    def test_factory_types(self):
        assert isinstance(make_manager("grouping-throttling")[1],
                          ScanSharingManager)
        assert isinstance(make_manager("cooperative")[1],
                          CooperativeScanManager)
        assert isinstance(make_manager("pbm")[1], PbmScanManager)


class TestCooperative:
    def test_first_scan_starts_at_range_start(self):
        _, manager = make_manager("cooperative")
        state = manager.start_scan(full_scan())
        assert state.start_page == 0
        assert manager.attach_target(state.scan_id) is None

    def test_attaches_at_ongoing_scan_position(self):
        _, manager = make_manager("cooperative")
        first = manager.start_scan(full_scan())
        manager.update_location(first.scan_id, 200)
        second = manager.start_scan(full_scan())
        assert second.start_page == 192  # extent-aligned at first's position
        assert manager.attach_target(second.scan_id) == first.scan_id
        assert manager.stats.scans_joined_ongoing == 1

    def test_attaches_even_below_sharing_threshold(self):
        """No min_share_pages gate: cooperative always attaches."""
        _, manager = make_manager("cooperative")
        first = manager.start_scan(full_scan(speed=100.0))
        manager.update_location(first.scan_id, 992)  # 8 pages left
        second = manager.start_scan(full_scan(speed=100.0))
        assert manager.attach_target(second.scan_id) == first.scan_id

    def test_attaches_to_hottest_convoy(self):
        """The attach target is in the densest cluster of scans."""
        _, manager = make_manager("cooperative")
        s0 = manager.start_scan(full_scan())
        manager.update_location(s0.scan_id, 400)      # s0 at 400
        s1 = manager.start_scan(full_scan())          # attaches at 400
        manager.update_location(s1.scan_id, 400)      # s1 moves to 800
        s2 = manager.start_scan(full_scan())          # rejoins s0 at 400
        assert s2.start_page == 400
        # Positions now: s0 and s2 at 400 (density 2), s1 alone at 800.
        s3 = manager.start_scan(full_scan())
        assert manager.attach_target(s3.scan_id) == s0.scan_id
        assert s3.start_page == 400

    def test_never_throttles(self):
        sim, manager = make_manager("cooperative")
        first = manager.start_scan(full_scan(speed=1000.0))
        manager.start_scan(full_scan(speed=1.0))
        sim._now = 0.5
        assert manager.update_location(first.scan_id, 500) == 0.0
        assert manager.stats.throttle_waits == 0

    def test_priority_always_normal(self):
        _, manager = make_manager("cooperative")
        scans = [manager.start_scan(full_scan()) for _ in range(3)]
        for state in scans:
            assert manager.page_priority(state.scan_id) is Priority.NORMAL

    def test_disabled_config_disables_attach(self):
        _, manager = make_manager(
            "cooperative", config=SharingConfig(enabled=False)
        )
        first = manager.start_scan(full_scan())
        manager.update_location(first.scan_id, 200)
        second = manager.start_scan(full_scan())
        assert second.start_page == 0
        assert manager.attach_target(second.scan_id) is None

    def test_end_scan_drops_attach_edges(self):
        _, manager = make_manager("cooperative")
        first = manager.start_scan(full_scan())
        manager.update_location(first.scan_id, 100)
        second = manager.start_scan(full_scan())
        assert manager.attach_target(second.scan_id) == first.scan_id
        manager.end_scan(first.scan_id)
        assert manager.attach_target(second.scan_id) is None
        assert manager.attach_edges() == {}

    def test_abort_leaves_no_ghost_attach_target(self):
        """After abort_scan nobody may attach to — or stay attached to —
        the dead scan (satellite: ghost attach targets)."""
        _, manager = make_manager("cooperative")
        victim = manager.start_scan(full_scan())
        manager.update_location(victim.scan_id, 320)
        follower = manager.start_scan(full_scan())
        assert manager.attach_target(follower.scan_id) == victim.scan_id
        manager.abort_scan(victim.scan_id)
        assert manager.attach_target(follower.scan_id) is None
        assert manager.stats.scans_aborted == 1
        # A newcomer must not be placed at the ghost's id...
        newcomer = manager.start_scan(full_scan())
        assert manager.attach_target(newcomer.scan_id) != victim.scan_id
        # ...and every surviving edge references live scans only.
        live = {s.scan_id for s in manager.active_scans()}
        for follower_id, target_id in manager.attach_edges().items():
            assert follower_id in live and target_id in live

    def test_group_of_is_none(self):
        _, manager = make_manager("cooperative")
        state = manager.start_scan(full_scan())
        assert manager.group_of(state.scan_id) is None


class TestPbmManager:
    def test_never_moves_start_position(self):
        _, manager = make_manager("pbm")
        first = manager.start_scan(full_scan())
        manager.update_location(first.scan_id, 300)
        second = manager.start_scan(full_scan())
        assert second.start_page == 0
        assert manager.stats.scans_joined_ongoing == 0

    def test_never_throttles_and_priority_normal(self):
        _, manager = make_manager("pbm")
        state = manager.start_scan(full_scan())
        assert manager.update_location(state.scan_id, 100) == 0.0
        assert manager.page_priority(state.scan_id) is Priority.NORMAL

    def test_reuse_time_tracks_scan_position(self):
        sim, manager = make_manager("pbm")
        state = manager.start_scan(full_scan(speed=100.0))
        space = manager.catalog.table("t").space_id
        # Ahead of the scan: distance / speed.
        assert manager.next_consumption_distance(PageKey(space, 50)) == 50
        assert manager.next_consumption_time(PageKey(space, 50)) == pytest.approx(0.5)
        sim._now = 1.0
        manager.update_location(state.scan_id, 100)
        assert manager.next_consumption_distance(PageKey(space, 50)) is None
        assert manager.next_consumption_time(PageKey(space, 50)) == math.inf

    def test_reuse_time_is_min_over_scans(self):
        sim, manager = make_manager("pbm")
        slow = manager.start_scan(full_scan(speed=10.0))
        fast = manager.start_scan(full_scan(speed=100.0))
        sim._now = 1.0
        manager.update_location(slow.scan_id, 10)
        manager.update_location(fast.scan_id, 100)
        space = manager.catalog.table("t").space_id
        # Page 200: fast scan arrives in (200-100)/100 = 1s; slow in 19s.
        assert manager.next_consumption_time(PageKey(space, 200)) == pytest.approx(
            1.0, rel=0.2
        )

    def test_page_behind_scan_never_reused_before_finish(self):
        """A page already passed predicts reuse only via the wrap that
        will not happen (distance >= remaining)."""
        sim, manager = make_manager("pbm")
        state = manager.start_scan(full_scan())
        sim._now = 1.0
        manager.update_location(state.scan_id, 500)
        space = manager.catalog.table("t").space_id
        assert manager.next_consumption_distance(PageKey(space, 100)) is None

    def test_end_scan_drops_reuse_entries(self):
        """PBM reuse-time map drops entries on end_scan (satellite)."""
        _, manager = make_manager("pbm")
        state = manager.start_scan(full_scan())
        space = manager.catalog.table("t").space_id
        assert state.scan_id in manager.reuse_sources()[space]
        manager.end_scan(state.scan_id)
        assert manager.reuse_sources() == {}
        assert manager.next_consumption_time(PageKey(space, 10)) == math.inf

    def test_abort_scan_drops_reuse_entries(self):
        _, manager = make_manager("pbm")
        keep = manager.start_scan(full_scan())
        victim = manager.start_scan(full_scan())
        manager.abort_scan(victim.scan_id)
        space = manager.catalog.table("t").space_id
        assert set(manager.reuse_sources()[space]) == {keep.scan_id}


class TestPbmPolicy:
    def test_registry_constructs_pbm(self):
        policy = make_policy("pbm", 64)
        assert isinstance(policy, PbmPolicy)
        assert not policy.bound

    def test_unbound_degrades_to_lru(self):
        policy = PbmPolicy()
        keys = [PageKey(0, n) for n in range(4)]
        for key in keys:
            policy.on_admit(key)
        policy.on_hit(keys[0])
        assert policy.choose_victim(lambda k: True) == keys[1]

    def test_bound_evicts_longest_time_to_reuse(self):
        _, manager = make_manager("pbm")
        state = manager.start_scan(full_scan(speed=100.0))
        manager.update_location(state.scan_id, 100)
        space = manager.catalog.table("t").space_id
        policy = PbmPolicy()
        policy.bind(manager)
        near = PageKey(space, 110)    # 10 pages ahead: reused soon
        far = PageKey(space, 900)     # 800 pages ahead: reused late
        passed = PageKey(space, 50)   # behind the scan: never reused
        for key in (near, far, passed):
            policy.on_admit(key)
        assert policy.choose_victim(lambda k: True) == passed
        policy.on_evict(passed)
        assert policy.choose_victim(lambda k: True) == far
        policy.on_evict(far)
        assert policy.choose_victim(lambda k: True) == near

    def test_bound_respects_evictable_predicate(self):
        _, manager = make_manager("pbm")
        manager.start_scan(full_scan())
        space = manager.catalog.table("t").space_id
        policy = PbmPolicy()
        policy.bind(manager)
        pinned = PageKey(space, 999)
        free = PageKey(space, 5)
        policy.on_admit(pinned)
        policy.on_admit(free)
        assert policy.choose_victim(lambda k: k != pinned) == free
        assert policy.choose_victim(lambda k: False) is None

    def test_inf_ties_break_lru(self):
        policy = PbmPolicy()
        _, manager = make_manager("pbm")  # no scans: everything is inf
        policy.bind(manager)
        old = PageKey(0, 1)
        new = PageKey(0, 2)
        policy.on_admit(old)
        policy.on_admit(new)
        policy.on_hit(old)  # old becomes most recent
        assert policy.choose_victim(lambda k: True) == new


class TestDatabaseWiring:
    def test_default_policy_is_grouping_throttling(self):
        db = make_database()
        assert isinstance(db.sharing, ScanSharingManager)
        assert db.sharing.policy_name == "grouping-throttling"

    def test_cooperative_wiring(self):
        db = make_database(sharing_policy="cooperative")
        assert isinstance(db.sharing, CooperativeScanManager)
        assert not isinstance(db.pool.policy, PbmPolicy)

    def test_pbm_wiring_binds_pool_policy(self):
        db = make_database(sharing_policy="pbm")
        assert isinstance(db.sharing, PbmScanManager)
        assert isinstance(db.pool.policy, PbmPolicy)
        assert db.pool.policy.bound

    def test_pbm_base_mode_keeps_configured_policy(self):
        """With sharing disabled, PBM must not touch the pool policy —
        Base runs stay identical across the sharing_policy axis."""
        db = make_database(
            sharing_policy="pbm", sharing=SharingConfig(enabled=False)
        )
        assert not isinstance(db.pool.policy, PbmPolicy)

    def test_unknown_sharing_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown sharing policy"):
            make_database(sharing_policy="elevator")


class TestPolicyInvariants:
    def test_cooperative_clean_state_passes(self):
        _, manager = make_manager("cooperative")
        first = manager.start_scan(full_scan())
        manager.update_location(first.scan_id, 64)
        manager.start_scan(full_scan())
        checker = InvariantChecker(manager)
        checker.run_checks()
        assert checker.checks_run == 1

    def test_cooperative_ghost_edge_detected(self):
        _, manager = make_manager("cooperative")
        first = manager.start_scan(full_scan())
        manager.update_location(first.scan_id, 64)
        second = manager.start_scan(full_scan())
        # Corrupt by hand: point the edge at a scan id that never existed.
        manager._attached_to[second.scan_id] = 999
        with pytest.raises(InvariantViolation, match="ghost attach target"):
            InvariantChecker(manager).run_checks()

    def test_pbm_clean_state_passes(self):
        _, manager = make_manager("pbm")
        manager.start_scan(full_scan())
        checker = InvariantChecker(manager)
        checker.run_checks()
        assert checker.checks_run == 1

    def test_pbm_stale_source_detected(self):
        _, manager = make_manager("pbm")
        state = manager.start_scan(full_scan())
        space = manager.catalog.table("t").space_id
        # Corrupt by hand: keep the entry after deregistration.
        del manager._states[state.scan_id]
        assert state.scan_id in manager._sources[space]
        with pytest.raises(InvariantViolation, match="stale prediction"):
            InvariantChecker(manager).run_checks()

    def test_pbm_missing_source_detected(self):
        _, manager = make_manager("pbm")
        state = manager.start_scan(full_scan())
        manager._sources.clear()
        with pytest.raises(InvariantViolation, match="missing from the"):
            InvariantChecker(manager).run_checks()
        del state

    def test_flat_priority_violation_detected(self):
        _, manager = make_manager("cooperative")
        state = manager.start_scan(full_scan())
        state.is_leader = True
        manager.page_priority = lambda scan_id: Priority.HIGH
        with pytest.raises(InvariantViolation, match="never steers"):
            InvariantChecker(manager).run_checks()


class TestSharedScanUnderRivalPolicies:
    """The scan operator runs unchanged under every policy."""

    @pytest.mark.parametrize("name", SHARING_POLICY_NAMES)
    def test_two_overlapping_scans_complete(self, name):
        from repro.scans.shared_scan import SharedTableScan

        db = make_database(sharing_policy=name)
        results = []

        def spawn(delay):
            def process():
                yield db.sim.timeout(delay)
                scan = SharedTableScan(
                    db, "t", 0, 127, on_page=lambda p, d, n: 1e-6
                )
                result = yield from scan.run()
                results.append(result)
            db.sim.spawn(process())

        spawn(0.0)
        spawn(0.05)
        db.run()
        assert len(results) == 2
        assert all(r.pages_scanned == 128 for r in results)
        assert db.sharing.active_scan_count == 0
