"""Unit tests for the simulator event loop."""

import pytest

from repro.sim.events import SimulationError
from repro.sim.kernel import Simulator


class TestClock:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_advances_with_events(self, sim):
        sim.schedule(2.5, lambda: None)
        sim.run()
        assert sim.now == 2.5

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-0.1)

    def test_run_until_stops_clock(self, sim):
        fired = []
        sim.schedule(10.0, lambda: fired.append(True))
        sim.run(until=5.0)
        assert sim.now == 5.0
        assert not fired
        sim.run()
        assert fired

    def test_run_until_past_last_event_advances_clock(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_empty_run_returns_zero(self, sim):
        assert sim.run() == 0.0


class TestAllOf:
    def test_all_of_collects_values(self, sim):
        def worker(sim):
            events = [sim.timeout(1.0, "a"), sim.timeout(2.0, "b")]
            values = yield sim.all_of(events)
            return values

        proc = sim.spawn(worker(sim))
        sim.run()
        assert proc.completion.value == ["a", "b"]
        assert sim.now == 2.0

    def test_all_of_empty_succeeds_immediately(self, sim):
        combined = sim.all_of([])
        assert combined.triggered
        assert combined.value == []

    def test_all_of_fails_on_first_failure(self, sim):
        def worker(sim):
            bad = sim.event()
            sim.schedule(1.0, lambda: bad.fail(ValueError("nope")))
            try:
                yield sim.all_of([sim.timeout(5.0), bad])
            except ValueError:
                return "failed fast"

        proc = sim.spawn(worker(sim))
        sim.run()
        assert proc.completion.value == "failed fast"


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def trace_run():
            sim = Simulator()
            log = []

            def worker(sim, name, delays):
                for delay in delays:
                    yield sim.timeout(delay)
                    log.append((sim.now, name))

            sim.spawn(worker(sim, "a", [0.5, 0.5, 1.0]))
            sim.spawn(worker(sim, "b", [1.0, 0.5, 0.5]))
            sim.spawn(worker(sim, "c", [0.7, 0.7]))
            sim.run()
            return log

        assert trace_run() == trace_run()
