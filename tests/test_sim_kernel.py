"""Unit tests for the simulator event loop."""

import pytest

from repro.sim.events import SimulationError, Timeout
from repro.sim.kernel import Simulator


class TestClock:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_advances_with_events(self, sim):
        sim.schedule(2.5, lambda: None)
        sim.run()
        assert sim.now == 2.5

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-0.1)

    def test_run_until_stops_clock(self, sim):
        fired = []
        sim.schedule(10.0, lambda: fired.append(True))
        sim.run(until=5.0)
        assert sim.now == 5.0
        assert not fired
        sim.run()
        assert fired

    def test_run_until_past_last_event_advances_clock(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_empty_run_returns_zero(self, sim):
        assert sim.run() == 0.0


class TestUntilSemantics:
    """The single-pop dispatch must not change any ``until`` behavior."""

    def test_event_beyond_until_survives_and_fires_later(self, sim):
        fired = []
        sim.schedule(3.0, lambda: fired.append("early"))
        sim.schedule(10.0, lambda: fired.append("late"))
        sim.run(until=5.0)
        assert sim.now == 5.0
        assert fired == ["early"]
        sim.run()
        assert sim.now == 10.0
        assert fired == ["early", "late"]

    def test_requeued_entry_keeps_same_instant_insertion_order(self, sim):
        """Ties at the same time fire in insertion order even when the
        first run stopped short and re-pushed the popped entry."""
        fired = []
        for tag in ("a", "b", "c"):
            sim.schedule(7.0, lambda tag=tag: fired.append(tag))
        sim.run(until=2.0)
        assert fired == []
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_until_exactly_at_event_time_fires_the_event(self, sim):
        fired = []
        sim.schedule(5.0, lambda: fired.append(True))
        sim.run(until=5.0)
        assert fired == [True]
        assert sim.now == 5.0

    def test_repeated_bounded_runs_drain_in_order(self, sim):
        fired = []
        for t in (1.0, 2.0, 3.0, 4.0):
            sim.schedule(t, lambda t=t: fired.append(t))
        for bound in (1.5, 2.5, 3.5, 4.5):
            sim.run(until=bound)
            assert sim.now == bound
        assert fired == [1.0, 2.0, 3.0, 4.0]

    def test_callbacks_scheduled_during_bounded_run_respect_bound(self, sim):
        fired = []

        def chain():
            fired.append(sim.now)
            sim.schedule(2.0, chain)

        sim.schedule(0.0, chain)
        sim.run(until=5.0)
        assert fired == [0.0, 2.0, 4.0]
        assert sim.now == 5.0


class TestTimeout:
    def test_timeout_event_is_lambda_free(self, sim):
        ev = sim.timeout(1.0, "payload")
        assert isinstance(ev, Timeout)
        # The queue holds the event itself as its own callback.
        assert sim._queue._heap[0][2] is ev

    def test_timeout_delivers_value(self, sim):
        def worker(sim):
            value = yield sim.timeout(2.0, "tick")
            return value

        proc = sim.spawn(worker(sim))
        sim.run()
        assert proc.completion.value == "tick"
        assert sim.now == 2.0


class TestAllOf:
    def test_all_of_collects_values(self, sim):
        def worker(sim):
            events = [sim.timeout(1.0, "a"), sim.timeout(2.0, "b")]
            values = yield sim.all_of(events)
            return values

        proc = sim.spawn(worker(sim))
        sim.run()
        assert proc.completion.value == ["a", "b"]
        assert sim.now == 2.0

    def test_all_of_empty_succeeds_immediately(self, sim):
        combined = sim.all_of([])
        assert combined.triggered
        assert combined.value == []

    def test_all_of_fails_on_first_failure(self, sim):
        def worker(sim):
            bad = sim.event()
            sim.schedule(1.0, lambda: bad.fail(ValueError("nope")))
            try:
                yield sim.all_of([sim.timeout(5.0), bad])
            except ValueError:
                return "failed fast"

        proc = sim.spawn(worker(sim))
        sim.run()
        assert proc.completion.value == "failed fast"

    def test_all_of_detaches_from_pending_events_after_failure(self, sim):
        """After the combined event fails, the still-pending constituents
        must no longer carry the aggregation callback (regression: the
        dead callback used to linger and fire on each later trigger)."""
        bad = sim.event()
        pending = [sim.event(), sim.event()]
        combined = sim.all_of([bad] + pending)
        assert all(len(ev._callbacks) == 1 for ev in pending)
        bad.fail(ValueError("boom"))
        sim.run()
        assert combined.failed
        assert all(ev._callbacks == [] for ev in pending)
        # Late triggers of the survivors are now inert.
        for ev in pending:
            ev.succeed("late")
        sim.run()
        assert combined.failed
        assert isinstance(combined.value, ValueError)


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def trace_run():
            sim = Simulator()
            log = []

            def worker(sim, name, delays):
                for delay in delays:
                    yield sim.timeout(delay)
                    log.append((sim.now, name))

            sim.spawn(worker(sim, "a", [0.5, 0.5, 1.0]))
            sim.spawn(worker(sim, "b", [1.0, 0.5, 0.5]))
            sim.spawn(worker(sim, "c", [0.7, 0.7]))
            sim.run()
            return log

        assert trace_run() == trace_run()


class TestNonFiniteDelays:
    """NaN/inf delays must raise immediately instead of corrupting the
    queue: ``delay < 0`` is False for NaN, so the old guard let a
    NaN-timed entry poison the heap ordering silently."""

    @pytest.mark.parametrize("delay", [float("nan"), float("inf"), -1.0, -0.001])
    def test_schedule_rejects_bad_delay(self, sim, delay):
        with pytest.raises(SimulationError):
            sim.schedule(delay, lambda: None)

    @pytest.mark.parametrize("delay", [float("nan"), float("inf"), -1.0])
    def test_timeout_rejects_bad_delay(self, sim, delay):
        with pytest.raises(SimulationError):
            sim.timeout(delay)

    @pytest.mark.parametrize("delay", [float("nan"), float("inf"), -1.0])
    def test_schedule_many_rejects_bad_delay(self, sim, delay):
        with pytest.raises(SimulationError):
            sim.schedule_many(delay, [lambda: None])

    def test_queue_stays_usable_after_rejected_delay(self, sim):
        seen = []
        sim.schedule(1.0, lambda: seen.append(sim.now))
        with pytest.raises(SimulationError):
            sim.schedule(float("nan"), lambda: seen.append("poison"))
        sim.run()
        assert seen == [1.0]


class TestScheduleMany:
    def test_runs_in_order_interleaved_with_singles(self, sim):
        seen = []
        sim.schedule(0.0, lambda: seen.append("a"))
        sim.schedule_many(0.0, [lambda: seen.append("b"), lambda: seen.append("c")])
        sim.schedule(0.0, lambda: seen.append("d"))
        sim.run()
        assert seen == ["a", "b", "c", "d"]

    def test_future_batch_keeps_order(self, sim):
        seen = []
        sim.schedule_many(2.0, [lambda i=i: seen.append(i) for i in range(4)])
        sim.schedule(1.0, lambda: seen.append("early"))
        sim.run()
        assert seen == ["early", 0, 1, 2, 3]
        assert sim.now == 2.0


class TestDispatchSampling:
    def _dispatch_times(self, sample):
        from repro.trace.events import SimDispatch
        from repro.trace.tracer import Tracer, set_tracer

        class ListSink:
            def __init__(self):
                self.events = []

            def write(self, event):
                self.events.append(event)

        sink = ListSink()
        previous = set_tracer(Tracer([sink]))
        try:
            sim = Simulator(trace_dispatch_sample=sample)
            for i in range(1, 7):
                sim.schedule(float(i), lambda: None)
            sim.run()
        finally:
            set_tracer(previous)
        return [e for e in sink.events if isinstance(e, SimDispatch)]

    def test_sample_one_traces_every_dispatch(self):
        assert len(self._dispatch_times(1)) == 6

    def test_sample_zero_disables_dispatch_tracing(self):
        assert self._dispatch_times(0) == []

    def test_sample_n_traces_every_nth(self):
        assert len(self._dispatch_times(3)) == 2

    def test_negative_sample_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(trace_dispatch_sample=-1)
