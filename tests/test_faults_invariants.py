"""Tests for the invariant checker — and chaos-mode determinism.

The checker unit tests corrupt manager state by hand (bypassing the
public API, which never produces these states) and assert each
violation class is detectable.  The property tests then run real
workloads under randomized fault schedules and assert the *real* code
never trips the checker.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import SharingConfig
from repro.core.manager import ScanSharingManager
from repro.core.scan_state import ScanDescriptor
from repro.faults.invariants import InvariantChecker, InvariantViolation
from repro.faults.plan import FaultPlan
from repro.scans.shared_scan import SharedTableScan
from repro.sim.kernel import Simulator
from repro.storage.catalog import Catalog
from repro.storage.schema import ColumnSpec, make_schema
from repro.storage.table import Table
from repro.storage.tablespace import Tablespace

from tests.conftest import make_database


def cheap(page_no, data, n_rows):
    return 1e-6


def make_manager(config=None, table_pages=1000, pool=200, extent=16):
    sim = Simulator()
    catalog = Catalog(Tablespace(10_000))
    schema = make_schema("t", [ColumnSpec("id", "sequence")])
    catalog.create_table(Table(schema, n_pages=table_pages, extent_size=extent))
    manager = ScanSharingManager(
        sim, catalog, pool_capacity=pool, config=config or SharingConfig()
    )
    return sim, manager


def grouped_manager(n_scans=3):
    """A manager with one multi-member group spread along the arc."""
    _, manager = make_manager()
    states = [
        manager.start_scan(ScanDescriptor("t", 0, 999, estimated_speed=100.0))
        for _ in range(n_scans)
    ]
    for progress, state in zip((16, 48, 96), states):
        manager.update_location(state.scan_id, progress)
    return manager, states


class TestCheckerDetectsCorruption:
    def test_clean_state_passes_strict(self):
        manager, _ = grouped_manager()
        checker = InvariantChecker(manager)
        checker.run_checks(strict_order=True)
        assert checker.checks_run == 1

    def test_dead_member_left_in_group(self):
        manager, states = grouped_manager()
        del manager._states[states[1].scan_id]  # vanish without abort_scan
        with pytest.raises(InvariantViolation, match="not a registered scan"):
            InvariantChecker(manager).run_checks()

    def test_finished_member_left_in_group(self):
        manager, states = grouped_manager()
        states[1].finished = True
        with pytest.raises(InvariantViolation, match="finished"):
            InvariantChecker(manager).run_checks()

    def test_group_id_stamp_mismatch(self):
        manager, states = grouped_manager()
        grouped = next(s for s in states if s.group_id is not None)
        grouped.group_id = (grouped.group_id or 0) + 71
        with pytest.raises(InvariantViolation):
            InvariantChecker(manager).run_checks()

    def test_leader_flag_position_mismatch(self):
        manager, states = grouped_manager()
        group = manager.group_of(states[0].scan_id)
        assert group is not None and group.size > 1
        group.trailer.is_leader = True
        with pytest.raises(InvariantViolation, match="is_leader"):
            InvariantChecker(manager).run_checks()

    def test_ungrouped_scan_with_stale_flags(self):
        _, manager = make_manager(config=SharingConfig(grouping_enabled=False))
        state = manager.start_scan(ScanDescriptor("t", 0, 999, estimated_speed=100.0))
        state.is_leader = True
        with pytest.raises(InvariantViolation, match="ungrouped"):
            InvariantChecker(manager).run_checks()

    def test_dead_anchor_detected(self):
        manager, states = grouped_manager()
        group = manager.group_of(states[0].scan_id)
        anchor = group.trailer
        # The group keeps the old state object while the registry no
        # longer knows it: the ghost anchor a leader would wait on.  The
        # group check also objects; the anchor check must stand on its
        # own (it is what names the deadlock).
        del manager._states[anchor.scan_id]
        with pytest.raises(InvariantViolation, match="wait forever"):
            InvariantChecker(manager)._check_anchors()

    def test_priority_flag_drift_detected(self):
        manager, states = grouped_manager()
        group = manager.group_of(states[0].scan_id)
        trailer = group.trailer
        trailer.is_trailer = False
        trailer.is_leader = True  # stale flags: releases HIGH, role says LOW
        with pytest.raises(InvariantViolation, match="priority"):
            InvariantChecker(manager)._check_priorities()

    def test_arc_order_violation_detected_in_strict_mode(self):
        manager, states = grouped_manager()
        group = manager.group_of(states[0].scan_id)
        # Drift members out of arc order without regrouping: consecutive
        # forward hops now wrap the circle more than the trailer→leader
        # span does.
        group.members[0].pages_scanned = 200
        group.members[1].pages_scanned = 100
        checker = InvariantChecker(manager)
        checker.run_checks(strict_order=False)  # lax mode tolerates drift
        with pytest.raises(InvariantViolation, match="arc-ordered"):
            checker.run_checks(strict_order=True)

    def test_accounting_identity_breakage_detected(self):
        db = make_database(n_pages=64)
        scan = SharedTableScan(db, "t", 0, 63, on_page=cheap)
        proc = db.sim.spawn(scan.run())
        db.sim.run()
        assert not proc.completion.failed
        checker = InvariantChecker(db.sharing, db.pool)
        checker.run_checks()
        db.pool.stats.logical_reads += 1
        with pytest.raises(InvariantViolation, match="accounting identity"):
            checker.run_checks()

    def test_violation_is_assertion_error(self):
        manager, states = grouped_manager()
        states[0].finished = True
        with pytest.raises(AssertionError):
            InvariantChecker(manager).run_checks()


def run_chaos_workload(fault_spec, seed, n_scans, n_pages=128):
    """Run ``n_scans`` shared scans under a fault plan; the injector's
    invariant hook fires on every regroup, so any structural corruption
    raises out of the scan processes."""
    db = make_database(
        n_pages=n_pages,
        fault_plan=FaultPlan.from_spec(fault_spec, seed=seed),
    )
    scans = [
        SharedTableScan(db, "t", 0, n_pages - 1, on_page=cheap)
        for _ in range(n_scans)
    ]
    procs = [db.sim.spawn(scan.run()) for scan in scans]
    db.sim.run()
    for proc in procs:
        if proc.completion.failed:
            raise proc.completion.value
    db.faults.check_invariants()  # one final full pass
    assert db.faults.checker.checks_run > 0
    return db


@pytest.mark.slow
class TestChaosProperties:
    """Random fault schedules over random workloads: invariants hold."""

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        at=st.floats(min_value=0.0, max_value=1.0),
        count=st.integers(min_value=1, max_value=4),
        target=st.sampled_from(["any", "leader", "trailer", "anchor"]),
        n_scans=st.integers(min_value=1, max_value=4),
    )
    def test_random_kill_schedules_keep_invariants(
        self, seed, at, count, target, n_scans
    ):
        db = run_chaos_workload(
            f"scan-kill:target={target},at={at},count={count}",
            seed=seed, n_scans=n_scans,
        )
        assert db.sharing.active_scan_count == 0

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        rate=st.floats(min_value=0.0, max_value=0.5),
        factor=st.floats(min_value=1.0, max_value=8.0),
        fraction=st.floats(min_value=0.1, max_value=0.9),
        n_scans=st.integers(min_value=1, max_value=3),
    )
    def test_random_degradation_schedules_keep_invariants(
        self, seed, rate, factor, fraction, n_scans
    ):
        db = run_chaos_workload(
            f"disk-error:rate={rate},max_retries=3,backoff=0.001;"
            f"disk-delay:factor={factor};"
            f"pool-pressure:fraction={fraction}",
            seed=seed, n_scans=n_scans, n_pages=96,
        )
        # Nothing aborted here — every scan must have fully finished.
        assert db.sharing.stats.scans_finished == n_scans


@pytest.mark.slow
class TestChaosRunnerDeterminism:
    """Fixed seed + fault spec => identical digests, serial or fanned out."""

    def test_serial_vs_jobs_identical_digests(self):
        from repro.experiments.harness import ExperimentSettings
        from repro.experiments.runner import ExperimentTask, metrics_digest, run_tasks

        chaotic = ExperimentSettings(scale=0.05, n_streams=2, seed=7,
                                     fault_spec="leader-abort")
        tasks = [ExperimentTask("e1", chaotic), ExperimentTask("e2", chaotic)]
        serial = run_tasks(tasks, jobs=1, use_cache=False)
        fanned = run_tasks(tasks, jobs=2, use_cache=False)
        for left, right in zip(serial.tasks, fanned.tasks):
            assert metrics_digest(left.metrics) == metrics_digest(right.metrics)
        assert serial.suite_digest() == fanned.suite_digest()
