"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.trace import get_tracer


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_parses_with_options(self):
        args = build_parser().parse_args(
            ["run", "e4", "--scale", "0.5", "--streams", "3", "--seed", "7"]
        )
        assert args.experiment == "e4"
        assert args.scale == 0.5
        assert args.streams == 3
        assert args.seed == 7

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_all_parses_runner_options(self):
        args = build_parser().parse_args(
            ["run-all", "--jobs", "4", "--no-cache", "--out", "r.json",
             "--only", "e1,e4"]
        )
        assert args.command == "run-all"
        assert args.jobs == 4
        assert args.no_cache
        assert args.out == "r.json"
        assert args.only == "e1,e4"

    def test_sweep_requires_param_and_values(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "e4"])
        args = build_parser().parse_args(
            ["sweep", "e4", "--param", "n_streams", "--values", "2,4"]
        )
        assert args.param == "n_streams"
        assert args.values == "2,4"


class TestRegistry:
    def test_all_core_experiments_registered(self):
        for exp_id in [f"e{i}" for i in range(1, 9)]:
            assert exp_id in EXPERIMENTS
        for exp_id in [f"a{i}" for i in range(1, 8)]:
            assert exp_id in EXPERIMENTS

    def test_descriptions_non_empty(self):
        for exp_id, (description, runner) in EXPERIMENTS.items():
            assert description
            assert callable(runner)


class TestExecution:
    def test_list_prints_all_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in EXPERIMENTS:
            assert exp_id in out

    def test_run_e1_tiny(self, capsys):
        assert main(["run", "e1", "--scale", "0.05", "--streams", "1"]) == 0
        out = capsys.readouterr().out
        assert "overhead" in out
        assert "Base" in out

    def test_trace_e1_tiny(self, capsys, tmp_path):
        out_file = tmp_path / "trace.jsonl"
        assert main(["trace", "e1", "--scale", "0.05", "--streams", "1",
                     "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "traced" in out
        assert "events over simulated" in out
        lines = out_file.read_text().splitlines()
        assert lines
        categories = {json.loads(line)["category"] for line in lines}
        assert {"disk", "buffer", "manager"} <= categories
        # The CLI must uninstall its tracer when the run is over.
        assert not get_tracer().enabled

    def test_trace_parses_ring_option(self):
        args = build_parser().parse_args(["trace", "e2", "--ring", "500"])
        assert args.command == "trace"
        assert args.ring == 500
        assert args.out is None

    def test_trace_bad_ring_is_clean_error(self):
        with pytest.raises(SystemExit, match="--ring must be >= 1"):
            main(["trace", "e1", "--ring", "0"])

    def test_trace_unwritable_out_is_clean_error(self, tmp_path):
        missing_dir = tmp_path / "missing" / "trace.jsonl"
        with pytest.raises(SystemExit, match="cannot open --out"):
            main(["trace", "e1", "--out", str(missing_dir)])

    def test_quickstart_tiny(self, capsys):
        assert main(["quickstart", "--scale", "0.05", "--streams", "2"]) == 0
        out = capsys.readouterr().out
        assert "end-to-end (s)" in out
        assert "pages read" in out


class TestUnknownExperiment:
    """`repro run <bad id>` must fail with one clean line, no traceback."""

    def test_run_unknown_exits_nonzero_with_one_line(self, capsys):
        assert main(["run", "e99"]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        lines = [line for line in captured.err.splitlines() if line]
        assert len(lines) == 1
        assert "unknown experiment 'e99'" in lines[0]
        assert "Traceback" not in captured.err

    def test_trace_unknown_exits_nonzero(self, capsys):
        assert main(["trace", "e99"]) == 2
        assert "unknown experiment 'e99'" in capsys.readouterr().err

    def test_run_all_unknown_only_exits_nonzero(self, capsys):
        assert main(["run-all", "--only", "e1,bogus", "--no-cache"]) == 2
        assert "unknown experiment 'bogus'" in capsys.readouterr().err

    def test_sweep_unknown_experiment_exits_nonzero(self, capsys):
        assert main(["sweep", "e99", "--param", "scale",
                     "--values", "0.1"]) == 2
        assert "unknown experiment 'e99'" in capsys.readouterr().err


class TestRunAll:
    def test_run_all_subset_writes_artifact(self, capsys, tmp_path):
        out_file = tmp_path / "results.json"
        assert main([
            "run-all", "--only", "e1", "--scale", "0.05", "--streams", "1",
            "--cache-dir", str(tmp_path / "cache"), "--out", str(out_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "RUN-ALL" in out
        assert "miss" in out
        artifact = json.loads(out_file.read_text())
        assert artifact["schema"] == "repro-suite-v1"
        assert [entry["experiment"] for entry in artifact["experiments"]] == ["e1"]
        assert artifact["experiments"][0]["cache"] == "miss"
        assert artifact["experiments"][0]["metrics"]["base_makespan"] > 0

    def test_run_all_second_run_hits_cache(self, capsys, tmp_path):
        argv = ["run-all", "--only", "e1", "--scale", "0.05",
                "--streams", "1", "--cache-dir", str(tmp_path / "cache")]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "1 cache hits" in out


class TestSweep:
    def test_sweep_tiny_grid(self, capsys, tmp_path):
        out_file = tmp_path / "sweep.json"
        assert main([
            "sweep", "e1", "--param", "scale", "--values", "0.05",
            "--streams", "1", "--no-cache", "--out", str(out_file),
        ]) == 0
        out = capsys.readouterr().out
        assert "SWEEP E1" in out
        assert "e1[scale=0.05]" in out
        artifact = json.loads(out_file.read_text())
        assert artifact["experiments"][0]["sweep_point"] == "scale=0.05"

    def test_sweep_unknown_param_is_clean_error(self):
        with pytest.raises(SystemExit, match="unknown sweep parameter"):
            main(["sweep", "e1", "--param", "bogus", "--values", "1",
                  "--no-cache"])

    def test_sweep_empty_values_is_clean_error(self):
        with pytest.raises(SystemExit, match="at least one grid point"):
            main(["sweep", "e1", "--param", "scale", "--values", ",",
                  "--no-cache"])


class TestChaosCommand:
    def test_chaos_parses_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.command == "chaos"
        assert args.experiment == "e2"
        assert not args.quick

    def test_chaos_quick_battery_passes(self, capsys):
        assert main(["chaos", "e2", "--quick",
                     "--scale", "0.05", "--streams", "2"]) == 0
        out = capsys.readouterr().out
        assert "invariants OK" in out
        assert "faults injected" in out

    def test_chaos_explicit_fault_spec(self, capsys):
        assert main(["chaos", "e1", "--faults", "scan-kill:target=any,at=0.5",
                     "--scale", "0.05", "--streams", "2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "scan_kill" in out
        assert "metrics digest" in out

    def test_chaos_bad_spec_exits_early(self):
        with pytest.raises(SystemExit):
            main(["chaos", "e1", "--faults", "warp-core-breach"])

    def test_chaos_unknown_experiment(self):
        assert main(["chaos", "e99", "--faults", "leader-abort"]) == 2

    def test_sharing_overrides_parse(self):
        args = build_parser().parse_args(
            ["run", "e1", "--sharing", "update_interval_pages=8,regroup_interval=0.1"]
        )
        assert args.sharing == "update_interval_pages=8,regroup_interval=0.1"

    def test_sharing_overrides_bad_key_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "e1", "--scale", "0.05", "--streams", "1",
                  "--sharing", "warp_factor=9"])

    def test_sharing_overrides_bad_value_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "e1", "--scale", "0.05", "--streams", "1",
                  "--sharing", "update_interval_pages=soon"])

    def test_run_with_sharing_override_works(self):
        assert main(["run", "e1", "--scale", "0.05", "--streams", "1",
                     "--sharing", "update_interval_pages=8"]) == 0


class TestServeSimCommand:
    def test_parses_defaults(self):
        args = build_parser().parse_args(["serve-sim"])
        assert args.command == "serve-sim"
        assert args.scenario == "steady"
        assert not args.quick
        assert not args.assert_bounded
        assert args.horizon is None

    def test_parses_options(self):
        args = build_parser().parse_args(
            ["serve-sim", "overload", "--quick", "--assert-bounded",
             "--horizon", "2.5", "--jobs", "2", "--no-cache"]
        )
        assert args.scenario == "overload"
        assert args.quick and args.assert_bounded
        assert args.horizon == 2.5
        assert args.jobs == 2

    def test_list_prints_scenarios(self, capsys):
        assert main(["serve-sim", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("steady", "overload", "burst", "soak"):
            assert name in out

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["serve-sim", "laundromat"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_bad_horizon_exits_2(self, capsys):
        assert main(["serve-sim", "steady", "--horizon", "0"]) == 2
        assert "--horizon" in capsys.readouterr().err

    def test_steady_quick_runs_and_passes_bounds(self, capsys):
        assert main(["serve-sim", "steady", "--quick", "--no-cache",
                     "--assert-bounded"]) == 0
        out = capsys.readouterr().out
        assert "sv-steady" in out
        assert "scenario steady" in out
        assert "boundedness assertions passed" in out

    def test_bounds_failure_exits_5(self, capsys, monkeypatch):
        import repro.service.metrics as service_metrics

        monkeypatch.setattr(
            service_metrics, "bounded_problems",
            lambda label, metrics: [f"{label}: synthetic violation"],
        )
        assert main(["serve-sim", "steady", "--quick", "--no-cache",
                     "--assert-bounded"]) == 5
        err = capsys.readouterr().err
        assert "UNBOUNDED SERVICE BEHAVIOUR" in err
        assert "synthetic violation" in err

    def test_comma_separated_scenarios(self, capsys, tmp_path):
        out_file = tmp_path / "serve.json"
        assert main(["serve-sim", "steady,burst", "--quick", "--no-cache",
                     "--out", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        labels = {entry["label"] for entry in payload["experiments"]}
        assert labels == {"sv-steady", "sv-burst"}


class TestClusterSimCommand:
    def test_parses_defaults(self):
        args = build_parser().parse_args(["cluster-sim"])
        assert args.command == "cluster-sim"
        assert args.scenario == "steady"
        assert not args.quick
        assert args.replicas is None and args.users is None
        assert args.horizon is None

    def test_parses_options(self):
        args = build_parser().parse_args(
            ["cluster-sim", "scale", "--quick", "--replicas", "4",
             "--users", "50000", "--horizon", "1.5", "--jobs", "2"]
        )
        assert args.scenario == "scale"
        assert args.quick
        assert args.replicas == 4 and args.users == 50000
        assert args.horizon == 1.5 and args.jobs == 2

    def test_list_prints_scenarios(self, capsys):
        assert main(["cluster-sim", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("steady", "skew", "scale"):
            assert name in out

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["cluster-sim", "mainframe"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_bad_replicas_exits_2(self, capsys):
        assert main(["cluster-sim", "steady", "--replicas", "0"]) == 2
        assert "--replicas" in capsys.readouterr().err

    def test_bad_users_exits_2(self, capsys):
        assert main(["cluster-sim", "steady", "--users", "0"]) == 2
        assert "--users" in capsys.readouterr().err

    def test_bad_horizon_exits_2(self, capsys):
        assert main(["cluster-sim", "steady", "--horizon", "-1"]) == 2
        assert "--horizon" in capsys.readouterr().err

    def test_steady_quick_runs(self, capsys, tmp_path):
        out_file = tmp_path / "cluster.json"
        assert main(["cluster-sim", "steady", "--quick", "--no-cache",
                     "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "sv-cluster-steady" in out
        assert "FLEET" in out
        payload = json.loads(out_file.read_text())
        labels = {entry["label"] for entry in payload["experiments"]}
        assert labels == {"sv-cluster-steady"}
