"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.trace import get_tracer


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_parses_with_options(self):
        args = build_parser().parse_args(
            ["run", "e4", "--scale", "0.5", "--streams", "3", "--seed", "7"]
        )
        assert args.experiment == "e4"
        assert args.scale == 0.5
        assert args.streams == 3
        assert args.seed == 7

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "e99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRegistry:
    def test_all_core_experiments_registered(self):
        for exp_id in [f"e{i}" for i in range(1, 9)]:
            assert exp_id in EXPERIMENTS
        for exp_id in [f"a{i}" for i in range(1, 8)]:
            assert exp_id in EXPERIMENTS

    def test_descriptions_non_empty(self):
        for exp_id, (description, runner) in EXPERIMENTS.items():
            assert description
            assert callable(runner)


class TestExecution:
    def test_list_prints_all_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in EXPERIMENTS:
            assert exp_id in out

    def test_run_e1_tiny(self, capsys):
        assert main(["run", "e1", "--scale", "0.05", "--streams", "1"]) == 0
        out = capsys.readouterr().out
        assert "overhead" in out
        assert "Base" in out

    def test_trace_e1_tiny(self, capsys, tmp_path):
        out_file = tmp_path / "trace.jsonl"
        assert main(["trace", "e1", "--scale", "0.05", "--streams", "1",
                     "--out", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "traced" in out
        assert "events over simulated" in out
        lines = out_file.read_text().splitlines()
        assert lines
        categories = {json.loads(line)["category"] for line in lines}
        assert {"disk", "buffer", "manager"} <= categories
        # The CLI must uninstall its tracer when the run is over.
        assert not get_tracer().enabled

    def test_trace_parses_ring_option(self):
        args = build_parser().parse_args(["trace", "e2", "--ring", "500"])
        assert args.command == "trace"
        assert args.ring == 500
        assert args.out is None

    def test_trace_bad_ring_is_clean_error(self):
        with pytest.raises(SystemExit, match="--ring must be >= 1"):
            main(["trace", "e1", "--ring", "0"])

    def test_trace_unwritable_out_is_clean_error(self, tmp_path):
        missing_dir = tmp_path / "missing" / "trace.jsonl"
        with pytest.raises(SystemExit, match="cannot open --out"):
            main(["trace", "e1", "--out", str(missing_dir)])

    def test_quickstart_tiny(self, capsys):
        assert main(["quickstart", "--scale", "0.05", "--streams", "2"]) == 0
        out = capsys.readouterr().out
        assert "end-to-end (s)" in out
        assert "pages read" in out
