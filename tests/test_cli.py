"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_parses_with_options(self):
        args = build_parser().parse_args(
            ["run", "e4", "--scale", "0.5", "--streams", "3", "--seed", "7"]
        )
        assert args.experiment == "e4"
        assert args.scale == 0.5
        assert args.streams == 3
        assert args.seed == 7

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "e99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRegistry:
    def test_all_core_experiments_registered(self):
        for exp_id in [f"e{i}" for i in range(1, 9)]:
            assert exp_id in EXPERIMENTS
        for exp_id in [f"a{i}" for i in range(1, 8)]:
            assert exp_id in EXPERIMENTS

    def test_descriptions_non_empty(self):
        for exp_id, (description, runner) in EXPERIMENTS.items():
            assert description
            assert callable(runner)


class TestExecution:
    def test_list_prints_all_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in EXPERIMENTS:
            assert exp_id in out

    def test_run_e1_tiny(self, capsys):
        assert main(["run", "e1", "--scale", "0.05", "--streams", "1"]) == 0
        out = capsys.readouterr().out
        assert "overhead" in out
        assert "Base" in out

    def test_quickstart_tiny(self, capsys):
        assert main(["quickstart", "--scale", "0.05", "--streams", "2"]) == 0
        out = capsys.readouterr().out
        assert "end-to-end (s)" in out
        assert "pages read" in out
