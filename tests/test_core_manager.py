"""Unit tests for the scan sharing manager lifecycle."""

import pytest

from repro.buffer.page import Priority
from repro.core.config import SharingConfig
from repro.core.manager import ScanSharingManager
from repro.core.scan_state import ScanDescriptor
from repro.sim.kernel import Simulator
from repro.storage.catalog import Catalog
from repro.storage.schema import ColumnSpec, make_schema
from repro.storage.table import Table
from repro.storage.tablespace import Tablespace


def make_manager(config=None, table_pages=1000, pool=200, extent=16):
    sim = Simulator()
    catalog = Catalog(Tablespace(10_000))
    schema = make_schema("t", [ColumnSpec("id", "sequence")])
    catalog.create_table(Table(schema, n_pages=table_pages, extent_size=extent))
    manager = ScanSharingManager(
        sim, catalog, pool_capacity=pool, config=config or SharingConfig()
    )
    return sim, manager


def full_scan_descriptor(speed=100.0, table_pages=1000):
    return ScanDescriptor("t", 0, table_pages - 1, estimated_speed=speed)


class TestLifecycle:
    def test_first_scan_starts_at_range_start(self):
        _, manager = make_manager()
        state = manager.start_scan(full_scan_descriptor())
        assert state.start_page == 0
        assert manager.active_scan_count == 1

    def test_scan_range_validated_against_table(self):
        _, manager = make_manager(table_pages=100)
        with pytest.raises(ValueError):
            manager.start_scan(ScanDescriptor("t", 0, 100, estimated_speed=1.0))

    def test_second_scan_joins_first(self):
        sim, manager = make_manager()
        first = manager.start_scan(full_scan_descriptor())
        manager.update_location(first.scan_id, 200)
        second = manager.start_scan(full_scan_descriptor())
        assert second.start_page == 192  # extent-aligned at first's position
        assert manager.stats.scans_joined_ongoing == 1

    def test_end_scan_removes_state(self):
        _, manager = make_manager()
        state = manager.start_scan(full_scan_descriptor())
        manager.end_scan(state.scan_id)
        assert manager.active_scan_count == 0
        with pytest.raises(KeyError):
            manager.scan_state(state.scan_id)

    def test_end_scan_records_last_read_position(self):
        """A finished full scan's last *read* page is the one before its
        wrapped final position."""
        _, manager = make_manager()
        state = manager.start_scan(full_scan_descriptor())
        manager.update_location(state.scan_id, 1000)
        manager.end_scan(state.scan_id)
        assert manager.last_finished_position("t") == 999

    def test_new_scan_after_all_finished_starts_near_last_position(self):
        """The next scan starts a pool-leftover's worth of pages before the
        finished scan's stopping point, to sweep up resident pages."""
        _, manager = make_manager(pool=200)
        first = manager.start_scan(full_scan_descriptor())
        manager.update_location(first.scan_id, 512)
        manager.end_scan(first.scan_id)
        last_read = manager.last_finished_position("t")
        second = manager.start_scan(full_scan_descriptor())
        assert second.start_page <= last_read
        # Backed off by ~pool/2 pages, then extent-aligned.
        assert second.start_page >= last_read - 200 // 2 - 16
        assert second.start_page > 0

    def test_unknown_scan_id_raises(self):
        _, manager = make_manager()
        with pytest.raises(KeyError):
            manager.update_location(42, 10)


class TestLocationUpdates:
    def test_pages_scanned_monotone(self):
        _, manager = make_manager()
        state = manager.start_scan(full_scan_descriptor())
        manager.update_location(state.scan_id, 100)
        with pytest.raises(ValueError):
            manager.update_location(state.scan_id, 50)

    def test_speed_measured_from_progress(self):
        sim, manager = make_manager(config=SharingConfig(speed_smoothing=1.0))
        state = manager.start_scan(full_scan_descriptor(speed=100.0))
        sim.schedule(2.0, lambda: None)
        sim.run()
        manager.update_location(state.scan_id, 400)
        assert state.speed == pytest.approx(200.0)

    def test_speed_smoothing_blends(self):
        sim, manager = make_manager(config=SharingConfig(speed_smoothing=0.5))
        state = manager.start_scan(full_scan_descriptor(speed=100.0))
        sim.schedule(1.0, lambda: None)
        sim.run()
        manager.update_location(state.scan_id, 300)
        assert state.speed == pytest.approx(0.5 * 300 + 0.5 * 100)

    def test_no_time_elapsed_keeps_speed(self):
        _, manager = make_manager()
        state = manager.start_scan(full_scan_descriptor(speed=100.0))
        manager.update_location(state.scan_id, 10)
        assert state.speed == pytest.approx(100.0)

    def test_same_instant_update_not_double_counted(self):
        """Regression: pages reported in a zero-elapsed-time update used
        to stay in the bookkeeping and be counted again by the next
        sample, doubling the measured speed."""
        sim, manager = make_manager(config=SharingConfig(speed_smoothing=1.0))
        state = manager.start_scan(full_scan_descriptor(speed=100.0))
        sim.schedule(1.0, lambda: None)
        sim.run()
        manager.update_location(state.scan_id, 100)
        manager.update_location(state.scan_id, 200)  # same sim instant
        sim.schedule(1.0, lambda: None)
        sim.run()
        manager.update_location(state.scan_id, 300)
        assert state.speed == pytest.approx(100.0)

    def test_idle_interval_not_counted_into_next_sample(self):
        """Regression: an update reporting no progress used to leave the
        sample window open, diluting the next speed measurement over the
        idle time."""
        sim, manager = make_manager(config=SharingConfig(speed_smoothing=1.0))
        state = manager.start_scan(full_scan_descriptor(speed=100.0))
        sim.schedule(1.0, lambda: None)
        sim.run()
        manager.update_location(state.scan_id, 100)
        sim.schedule(1.0, lambda: None)
        sim.run()
        manager.update_location(state.scan_id, 100)  # stalled, no progress
        sim.schedule(1.0, lambda: None)
        sim.run()
        manager.update_location(state.scan_id, 200)
        assert state.speed == pytest.approx(100.0)


class TestThrottlingThroughManager:
    def test_leader_receives_wait(self):
        sim, manager = make_manager()
        trailer = manager.start_scan(full_scan_descriptor())
        leader = manager.start_scan(full_scan_descriptor())
        # Leader sprints ahead; trailer crawls.
        sim.schedule(1.0, lambda: None)
        sim.run()
        manager.update_location(trailer.scan_id, 10)
        # Advance past the regroup interval so the leader's update sees
        # freshly formed groups reflecting both positions.
        sim.schedule(1.0, lambda: None)
        sim.run()
        # Distance 140 is inside the grouping budget (200) but beyond the
        # throttle threshold (2 extents = 32 pages).
        wait = manager.update_location(leader.scan_id, 150)
        assert wait > 0
        assert manager.stats.throttle_waits == 1
        assert manager.stats.total_throttle_time == pytest.approx(wait)

    def test_leader_keeps_throttling_after_wrap(self):
        """Regression (the paper's scans are circular): a staggered pair
        where the leader wraps past the range end must keep throttling.
        The old linear ``leader.position - trailer.position`` went
        negative after the wrap and never throttled again."""
        sim, manager = make_manager()

        def advance(dt):
            sim.schedule(dt, lambda: None)
            sim.run()

        leader = manager.start_scan(full_scan_descriptor())
        trailer = manager.start_scan(full_scan_descriptor())
        advance(1.0)
        manager.update_location(trailer.scan_id, 900)
        advance(1.0)
        wait_before_wrap = manager.update_location(leader.scan_id, 980)
        assert wait_before_wrap > 0  # distance 80, pre-wrap
        advance(1.0)
        manager.update_location(trailer.scan_id, 950)
        advance(1.0)
        wait_after_wrap = manager.update_location(leader.scan_id, 1050)
        assert leader.position == 50  # wrapped past the range end
        assert leader.is_leader
        assert wait_after_wrap > 0  # circular distance 100, still throttled

    def test_no_wait_when_sharing_disabled(self):
        sim, manager = make_manager(config=SharingConfig(enabled=False))
        a = manager.start_scan(full_scan_descriptor())
        b = manager.start_scan(full_scan_descriptor())
        sim.schedule(1.0, lambda: None)
        sim.run()
        manager.update_location(a.scan_id, 10)
        assert manager.update_location(b.scan_id, 500) == 0.0

    def test_disabled_placement_under_master_switch(self):
        _, manager = make_manager(config=SharingConfig(enabled=False))
        first = manager.start_scan(full_scan_descriptor())
        manager.update_location(first.scan_id, 200)
        second = manager.start_scan(full_scan_descriptor())
        assert second.start_page == 0


class TestPriorityThroughManager:
    def test_leader_high_trailer_low(self):
        sim, manager = make_manager()
        trailer = manager.start_scan(full_scan_descriptor())
        leader = manager.start_scan(full_scan_descriptor())
        sim.schedule(1.0, lambda: None)
        sim.run()
        manager.update_location(trailer.scan_id, 5)
        sim.schedule(1.0, lambda: None)
        sim.run()
        manager.update_location(leader.scan_id, 60)
        assert manager.page_priority(leader.scan_id) is Priority.HIGH
        assert manager.page_priority(trailer.scan_id) is Priority.LOW

    def test_singleton_normal(self):
        _, manager = make_manager()
        state = manager.start_scan(full_scan_descriptor())
        assert manager.page_priority(state.scan_id) is Priority.NORMAL


class TestRegrouping:
    def test_regroup_interval_respected(self):
        sim, manager = make_manager(config=SharingConfig(regroup_interval=10.0))
        state = manager.start_scan(full_scan_descriptor())
        regroups_after_start = manager.stats.regroups
        manager.update_location(state.scan_id, 16)
        manager.update_location(state.scan_id, 32)
        # Updates within the interval must not regroup again.
        assert manager.stats.regroups == regroups_after_start

    def test_start_and_end_force_regroup(self):
        _, manager = make_manager()
        before = manager.stats.regroups
        state = manager.start_scan(full_scan_descriptor())
        assert manager.stats.regroups == before + 1
        manager.end_scan(state.scan_id)
        assert manager.stats.regroups == before + 2

    def test_groups_visible(self):
        _, manager = make_manager()
        manager.start_scan(full_scan_descriptor())
        manager.start_scan(full_scan_descriptor())
        groups = manager.groups()
        assert sum(g.size for g in groups) == 2


class TestLastFinishedStaleness:
    """The last-finished placement hint ages out under eviction pressure
    (regression: late arrivals were placed behind long-cold positions)."""

    def _finish_one_and_churn(self, manager, churn_pages):
        first = manager.start_scan(full_scan_descriptor())
        manager.update_location(first.scan_id, 512)
        manager.end_scan(first.scan_id)
        assert manager.last_finished_position("t") == 511
        churn = manager.start_scan(full_scan_descriptor())
        manager.update_location(churn.scan_id, churn_pages)
        # Aborting leaves no mark of its own, so the churn scan is pure
        # intervening traffic from the hint's point of view.
        manager.abort_scan(churn.scan_id)

    def test_widely_spaced_arrival_ignores_cold_mark(self):
        # Default retention: 64 pool turnovers x 200 frames = 12800 pages.
        _, manager = make_manager(pool=200)
        self._finish_one_and_churn(manager, churn_pages=13_000)
        assert manager.last_finished_position("t") is None
        late = manager.start_scan(full_scan_descriptor())
        assert late.start_page == 0

    def test_closely_spaced_arrival_still_joins(self):
        _, manager = make_manager(pool=200)
        self._finish_one_and_churn(manager, churn_pages=1_000)
        assert manager.last_finished_position("t") == 511
        joined_before = manager.stats.scans_joined_last_finished
        late = manager.start_scan(full_scan_descriptor())
        assert late.start_page > 0
        assert manager.stats.scans_joined_last_finished == joined_before + 1

    def test_retention_wraps_is_configurable(self):
        config = SharingConfig(last_finished_retention_wraps=1.0)
        _, manager = make_manager(config=config, pool=200)
        # One pool turnover (200 pages) of churn is enough to evict now.
        self._finish_one_and_churn(manager, churn_pages=250)
        assert manager.last_finished_position("t") is None

    def test_idle_gap_alone_keeps_mark_warm(self):
        """With zero intervening traffic nothing evicts the leftovers, so
        an arbitrarily late arrival may still sweep them up."""
        sim, manager = make_manager(pool=200)
        first = manager.start_scan(full_scan_descriptor())
        manager.update_location(first.scan_id, 512)
        manager.end_scan(first.scan_id)
        sim._now = 1e6  # a very long quiet gap
        assert manager.last_finished_position("t") == 511
