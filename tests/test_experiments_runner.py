"""Tests for the parallel experiment runner, its cache, and seeding.

The determinism regression test here is the invariant everything else
rests on: the cache may only serve stale-looking results and the pool
may only fan work out because a task's numbers depend on nothing but
(experiment id, sweep point, settings).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.harness import ExperimentSettings
from repro.experiments.runner import (
    ExperimentTask,
    ResultCache,
    cache_key,
    canonical_json,
    code_fingerprint,
    coerce_sweep_value,
    derive_seed,
    execute_task,
    first_divergence,
    metrics_digest,
    run_suite,
    run_sweep,
    run_tasks,
)

TINY = ExperimentSettings(scale=0.05, n_streams=2, seed=7)

_SUBPROCESS_SNIPPET = """\
import json, sys
from repro.experiments.harness import ExperimentSettings
from repro.experiments.runner import ExperimentTask, execute_task

task = ExperimentTask("e1", ExperimentSettings(scale=0.05, n_streams=2, seed=7))
result = execute_task(task)
json.dump(result.metrics, sys.stdout, sort_keys=True)
"""


def _e1_task() -> ExperimentTask:
    return ExperimentTask("e1", TINY)


class TestDeterminism:
    """Same settings => byte-identical metrics, in and across processes."""

    def test_two_in_process_runs_identical(self):
        first = execute_task(_e1_task())
        second = execute_task(_e1_task())
        divergence = first_divergence(first.metrics, second.metrics)
        assert divergence is None, (
            f"E1 diverged between two in-process runs at {divergence}"
        )
        assert first.digest == second.digest

    def test_subprocess_run_identical(self):
        """A spawned interpreter must reproduce the same digest.

        Guards against accidental dependence on PYTHONHASHSEED, process
        state, or import order.  On failure the assertion names the
        first diverging metric field.
        """
        in_process = execute_task(_e1_task())
        src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "random"
        completed = subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_SNIPPET],
            capture_output=True, text=True, env=env, check=True,
        )
        subprocess_metrics = json.loads(completed.stdout)
        divergence = first_divergence(in_process.metrics, subprocess_metrics)
        assert divergence is None, (
            f"E1 diverged between in-process and subprocess runs at "
            f"{divergence}"
        )
        assert metrics_digest(subprocess_metrics) == in_process.digest

    def test_parallel_suite_matches_serial(self):
        serial = run_suite(TINY, experiments=["e1", "e5"], jobs=1,
                           use_cache=False)
        parallel = run_suite(TINY, experiments=["e1", "e5"], jobs=2,
                             use_cache=False)
        assert serial.suite_digest() == parallel.suite_digest()
        for left, right in zip(serial.tasks, parallel.tasks):
            assert first_divergence(left.metrics, right.metrics) is None

    def test_derived_seed_replaces_base_seed(self):
        result = execute_task(_e1_task())
        assert result.seed == derive_seed("e1", "", TINY.seed)
        assert result.seed != TINY.seed


class TestSeedDerivation:
    def test_stable_value(self):
        assert derive_seed("e1", "", 42) == derive_seed("e1", "", 42)

    def test_experiments_decorrelated(self):
        assert derive_seed("e1", "", 42) != derive_seed("e2", "", 42)

    def test_sweep_points_decorrelated(self):
        assert (derive_seed("e4", "scale=0.1", 42)
                != derive_seed("e4", "scale=0.2", 42))

    def test_base_seed_matters(self):
        assert derive_seed("e1", "", 1) != derive_seed("e1", "", 2)

    def test_range(self):
        seed = derive_seed("e9", "n_streams=8", 123)
        assert 0 <= seed < 2 ** 63


class TestResultCache:
    def test_second_run_hits(self, tmp_path):
        first = run_suite(TINY, experiments=["e1"], cache_dir=str(tmp_path))
        second = run_suite(TINY, experiments=["e1"], cache_dir=str(tmp_path))
        assert [task.cache for task in first.tasks] == ["miss"]
        assert [task.cache for task in second.tasks] == ["hit"]
        assert first.suite_digest() == second.suite_digest()
        assert first_divergence(first.tasks[0].metrics,
                                second.tasks[0].metrics) is None

    def test_settings_change_misses(self, tmp_path):
        run_suite(TINY, experiments=["e1"], cache_dir=str(tmp_path))
        bumped = run_suite(TINY.with_(seed=8), experiments=["e1"],
                           cache_dir=str(tmp_path))
        assert [task.cache for task in bumped.tasks] == ["miss"]

    def test_no_cache_skips_store(self, tmp_path):
        suite = run_suite(TINY, experiments=["e1"], use_cache=False,
                          cache_dir=str(tmp_path))
        assert [task.cache for task in suite.tasks] == ["off"]
        assert not list(tmp_path.glob("*.json"))

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        run_suite(TINY, experiments=["e1"], cache_dir=str(tmp_path))
        for entry in tmp_path.glob("*.json"):
            entry.write_text("{not json")
        suite = run_suite(TINY, experiments=["e1"], cache_dir=str(tmp_path))
        assert [task.cache for task in suite.tasks] == ["miss"]

    def test_key_depends_on_code_fingerprint(self):
        key = cache_key("e1", "", TINY)
        assert code_fingerprint() in canonical_json({
            "code": code_fingerprint()
        })
        assert key != cache_key("e1", "", TINY.with_(scale=0.06))
        assert key != cache_key("e2", "", TINY)
        assert key != cache_key("e1", "scale=0.05", TINY)

    def test_cache_roundtrip_preserves_payload(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        result = execute_task(_e1_task())
        cache.put("k", result)
        loaded = cache.get("k")
        assert loaded is not None
        assert loaded.cache == "hit"
        assert loaded.seed == result.seed
        assert loaded.digest == result.digest
        assert loaded.render == result.render
        assert first_divergence(loaded.metrics, result.metrics) is None

    def test_missing_key_is_none(self, tmp_path):
        assert ResultCache(str(tmp_path)).get("absent") is None


class TestSweep:
    def test_sweep_points_labelled_and_decorrelated(self):
        suite = run_sweep("e5", "n_streams", [2, 3], TINY, use_cache=False)
        assert [task.label for task in suite.tasks] == [
            "e5[n_streams=2]", "e5[n_streams=3]"
        ]
        assert suite.tasks[0].seed != suite.tasks[1].seed

    def test_coerce_matches_field_types(self):
        assert coerce_sweep_value(TINY, "n_streams", "4") == 4
        assert coerce_sweep_value(TINY, "scale", "0.5") == 0.5
        assert coerce_sweep_value(TINY, "policy", "lru") == "lru"
        assert coerce_sweep_value(TINY, "pool_pages", "128") == 128

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep parameter"):
            coerce_sweep_value(TINY, "nonsense", "1")
        with pytest.raises(ValueError, match="unknown sweep parameter"):
            run_sweep("e1", "nonsense", ["1"], TINY, use_cache=False)


class TestFirstDivergence:
    def test_identical_is_none(self):
        tree = {"a": [1.0, 2.0], "b": {"c": "x"}}
        assert first_divergence(tree, dict(tree)) is None

    def test_names_leaf_path(self):
        left = {"a": {"b": [1.0, 2.0]}}
        right = {"a": {"b": [1.0, 3.0]}}
        assert first_divergence(left, right) == "$.a.b[1]: 2.0 != 3.0"

    def test_names_missing_key(self):
        assert first_divergence({"a": 1}, {}) == "$.a: missing on right"
        assert first_divergence({}, {"a": 1}) == "$.a: missing on left"

    def test_names_length_mismatch(self):
        assert first_divergence([1], [1, 2]) == "$: length 1 != 2"

    def test_names_type_mismatch(self):
        assert first_divergence(1, 1.0) == "$: type int != float"


class TestRunTasks:
    def test_empty_task_list(self):
        suite = run_tasks([], use_cache=False)
        assert suite.tasks == []
        assert suite.suite_digest()

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            run_tasks([], jobs=0)

    def test_results_follow_task_order(self, tmp_path):
        tasks = [ExperimentTask("e5", TINY), ExperimentTask("e1", TINY)]
        suite = run_tasks(tasks, jobs=2, cache_dir=str(tmp_path))
        assert [task.experiment for task in suite.tasks] == ["e5", "e1"]

    def test_mixed_hit_and_miss(self, tmp_path):
        run_suite(TINY, experiments=["e1"], cache_dir=str(tmp_path))
        suite = run_suite(TINY, experiments=["e1", "e5"],
                          cache_dir=str(tmp_path))
        assert [task.cache for task in suite.tasks] == ["hit", "miss"]
        assert suite.cache_hits == 1


class TestCacheKeyCoversNewSettings:
    """S4 regression: a cache key that ignores sharing overrides or the
    fault plan would serve a clean run's numbers for a chaos run."""

    def test_sharing_overrides_change_key(self):
        plain = cache_key("e1", "", TINY)
        tuned = cache_key(
            "e1", "", TINY.with_(sharing_overrides={"update_interval_pages": 8})
        )
        assert plain != tuned

    def test_override_value_changes_key(self):
        a = cache_key("e1", "", TINY.with_(sharing_overrides={"regroup_interval": 0.1}))
        b = cache_key("e1", "", TINY.with_(sharing_overrides={"regroup_interval": 0.2}))
        assert a != b

    def test_override_order_does_not_change_key(self):
        a = TINY.with_(sharing_overrides={"regroup_interval": 0.1,
                                          "update_interval_pages": 8})
        b = TINY.with_(sharing_overrides=[("update_interval_pages", 8),
                                          ("regroup_interval", 0.1)])
        assert cache_key("e1", "", a) == cache_key("e1", "", b)

    def test_fault_spec_changes_key(self):
        clean = cache_key("e1", "", TINY)
        chaotic = cache_key("e1", "", TINY.with_(fault_spec="leader-abort"))
        assert clean != chaotic
        other = cache_key("e1", "", TINY.with_(fault_spec="disk-degrade"))
        assert chaotic != other

    def test_settings_dict_is_json_safe(self):
        from repro.experiments.runner import settings_to_dict

        settings = TINY.with_(
            sharing_overrides={"update_interval_pages": 8},
            fault_spec="leader-abort",
        )
        raw = settings_to_dict(settings)
        assert json.loads(canonical_json(raw)) == raw
        assert raw["fault_spec"] == "leader-abort"
        assert raw["sharing_overrides"] == [["update_interval_pages", 8]]
