"""Property tests for named frame reservations and claw-back.

Hypothesis drives random reserve / release_reserved / reserve_frames /
release_frames / claw-back programs through the pool while checking the
reservation accounting invariants the budgeted operators depend on:

* at least ``MIN_USABLE_FRAMES`` frames always stay usable;
* ``reserved_frames`` always equals the anonymous share plus the sum of
  live claimants' grants (and the anonymous share is never negative —
  ``release_reserved`` must not free a claimant's frames);
* every frame granted to a claimant is eventually accounted for as
  either clawed back or released, never both;
* a fully drained pool ends with ``reserved_frames == 0``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.buffer.page import PageKey
from repro.buffer.pool import BufferPool, BufferPoolError, PoolExhausted
from repro.disk.device import Disk
from repro.disk.geometry import DiskGeometry
from repro.sim.kernel import Simulator

from tests.conftest import make_pool

# One program step: (op, amount).  Claimant choice is derived from
# ``amount`` so the strategy stays a flat tuple.
step = st.tuples(
    st.sampled_from(
        ["reserve", "release", "reserve_frames", "release_frames", "claw"]
    ),
    st.integers(min_value=1, max_value=12),
)
program = st.lists(step, min_size=1, max_size=30)


def anonymous_share(pool: BufferPool) -> int:
    live = sum(r.granted for r in pool._claimants)
    return pool.reserved_frames - live


def check_invariants(pool: BufferPool) -> None:
    assert pool.capacity - pool.reserved_frames >= BufferPool.MIN_USABLE_FRAMES
    assert pool.reserved_frames >= 0
    assert anonymous_share(pool) >= 0, (
        "release_reserved freed a claimant's frames"
    )
    for reservation in pool._claimants:
        assert reservation.granted >= 0
        assert not reservation.released


class TestReservationRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(steps=program, capacity=st.integers(min_value=6, max_value=24))
    def test_random_programs_hold_accounting(self, steps, capacity):
        sim = Simulator()
        disk = Disk(sim, DiskGeometry(total_pages=4096))
        pool = make_pool(sim, disk, capacity=capacity)
        live = []
        total_granted = 0
        total_clawed_or_released = 0

        for op, amount in steps:
            if op == "reserve":
                granted = pool.reserve(amount)
                assert 0 <= granted <= amount
            elif op == "release":
                anonymous = anonymous_share(pool)
                freed = pool.release_reserved(amount)
                assert freed == min(amount, anonymous)
            elif op == "reserve_frames":
                reservation = pool.reserve_frames(
                    f"op-{len(live)}", amount
                )
                assert 0 <= reservation.granted <= amount
                total_granted += reservation.granted
                live.append(reservation)
            elif op == "release_frames" and live:
                reservation = live.pop(amount % len(live))
                before = reservation.granted
                freed = pool.release_frames(reservation)
                assert freed == before
                assert reservation.released
                total_clawed_or_released += before
                # Idempotent: a second release frees nothing.
                assert pool.release_frames(reservation) == 0
            elif op == "claw":
                before = pool.reserved_frames
                took = pool._claw_back_one()
                assert took == (before > 0)
                if took:
                    assert pool.reserved_frames == before - 1
            check_invariants(pool)

        # Conservation: every claimant frame is held, clawed, or released.
        still_held = sum(r.granted for r in live)
        assert total_granted >= total_clawed_or_released + still_held

        # Full drain: releasing every claimant and the anonymous share
        # leaves nothing reserved.
        for reservation in live:
            pool.release_frames(reservation)
        if pool.reserved_frames:
            pool.release_reserved(pool.reserved_frames)
        assert anonymous_share(pool) == 0
        assert pool.reserved_frames == 0

    @settings(max_examples=40, deadline=None)
    @given(capacity=st.integers(min_value=6, max_value=24),
           asks=st.lists(st.integers(min_value=1, max_value=30),
                         min_size=1, max_size=6))
    def test_grants_never_breach_usable_floor(self, capacity, asks):
        sim = Simulator()
        disk = Disk(sim, DiskGeometry(total_pages=4096))
        pool = make_pool(sim, disk, capacity=capacity)
        for index, ask in enumerate(asks):
            pool.reserve_frames(f"op-{index}", ask)
            check_invariants(pool)
        ceiling = capacity - BufferPool.MIN_USABLE_FRAMES
        assert pool.reserved_frames <= ceiling


class TestClawBackOrder:
    def test_lifo_claimants_then_anonymous(self, sim, disk):
        pool = make_pool(sim, disk, capacity=32)
        pool.reserve(4)                       # anonymous
        first = pool.reserve_frames("first", 4)
        second = pool.reserve_frames("second", 4)
        seen = []
        first.on_clawback = lambda r: seen.append("first")
        second.on_clawback = lambda r: seen.append("second")

        for _ in range(8):                    # drain both claimants
            assert pool._claw_back_one()
        assert seen == ["second"] * 4 + ["first"] * 4
        assert first.granted == 0 and first.clawed == 4
        assert second.granted == 0 and second.clawed == 4

        assert pool.reserved_frames == 4      # anonymous share remains
        for _ in range(4):
            assert pool._claw_back_one()
        assert pool.reserved_frames == 0
        assert not pool._claw_back_one()
        assert pool.clawed_back_frames == 12

    def test_release_reserved_cannot_free_claimant_frames(self, sim, disk):
        pool = make_pool(sim, disk, capacity=32)
        reservation = pool.reserve_frames("agg", 8)
        assert reservation.granted == 8
        assert pool.release_reserved(8) == 0
        assert reservation.granted == 8
        pool.reserve(4)
        assert pool.release_reserved(100) == 4
        assert pool.reserved_frames == 8


class TestExhaustionStaysTyped:
    def test_pin_pressure_claws_back_before_exhausting(self, sim, disk):
        """Pinning into a reservation claws frames back one at a time;
        only once the reservation is drained does the pool raise the
        typed :class:`PoolExhausted`."""
        pool = make_pool(sim, disk, capacity=8)
        reservation = pool.reserve_frames("agg", 4)
        assert reservation.granted == 4

        def worker(sim):
            # Pages 0-3 fill the usable floor; 4-7 each force one
            # claw-back from the reservation; page 8 finds nothing left.
            for page in range(8):
                yield from pool.fix(PageKey(0, page))
            yield from pool.fix(PageKey(0, 99))

        proc = sim.spawn(worker(sim))
        sim.run()
        assert type(proc.completion.value) is PoolExhausted
        assert isinstance(proc.completion.value, BufferPoolError)
        assert reservation.granted == 0
        assert reservation.clawed == 4
        assert pool.clawed_back_frames == 4

    def test_reserve_rejects_negative(self, sim, disk):
        pool = make_pool(sim, disk, capacity=8)
        with pytest.raises(BufferPoolError):
            pool.reserve(-1)
        with pytest.raises(BufferPoolError):
            pool.release_reserved(-1)
