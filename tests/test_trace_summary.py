"""Trace-summary tests under interleaved multi-stream runs.

``summarize``/``render_summary`` were previously only exercised on toy
hand-built traces; here they (and the per-scan attribution helper) run
against real interleaved workloads — six staggered streams over a small
pool, and a full service-scenario run — where many scans' register /
throttle / deregister threads overlap in one event stream.
"""

from __future__ import annotations

import pytest

from repro.core.config import SharingConfig
from repro.engine.executor import run_workload
from repro.trace import RingBufferSink, attribute_by_scan, summarize, tracing
from repro.workloads.synthetic import uniform_scan_query

from tests.conftest import make_database


@pytest.fixture(scope="module")
def interleaved_events():
    """Six staggered streams over a 24-frame pool: scans overlap heavily."""
    db = make_database(n_pages=96, pool_pages=24,
                       sharing=SharingConfig(enabled=True))
    streams = [
        [uniform_scan_query("t", 0.0, 1.0, name=f"q{i}")] for i in range(6)
    ]
    sink = RingBufferSink(capacity=None)
    with tracing(sink):
        run_workload(db, streams, stagger=0.003)
    return sink.events()


class TestInterleavedOrdering:
    def test_seq_strictly_increasing_across_streams(self, interleaved_events):
        seqs = [e.seq for e in interleaved_events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_time_never_runs_backwards(self, interleaved_events):
        times = [e.time for e in interleaved_events]
        assert times == sorted(times)

    def test_scan_lifetimes_actually_overlap(self, interleaved_events):
        """The fixture must genuinely interleave, or the module tests nothing."""
        live = 0
        peak = 0
        for event in interleaved_events:
            if event.category != "manager":
                continue
            if event.kind == "register":
                live += 1
                peak = max(peak, live)
            elif event.kind in ("deregister", "abort"):
                live -= 1
        assert peak >= 3

    def test_summary_counts_match_manual_count(self, interleaved_events):
        summary = summarize(interleaved_events)
        assert summary["n_events"] == len(interleaved_events)
        registers = sum(
            1 for e in interleaved_events
            if e.category == "manager" and e.kind == "register"
        )
        assert summary["counts"]["manager.register"] == registers == 6


class TestAttributeByScan:
    def test_every_stream_attributed(self, interleaved_events):
        records = attribute_by_scan(interleaved_events)
        assert len(records) == 6

    def test_records_internally_consistent(self, interleaved_events):
        records = attribute_by_scan(interleaved_events)
        for scan_id, record in records.items():
            assert record["table"] == "t"
            assert record["registered_at"] is not None
            assert record["end_kind"] == "deregister"
            assert record["ended_at"] >= record["registered_at"]
            assert record["pages_scanned"] == 96
            assert record["throttle_wait"] >= 0.0

    def test_joins_reference_earlier_scans(self, interleaved_events):
        records = attribute_by_scan(interleaved_events)
        joined = {
            scan_id: record["joined_scan_id"]
            for scan_id, record in records.items()
            if record["joined_scan_id"] is not None
        }
        # With six near-simultaneous same-table scans, sharing must kick in.
        assert joined
        for scan_id, target in joined.items():
            assert target in records
            assert records[target]["registered_at"] <= (
                records[scan_id]["registered_at"]
            )

    def test_pages_are_per_scan_not_pooled(self, interleaved_events):
        # The classic attribution bug: crediting one scan with the whole
        # group's page count.  Each scan reports its own full pass.
        records = attribute_by_scan(interleaved_events)
        total = sum(r["pages_scanned"] for r in records.values())
        assert total == 6 * 96

    def test_live_scan_has_open_record(self):
        from repro.trace.events import ScanRegistered

        events = [ScanRegistered(time=1.0, scan_id=7, table="x",
                                 joined_scan_id=None)]
        records = attribute_by_scan(events)
        assert records[7]["end_kind"] is None
        assert records[7]["ended_at"] is None

    def test_ignores_non_manager_categories(self, interleaved_events):
        only_manager = [e for e in interleaved_events
                        if e.category == "manager"]
        assert (attribute_by_scan(interleaved_events)
                == attribute_by_scan(only_manager))


class TestServiceRunAttribution:
    def test_service_scenario_trace_attributes_cleanly(self):
        from repro.experiments.harness import ExperimentSettings
        from repro.service.scenarios import run_scenario

        sink = RingBufferSink(capacity=None)
        with tracing(sink):
            result = run_scenario("steady", ExperimentSettings(scale=0.1, seed=42))
        events = sink.events()
        records = attribute_by_scan(events)
        # Every admitted request ran >= 1 scan; each attributed scan
        # either completed (deregister/abort) or was still live at drain.
        assert len(records) >= result.n_completed
        ended = [r for r in records.values() if r["end_kind"] is not None]
        assert ended and all(r["end_kind"] in ("deregister", "abort")
                             for r in ended)
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)
