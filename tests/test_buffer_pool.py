"""Unit tests for the bufferpool: fix/unfix, prefetch, in-flight merging."""

import pytest

from repro.buffer.page import PageKey, Priority
from repro.buffer.pool import BufferPool, BufferPoolError
from repro.disk.device import Disk
from repro.disk.geometry import DiskGeometry
from repro.sim.kernel import Simulator

from tests.conftest import make_pool


def key(n: int) -> PageKey:
    return PageKey(0, n)


def fix_and_release(pool, page_no, priority=Priority.NORMAL, prefetch=None, log=None):
    frame = yield from pool.fix(key(page_no), prefetch=prefetch)
    if log is not None:
        log.append(page_no)
    pool.unfix(key(page_no), priority)
    return frame


class TestFixBasics:
    def test_miss_then_hit(self, sim, disk):
        pool = make_pool(sim, disk)

        def worker(sim):
            yield from fix_and_release(pool, 5)
            yield from fix_and_release(pool, 5)

        sim.spawn(worker(sim))
        sim.run()
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1
        assert disk.stats.reads == 1

    def test_capacity_validation(self, sim, disk):
        with pytest.raises(BufferPoolError):
            BufferPool(sim, disk, capacity=2, address_of=lambda k: k.page_no)

    def test_pin_prevents_eviction(self, sim, disk):
        pool = make_pool(sim, disk, capacity=4)

        def worker(sim):
            pinned = yield from pool.fix(key(0))
            assert pinned.pinned
            # Fill the rest of the pool; key 0 must survive because pinned.
            for n in range(1, 10):
                yield from fix_and_release(pool, n)
            assert pool.is_resident(key(0))
            pool.unfix(key(0))

        sim.spawn(worker(sim))
        sim.run()

    def test_unfix_nonresident_raises(self, sim, disk):
        pool = make_pool(sim, disk)
        with pytest.raises(BufferPoolError):
            pool.unfix(key(99))

    def test_unfix_unpinned_raises(self, sim, disk):
        pool = make_pool(sim, disk)

        def worker(sim):
            yield from fix_and_release(pool, 0)

        sim.spawn(worker(sim))
        sim.run()
        with pytest.raises(BufferPoolError):
            pool.unfix(key(0))

    def test_eviction_when_full(self, sim, disk):
        pool = make_pool(sim, disk, capacity=4)

        def worker(sim):
            for n in range(8):
                yield from fix_and_release(pool, n)

        sim.spawn(worker(sim))
        sim.run()
        assert pool.resident_count <= 4
        assert pool.stats.evictions >= 4

    def test_overcommit_raises(self, sim, disk):
        pool = make_pool(sim, disk, capacity=4)

        def worker(sim):
            for n in range(5):  # pin 5 pages in a 4-page pool
                yield from pool.fix(key(n))

        proc = sim.spawn(worker(sim))
        sim.run()
        assert proc.completion.failed
        assert isinstance(proc.completion.value, BufferPoolError)


class TestInflightMerging:
    def test_concurrent_miss_issues_one_read(self, sim, disk):
        pool = make_pool(sim, disk)
        log = []

        def worker(sim, name):
            yield from fix_and_release(pool, 7, log=log)

        sim.spawn(worker(sim, "a"))
        sim.spawn(worker(sim, "b"))
        sim.run()
        assert disk.stats.reads == 1
        assert pool.stats.inflight_waits == 1
        assert log == [7, 7]

    def test_hit_ratio_counts_inflight_waits(self, sim, disk):
        pool = make_pool(sim, disk)

        def worker(sim):
            yield from fix_and_release(pool, 3)

        for _ in range(4):
            sim.spawn(worker(sim))
        sim.run()
        # 4 logical reads, 1 physical: ratio 3/4.
        assert pool.stats.hit_ratio == pytest.approx(0.75)


class TestPrefetch:
    def test_prefetch_reads_whole_run_in_one_request(self, sim, disk):
        pool = make_pool(sim, disk)
        run = [key(n) for n in range(8)]

        def worker(sim):
            yield from fix_and_release(pool, 0, prefetch=run)

        sim.spawn(worker(sim))
        sim.run()
        assert disk.stats.reads == 1
        assert disk.stats.pages_read == 8
        assert pool.stats.prefetched_pages == 7
        for n in range(8):
            assert pool.is_resident(key(n))

    def test_prefetched_pages_hit_later(self, sim, disk):
        pool = make_pool(sim, disk)
        run = [key(n) for n in range(8)]

        def worker(sim):
            for n in range(8):
                yield from fix_and_release(pool, n, prefetch=run)

        sim.spawn(worker(sim))
        sim.run()
        assert disk.stats.reads == 1
        assert pool.stats.hits == 7

    def test_prefetch_skips_resident_pages(self, sim, disk):
        pool = make_pool(sim, disk)
        run = [key(n) for n in range(8)]

        def worker(sim):
            yield from fix_and_release(pool, 3)  # page 3 resident
            yield from fix_and_release(pool, 0, prefetch=run)

        sim.spawn(worker(sim))
        sim.run()
        # Second request reads only the absent prefix [0..2].
        assert disk.stats.reads == 2
        assert disk.stats.pages_read == 1 + 3

    def test_prefetch_must_contain_demanded_page(self, sim, disk):
        pool = make_pool(sim, disk)

        def worker(sim):
            yield from pool.fix(key(0), prefetch=[key(1), key(2)])

        proc = sim.spawn(worker(sim))
        sim.run()
        assert proc.completion.failed
        assert isinstance(proc.completion.value, BufferPoolError)

    def test_prefetch_shrinks_when_pool_nearly_full(self, sim, disk):
        pool = make_pool(sim, disk, capacity=4)
        run = [key(n) for n in range(100, 108)]

        def worker(sim):
            # Pin 3 of 4 frames, then prefetch-fix: run cannot fit, the
            # pool must fall back to a single-page read.
            for n in range(3):
                yield from pool.fix(key(n))
            yield from fix_and_release(pool, 100, prefetch=run)
            for n in range(3):
                pool.unfix(key(n))

        proc = sim.spawn(worker(sim))
        sim.run()
        assert not proc.completion.failed
        assert disk.stats.pages_read == 4  # 3 singles + 1 demanded


class TestPrioritiesAndDirty:
    def test_release_priority_reaches_policy(self, sim, disk):
        pool = make_pool(sim, disk, capacity=4)

        def worker(sim):
            yield from fix_and_release(pool, 0, priority=Priority.HIGH)
            for n in range(1, 4):
                yield from fix_and_release(pool, n, priority=Priority.LOW)
            # One more page: a LOW page must be evicted, not the HIGH one.
            yield from fix_and_release(pool, 10)
            assert pool.is_resident(key(0))

        proc = sim.spawn(worker(sim))
        sim.run()
        assert not proc.completion.failed

    def test_dirty_page_written_back_on_eviction(self, sim, disk):
        pool = make_pool(sim, disk, capacity=4)

        def worker(sim):
            frame = yield from pool.fix(key(0))
            assert frame is not None
            pool.mark_dirty(key(0))
            pool.unfix(key(0))
            for n in range(1, 9):
                yield from fix_and_release(pool, n)

        sim.spawn(worker(sim))
        sim.run()
        assert disk.stats.writes == 1
        assert pool.stats.writebacks == 1

    def test_mark_dirty_requires_pin(self, sim, disk):
        pool = make_pool(sim, disk)
        with pytest.raises(BufferPoolError):
            pool.mark_dirty(key(0))
