"""Hypothesis properties for the runner's seed-derivation scheme.

The runner may only cache and parallelize because a task's seed is a
pure, collision-free, process-independent function of
(experiment id, sweep point, base seed).  These properties pin that
down harder than example-based tests can.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import derive_seed

names = st.text(min_size=0, max_size=40)
base_seeds = st.integers(min_value=0, max_value=2 ** 31 - 1)


@given(
    pairs=st.lists(st.tuples(names, names), unique=True, min_size=2,
                   max_size=40),
    base_seed=base_seeds,
)
def test_distinct_pairs_never_collide(pairs, base_seed):
    """Distinct (experiment, sweep-point) pairs get distinct seeds.

    This includes adversarial pairs whose concatenations coincide, e.g.
    ('a\\x1fb', '') vs ('a', 'b') — the length-prefixed payload keeps
    them apart.
    """
    seeds = {derive_seed(experiment, point, base_seed)
             for experiment, point in pairs}
    assert len(seeds) == len(pairs)


@given(experiment=names, point=names, base_seed=base_seeds)
def test_derivation_is_pure(experiment, point, base_seed):
    assert (derive_seed(experiment, point, base_seed)
            == derive_seed(experiment, point, base_seed))


@given(experiment=names, point=names, base_seed=base_seeds)
def test_seed_in_numpy_safe_range(experiment, point, base_seed):
    seed = derive_seed(experiment, point, base_seed)
    assert 0 <= seed < 2 ** 63


@given(experiment=names, point=names,
       left=base_seeds, right=base_seeds)
def test_base_seed_decorrelates(experiment, point, left, right):
    if left == right:
        return
    assert (derive_seed(experiment, point, left)
            != derive_seed(experiment, point, right))


@settings(deadline=None, max_examples=1)
@given(st.just(None))
def test_derivation_stable_across_processes(_none):
    """A spawned interpreter derives the very same seeds.

    One subprocess evaluates a fixed sample of (experiment, point,
    base-seed) triples; any dependence on PYTHONHASHSEED or interpreter
    state would show up as a mismatch.
    """
    samples = [
        ("e1", "", 42),
        ("e9", "n_streams=8", 42),
        ("a3", "scale=0.25", 0),
        ("έξι", "unicode‐point", 2 ** 31 - 1),
    ]
    snippet = (
        "import json, sys\n"
        "from repro.experiments.runner import derive_seed\n"
        "samples = json.loads(sys.argv[1])\n"
        "print(json.dumps([derive_seed(e, p, s) for e, p, s in samples]))\n"
    )
    src = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = "random"
    completed = subprocess.run(
        [sys.executable, "-c", snippet, json.dumps(samples)],
        capture_output=True, text=True, env=env, check=True,
    )
    remote = json.loads(completed.stdout)
    local = [derive_seed(e, p, s) for e, p, s in samples]
    assert remote == local
