"""Tests for the non-generator ``try_fix`` hit fast path.

Covers the two guarantees the fast path makes:

* accounting — ``logical = hits + misses + inflight_waits`` holds under
  any interleaving of fast-path hits and generator-path fallbacks;
* equivalence — a scan using ``try_fix`` with a ``fix`` fallback leaves
  the pool in exactly the same frame/LRU/stats state as one driving the
  generator path for every access.

Also here: the module-level tracer-handle caches in the pool and kernel
must notice sink/tracer swaps that happen mid-run (satellite of the same
optimization).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffer.page import PageKey, Priority
from repro.sim.kernel import Simulator
from repro.disk.device import Disk
from repro.disk.geometry import DiskGeometry
from repro.trace.sinks import RingBufferSink
from repro.trace.tracer import get_tracer, tracing

from tests.conftest import make_pool


def key(n: int) -> PageKey:
    return PageKey(0, n)


def fast_access(pool, page_no, priority=Priority.NORMAL):
    """Pin/release one page the way the optimized scans do."""
    k = key(page_no)
    frame = pool.try_fix(k)
    if frame is None:
        frame = yield from pool.fix(k)
    pool.unfix(k, priority)
    return frame


def slow_access(pool, page_no, priority=Priority.NORMAL):
    """Pin/release one page through the generator path only (pre-PR)."""
    k = key(page_no)
    frame = yield from pool.fix(k)
    pool.unfix(k, priority)
    return frame


class TestStatsIdentity:
    def test_try_fix_miss_touches_no_counters(self, sim, disk):
        pool = make_pool(sim, disk)
        assert pool.try_fix(key(5)) is None
        stats = pool.stats
        assert (stats.logical_reads, stats.hits, stats.misses,
                stats.inflight_waits) == (0, 0, 0, 0)

    def test_identity_under_mixed_access(self, sim, disk):
        """Fast-path hits, fallback misses, and concurrent in-flight
        waits must all land in exactly one accounting bucket."""
        pool = make_pool(sim, disk)

        def scanner(sim, pages):
            for page_no in pages:
                yield from fast_access(pool, page_no)

        # Two workers share a page range so the second one's first
        # touches find reads in flight; later passes are fast-path hits.
        sim.spawn(scanner(sim, [0, 1, 2, 0, 1, 2, 3]))
        sim.spawn(scanner(sim, [0, 1, 2, 4, 0, 4]))
        sim.run()
        stats = pool.stats
        assert stats.logical_reads == 13
        assert stats.misses == 5  # pages 0..4 each read once
        assert stats.inflight_waits >= 1
        assert (stats.hits + stats.misses + stats.inflight_waits
                == stats.logical_reads)

    def test_fast_path_hit_counts_once(self, sim, disk):
        pool = make_pool(sim, disk)

        def worker(sim):
            yield from slow_access(pool, 7)
            for _ in range(3):
                frame = pool.try_fix(key(7))
                assert frame is not None
                pool.unfix(key(7))

        sim.spawn(worker(sim))
        sim.run()
        stats = pool.stats
        assert (stats.logical_reads, stats.hits, stats.misses) == (4, 3, 1)

    def test_fast_path_emits_same_hit_trace_event(self, sim, disk):
        pool = make_pool(sim, disk)
        ring = RingBufferSink()

        def worker(sim):
            yield from slow_access(pool, 1)  # miss
            yield from slow_access(pool, 1)  # generator hit
            yield from fast_access(pool, 1)  # fast-path hit

        with tracing(ring):
            sim.spawn(worker(sim))
            sim.run()
        fixes = [e for e in ring.events() if e.kind == "fix"]
        assert [e.outcome for e in fixes] == ["miss", "hit", "hit"]
        # Fast-path and generator-path hit events are indistinguishable.
        assert fixes[1].to_dict().keys() == fixes[2].to_dict().keys()
        assert fixes[1].page_no == fixes[2].page_no == 1


def policy_state(pool):
    """The replacement policy's observable LRU order, per priority level."""
    policy = pool.policy
    if hasattr(policy, "_levels"):
        return {int(level): list(order) for level, order in
                policy._levels.items()}
    return None


def frame_state(pool):
    frames = {k: pool.frame_of(k) for k in pool.resident_keys()}
    return {
        k: (f.pin_count, f.access_count, f.last_used_at, int(f.priority))
        for k, f in sorted(frames.items())
    }


def stats_state(pool):
    s = pool.stats
    return (s.logical_reads, s.hits, s.misses, s.inflight_waits,
            s.evictions, s.prefetched_pages)


class TestFastSlowEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        accesses=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=15),
                st.sampled_from(list(Priority)),
            ),
            min_size=1,
            max_size=40,
        ),
        capacity=st.sampled_from([4, 8, 32]),
    )
    def test_fast_and_generator_paths_leave_identical_state(
            self, accesses, capacity):
        """Property: for any access sequence (with evictions and priority
        hints), try_fix+fallback and pure-generator scans end with
        byte-identical frame, LRU, and stats state."""

        def run(access):
            sim = Simulator()
            disk = Disk(sim, DiskGeometry(total_pages=4096))
            pool = make_pool(sim, disk, capacity=capacity)

            def worker(sim):
                for page_no, priority in accesses:
                    yield from access(pool, page_no, priority)

            sim.spawn(worker(sim))
            sim.run()
            return pool, sim.now

        fast_pool, fast_end = run(fast_access)
        slow_pool, slow_end = run(slow_access)
        assert fast_end == slow_end
        assert frame_state(fast_pool) == frame_state(slow_pool)
        assert policy_state(fast_pool) == policy_state(slow_pool)
        assert stats_state(fast_pool) == stats_state(slow_pool)


class TestTracerHandleSwap:
    """The cached module-level tracer handles must follow sink swaps."""

    def test_pool_sees_sink_added_mid_run(self, sim, disk):
        pool = make_pool(sim, disk)
        ring = RingBufferSink()
        tracer = get_tracer()

        def worker(sim):
            yield from slow_access(pool, 0)   # untraced: no sinks yet
            tracer.add_sink(ring)
            yield from fast_access(pool, 0)   # traced fast-path hit
            tracer.remove_sink(ring)
            yield from fast_access(pool, 0)   # untraced again

        sim.spawn(worker(sim))
        sim.run()
        kinds = [(e.kind, getattr(e, "outcome", None)) for e in ring.events()]
        assert ("fix", "hit") in kinds
        assert ("fix", "miss") not in kinds
        # Exactly one traced fix/release pair: the middle access.
        assert sum(1 for k, _ in kinds if k == "fix") == 1
        assert sum(1 for k, _ in kinds if k == "release") == 1

    def test_kernel_dispatch_sees_sink_added_mid_run(self):
        sim = Simulator()
        ring = RingBufferSink()
        tracer = get_tracer()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: tracer.add_sink(ring))
        sim.schedule(3.0, lambda: None)
        sim.schedule(4.0, lambda: tracer.remove_sink(ring))
        sim.schedule(5.0, lambda: None)
        sim.run()
        dispatches = [e for e in ring.events() if e.kind == "dispatch"]
        # Only the events dispatched while the sink was attached: t=3, t=4.
        assert [e.time for e in dispatches] == [3.0, 4.0]

    def test_tracing_context_manager_swap_is_picked_up(self, sim, disk):
        """``tracing()`` swaps the global Tracer object itself; cached
        handles must re-resolve, not keep emitting to the old tracer."""
        pool = make_pool(sim, disk)
        first, second = RingBufferSink(), RingBufferSink()

        def worker(sim):
            yield from slow_access(pool, 0)
            yield from slow_access(pool, 1)

        with tracing(first):
            sim.spawn(worker(sim))
            sim.run()
        sim2 = Simulator()
        disk2 = Disk(sim2, DiskGeometry(total_pages=4096))
        pool2 = make_pool(sim2, disk2)

        def worker2(sim):
            yield from slow_access(pool2, 0)

        with tracing(second):
            sim2.spawn(worker2(sim2))
            sim2.run()
        n_first = len(first.events())
        assert n_first > 0 and len(second.events()) > 0
        # The second run must not leak anything into the first sink.
        assert len(first.events()) == n_first
