"""Unit tests for the CPU cost model."""

import pytest

from repro.engine.costs import DEFAULT_COST_MODEL, CostModel


class TestCostModel:
    def test_defaults_valid(self):
        assert DEFAULT_COST_MODEL.unit_seconds > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(unit_seconds=0.0)
        with pytest.raises(ValueError):
            CostModel(unit_seconds=-1e-9)

    def test_seconds_linear(self):
        model = CostModel(unit_seconds=1e-6)
        assert model.seconds(100) == pytest.approx(1e-4)
        assert model.seconds(0) == 0.0

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COST_MODEL.unit_seconds = 1.0  # type: ignore[misc]

    def test_calibration_keeps_q6_io_bound(self):
        """The default unit cost must keep a light per-row pipeline well
        under the page transfer time — the Q6-is-I/O-bound premise."""
        from repro.disk.geometry import DiskGeometry

        model = DEFAULT_COST_MODEL
        light_units_per_page = model.per_page_units + 100 * 6  # ~Q6 shape
        cpu = model.seconds(light_units_per_page)
        io = DiskGeometry().transfer_time(1)
        assert cpu < 0.5 * io
