"""Property and unit tests for the consistent-hash ring and router."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.spec import ClusterSpec
from repro.cluster.topology import ClusterRouter, HashRing, ring_hash
from repro.workloads.loadgen import LoadSpec, UserClass


def _spec(**changes) -> ClusterSpec:
    load = LoadSpec(classes=(UserClass(name="u"),), n_users=100)
    base = dict(load=load, n_replicas=3)
    base.update(changes)
    return ClusterSpec(**base)


replica_counts = st.integers(min_value=1, max_value=8)
keys = st.text(min_size=1, max_size=24)


class TestRingHash:
    def test_stable_across_calls(self):
        assert ring_hash("lineitem/3") == ring_hash("lineitem/3")

    def test_64_bit_range(self):
        assert 0 <= ring_hash("x") < 2 ** 64


class TestHashRing:
    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing([0, 0])
        with pytest.raises(ValueError):
            HashRing([0], ring_points=0)

    def test_ring_size_is_replicas_times_points(self):
        ring = HashRing(range(3), ring_points=16)
        assert len(ring) == 48

    def test_preference_rejects_nonpositive(self):
        ring = HashRing(range(2))
        with pytest.raises(ValueError):
            ring.preference("k", 0)

    @settings(max_examples=50, deadline=None)
    @given(n=replica_counts, key=keys)
    def test_totality(self, n, key):
        """Every key routes to a valid replica."""
        ring = HashRing(range(n), ring_points=16)
        assert ring.owner(key) in range(n)

    @settings(max_examples=50, deadline=None)
    @given(n=replica_counts, key=keys)
    def test_stability_under_rebuild(self, n, key):
        """A rebuilt ring routes every key identically."""
        a = HashRing(range(n), ring_points=16)
        b = HashRing(range(n), ring_points=16)
        assert a.owner(key) == b.owner(key)
        assert a.preference(key, n) == b.preference(key, n)

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(min_value=2, max_value=6), key=keys)
    def test_preference_distinct_and_clamped(self, n, key):
        """Preference lists never repeat a replica and clamp to the fleet."""
        ring = HashRing(range(n), ring_points=16)
        prefs = ring.preference(key, n + 5)
        assert len(prefs) == n
        assert len(set(prefs)) == n

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(min_value=1, max_value=6))
    def test_minimal_movement_on_add(self, n):
        """Adding a replica only moves keys *onto* the new replica."""
        before = HashRing(range(n), ring_points=32)
        after = HashRing(range(n + 1), ring_points=32)
        sample = [f"table/{i}" for i in range(400)]
        moved = [
            key for key in sample if before.owner(key) != after.owner(key)
        ]
        assert all(after.owner(key) == n for key in moved)
        # With 32 vnodes the moved share should be near 1/(n+1); allow
        # generous slack for hash lumpiness.
        assert len(moved) / len(sample) < 2.5 / (n + 1)

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(min_value=2, max_value=6))
    def test_minimal_movement_on_remove(self, n):
        """Removing a replica only moves keys that *belonged* to it."""
        before = HashRing(range(n), ring_points=32)
        after = HashRing(range(n - 1), ring_points=32)
        sample = [f"table/{i}" for i in range(400)]
        for key in sample:
            if before.owner(key) != after.owner(key):
                assert before.owner(key) == n - 1

    def test_balance_with_enough_vnodes(self):
        """64 vnodes spread a uniform keyspace within loose bounds."""
        ring = HashRing(range(4), ring_points=64)
        counts = [0, 0, 0, 0]
        for i in range(2000):
            counts[ring.owner(f"k/{i}")] += 1
        for count in counts:
            assert 2000 * 0.10 < count < 2000 * 0.45


class TestClusterRouter:
    def test_route_updates_load_stats(self):
        router = ClusterRouter(_spec())
        for user in range(50):
            router.route("lineitem", user)
        assert sum(router.assigned) == 50
        assert sum(router.shards_touched()) >= 1

    def test_shard_key_folds_users(self):
        router = ClusterRouter(_spec(shards_per_table=8))
        assert router.shard_key("lineitem", 3) == "lineitem/3"
        assert router.shard_key("lineitem", 11) == "lineitem/3"

    def test_preference_balance_ignores_load(self):
        """rf=1 always routes to the ring owner, whatever the counters."""
        spec = _spec(replication_factor=1)
        a, b = ClusterRouter(spec), ClusterRouter(spec)
        for user in range(40):
            assert a.route("orders", user) == b.route("orders", user)

    def test_least_loaded_evens_the_split(self):
        """With rf == K every arrival may go anywhere; least-loaded
        routing must then keep the fleet within one arrival of even."""
        spec = _spec(
            n_replicas=3, replication_factor=3, balance="least-loaded"
        )
        router = ClusterRouter(spec)
        for user in range(60):
            router.route("lineitem", user)
        assert max(router.assigned) - min(router.assigned) <= 1

    def test_least_loaded_is_deterministic(self):
        spec = _spec(
            n_replicas=3, replication_factor=2, balance="least-loaded"
        )
        a, b = ClusterRouter(spec), ClusterRouter(spec)
        tables = ["lineitem", "orders", "part"]
        for user in range(90):
            table = tables[user % 3]
            assert a.route(table, user) == b.route(table, user)

    def test_stats_shape(self):
        router = ClusterRouter(_spec())
        router.route("lineitem", 1)
        stats = router.stats()
        assert stats["balance"] == "preference"
        assert set(stats["assigned"]) == {"0", "1", "2"}
        assert sum(stats["assigned"].values()) == 1
