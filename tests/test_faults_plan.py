"""Unit tests for fault-spec parsing and :class:`FaultPlan`."""

import math

import pytest

from repro.faults.plan import (
    BUILTIN_PLANS,
    DiskDelayFault,
    DiskErrorFault,
    FaultPlan,
    FaultSpecError,
    PoolPressureFault,
    ScanKillFault,
    parse_fault_spec,
)


class TestClauseParsing:
    def test_bare_kind_uses_defaults(self):
        (fault,) = parse_fault_spec("scan-kill")
        assert fault == ScanKillFault()
        assert fault.target == "any" and fault.at == 0.5 and fault.count == 1

    def test_options_parsed_and_coerced(self):
        (fault,) = parse_fault_spec("scan-kill:target=nth,nth=3,at=0.25,count=2")
        assert fault.target == "nth"
        assert fault.nth == 3
        assert isinstance(fault.nth, int)
        assert fault.at == 0.25
        assert fault.count == 2

    def test_from_alias_maps_to_start(self):
        (fault,) = parse_fault_spec("disk-delay:factor=2.0,from=1.5,until=3.0")
        assert fault.start == 1.5
        assert fault.until == 3.0

    def test_inf_window_end(self):
        (fault,) = parse_fault_spec("disk-error:rate=0.1,until=inf")
        assert fault.until == math.inf
        assert fault.active_at(1e9)

    def test_multiple_clauses_semicolon_separated(self):
        faults = parse_fault_spec(
            "scan-kill:target=leader; disk-delay:factor=2.0; pool-pressure"
        )
        assert [type(f) for f in faults] == [
            ScanKillFault, DiskDelayFault, PoolPressureFault,
        ]

    def test_whitespace_tolerated(self):
        (fault,) = parse_fault_spec("  disk-delay : factor=3.0 , from=0.5  ".replace(" : ", ":"))
        assert fault.factor == 3.0

    def test_builtin_aliases_expand(self):
        for alias, spec in BUILTIN_PLANS.items():
            assert parse_fault_spec(alias) == parse_fault_spec(spec)

    def test_builtin_alias_with_tail_rejected(self):
        # An alias is a whole clause; it takes no options.
        with pytest.raises(FaultSpecError):
            parse_fault_spec("leader-abort:at=0.9")

    def test_replica_pin_parsed_on_every_kind(self):
        for kind in ("scan-kill", "disk-delay", "disk-error",
                     "pool-pressure"):
            (fault,) = parse_fault_spec(f"{kind}:replica=1")
            assert fault.replica == 1
            assert isinstance(fault.replica, int)

    def test_replica_defaults_to_unpinned(self):
        (fault,) = parse_fault_spec("scan-kill")
        assert fault.replica == -1
        assert fault.matches_replica(0) and fault.matches_replica(7)

    def test_pinned_fault_matches_only_its_replica(self):
        (fault,) = parse_fault_spec("disk-delay:factor=2.0,replica=2")
        assert fault.matches_replica(2)
        assert not fault.matches_replica(0)
        assert not fault.matches_replica(3)


class TestValidation:
    @pytest.mark.parametrize("spec", [
        "",
        " ; ; ",
        "warp-core-breach",
        "scan-kill:target=ceo",
        "scan-kill:at=1.5",
        "scan-kill:at=-0.1",
        "scan-kill:count=0",
        "scan-kill:at",
        "scan-kill:frequency=1",
        "scan-kill:count=many",
        "disk-delay:factor=0.5",
        "disk-delay:from=2.0,until=1.0",
        "disk-delay:from=-1.0",
        "disk-error:rate=1.5",
        "disk-error:max_retries=0",
        "disk-error:backoff=-0.001",
        "pool-pressure:fraction=0.0",
        "pool-pressure:fraction=1.0",
        "scan-kill:replica=-2",
        "disk-delay:replica=-5",
        "disk-error:replica=one",
    ])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(spec)

    def test_fault_spec_error_is_value_error(self):
        with pytest.raises(ValueError):
            parse_fault_spec("nope")


class TestFaultPlan:
    def test_from_spec_binds_seed_and_faults(self):
        plan = FaultPlan.from_spec("disk-degrade", seed=9)
        assert plan.seed == 9
        assert plan.spec == "disk-degrade"
        assert plan.faults == parse_fault_spec("disk-degrade")

    def test_same_inputs_equal_plans(self):
        a = FaultPlan.from_spec("leader-abort", seed=3)
        b = FaultPlan.from_spec("leader-abort", seed=3)
        assert a == b
        assert hash(a) == hash(b)

    def test_seed_distinguishes_plans(self):
        assert FaultPlan.from_spec("leader-abort", seed=3) != \
            FaultPlan.from_spec("leader-abort", seed=4)

    def test_spec_distinguishes_plans(self):
        assert FaultPlan.from_spec("leader-abort", seed=3) != \
            FaultPlan.from_spec("trailer-abort", seed=3)

    def test_describe_names_every_clause(self):
        plan = FaultPlan.from_spec("scan-kill:target=leader; disk-delay", seed=0)
        text = plan.describe()
        assert "scan-kill" in text and "disk-delay" in text
        assert "target=leader" in text


class TestForReplica:
    SPEC = ("scan-kill:replica=0; disk-delay:factor=2.0,replica=1; "
            "pool-pressure")

    def test_keeps_pinned_and_unpinned_clauses(self):
        plan = FaultPlan.from_spec(self.SPEC, seed=5)
        sub = plan.for_replica(0)
        assert [type(f) for f in sub.faults] == [
            ScanKillFault, PoolPressureFault,
        ]

    def test_drops_clauses_pinned_elsewhere(self):
        plan = FaultPlan.from_spec(self.SPEC, seed=5)
        sub = plan.for_replica(1)
        assert [type(f) for f in sub.faults] == [
            DiskDelayFault, PoolPressureFault,
        ]

    def test_preserves_spec_and_seed(self):
        plan = FaultPlan.from_spec(self.SPEC, seed=5)
        sub = plan.for_replica(2)
        assert sub.spec == plan.spec
        assert sub.seed == plan.seed

    def test_can_filter_to_empty(self):
        plan = FaultPlan.from_spec("scan-kill:replica=0", seed=1)
        assert plan.for_replica(3).faults == ()

    def test_unpinned_plan_passes_through_whole(self):
        plan = FaultPlan.from_spec("disk-degrade", seed=7)
        assert plan.for_replica(4).faults == plan.faults
