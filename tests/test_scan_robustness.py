"""Failure-injection tests: scans must clean up after themselves."""

import pytest

from repro.core.config import SharingConfig
from repro.engine.executor import execute_query, run_workload
from repro.engine.query import QuerySpec, ScanStep
from repro.scans.shared_scan import SharedTableScan
from repro.scans.table_scan import TableScan
from repro.workloads.synthetic import uniform_scan_query

from tests.conftest import make_database


def exploding_on_page(fail_at_page):
    def on_page(page_no, data, n_rows):
        if page_no == fail_at_page:
            raise RuntimeError(f"injected failure at page {page_no}")
        return 1e-6

    return on_page


def assert_no_pins(db):
    for key in db.pool.resident_keys():
        assert not db.pool.frame_of(key).pinned, f"leaked pin on {key}"


class TestPinLeaks:
    @pytest.mark.parametrize("shared", [False, True])
    def test_failing_scan_releases_all_pins(self, shared):
        db = make_database(n_pages=64, sharing=SharingConfig(enabled=shared))
        cls = SharedTableScan if shared else TableScan
        scan = cls(db, "t", 0, 63, on_page=exploding_on_page(20))
        proc = db.sim.spawn(scan.run())
        db.sim.run()
        assert proc.completion.failed
        assert_no_pins(db)

    def test_pool_usable_after_scan_failure(self):
        """A crashed scan must not poison the pool for later scans."""
        db = make_database(n_pages=64, pool_pages=16,
                           sharing=SharingConfig(enabled=True))
        bad = SharedTableScan(db, "t", 0, 63, on_page=exploding_on_page(5))
        proc_bad = db.sim.spawn(bad.run())
        db.sim.run()
        assert proc_bad.completion.failed
        good = SharedTableScan(db, "t", 0, 63, on_page=lambda p, d, n: 1e-6)
        proc_good = db.sim.spawn(good.run())
        db.sim.run()
        assert not proc_good.completion.failed
        assert proc_good.completion.value.pages_scanned == 64
        assert_no_pins(db)

    def test_manager_clean_after_failure(self):
        db = make_database(n_pages=64)
        scan = SharedTableScan(db, "t", 0, 63, on_page=exploding_on_page(9))
        proc = db.sim.spawn(scan.run())
        db.sim.run()
        assert proc.completion.failed
        assert db.sharing.active_scan_count == 0


class TestRequiresOrder:
    def test_order_requiring_step_never_wraps(self):
        """A requires_order step must run as a vanilla scan even with
        sharing enabled: it always starts at its range's first page."""
        db = make_database(n_pages=64, sharing=SharingConfig(enabled=True))
        # Prime an ongoing scan so placement WOULD relocate a new scan.
        warm = SharedTableScan(db, "t", 0, 63, on_page=lambda p, d, n: 1e-4)
        db.sim.spawn(warm.run())
        db.sim.run(until=0.01)

        ordered = QuerySpec(
            name="ordered",
            steps=(ScanStep(table="t", requires_order=True, label="t"),),
        )
        proc = db.sim.spawn(execute_query(db, ordered))
        db.sim.run()
        result = proc.completion.value
        assert result.steps[0].scan.start_page == 0

    def test_unordered_step_may_relocate(self):
        db = make_database(n_pages=128, sharing=SharingConfig(enabled=True))
        warm = SharedTableScan(db, "t", 0, 127, on_page=lambda p, d, n: 1e-4)
        db.sim.spawn(warm.run())
        db.sim.run(until=0.02)
        unordered = uniform_scan_query("t", name="unordered")
        proc = db.sim.spawn(execute_query(db, unordered))
        db.sim.run()
        result = proc.completion.value
        assert result.steps[0].scan.start_page > 0

    def test_ordered_results_identical_under_sharing(self):
        """Order-requiring queries deliver identical results regardless
        of the sharing switch (they always use the plain operator)."""
        def run(shared):
            db = make_database(n_pages=32, sharing=SharingConfig(enabled=shared))
            spec = QuerySpec(
                name="q",
                steps=(ScanStep(table="t", requires_order=True, label="t"),),
            )
            result = run_workload(db, [[spec]])
            return result.streams[0].queries[0].values

        assert run(False) == run(True)
