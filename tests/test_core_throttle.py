"""Unit tests for leader throttling and the fairness cap."""

import pytest

from repro.core.config import SharingConfig
from repro.core.grouping import form_groups
from repro.core.scan_state import ScanDescriptor, ScanState
from repro.core.throttle import evaluate_throttle

EXTENT = 16


def make_pair(leader_pos, trailer_pos, trailer_speed=100.0, leader_speed=100.0,
              table_pages=1000):
    def make(scan_id, pos, speed):
        descriptor = ScanDescriptor(
            "t", 0, table_pages - 1, estimated_speed=speed
        )
        return ScanState(
            scan_id=scan_id, descriptor=descriptor, start_page=pos,
            start_time=0.0, speed=speed,
        )

    trailer = make(0, trailer_pos, trailer_speed)
    leader = make(1, leader_pos, leader_speed)
    groups = form_groups({"t": [leader, trailer]}, pool_budget_pages=table_pages)
    assert len(groups) == 1
    return leader, trailer, groups[0]


class TestThrottleDecision:
    def test_no_throttle_within_threshold(self):
        leader, _, group = make_pair(leader_pos=110, trailer_pos=100)
        decision = evaluate_throttle(leader, group, SharingConfig(), EXTENT)
        assert not decision.throttled

    def test_throttle_beyond_threshold(self):
        leader, _, group = make_pair(leader_pos=200, trailer_pos=100)
        decision = evaluate_throttle(leader, group, SharingConfig(), EXTENT)
        assert decision.throttled
        assert decision.wait > 0

    def test_wait_sized_from_trailer_speed(self):
        config = SharingConfig(max_wait_per_update=1e9)
        leader, _, group = make_pair(
            leader_pos=300, trailer_pos=100, trailer_speed=50.0
        )
        decision = evaluate_throttle(leader, group, config, EXTENT)
        expected = (200 - config.target_distance_extents * EXTENT) / 50.0
        assert decision.wait == pytest.approx(expected)

    def test_wait_capped_per_update(self):
        config = SharingConfig(max_wait_per_update=0.1)
        # Half the table apart: circularly still leader/trailer (a gap
        # of 900 would flip the roles, since 900 ahead == 100 behind).
        leader, _, group = make_pair(
            leader_pos=500, trailer_pos=0, trailer_speed=1.0
        )
        decision = evaluate_throttle(leader, group, config, EXTENT)
        assert decision.wait == pytest.approx(0.1)

    def test_trailer_never_throttled(self):
        _, trailer, group = make_pair(leader_pos=500, trailer_pos=0)
        decision = evaluate_throttle(trailer, group, SharingConfig(), EXTENT)
        assert not decision.throttled

    def test_singleton_group_never_throttled(self):
        descriptor = ScanDescriptor("t", 0, 999, estimated_speed=100.0)
        scan = ScanState(scan_id=0, descriptor=descriptor, start_page=0,
                         start_time=0.0, speed=100.0)
        groups = form_groups({"t": [scan]}, pool_budget_pages=1000)
        decision = evaluate_throttle(scan, groups[0], SharingConfig(), EXTENT)
        assert not decision.throttled

    def test_disabled_throttling(self):
        config = SharingConfig(throttling_enabled=False)
        leader, _, group = make_pair(leader_pos=500, trailer_pos=0)
        assert not evaluate_throttle(leader, group, config, EXTENT).throttled

    def test_finished_trailer_releases_leader(self):
        leader, trailer, group = make_pair(leader_pos=500, trailer_pos=0)
        trailer.finished = True
        assert not evaluate_throttle(leader, group, SharingConfig(), EXTENT).throttled

    def test_throttle_survives_leader_wrap(self):
        """Regression: a leader that wrapped past the range end sits at a
        *smaller* linear position than its trailer (here 50 vs 900, i.e.
        150 pages ahead circularly).  The old linear distance went
        negative and silently disabled throttling for the rest of the
        scan."""
        leader, _, group = make_pair(leader_pos=50, trailer_pos=900)
        decision = evaluate_throttle(leader, group, SharingConfig(), EXTENT)
        assert decision.throttled
        assert decision.distance == 150

    def test_decision_reports_inputs(self):
        config = SharingConfig()
        leader, _, group = make_pair(leader_pos=200, trailer_pos=100)
        decision = evaluate_throttle(leader, group, config, EXTENT)
        assert decision.distance == 100
        assert decision.threshold == config.distance_threshold_extents * EXTENT
        assert decision.allowance > 0

    def test_exempt_trailer_is_not_an_anchor(self):
        """A fairness-exempted scan runs free; the leader must not be
        slowed down to keep pace with it."""
        leader, trailer, group = make_pair(leader_pos=200, trailer_pos=100)
        trailer.throttle_exempt = True
        decision = evaluate_throttle(leader, group, SharingConfig(), EXTENT)
        assert not decision.throttled

    def test_finished_trailer_anchor_moves_up(self):
        """With the rear member finished, the wait is sized from the next
        member still scanning, not skipped entirely."""
        def make(scan_id, pos, speed=100.0):
            descriptor = ScanDescriptor("t", 0, 999, estimated_speed=speed)
            return ScanState(scan_id=scan_id, descriptor=descriptor,
                             start_page=pos, start_time=0.0, speed=speed)

        rear, mid, front = make(0, 0), make(1, 60, speed=50.0), make(2, 160)
        groups = form_groups({"t": [rear, mid, front]}, pool_budget_pages=1000)
        assert len(groups) == 1
        rear.finished = True
        config = SharingConfig(max_wait_per_update=1e9)
        decision = evaluate_throttle(front, groups[0], config, EXTENT)
        assert decision.distance == 100  # measured from mid, not rear
        expected = (100 - config.target_distance_extents * EXTENT) / 50.0
        assert decision.wait == pytest.approx(expected)


class TestFairnessCap:
    def test_cap_exempts_scan(self):
        """A scan already delayed 80 % of its estimated time is never
        throttled again (the paper's fairness rule)."""
        leader, _, group = make_pair(leader_pos=500, trailer_pos=0)
        leader.accumulated_delay = 0.8 * leader.estimated_total_time + 1.0
        decision = evaluate_throttle(leader, group, SharingConfig(), EXTENT)
        assert not decision.throttled
        assert decision.capped_by_fairness
        assert leader.throttle_exempt

    def test_exempt_scan_stays_exempt(self):
        leader, _, group = make_pair(leader_pos=500, trailer_pos=0)
        leader.throttle_exempt = True
        decision = evaluate_throttle(leader, group, SharingConfig(), EXTENT)
        assert not decision.throttled
        assert not decision.capped_by_fairness

    def test_wait_clamped_to_remaining_allowance(self):
        config = SharingConfig(max_wait_per_update=1e9)
        leader, _, group = make_pair(
            leader_pos=500, trailer_pos=0, trailer_speed=1.0
        )
        allowance = 0.8 * leader.estimated_total_time
        leader.accumulated_delay = allowance - 0.05
        decision = evaluate_throttle(leader, group, config, EXTENT)
        assert decision.wait == pytest.approx(0.05)
        assert decision.capped_by_fairness
        assert leader.throttle_exempt

    def test_cap_fraction_zero_disables_all_throttling(self):
        config = SharingConfig(slowdown_cap_fraction=0.0)
        leader, _, group = make_pair(leader_pos=500, trailer_pos=0)
        decision = evaluate_throttle(leader, group, config, EXTENT)
        assert not decision.throttled
