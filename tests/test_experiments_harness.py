"""Tests for the experiment harness (small scales, smoke + semantics)."""

import pytest

from repro.core.config import SharingConfig
from repro.experiments.harness import (
    Comparison,
    ExperimentSettings,
    build_database,
    compare_modes,
    expected_pool_pages,
    expected_table_pages,
    run_mode,
)

TINY = ExperimentSettings(scale=0.05, n_streams=2, query_names=("Q6", "Q14"))


class TestSettings:
    def test_with_creates_modified_copy(self):
        settings = ExperimentSettings()
        changed = settings.with_(scale=0.5, n_streams=2)
        assert changed.scale == 0.5
        assert changed.n_streams == 2
        assert settings.scale != 0.5  # original untouched

    def test_expected_table_pages_matches_database(self):
        db = build_database(TINY, SharingConfig(enabled=False))
        for name in ("lineitem", "orders", "nation"):
            assert db.catalog.table(name).n_pages == expected_table_pages(TINY, name)

    def test_expected_pool_pages_matches_database(self):
        db = build_database(TINY, SharingConfig(enabled=False))
        assert db.pool.capacity == expected_pool_pages(TINY)

    def test_explicit_pool_pages_override(self):
        settings = TINY.with_(pool_pages=128)
        db = build_database(settings, SharingConfig())
        assert db.pool.capacity == 128


class TestRunMode:
    def test_mode_result_populated(self):
        mode = run_mode(TINY, SharingConfig(enabled=False), "Base")
        assert mode.label == "Base"
        assert mode.makespan > 0
        assert mode.pages_read > 0
        assert len(mode.reads_per_bucket) > 0
        assert set(mode.per_stream_elapsed) == {0, 1}
        assert set(mode.per_query_elapsed) == {"Q6", "Q14"}

    def test_cpu_breakdown_fractions(self):
        mode = run_mode(TINY, SharingConfig(), "SS")
        assert sum(mode.cpu.as_dict().values()) == pytest.approx(1.0)

    def test_streams_override(self):
        from repro.workloads.synthetic import uniform_scan_query

        query = uniform_scan_query("lineitem", 0.0, 0.3, name="slice")
        mode = run_mode(TINY, SharingConfig(enabled=False), "x",
                        streams=[[query]])
        assert set(mode.per_query_elapsed) == {"slice"}


class TestCompareModes:
    def test_comparison_gains_signs(self):
        comparison = compare_modes(TINY)
        assert isinstance(comparison, Comparison)
        # Gains are base-relative percentages; simply well-formed here.
        assert -100.0 < comparison.end_to_end_gain < 100.0
        assert comparison.base.label == "Base"
        assert comparison.shared.label == "SS"

    def test_gain_formula(self):
        comparison = compare_modes(TINY)
        expected = 100.0 * (
            comparison.base.makespan - comparison.shared.makespan
        ) / comparison.base.makespan
        assert comparison.end_to_end_gain == pytest.approx(expected)

    def test_custom_shared_config_applied(self):
        comparison = compare_modes(
            TINY, shared_config=SharingConfig(throttling_enabled=False)
        )
        assert comparison.shared.throttle_waits == 0
