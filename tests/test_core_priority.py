"""Unit tests for leader/trailer page prioritization."""

from repro.buffer.page import Priority
from repro.core.config import SharingConfig
from repro.core.priority import release_priority
from repro.core.scan_state import ScanDescriptor, ScanState


def state(is_leader=False, is_trailer=False):
    s = ScanState(
        scan_id=0,
        descriptor=ScanDescriptor("t", 0, 99, estimated_speed=10.0),
        start_page=0,
        start_time=0.0,
        speed=10.0,
    )
    s.is_leader = is_leader
    s.is_trailer = is_trailer
    return s


class TestReleasePriority:
    def test_leader_releases_high(self):
        assert release_priority(state(is_leader=True), 3, SharingConfig()) is Priority.HIGH

    def test_trailer_releases_low(self):
        assert release_priority(state(is_trailer=True), 3, SharingConfig()) is Priority.LOW

    def test_middle_releases_normal(self):
        assert release_priority(state(), 3, SharingConfig()) is Priority.NORMAL

    def test_singleton_group_always_normal(self):
        assert (
            release_priority(state(is_leader=True, is_trailer=True), 1, SharingConfig())
            is Priority.NORMAL
        )

    def test_prioritization_disabled(self):
        config = SharingConfig(prioritization_enabled=False)
        assert release_priority(state(is_leader=True), 3, config) is Priority.NORMAL

    def test_sharing_disabled(self):
        config = SharingConfig(enabled=False)
        assert release_priority(state(is_leader=True), 3, config) is Priority.NORMAL

    def test_grouping_disabled(self):
        config = SharingConfig(grouping_enabled=False)
        assert release_priority(state(is_leader=True), 3, config) is Priority.NORMAL
