"""Unit tests for the disk service-time model."""

import pytest

from repro.disk.geometry import DiskGeometry


class TestValidation:
    def test_defaults_valid(self):
        DiskGeometry()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"page_size": 0},
            {"total_pages": 0},
            {"transfer_rate": 0},
            {"min_seek_time": -1.0},
            {"max_seek_time": 0.0001, "min_seek_time": 0.001},
            {"settle_time": -0.1},
            {"sequential_gap_pages": -1},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DiskGeometry(**kwargs)


class TestSeekModel:
    def test_zero_distance_is_min_seek(self):
        geo = DiskGeometry()
        assert geo.seek_time(10, 10) == geo.min_seek_time

    def test_full_stroke_is_max_seek(self):
        geo = DiskGeometry(total_pages=1000)
        assert geo.seek_time(0, 1000) == pytest.approx(geo.max_seek_time)

    def test_seek_time_monotone_in_distance(self):
        geo = DiskGeometry(total_pages=10_000)
        times = [geo.seek_time(0, d) for d in (1, 10, 100, 1000, 10_000)]
        assert times == sorted(times)

    def test_seek_symmetric(self):
        geo = DiskGeometry()
        assert geo.seek_time(100, 500) == geo.seek_time(500, 100)


class TestTransferModel:
    def test_transfer_time_linear(self):
        geo = DiskGeometry()
        assert geo.transfer_time(10) == pytest.approx(10 * geo.transfer_time(1))

    def test_transfer_zero_pages(self):
        assert DiskGeometry().transfer_time(0) == 0.0

    def test_transfer_negative_rejected(self):
        with pytest.raises(ValueError):
            DiskGeometry().transfer_time(-1)

    def test_default_page_transfer_sub_millisecond(self):
        # 32 KiB at 100 MiB/s ~ 0.3 ms: keeps extents cheaper than seeks.
        geo = DiskGeometry()
        assert 0.0001 < geo.transfer_time(1) < 0.001


class TestSequentialDetection:
    def test_exactly_adjacent_is_sequential(self):
        geo = DiskGeometry()
        assert geo.is_sequential(100, 100)
        assert geo.is_sequential(100, 101)

    def test_gap_beyond_threshold_is_not_sequential(self):
        geo = DiskGeometry(sequential_gap_pages=1)
        assert not geo.is_sequential(100, 102)

    def test_backwards_is_never_sequential(self):
        geo = DiskGeometry()
        assert not geo.is_sequential(100, 99)
