"""Tests for the fault injector and the manager's death paths."""

from dataclasses import replace

import pytest

from repro.buffer.pool import BufferPoolError
from repro.core.config import SharingConfig
from repro.core.manager import ScanSharingManager
from repro.core.scan_state import ScanDescriptor
from repro.disk.device import Disk
from repro.disk.geometry import DiskGeometry
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.scans.shared_scan import SharedTableScan
from repro.sim.kernel import Simulator
from repro.storage.catalog import Catalog
from repro.storage.schema import ColumnSpec, make_schema
from repro.storage.table import Table
from repro.storage.tablespace import Tablespace

from tests.conftest import make_database, make_pool


def cheap(page_no, data, n_rows):
    return 1e-6


def one_read_elapsed(plan=None, start_page=500):
    """Simulated seconds to complete one 8-page read, faults optional."""
    sim = Simulator()
    disk = Disk(sim, DiskGeometry(total_pages=4096))
    if plan is not None:
        injector = FaultInjector(sim, plan)
        injector.attach(disk=disk)
    disk.read(start_page, 8)
    sim.run()
    return sim.now, disk


class TestDiskDelay:
    def test_delay_stretches_service_time(self):
        clean, _ = one_read_elapsed()
        plan = FaultPlan.from_spec("disk-delay:factor=4.0", seed=0)
        degraded, disk = one_read_elapsed(plan)
        assert degraded == pytest.approx(clean * 4.0)
        assert disk._faults.stats.disk_delayed_requests == 1

    def test_window_bounds_respected(self):
        # Window already closed at t=0: the read is untouched.
        clean, _ = one_read_elapsed()
        plan = FaultPlan.from_spec("disk-delay:factor=4.0,from=100.0", seed=0)
        elapsed, disk = one_read_elapsed(plan)
        assert elapsed == pytest.approx(clean)
        assert disk._faults.stats.disk_delayed_requests == 0

    def test_overlapping_windows_compound(self):
        clean, _ = one_read_elapsed()
        plan = FaultPlan.from_spec("disk-delay:factor=2.0; disk-delay:factor=3.0", seed=0)
        degraded, _ = one_read_elapsed(plan)
        assert degraded == pytest.approx(clean * 6.0)


class TestDiskError:
    def test_certain_errors_retry_then_force_through(self):
        # rate=1.0: every attempt up to max_retries fails, then the
        # request is forced through — it degrades, it never wedges.
        plan = FaultPlan.from_spec(
            "disk-error:rate=1.0,max_retries=3,backoff=0.001", seed=0
        )
        elapsed, disk = one_read_elapsed(plan)
        clean, _ = one_read_elapsed()
        assert disk.stats.io_retries == 3
        assert disk._faults.stats.disk_errors_injected == 3
        assert disk.stats.reads == 1  # counted once, on real completion
        # Three failed attempts, exponential backoff, one success.
        assert elapsed > clean + 0.001 + 0.002 + 0.004

    def test_zero_rate_injects_nothing(self):
        plan = FaultPlan.from_spec("disk-error:rate=0.0", seed=0)
        elapsed, disk = one_read_elapsed(plan)
        clean, _ = one_read_elapsed()
        assert elapsed == pytest.approx(clean)
        assert disk.stats.io_retries == 0

    def test_same_seed_same_error_schedule(self):
        plan = FaultPlan.from_spec("disk-error:rate=0.5,max_retries=2", seed=11)

        def run():
            sim = Simulator()
            disk = Disk(sim, DiskGeometry(total_pages=4096))
            FaultInjector(sim, plan).attach(disk=disk)
            for start in range(0, 512, 8):
                disk.read(start, 8)
            sim.run()
            return sim.now, disk.stats.io_retries

        assert run() == run()


class TestPoolPressure:
    def test_reserve_clamped_to_keep_minimum_usable(self):
        sim = Simulator()
        pool = make_pool(sim, Disk(sim, DiskGeometry(total_pages=4096)), capacity=32)
        granted = pool.reserve(1000)
        assert granted == 32 - pool.MIN_USABLE_FRAMES
        assert pool.effective_capacity == pool.MIN_USABLE_FRAMES
        # Fully reserved: further pressure is refused, not stacked.
        assert pool.reserve(1) == 0

    def test_release_returns_only_whats_reserved(self):
        sim = Simulator()
        pool = make_pool(sim, Disk(sim, DiskGeometry(total_pages=4096)), capacity=32)
        granted = pool.reserve(10)
        assert pool.release_reserved(1000) == granted
        assert pool.reserved_frames == 0
        assert pool.effective_capacity == 32

    def test_negative_reserve_rejected(self):
        sim = Simulator()
        pool = make_pool(sim, Disk(sim, DiskGeometry(total_pages=4096)), capacity=32)
        with pytest.raises(BufferPoolError):
            pool.reserve(-1)

    def test_scans_complete_under_heavy_pressure(self):
        # 90 % of the pool reserved for the whole run: scans must still
        # finish (the claw-back path yields frames back rather than
        # wedging a pinned scan).
        db = make_database(
            n_pages=128, pool_pages=32,
            fault_plan=FaultPlan.from_spec("pool-pressure:fraction=0.9", seed=0),
        )
        scans = [
            SharedTableScan(db, "t", 0, 127, on_page=cheap) for _ in range(2)
        ]
        procs = [db.sim.spawn(scan.run()) for scan in scans]
        db.sim.run()
        for proc in procs:
            assert not proc.completion.failed
            assert proc.completion.value.pages_scanned == 128
        assert db.faults.stats.pool_pressure_events >= 1


class TestScanKills:
    def run_scans(self, db, n_scans, n_pages=128):
        scans = [
            SharedTableScan(db, "t", 0, n_pages - 1, on_page=cheap)
            for _ in range(n_scans)
        ]
        procs = [db.sim.spawn(scan.run()) for scan in scans]
        db.sim.run()
        for proc in procs:
            assert not proc.completion.failed, proc.completion.value
        return [proc.completion.value for proc in procs]

    def test_any_kill_aborts_partial_scan(self):
        db = make_database(
            n_pages=128,
            fault_plan=FaultPlan.from_spec("scan-kill:target=any,at=0.5", seed=0),
        )
        (result,) = self.run_scans(db, 1)
        assert result.aborted
        assert result.pages_scanned == 64  # struck exactly at the fraction
        assert db.sharing.stats.scans_aborted == 1
        assert db.sharing.stats.scans_finished == 0
        assert db.sharing.active_scan_count == 0

    def test_count_bounds_total_kills(self):
        db = make_database(
            n_pages=128,
            fault_plan=FaultPlan.from_spec(
                "scan-kill:target=any,at=0.25,count=1", seed=0
            ),
        )
        results = self.run_scans(db, 3)
        assert sum(r.aborted for r in results) == 1
        assert sum(not r.aborted for r in results) == 2

    def test_nth_kill_targets_one_scan_id(self):
        db = make_database(
            n_pages=128,
            fault_plan=FaultPlan.from_spec(
                "scan-kill:target=nth,nth=1,at=0.5,count=99", seed=0
            ),
        )
        results = self.run_scans(db, 3)
        assert [r.aborted for r in results] == [False, True, False]

    def test_leader_abort_workload_completes(self):
        # The headline regression: a group's leader dies mid-flight and
        # the survivors must neither deadlock nor stay grouped with the
        # ghost.
        db = make_database(
            n_pages=256,
            fault_plan=FaultPlan.from_spec("leader-abort", seed=0),
        )
        results = self.run_scans(db, 3, n_pages=256)
        assert sum(r.aborted for r in results) == 1
        for result in results:
            if not result.aborted:
                assert result.pages_scanned == 256
        assert db.sharing.active_scan_count == 0
        assert not db.sharing.groups()

    def test_anchor_abort_leader_does_not_wait_forever(self):
        db = make_database(
            n_pages=256,
            fault_plan=FaultPlan.from_spec("trailer-abort", seed=0),
        )
        results = self.run_scans(db, 3, n_pages=256)
        assert sum(r.aborted for r in results) == 1
        assert db.sharing.active_scan_count == 0

    def test_kill_before_pin_leaks_no_frames(self):
        db = make_database(
            n_pages=128,
            fault_plan=FaultPlan.from_spec("scan-kill:target=any,at=0.5", seed=0),
        )
        self.run_scans(db, 2)
        for key in db.pool.resident_keys():
            assert not db.pool.frame_of(key).pinned


def make_manager(config=None, table_pages=1000, pool=200, extent=16):
    sim = Simulator()
    catalog = Catalog(Tablespace(10_000))
    schema = make_schema("t", [ColumnSpec("id", "sequence")])
    catalog.create_table(Table(schema, n_pages=table_pages, extent_size=extent))
    manager = ScanSharingManager(
        sim, catalog, pool_capacity=pool, config=config or SharingConfig()
    )
    return sim, manager


def full_descriptor(speed=100.0, table_pages=1000):
    return ScanDescriptor("t", 0, table_pages - 1, estimated_speed=speed)


class TestManagerDeathPaths:
    """S1: abort/end mid-group must dissolve and re-anchor cleanly."""

    def start_group_of_three(self, manager):
        states = [manager.start_scan(full_descriptor()) for _ in range(3)]
        # Spread them along the arc: trailer, middle, leader.
        manager.update_location(states[0].scan_id, 16)
        manager.update_location(states[1].scan_id, 48)
        manager.update_location(states[2].scan_id, 96)
        return states

    def test_abort_scan_removes_member_from_groups(self):
        _, manager = make_manager()
        states = self.start_group_of_three(manager)
        group = manager.group_of(states[1].scan_id)
        assert group is not None and group.size == 3
        manager.abort_scan(states[1].scan_id)
        assert manager.stats.scans_aborted == 1
        dead_id = states[1].scan_id
        for group in manager.groups():
            assert all(m.scan_id != dead_id for m in group.members)
        with pytest.raises(KeyError):
            manager.scan_state(dead_id)

    def test_abort_leader_promotes_next_member(self):
        _, manager = make_manager()
        states = self.start_group_of_three(manager)
        leader = max(states, key=lambda s: s.pages_scanned)
        manager.abort_scan(leader.scan_id)
        survivors = manager.active_scans()
        assert len(survivors) == 2
        group = manager.group_of(survivors[0].scan_id)
        if group is not None and group.size == 2:
            assert group.leader.scan_id != leader.scan_id
            assert not group.leader.finished

    def test_abort_does_not_record_last_finished(self):
        _, manager = make_manager()
        state = manager.start_scan(full_descriptor())
        manager.update_location(state.scan_id, 500)
        manager.abort_scan(state.scan_id)
        assert manager.last_finished_position("t") is None

    def test_mid_group_trailer_end_reanchors(self):
        _, manager = make_manager()
        states = self.start_group_of_three(manager)
        trailer = min(states, key=lambda s: s.pages_scanned)
        manager.end_scan(trailer.scan_id)
        for group in manager.groups():
            assert all(not m.finished for m in group.members)
            assert all(m.scan_id != trailer.scan_id for m in group.members)

    def test_zero_page_end_scan_leaves_no_placement_signal(self):
        _, manager = make_manager()
        state = manager.start_scan(full_descriptor())
        manager.end_scan(state.scan_id)
        assert manager.last_finished_position("t") is None

    def test_finished_scan_position_still_recorded(self):
        _, manager = make_manager()
        state = manager.start_scan(full_descriptor())
        manager.update_location(state.scan_id, 1000)
        manager.end_scan(state.scan_id)
        assert manager.last_finished_position("t") == 999

    def test_grouping_disabled_regroup_clears_stale_flags(self):
        _, manager = make_manager()
        states = self.start_group_of_three(manager)
        assert any(s.is_leader for s in states)
        manager.config = replace(manager.config, grouping_enabled=False)
        manager._regroup(force=True)
        assert not manager.groups()
        for state in manager.active_scans():
            assert state.group_id is None
            assert not state.is_leader and not state.is_trailer


class TestDeterminism:
    def test_same_plan_same_outcome(self):
        def run():
            db = make_database(
                n_pages=128,
                fault_plan=FaultPlan.from_spec(
                    "scan-kill:target=any,at=0.5; disk-error:rate=0.2", seed=5
                ),
            )
            scans = [
                SharedTableScan(db, "t", 0, 127, on_page=cheap) for _ in range(3)
            ]
            procs = [db.sim.spawn(scan.run()) for scan in scans]
            db.sim.run()
            results = [p.completion.value for p in procs]
            return (
                db.sim.now,
                tuple((r.aborted, r.pages_scanned) for r in results),
                db.faults.stats.total_injected,
                db.disk.stats.io_retries,
            )

        assert run() == run()
