"""Model-based property test for the bufferpool.

Hypothesis drives random fix/unfix programs through the pool while a
simple reference model tracks what must be true: pinned pages stay
resident, residency never exceeds capacity, every fix eventually
returns the right frame, and the hit/miss/in-flight accounting always
adds up.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.buffer.page import PageKey, Priority
from repro.disk.device import Disk
from repro.disk.geometry import DiskGeometry
from repro.sim.kernel import Simulator

from tests.conftest import make_pool

# A program is a list of worker scripts; each script is a list of
# (page, hold_steps, priority_index) accesses executed sequentially.
access = st.tuples(
    st.integers(min_value=0, max_value=40),   # page number
    st.integers(min_value=0, max_value=3),    # hold duration (steps)
    st.integers(min_value=0, max_value=2),    # release priority
)
script = st.lists(access, min_size=1, max_size=12)
program = st.lists(script, min_size=1, max_size=4)

PRIORITIES = [Priority.LOW, Priority.NORMAL, Priority.HIGH]


class TestPoolModel:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(scripts=program, capacity=st.integers(min_value=6, max_value=16))
    def test_random_programs_hold_invariants(self, scripts, capacity):
        sim = Simulator()
        disk = Disk(sim, DiskGeometry(total_pages=4096))
        pool = make_pool(sim, disk, capacity=capacity)
        observed = []

        def worker(sim, accesses):
            for page, hold, priority_index in accesses:
                key = PageKey(0, page)
                frame = yield from pool.fix(key)
                # Invariant: fix returns the demanded, pinned, resident frame.
                assert frame.key == key
                assert frame.pinned
                assert pool.is_resident(key)
                for _ in range(hold):
                    yield sim.timeout(0.0001)
                    assert pool.is_resident(key), "pinned page evicted"
                pool.unfix(key, PRIORITIES[priority_index])
                observed.append(page)
                # Invariant: never over capacity.
                assert pool.resident_count <= capacity
                assert pool.resident_count + pool.inflight_count <= capacity

        procs = [sim.spawn(worker(sim, accesses)) for accesses in scripts]
        sim.run()
        for proc in procs:
            if proc.completion.failed:
                raise proc.completion.value
        # Every access completed.
        assert len(observed) == sum(len(s) for s in scripts)
        # Accounting identity.
        stats = pool.stats
        assert stats.logical_reads == len(observed)
        assert stats.logical_reads == stats.hits + stats.misses + stats.inflight_waits
        # All pins released.
        for key in pool.resident_keys():
            assert not pool.frame_of(key).pinned
        assert pool.inflight_count == 0
        # Physical reads cover exactly the distinct pages that ever
        # missed (no page read without a logical demand).
        assert stats.physical_pages_read >= len(set(observed)) - capacity
        assert stats.physical_pages_read <= stats.logical_reads

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(scripts=program)
    def test_disk_reads_match_pool_accounting(self, scripts):
        sim = Simulator()
        disk = Disk(sim, DiskGeometry(total_pages=4096))
        pool = make_pool(sim, disk, capacity=8)

        def worker(sim, accesses):
            for page, hold, priority_index in accesses:
                key = PageKey(0, page)
                yield from pool.fix(key)
                pool.unfix(key, PRIORITIES[priority_index])

        procs = [sim.spawn(worker(sim, accesses)) for accesses in scripts]
        sim.run()
        for proc in procs:
            if proc.completion.failed:
                raise proc.completion.value
        assert disk.stats.pages_read == pool.stats.physical_pages_read
        assert disk.stats.reads == pool.stats.physical_requests
