"""Unit tests for the sharing-potential analyzer."""

import pytest

from repro.core.config import SharingConfig
from repro.engine.database import Database, SystemConfig
from repro.engine.executor import run_workload
from repro.metrics.access_log import (
    analyze_sharing_potential,
    collect_scans,
    scan_interval_table,
)
from repro.workloads.synthetic import simple_table_schema, uniform_scan_query


def run_recorded(record=True, n_streams=3):
    db = Database(SystemConfig(
        pool_pages=32,
        sharing=SharingConfig(enabled=False),
        record_page_visits=record,
    ))
    db.create_table(simple_table_schema("t"), n_pages=64, extent_size=8)
    db.open()
    query = uniform_scan_query("t", 0.0, 0.5, name="half")
    return run_workload(db, [[query] for _ in range(n_streams)])


class TestCollect:
    def test_collect_scans_counts_steps(self):
        workload = run_recorded()
        scans = collect_scans(workload)
        assert len(scans) == 3
        assert all(scan.table_name == "t" for scan in scans)

    def test_interval_table(self):
        workload = run_recorded()
        rows = scan_interval_table(workload)
        assert len(rows) == 3
        for table, start, end, pages in rows:
            assert table == "t"
            assert end > start
            assert pages == 32


class TestAnalyze:
    def test_requires_recorded_visits(self):
        workload = run_recorded(record=False)
        with pytest.raises(ValueError, match="record_page_visits"):
            analyze_sharing_potential(workload)

    def test_re_read_accounting(self):
        workload = run_recorded(n_streams=3)
        report = analyze_sharing_potential(workload)
        potential = report.tables["t"]
        assert potential.n_scans == 3
        assert potential.pages_requested == 3 * 32
        assert potential.distinct_pages == 32
        assert potential.re_read_pages == 2 * 32
        assert potential.potential_fraction == pytest.approx(2 / 3)

    def test_overlapping_pairs_counted(self):
        workload = run_recorded(n_streams=3)
        report = analyze_sharing_potential(workload)
        # All three scans run concurrently over the same pages.
        assert report.tables["t"].overlapping_pairs == 3
        assert report.tables["t"].overlapping_shared_pages == 3 * 32

    def test_hot_tables_threshold(self):
        workload = run_recorded(n_streams=3)
        report = analyze_sharing_potential(workload)
        assert report.hot_tables(min_scans=3)[0].table == "t"
        assert report.hot_tables(min_scans=4) == []

    def test_render_contains_table(self):
        workload = run_recorded()
        text = analyze_sharing_potential(workload).render()
        assert "t" in text
        assert "re-read share" in text

    def test_total_scans(self):
        workload = run_recorded(n_streams=2)
        assert analyze_sharing_potential(workload).total_scans == 2
