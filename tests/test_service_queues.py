"""Unit tests for admission queues and the weighted-fair selector."""

import pytest

from repro.service.queues import AdmissionQueue, QueryRequest, WeightedFairSelector
from repro.service.spec import ServiceClass
from repro.sim.events import Event
from repro.sim.kernel import Simulator


def _request(request_id: int, class_name: str = "c") -> QueryRequest:
    sim = Simulator()
    return QueryRequest(
        request_id=request_id, class_name=class_name, query=None,
        arrived_at=0.0, completion=Event(sim),
    )


class TestQueryRequest:
    def test_lifecycle_properties(self):
        request = _request(1)
        assert not request.admitted and not request.resolved
        with pytest.raises(ValueError):
            request.admission_wait
        request.admitted_at = 2.0
        request.arrived_at = 0.5
        assert request.admitted
        assert request.admission_wait == pytest.approx(1.5)
        with pytest.raises(ValueError):
            request.latency
        request.finished_at = 4.0
        assert request.resolved
        assert request.latency == pytest.approx(3.5)

    def test_abandoned_wait(self):
        request = _request(2)
        request.abandoned_at = 3.0
        assert request.resolved and not request.admitted
        assert request.admission_wait == pytest.approx(3.0)


class TestAdmissionQueue:
    def test_fifo_and_length_samples(self):
        queue = AdmissionQueue(ServiceClass(name="c"))
        a, b = _request(1), _request(2)
        queue.push(a, 0.0)
        queue.push(b, 1.0)
        assert len(queue) == 2
        assert queue.pop(2.0) is a
        assert queue.pop(3.0) is b
        assert queue.length_samples == [(0.0, 1), (1.0, 2), (2.0, 1), (3.0, 0)]

    def test_remove_is_idempotent(self):
        queue = AdmissionQueue(ServiceClass(name="c"))
        a = _request(1)
        queue.push(a, 0.0)
        assert queue.remove(a, 1.0)
        assert not queue.remove(a, 2.0)
        assert len(queue) == 0

    def test_eligibility_respects_class_mpl(self):
        queue = AdmissionQueue(ServiceClass(name="c", max_mpl=2))
        assert not queue.eligible  # empty
        queue.push(_request(1), 0.0)
        assert queue.eligible
        queue.running = 2
        assert not queue.eligible  # at its per-class cap
        queue.running = 1
        assert queue.eligible

    def test_zero_mpl_means_uncapped(self):
        queue = AdmissionQueue(ServiceClass(name="c", max_mpl=0))
        queue.push(_request(1), 0.0)
        queue.running = 1000
        assert queue.eligible


class TestWeightedFairSelector:
    def _make(self, *specs: ServiceClass):
        queues = {spec.name: AdmissionQueue(spec) for spec in specs}
        return queues, WeightedFairSelector(list(queues.values()))

    def test_select_none_when_nothing_waits(self):
        _, selector = self._make(ServiceClass(name="a"))
        assert selector.select() is None

    def test_weights_set_admission_ratio(self):
        queues, selector = self._make(
            ServiceClass(name="heavy", weight=3.0),
            ServiceClass(name="light", weight=1.0),
        )
        for i in range(100):
            queues["heavy"].push(_request(i, "heavy"), 0.0)
            queues["light"].push(_request(100 + i, "light"), 0.0)
        admitted = []
        for _ in range(40):
            queue = selector.select()
            queue.pop(0.0)
            selector.charge(queue)
            admitted.append(queue.name)
        # 3:1 share over 40 slots -> 30 heavy, 10 light.
        assert admitted.count("heavy") == 30
        assert admitted.count("light") == 10

    def test_ties_break_by_name_deterministically(self):
        queues, selector = self._make(
            ServiceClass(name="b"), ServiceClass(name="a"),
        )
        queues["a"].push(_request(1, "a"), 0.0)
        queues["b"].push(_request(2, "b"), 0.0)
        assert selector.select().name == "a"  # equal virtual time -> name order

    def test_skips_ineligible_class(self):
        queues, selector = self._make(
            ServiceClass(name="a", max_mpl=1, weight=10.0),
            ServiceClass(name="b"),
        )
        queues["a"].push(_request(1, "a"), 0.0)
        queues["b"].push(_request(2, "b"), 0.0)
        queues["a"].running = 1  # a is capped out despite its weight
        assert selector.select().name == "b"

    def test_charge_accumulates_inverse_weight(self):
        queues, selector = self._make(ServiceClass(name="a", weight=4.0))
        selector.charge(queues["a"])
        selector.charge(queues["a"])
        assert selector.virtual_time("a") == pytest.approx(0.5)

    def test_replay_is_reproducible(self):
        def run():
            queues, selector = self._make(
                ServiceClass(name="x", weight=2.0),
                ServiceClass(name="y", weight=1.5),
                ServiceClass(name="z", weight=1.0),
            )
            for name, queue in queues.items():
                for i in range(50):
                    queue.push(_request(i, name), 0.0)
            order = []
            while True:
                queue = selector.select()
                if queue is None:
                    break
                queue.pop(0.0)
                selector.charge(queue)
                order.append(queue.name)
            return order

        assert run() == run()
