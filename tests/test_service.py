"""End-to-end tests for the admission-controlled query service.

Everything here runs the tiny calibrated scenarios (scale 0.1), so the
whole module stays in CI-smoke territory while still pushing real
queries through the shared-scan engine.
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import ExperimentSettings
from repro.experiments.registry import REGISTRY, get, metrics_of
from repro.experiments.runner import (
    ExperimentTask,
    first_divergence,
    run_tasks,
)
from repro.service import ServiceResult
from repro.service.controller import AdmissionController
from repro.service.metrics import bounded_problems
from repro.service.scenarios import (
    SCENARIOS,
    build_service_spec,
    estimated_query_seconds,
    run_scenario,
)
from repro.service.service import _class_seed
from repro.service.spec import ControllerConfig
from repro.trace import RingBufferSink, tracing

TINY = ExperimentSettings(scale=0.1, seed=42)


class TestScenarioSpecs:
    def test_every_scenario_builds(self):
        for name in SCENARIOS:
            spec = build_service_spec(name, TINY)
            assert spec.horizon > 0
            assert spec.classes

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            build_service_spec("nope", TINY)

    def test_calibration_cost_scales_with_data(self):
        small = estimated_query_seconds(ExperimentSettings(scale=0.1))
        large = estimated_query_seconds(ExperimentSettings(scale=0.5))
        assert 0 < small < large

    def test_service_horizon_override(self):
        spec = build_service_spec("steady", TINY.with_(service_horizon=1.25))
        assert spec.horizon == 1.25

    def test_sv_experiments_registered(self):
        for name in SCENARIOS:
            assert f"sv-{name}" in REGISTRY


class TestSteadyEndToEnd:
    @pytest.fixture(scope="class")
    def result(self) -> ServiceResult:
        return run_scenario("steady", TINY)

    def test_drains_and_conserves_requests(self, result):
        assert result.drained
        assert result.n_arrived == result.n_completed + result.n_abandoned
        assert result.n_arrived > 0

    def test_both_classes_served(self, result):
        interactive = result.class_metrics("interactive")
        batch = result.class_metrics("batch")
        assert interactive.n_completed > 0
        assert batch.n_completed > 0
        # Closed batch streams never abandon (no patience configured).
        assert batch.n_abandoned == 0

    def test_concurrency_stayed_inside_controller_range(self, result):
        spec = build_service_spec("steady", TINY)
        # peak_running may exceed mpl by in-flight work admitted before a
        # decrease, but never the controller's configured ceiling.
        assert result.peak_running <= spec.controller.max_mpl
        assert spec.controller.min_mpl <= result.mpl_final <= spec.controller.max_mpl
        assert result.controller_ticks > 0

    def test_metrics_dict_shape(self, result):
        metrics = result.metrics()
        assert metrics["controller"]["enabled"]
        assert set(metrics["classes"]) == {"interactive", "batch"}
        assert metrics["n_completed"] == result.n_completed
        assert bounded_problems("steady", metrics) == []

    def test_render_mentions_every_class(self, result):
        rendered = result.render()
        assert "interactive" in rendered and "batch" in rendered
        assert "controller: mpl" in rendered

    def test_latency_bounds_sane(self, result):
        for cls in result.classes:
            if cls.n_completed:
                assert 0 <= cls.latency_p50 <= cls.latency_p95 <= cls.latency_p99
                assert cls.wait_p50 <= cls.wait_p99


class TestServiceTracing:
    def test_trace_events_conserve_requests(self):
        ring = RingBufferSink(capacity=200_000)
        with tracing(ring):
            result = run_scenario("steady", TINY)
        events = [e for e in ring.events() if e.category == "service"]
        kinds = {}
        for event in events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        assert kinds["arrival"] == result.n_arrived
        assert kinds["admit"] == result.n_completed
        assert kinds["complete"] == result.n_completed
        assert kinds.get("abandon", 0) == result.n_abandoned

    def test_admit_events_monotone_in_time(self):
        ring = RingBufferSink(capacity=200_000)
        with tracing(ring):
            run_scenario("steady", TINY)
        admits = [e for e in ring.events()
                  if e.category == "service" and e.kind == "admit"]
        times = [e.time for e in admits]
        assert times == sorted(times)
        assert all(e.waited >= 0 for e in admits)


class TestDeterminism:
    def test_same_settings_same_metrics(self):
        a = run_scenario("steady", TINY).metrics()
        b = run_scenario("steady", TINY).metrics()
        assert first_divergence(a, b) is None

    def test_seed_changes_the_run(self):
        a = run_scenario("steady", TINY)
        b = run_scenario("steady", TINY.with_(seed=43))
        assert a.metrics() != b.metrics()

    def test_registry_entry_matches_direct_call(self):
        via_registry = metrics_of(get("sv-steady").execute(TINY))
        direct = run_scenario("steady", TINY).metrics()
        assert first_divergence(via_registry, direct) is None

    def test_serial_vs_parallel_digests_identical(self, tmp_path):
        tasks = [ExperimentTask(f"sv-{name}", TINY)
                 for name in ("steady", "burst")]
        serial = run_tasks(tasks, jobs=1, use_cache=False,
                           cache_dir=str(tmp_path / "a"))
        parallel = run_tasks(tasks, jobs=2, use_cache=False,
                             cache_dir=str(tmp_path / "b"))
        for left, right in zip(serial.tasks, parallel.tasks):
            assert left.label == right.label
            assert left.digest == right.digest, (
                f"{left.label}: serial/parallel digest mismatch at "
                f"{first_divergence(left.metrics, right.metrics)}"
            )

    def test_class_seed_is_stable_and_distinct(self):
        assert _class_seed(42, "a") == _class_seed(42, "a")
        assert _class_seed(42, "a") != _class_seed(42, "b")
        assert _class_seed(42, "a") != _class_seed(43, "a")


class TestControllerUnit:
    @pytest.fixture()
    def db(self):
        from repro.core.config import SharingConfig
        from repro.experiments.harness import build_database
        return build_database(ExperimentSettings(scale=0.05),
                             SharingConfig(enabled=True))

    def test_disabled_controller_always_has_slots(self, db):
        controller = AdmissionController(db, ControllerConfig(enabled=False))
        assert controller.has_slot(10_000)
        controller.start()
        assert controller.process is None

    def test_pool_pressure_triggers_multiplicative_decrease(self, db):
        controller = AdmissionController(
            db, ControllerConfig(initial_mpl=8, pressure_high=0.5)
        )
        db.pool.reserve(int(db.pool.capacity * 0.6))
        controller._tick()
        assert controller.mpl == 4
        controller._tick()
        assert controller.mpl == 2
        assert controller.stats.decreases == 2

    def test_clean_window_gives_additive_increase(self, db):
        controller = AdmissionController(
            db, ControllerConfig(initial_mpl=4, max_mpl=6)
        )
        for _ in range(5):
            controller._tick()
        assert controller.mpl == 6  # +1 per tick, clamped at max_mpl
        assert controller.stats.increases == 2

    def test_windowed_miss_rate_triggers_decrease(self, db):
        controller = AdmissionController(
            db, ControllerConfig(initial_mpl=8, miss_rate_high=0.5,
                                 miss_ewma_alpha=1.0, min_window_reads=1)
        )
        stats = db.pool.stats
        stats.logical_reads += 100
        stats.misses += 90
        controller._tick()
        assert controller.mpl == 4
        # Next window is idle: EWMA holds, but an idle window is not a
        # fresh red signal only if the smoothed rate decayed -- with
        # alpha=1 the estimate stays at 0.9, so it halves again.
        controller._tick()
        assert controller.mpl == 2

    def test_near_idle_window_does_not_move_estimate(self, db):
        controller = AdmissionController(
            db, ControllerConfig(initial_mpl=8, min_window_reads=64)
        )
        stats = db.pool.stats
        stats.logical_reads += 10   # below min_window_reads
        stats.misses += 10
        controller._tick()
        assert controller._miss_ewma == 0.0
        assert controller.mpl == 8 + 1  # clean estimate -> additive increase
