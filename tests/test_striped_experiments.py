"""Determinism and golden tests for the ``st-*`` striped experiments.

Two layers of pinning:

* **serial vs fanned-out** — an ``st-push`` run must produce the same
  metrics digest whether the runner executes it inline or in a worker
  process, at every supported device count;
* **golden scenario** — a small pinned push run is compared
  field-by-field against ``tests/golden/striped_push.json``; regenerate
  with ``--regen-golden`` (or ``REPRO_REGEN_GOLDEN=1``) after an
  intentional behavior change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.harness import ExperimentSettings
from repro.experiments.registry import get, metrics_of
from repro.experiments.runner import (
    ExperimentTask,
    first_divergence,
    metrics_digest,
    run_tasks,
)
from repro.experiments.striped import st_push, st_scaling

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
GOLDEN_FILE = GOLDEN_DIR / "striped_push.json"

TINY = ExperimentSettings(scale=0.05, n_streams=2, seed=7)

#: Pinned golden scenario: two devices, push on, small but genuinely
#: overlapping workload.
SCENARIO = ExperimentSettings(
    scale=0.1, n_streams=3, seed=123, device_count=2, stripe_extents=1,
)


class TestRegistry:
    def test_st_experiments_registered(self):
        assert get("st-push").run is st_push
        assert get("st-scaling").run is st_scaling

    def test_st_push_metrics_are_json_safe(self):
        result = st_push(TINY.with_(device_count=2))
        metrics = metrics_of(result)
        json.dumps(metrics, sort_keys=True)
        assert metrics["device_count"] == 2
        assert metrics["push"]["pushed_pages"] > 0
        assert metrics["pull"]["pushed_pages"] == 0

    def test_st_push_renders(self):
        result = st_push(TINY.with_(device_count=2))
        text = result.render()
        assert "SS push" in text
        assert "Per-device load:" in text


@pytest.mark.slow
class TestSerialVsJobs:
    @pytest.mark.parametrize("device_count", [1, 2, 4])
    def test_st_push_digest_identical_across_jobs(self, device_count):
        settings = TINY.with_(device_count=device_count, stripe_extents=1)
        tasks = [ExperimentTask("st-push", settings)]
        serial = run_tasks(tasks, jobs=1, use_cache=False)
        fanned = run_tasks(tasks, jobs=2, use_cache=False)
        for left, right in zip(serial.tasks, fanned.tasks):
            divergence = first_divergence(left.metrics, right.metrics)
            assert divergence is None, (
                f"st-push at device_count={device_count} diverged between "
                f"serial and fanned-out runs at {divergence}"
            )
            assert metrics_digest(left.metrics) == metrics_digest(right.metrics)
        assert serial.suite_digest() == fanned.suite_digest()

    def test_st_scaling_digest_identical_across_jobs(self):
        tasks = [ExperimentTask("st-scaling", TINY)]
        serial = run_tasks(tasks, jobs=1, use_cache=False)
        fanned = run_tasks(tasks, jobs=2, use_cache=False)
        assert serial.suite_digest() == fanned.suite_digest()


def _run_scenario() -> dict:
    result = st_push(SCENARIO)
    return {
        "scenario": {
            "experiment": "st-push",
            "scale": SCENARIO.scale,
            "n_streams": SCENARIO.n_streams,
            "seed": SCENARIO.seed,
            "device_count": SCENARIO.device_count,
            "stripe_extents": SCENARIO.stripe_extents,
        },
        "metrics": metrics_of(result),
    }


def test_striped_push_matches_golden(regen_golden):
    actual = _run_scenario()
    if regen_golden or not GOLDEN_FILE.exists():
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        GOLDEN_FILE.write_text(
            json.dumps(actual, indent=2, sort_keys=True) + "\n"
        )
        assert GOLDEN_FILE.exists()
        return
    golden = json.loads(GOLDEN_FILE.read_text())
    divergence = first_divergence(golden, actual)
    assert divergence is None, (
        f"striped push scenario diverged from tests/golden/"
        f"{GOLDEN_FILE.name} at {divergence}; if this change is "
        f"intentional, regenerate with --regen-golden (or "
        f"REPRO_REGEN_GOLDEN=1) and commit the new golden file"
    )


def test_golden_file_is_committed():
    """The reference must exist in the tree, not be a regen artifact."""
    assert GOLDEN_FILE.exists(), (
        "tests/golden/striped_push.json is missing; run with "
        "--regen-golden once and commit it"
    )
    golden = json.loads(GOLDEN_FILE.read_text())
    assert golden["scenario"]["device_count"] == SCENARIO.device_count
    assert golden["metrics"]["push"]["pushed_pages"] > 0
