"""Unit tests for every replacement policy."""

import pytest

from repro.buffer.page import PageKey, Priority
from repro.buffer.replacement import (
    ArcPolicy,
    ClockPolicy,
    FifoPolicy,
    LfuPolicy,
    LruKPolicy,
    LruPolicy,
    MruPolicy,
    PriorityLruPolicy,
    TwoQPolicy,
    make_policy,
)


def key(n: int) -> PageKey:
    return PageKey(0, n)


def always(_key: PageKey) -> bool:
    return True


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["priority-lru", "lru", "mru", "fifo", "clock", "lru-k", "lfu"]
    )
    def test_make_policy_capacityless(self, name):
        assert make_policy(name) is not None

    @pytest.mark.parametrize("name", ["2q", "arc"])
    def test_make_policy_needs_capacity(self, name):
        with pytest.raises(ValueError):
            make_policy(name)
        assert make_policy(name, capacity=16) is not None

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_policy("belady")

    def test_names_match_instances(self):
        assert make_policy("lru").name == "lru"
        assert make_policy("arc", 8).name == "arc"


class TestLru:
    def test_evicts_least_recent(self):
        policy = LruPolicy()
        for n in range(3):
            policy.on_admit(key(n))
        policy.on_hit(key(0))  # 0 becomes most recent
        assert policy.choose_victim(always) == key(1)

    def test_respects_evictability(self):
        policy = LruPolicy()
        for n in range(3):
            policy.on_admit(key(n))
        assert policy.choose_victim(lambda k: k != key(0)) == key(1)

    def test_no_victim_when_nothing_evictable(self):
        policy = LruPolicy()
        policy.on_admit(key(0))
        assert policy.choose_victim(lambda k: False) is None

    def test_evict_removes_tracking(self):
        policy = LruPolicy()
        policy.on_admit(key(0))
        policy.on_evict(key(0))
        assert policy.choose_victim(always) is None


class TestMruFifo:
    def test_mru_evicts_most_recent(self):
        policy = MruPolicy()
        for n in range(3):
            policy.on_admit(key(n))
        policy.on_hit(key(0))
        assert policy.choose_victim(always) == key(0)

    def test_fifo_ignores_hits(self):
        policy = FifoPolicy()
        for n in range(3):
            policy.on_admit(key(n))
        policy.on_hit(key(0))
        assert policy.choose_victim(always) == key(0)


class TestPriorityLru:
    def test_low_priority_evicted_before_high(self):
        policy = PriorityLruPolicy()
        policy.on_admit(key(0))
        policy.on_admit(key(1))
        policy.on_release(key(0), Priority.HIGH)
        policy.on_release(key(1), Priority.LOW)
        assert policy.choose_victim(always) == key(1)

    def test_lru_within_priority_level(self):
        policy = PriorityLruPolicy()
        for n in range(3):
            policy.on_admit(key(n))
        policy.on_hit(key(0))
        assert policy.choose_victim(always) == key(1)

    def test_release_moves_between_levels(self):
        policy = PriorityLruPolicy()
        policy.on_admit(key(0))
        policy.on_release(key(0), Priority.LOW)
        sizes = policy.level_sizes()
        assert sizes[Priority.LOW] == 1
        assert sizes[Priority.NORMAL] == 0
        policy.on_release(key(0), Priority.HIGH)
        sizes = policy.level_sizes()
        assert sizes[Priority.HIGH] == 1
        assert sizes[Priority.LOW] == 0

    def test_hit_on_untracked_page_raises(self):
        policy = PriorityLruPolicy()
        with pytest.raises(KeyError):
            policy.on_hit(key(9))

    def test_high_pages_survive_low_churn(self):
        """HIGH pages are only victims once no LOW/NORMAL pages remain."""
        policy = PriorityLruPolicy()
        policy.on_admit(key(0))
        policy.on_release(key(0), Priority.HIGH)
        for n in range(1, 5):
            policy.on_admit(key(n))
            policy.on_release(key(n), Priority.LOW)
        victims = []
        for _ in range(5):
            victim = policy.choose_victim(always)
            victims.append(victim)
            policy.on_evict(victim)
        assert victims[-1] == key(0)


class TestClock:
    def test_second_chance(self):
        policy = ClockPolicy()
        for n in range(3):
            policy.on_admit(key(n))
        # All reference bits set; first sweep clears 0,1,2, then evicts 0.
        assert policy.choose_victim(always) == key(0)

    def test_recently_hit_survives_one_sweep(self):
        policy = ClockPolicy()
        for n in range(2):
            policy.on_admit(key(n))
        first = policy.choose_victim(always)
        policy.on_evict(first)
        policy.on_admit(key(2))
        policy.on_hit(key(2))
        second = policy.choose_victim(always)
        assert second != key(2) or second is not None

    def test_empty_ring(self):
        assert ClockPolicy().choose_victim(always) is None


class TestLruK:
    def test_pages_without_k_references_evicted_first(self):
        policy = LruKPolicy(k=2)
        policy.on_admit(key(0))
        policy.on_hit(key(0))  # 0 now has 2 references
        policy.on_admit(key(1))  # 1 has only 1
        assert policy.choose_victim(always) == key(1)

    def test_oldest_kth_reference_evicted(self):
        policy = LruKPolicy(k=2)
        policy.on_admit(key(0))   # 0: refs at 1
        policy.on_hit(key(0))     # 0: refs at 1,2
        policy.on_admit(key(1))   # 1: refs at 3
        policy.on_hit(key(1))     # 1: refs at 3,4
        policy.on_hit(key(0))     # 0: refs at 2,5 -> kth-recent = 2
        # 0's K-th most recent reference (t=2) is older than 1's (t=3),
        # so 0 has the larger backward K-distance and is the victim.
        assert policy.choose_victim(always) == key(0)

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            LruKPolicy(k=0)


class TestTwoQ:
    def test_first_admit_goes_to_a1in(self):
        policy = TwoQPolicy(capacity=8)
        policy.on_admit(key(0))
        assert policy.queue_sizes()["a1in"] == 1

    def test_ghost_readmit_promotes_to_am(self):
        policy = TwoQPolicy(capacity=8)
        policy.on_admit(key(0))
        policy.on_evict(key(0))  # moves identity to a1out
        assert policy.queue_sizes()["a1out"] == 1
        policy.on_admit(key(0))  # ghost hit
        sizes = policy.queue_sizes()
        assert sizes["am"] == 1
        assert sizes["a1out"] == 0

    def test_a1in_preferred_victim_when_full(self):
        policy = TwoQPolicy(capacity=4, kin_fraction=0.25)
        # Promote key 0 into Am via the ghost path.
        policy.on_admit(key(0))
        policy.on_evict(key(0))
        policy.on_admit(key(0))
        for n in range(1, 4):
            policy.on_admit(key(n))
        assert policy.choose_victim(always) == key(1)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TwoQPolicy(capacity=1)
        with pytest.raises(ValueError):
            TwoQPolicy(capacity=8, kin_fraction=1.5)


class TestLfu:
    def test_least_frequent_evicted(self):
        policy = LfuPolicy()
        policy.on_admit(key(0))
        policy.on_hit(key(0))
        policy.on_hit(key(0))
        policy.on_admit(key(1))
        policy.on_hit(key(1))
        policy.on_admit(key(2))
        assert policy.choose_victim(always) == key(2)

    def test_frequency_tie_broken_by_recency(self):
        policy = LfuPolicy()
        policy.on_admit(key(0))
        policy.on_admit(key(1))
        assert policy.choose_victim(always) == key(0)


class TestArc:
    def test_first_access_lands_in_t1(self):
        policy = ArcPolicy(capacity=8)
        policy.on_admit(key(0))
        assert policy.list_sizes()["t1"] == 1

    def test_hit_promotes_to_t2(self):
        policy = ArcPolicy(capacity=8)
        policy.on_admit(key(0))
        policy.on_hit(key(0))
        sizes = policy.list_sizes()
        assert sizes["t2"] == 1
        assert sizes["t1"] == 0

    def test_ghost_hit_in_b1_grows_p(self):
        policy = ArcPolicy(capacity=8)
        policy.on_admit(key(0))
        policy.on_evict(key(0))  # to B1
        p_before = policy.p
        policy.on_admit(key(0))  # ghost hit
        assert policy.p > p_before
        assert policy.list_sizes()["t2"] == 1

    def test_ghost_hit_in_b2_shrinks_p(self):
        policy = ArcPolicy(capacity=8)
        policy.p = 4.0
        policy.on_admit(key(0))
        policy.on_hit(key(0))  # into T2
        policy.on_evict(key(0))  # to B2
        policy.on_admit(key(0))  # ghost hit in B2
        assert policy.p < 4.0

    def test_prefers_t1_when_above_target(self):
        policy = ArcPolicy(capacity=4)
        policy.p = 0.0
        for n in range(3):
            policy.on_admit(key(n))
        victim = policy.choose_victim(always)
        assert victim == key(0)  # LRU end of T1

    def test_ghost_lists_bounded(self):
        policy = ArcPolicy(capacity=4)
        for n in range(20):
            policy.on_admit(key(n))
            policy.on_evict(key(n))
        sizes = policy.list_sizes()
        assert sizes["b1"] + sizes["b2"] <= 2 * 4
