"""Unit and property tests for deterministic page data generation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.datagen import PageGenerator
from repro.storage.schema import ColumnSpec, make_schema


def schema():
    return make_schema(
        "t",
        [
            ColumnSpec("id", "sequence"),
            ColumnSpec("qty", "int_uniform", 1, 50),
            ColumnSpec("price", "float_uniform", 10.0, 20.0),
            ColumnSpec("flag", "choice", categories=("a", "b")),
            ColumnSpec("day", "clustered", 0.0, 100.0),
        ],
        rows_per_page=64,
    )


class TestDeterminism:
    def test_same_page_identical_across_generators(self):
        gen1 = PageGenerator(schema(), total_pages=10, seed=7)
        gen2 = PageGenerator(schema(), total_pages=10, seed=7)
        for col in ("id", "qty", "price"):
            np.testing.assert_array_equal(gen1.page(3)[col], gen2.page(3)[col])

    def test_different_seed_differs(self):
        gen1 = PageGenerator(schema(), total_pages=10, seed=1)
        gen2 = PageGenerator(schema(), total_pages=10, seed=2)
        assert not np.array_equal(gen1.page(0)["qty"], gen2.page(0)["qty"])

    def test_different_pages_differ(self):
        gen = PageGenerator(schema(), total_pages=10, seed=1)
        assert not np.array_equal(gen.page(0)["qty"], gen.page(1)["qty"])

    def test_cache_returns_same_object(self):
        gen = PageGenerator(schema(), total_pages=10, seed=1)
        assert gen.page(0) is gen.page(0)

    def test_cache_eviction_still_deterministic(self):
        gen = PageGenerator(schema(), total_pages=300, seed=1, cache_pages=4)
        first = gen.page(0)["qty"].copy()
        for page in range(1, 200):
            gen.page(page)
        np.testing.assert_array_equal(gen.page(0)["qty"], first)


class TestColumnSemantics:
    def test_page_out_of_range(self):
        gen = PageGenerator(schema(), total_pages=10, seed=1)
        with pytest.raises(IndexError):
            gen.page(10)
        with pytest.raises(IndexError):
            gen.page(-1)

    def test_sequence_is_global_row_id(self):
        gen = PageGenerator(schema(), total_pages=10, seed=1)
        page2 = gen.page(2)["id"]
        assert page2[0] == 2 * 64
        np.testing.assert_array_equal(page2, np.arange(128, 192))

    def test_int_uniform_bounds(self):
        gen = PageGenerator(schema(), total_pages=10, seed=1)
        qty = gen.page(5)["qty"]
        assert qty.min() >= 1
        assert qty.max() <= 50

    def test_float_uniform_bounds(self):
        gen = PageGenerator(schema(), total_pages=10, seed=1)
        price = gen.page(5)["price"]
        assert price.min() >= 10.0
        assert price.max() < 20.0

    def test_choice_categories(self):
        gen = PageGenerator(schema(), total_pages=10, seed=1)
        assert set(gen.page(0)["flag"]) <= {"a", "b"}

    def test_clustered_monotone_within_page(self):
        gen = PageGenerator(schema(), total_pages=10, seed=1)
        day = gen.page(4)["day"]
        assert np.all(np.diff(day) >= 0)

    def test_clustered_monotone_across_pages(self):
        """The clustering invariant: the last value of page p never exceeds
        the first value of page p+1."""
        gen = PageGenerator(schema(), total_pages=10, seed=1)
        for page in range(9):
            assert gen.page(page)["day"][-1] <= gen.page(page + 1)["day"][0]

    def test_clustered_values_in_page_slice(self):
        gen = PageGenerator(schema(), total_pages=10, seed=1)
        day = gen.page(3)["day"]
        assert day.min() >= 100.0 * 3 / 10
        assert day.max() <= 100.0 * 4 / 10


class TestClusteredProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        total_pages=st.integers(min_value=2, max_value=40),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_whole_column_globally_sorted(self, total_pages, seed):
        gen = PageGenerator(schema(), total_pages=total_pages, seed=seed)
        values = np.concatenate([gen.page(p)["day"] for p in range(total_pages)])
        assert np.all(np.diff(values) >= 0)
