"""Unit tests for the metrics layer."""

import pytest

from repro.metrics.collector import MetricsCollector, QueryRecord
from repro.metrics.cpu import compute_cpu_breakdown
from repro.metrics.report import (
    fleet_aggregate_row,
    format_series,
    format_service_table,
    format_table,
    percent_gain,
    percentile,
)
from repro.sim.timeline import StepTimeline


def record(stream=0, name="Q1", start=0.0, end=1.0):
    return QueryRecord(
        stream_id=stream, query_name=name, started_at=start, finished_at=end,
        pages_scanned=10, cpu_seconds=0.1, throttle_seconds=0.0,
    )


class TestCollector:
    def test_elapsed(self):
        assert record(start=1.0, end=3.5).elapsed == pytest.approx(2.5)

    def test_by_stream_and_name(self):
        collector = MetricsCollector()
        collector.record_query(record(stream=0, name="Q1"))
        collector.record_query(record(stream=1, name="Q1"))
        collector.record_query(record(stream=0, name="Q2"))
        assert len(collector.by_stream()[0]) == 2
        assert len(collector.by_query_name()["Q1"]) == 2

    def test_stream_elapsed_spans_queries(self):
        collector = MetricsCollector()
        collector.record_query(record(stream=0, start=1.0, end=2.0))
        collector.record_query(record(stream=0, start=3.0, end=7.0))
        assert collector.stream_elapsed(0) == pytest.approx(6.0)

    def test_stream_elapsed_unknown_raises(self):
        with pytest.raises(KeyError):
            MetricsCollector().stream_elapsed(0)

    def test_mean_query_elapsed(self):
        collector = MetricsCollector()
        collector.record_query(record(name="Q6", start=0.0, end=1.0))
        collector.record_query(record(name="Q6", start=0.0, end=3.0))
        assert collector.mean_query_elapsed("Q6") == pytest.approx(2.0)

    def test_makespan(self):
        collector = MetricsCollector()
        assert collector.makespan() == 0.0
        collector.record_query(record(start=1.0, end=2.0))
        collector.record_query(record(start=0.5, end=4.0))
        assert collector.makespan() == pytest.approx(3.5)


class TestCpuBreakdown:
    def test_fractions_sum_to_one(self):
        cpu = StepTimeline()
        cpu.record(0.0, 2)
        cpu.record(5.0, 0)
        disk = StepTimeline()
        disk.record(0.0, 1)
        disk.record(8.0, 0)
        breakdown = compute_cpu_breakdown(cpu, disk, cores=4, until=10.0,
                                          io_requests=10, syscall_cost=0.01)
        total = (breakdown.user + breakdown.system + breakdown.idle
                 + breakdown.iowait)
        assert total == pytest.approx(1.0)

    def test_fully_busy_is_all_user(self):
        cpu = StepTimeline(initial=4)
        disk = StepTimeline()
        breakdown = compute_cpu_breakdown(cpu, disk, cores=4, until=10.0)
        assert breakdown.user == pytest.approx(1.0)
        assert breakdown.iowait == 0.0

    def test_idle_with_pending_io_is_iowait(self):
        cpu = StepTimeline(initial=0)
        disk = StepTimeline(initial=1)
        breakdown = compute_cpu_breakdown(cpu, disk, cores=2, until=10.0)
        assert breakdown.iowait == pytest.approx(1.0)
        assert breakdown.idle == 0.0

    def test_idle_without_io_is_idle(self):
        cpu = StepTimeline(initial=0)
        disk = StepTimeline(initial=0)
        breakdown = compute_cpu_breakdown(cpu, disk, cores=2, until=10.0)
        assert breakdown.idle == pytest.approx(1.0)

    def test_mixed_timelines(self):
        # CPU busy 1 of 2 cores for [0,4); disk busy [2,6); until=8.
        cpu = StepTimeline()
        cpu.record(0.0, 1)
        cpu.record(4.0, 0)
        disk = StepTimeline()
        disk.record(2.0, 1)
        disk.record(6.0, 0)
        b = compute_cpu_breakdown(cpu, disk, cores=2, until=8.0)
        assert b.user == pytest.approx(4.0 / 16.0)
        # iowait: [2,4): 1 idle core * 2s; [4,6): 2 idle * 2s = 6 core-s.
        assert b.iowait == pytest.approx(6.0 / 16.0)

    def test_system_time_shaved_from_iowait(self):
        cpu = StepTimeline(initial=0)
        disk = StepTimeline(initial=1)
        b = compute_cpu_breakdown(cpu, disk, cores=1, until=10.0,
                                  io_requests=100, syscall_cost=0.01)
        assert b.system == pytest.approx(0.1)
        assert b.iowait == pytest.approx(0.9)

    def test_validation(self):
        with pytest.raises(ValueError):
            compute_cpu_breakdown(StepTimeline(), StepTimeline(), cores=0, until=1.0)
        with pytest.raises(ValueError):
            compute_cpu_breakdown(StepTimeline(), StepTimeline(), cores=1, until=0.0)

    def test_as_dict(self):
        b = compute_cpu_breakdown(StepTimeline(), StepTimeline(), cores=1, until=1.0)
        assert set(b.as_dict()) == {"user", "system", "idle", "iowait"}


class TestReport:
    def test_percent_gain_positive_for_improvement(self):
        assert percent_gain(100.0, 79.0) == pytest.approx(21.0)

    def test_percent_gain_negative_for_regression(self):
        assert percent_gain(100.0, 110.0) == pytest.approx(-10.0)

    def test_percent_gain_zero_base(self):
        assert percent_gain(0.0, 5.0) == 0.0

    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bbb", 2.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]
        assert "1.500" in lines[2]

    def test_format_table_row_width_validated(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "extra"]])

    def test_format_series(self):
        text = format_series("reads", [1.0, 2.0, 4.0])
        assert "reads" in text
        assert text.count("\n") == 3


class TestPercentile:
    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], -1)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_single_value_is_every_percentile(self):
        for q in (0, 50, 95, 100):
            assert percentile([7.0], q) == 7.0

    def test_endpoints_are_min_and_max(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0

    def test_interpolates_between_order_statistics(self):
        # Nearest-rank would give 2.0 for p50 of [1, 2]; interpolation
        # lands between the bracketing order statistics.
        assert percentile([1.0, 2.0], 50) == pytest.approx(1.5)
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_small_sample_tail_percentiles_distinct(self):
        # The regression this fixes: with nearest-rank only, p95 and p99
        # collapse to the max on small samples.
        values = [1.0, 2.0, 3.0, 4.0, 100.0]
        assert percentile(values, 95) < percentile(values, 99) < 100.0

    def test_matches_numpy_linear_method(self):
        import numpy as np

        values = [3.1, 0.2, 9.7, 4.4, 5.0, 1.8, 2.2]
        for q in (10, 25, 50, 75, 90, 95, 99):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q))
            )

    def test_input_order_irrelevant(self):
        assert percentile([3.0, 1.0, 2.0], 50) == percentile([1.0, 2.0, 3.0], 50)


class TestFormatServiceTable:
    ROW = {
        "class": "interactive",
        "n_arrived": 10,
        "n_completed": 9,
        "n_abandoned": 1,
        "wait_p50": 0.01,
        "wait_p99": 0.05,
        "latency_p50": 0.2,
        "latency_p95": 0.4,
        "latency_p99": 0.5,
        "throughput": 3.2,
        "slo_attainment": 0.925,
    }

    def test_headers_and_values_rendered(self):
        text = format_service_table([self.ROW])
        lines = text.splitlines()
        assert lines[0].split() == [
            "class", "arrived", "done", "abandoned", "wait_p50", "wait_p99",
            "lat_p50", "lat_p95", "lat_p99", "qps", "slo%",
        ]
        assert "interactive" in lines[2]
        assert "92.5" in lines[2]  # slo_attainment scaled to percent

    def test_missing_and_none_render_as_dash(self):
        row = dict(self.ROW, slo_attainment=None)
        del row["wait_p99"]
        text = format_service_table([row]).splitlines()[2]
        assert text.rstrip().endswith("-")
        assert text.count("-") >= 2

    def test_class_metrics_dict_is_accepted(self):
        from repro.service.metrics import ClassMetrics

        metrics = ClassMetrics(name="batch", n_arrived=3, n_completed=3)
        text = format_service_table([metrics.as_dict()])
        assert "batch" in text

    def test_zero_completions_dash_latency_columns(self):
        """A starved class must not print zero latency/qps/SLO as if it
        had measured them."""
        row = dict(self.ROW, n_completed=0, n_abandoned=10,
                   latency_p50=0.0, latency_p95=0.0, latency_p99=0.0,
                   throughput=0.0, slo_attainment=0.0)
        body = format_service_table([row]).splitlines()[2]
        cells = body.split()
        # class arrived done abandoned wait50 wait99 then 5 dashes
        assert cells[2] == "0"
        assert cells[6:] == ["-", "-", "-", "-", "-"]
        # Wait columns still render: the class did arrive and queue.
        assert cells[4] != "-" and cells[5] != "-"

    def test_zero_arrivals_dash_wait_columns_too(self):
        row = dict(self.ROW, n_arrived=0, n_completed=0, n_abandoned=0,
                   wait_p50=0.0, wait_p99=0.0)
        body = format_service_table([row]).splitlines()[2]
        assert body.split()[4:] == ["-"] * 7

    def test_fleet_row_is_set_off_by_a_rule(self):
        fleet = dict(self.ROW, **{"class": "FLEET"})
        lines = format_service_table(
            [self.ROW, self.ROW, fleet], fleet_row=True
        ).splitlines()
        assert lines[-2] == lines[1]  # repeated header rule
        assert lines[-1].startswith("FLEET")


class TestFleetAggregateRow:
    ROWS = [
        {"class": "c", "n_arrived": 10, "n_completed": 8, "n_abandoned": 2,
         "wait_p50": 0.1, "wait_p99": 0.3, "latency_p50": 1.0,
         "latency_p95": 2.0, "latency_p99": 3.0, "throughput": 4.0,
         "slo_attainment": 1.0},
        {"class": "c", "n_arrived": 30, "n_completed": 24, "n_abandoned": 6,
         "wait_p50": 0.3, "wait_p99": 0.5, "latency_p50": 2.0,
         "latency_p95": 3.0, "latency_p99": 4.0, "throughput": 6.0,
         "slo_attainment": 0.5},
    ]

    def test_counts_sum_and_throughput_sums(self):
        row = fleet_aggregate_row(self.ROWS)
        assert row["class"] == "FLEET"
        assert row["n_arrived"] == 40
        assert row["n_completed"] == 32
        assert row["n_abandoned"] == 8
        assert row["throughput"] == pytest.approx(10.0)

    def test_percentiles_completion_weighted(self):
        row = fleet_aggregate_row(self.ROWS)
        # latency weighted by completions: (1*8 + 2*24) / 32
        assert row["latency_p50"] == pytest.approx(1.75)
        # waits weighted by arrivals: (0.1*10 + 0.3*30) / 40
        assert row["wait_p50"] == pytest.approx(0.25)

    def test_slo_completion_weighted(self):
        row = fleet_aggregate_row(self.ROWS)
        assert row["slo_attainment"] == pytest.approx((1.0 * 8 + 0.5 * 24) / 32)

    def test_slo_none_when_no_row_carries_one(self):
        rows = [dict(r, slo_attainment=None) for r in self.ROWS]
        assert fleet_aggregate_row(rows)["slo_attainment"] is None

    def test_custom_label_and_empty_sample_safety(self):
        row = fleet_aggregate_row(
            [{"class": "c", "n_arrived": 0, "n_completed": 0}],
            label="TOTAL",
        )
        assert row["class"] == "TOTAL"
        assert row["latency_p50"] == 0.0
        assert row["slo_attainment"] is None
