"""Unit and property tests for scan-state position arithmetic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scan_state import ScanDescriptor, ScanState


def make_state(first=0, last=99, start=0, speed=100.0, scan_id=0):
    descriptor = ScanDescriptor(
        table_name="t", first_page=first, last_page=last, estimated_speed=speed
    )
    return ScanState(
        scan_id=scan_id,
        descriptor=descriptor,
        start_page=start,
        start_time=0.0,
        speed=speed,
    )


class TestDescriptor:
    def test_range_pages(self):
        desc = ScanDescriptor("t", 10, 19, estimated_speed=50.0)
        assert desc.range_pages == 10

    def test_estimated_total_time(self):
        desc = ScanDescriptor("t", 0, 99, estimated_speed=50.0)
        assert desc.estimated_total_time == pytest.approx(2.0)

    def test_estimated_pages_override(self):
        desc = ScanDescriptor("t", 0, 99, estimated_speed=50.0, estimated_pages=50)
        assert desc.estimated_total_time == pytest.approx(1.0)

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            ScanDescriptor("t", 5, 4, estimated_speed=1.0)

    def test_bad_speed_rejected(self):
        with pytest.raises(ValueError):
            ScanDescriptor("t", 0, 9, estimated_speed=0.0)

    def test_estimated_pages_zero_means_zero_time(self):
        """Regression: an explicit estimate of 0 pages is falsy but must
        not silently fall back to the full range."""
        desc = ScanDescriptor("t", 0, 99, estimated_speed=50.0,
                              estimated_pages=0)
        assert desc.estimated_total_time == 0.0

    def test_negative_estimated_pages_rejected(self):
        with pytest.raises(ValueError):
            ScanDescriptor("t", 0, 99, estimated_speed=50.0,
                           estimated_pages=-1)


class TestPosition:
    def test_starts_at_start_page(self):
        state = make_state(start=40)
        assert state.position == 40

    def test_advances_with_pages_scanned(self):
        state = make_state(start=40)
        state.pages_scanned = 10
        assert state.position == 50

    def test_wraps_to_range_start(self):
        state = make_state(first=0, last=99, start=90)
        state.pages_scanned = 15  # 90..99 then wrap to 0..4
        assert state.position == 5
        assert state.wrapped

    def test_not_wrapped_before_range_end(self):
        state = make_state(start=90)
        state.pages_scanned = 9
        assert state.position == 99
        assert not state.wrapped

    def test_offset_range(self):
        state = make_state(first=20, last=29, start=25)
        state.pages_scanned = 7  # 25..29 then 20..21
        assert state.position == 22

    def test_remaining_pages(self):
        state = make_state()
        state.pages_scanned = 30
        assert state.remaining_pages == 70

    def test_remaining_never_negative(self):
        state = make_state(first=0, last=9)
        state.pages_scanned = 10
        assert state.remaining_pages == 0


class TestDistance:
    def test_forward_distance_simple(self):
        a = make_state(start=10, scan_id=0)
        b = make_state(start=30, scan_id=1)
        assert a.forward_distance_to(b, table_pages=100) == 20
        assert b.forward_distance_to(a, table_pages=100) == 80

    def test_forward_distance_same_position(self):
        a = make_state(start=10, scan_id=0)
        b = make_state(start=10, scan_id=1)
        assert a.forward_distance_to(b, table_pages=100) == 0

    @settings(max_examples=100, deadline=None)
    @given(
        pos_a=st.integers(min_value=0, max_value=99),
        pos_b=st.integers(min_value=0, max_value=99),
    )
    def test_distances_sum_to_table_size_or_zero(self, pos_a, pos_b):
        a = make_state(start=pos_a, scan_id=0)
        b = make_state(start=pos_b, scan_id=1)
        d_ab = a.forward_distance_to(b, table_pages=100)
        d_ba = b.forward_distance_to(a, table_pages=100)
        if pos_a == pos_b:
            assert d_ab == d_ba == 0
        else:
            assert d_ab + d_ba == 100


class TestPositionProperty:
    @settings(max_examples=100, deadline=None)
    @given(
        first=st.integers(min_value=0, max_value=50),
        length=st.integers(min_value=1, max_value=100),
        start_offset=st.integers(min_value=0, max_value=99),
        scanned=st.integers(min_value=0, max_value=300),
    )
    def test_position_always_inside_range(self, first, length, start_offset, scanned):
        last = first + length - 1
        start = first + (start_offset % length)
        state = make_state(first=first, last=last, start=start)
        state.pages_scanned = scanned
        assert first <= state.position <= last
