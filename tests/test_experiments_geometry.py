"""Tests for the staggered experiments' scale-invariant geometry."""

import pytest

from repro.experiments.experiments import _staggered_query
from repro.experiments.harness import (
    ExperimentSettings,
    expected_pool_pages,
    expected_table_pages,
)
from repro.workloads.tpch_schema import DATE_RANGE_DAYS


class TestStaggeredGeometry:
    @pytest.mark.parametrize("scale", [0.1, 0.25, 0.5, 1.0])
    def test_q6_range_exceeds_pool_at_any_scale(self, scale):
        """The E2 query's scanned range must stay a multiple of the pool,
        or the experiment degenerates into free caching."""
        settings = ExperimentSettings(scale=scale)
        spec = _staggered_query("Q6", settings)
        lo, hi = spec.steps[0].cluster_range
        fraction = (hi - lo) / DATE_RANGE_DAYS
        lineitem = expected_table_pages(settings, "lineitem")
        pool = expected_pool_pages(settings)
        scanned_pages = fraction * lineitem
        assert scanned_pages >= 1.5 * pool or fraction >= 0.95

    def test_q6_range_targets_recent_data(self):
        spec = _staggered_query("Q6", ExperimentSettings(scale=0.25))
        _lo, hi = spec.steps[0].cluster_range
        assert hi == DATE_RANGE_DAYS  # the warehouse's newest data

    def test_other_templates_pass_through(self):
        settings = ExperimentSettings(scale=0.25)
        spec = _staggered_query("Q1", settings)
        assert spec.name == "Q1"

    def test_q6_spec_has_io_bound_shape(self):
        """One light-predicate lineitem step with a single aggregate."""
        spec = _staggered_query("Q6", ExperimentSettings(scale=0.25))
        assert len(spec.steps) == 1
        step = spec.steps[0]
        assert step.table == "lineitem"
        assert step.extra_units_per_row == 0.0
        assert len(step.aggregates) == 1
