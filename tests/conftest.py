"""Shared fixtures: tiny databases and helpers used across the suite."""

from __future__ import annotations

import os

import pytest

from repro.buffer.pool import BufferPool
from repro.disk.device import Disk
from repro.disk.geometry import DiskGeometry
from repro.engine.database import Database, SystemConfig
from repro.core.config import SharingConfig
from repro.sim.kernel import Simulator
from repro.workloads.synthetic import simple_table_schema


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--regen-golden", action="store_true", default=False,
        help="rewrite tests/golden/ reference files from the current run",
    )


@pytest.fixture
def regen_golden(request: pytest.FixtureRequest) -> bool:
    """True when golden files should be rewritten instead of compared.

    Enabled by ``pytest --regen-golden`` or ``REPRO_REGEN_GOLDEN=1``.
    """
    return bool(
        request.config.getoption("--regen-golden")
        or os.environ.get("REPRO_REGEN_GOLDEN")
    )


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def disk(sim: Simulator) -> Disk:
    """A small disk for unit tests."""
    return Disk(sim, DiskGeometry(total_pages=4096))


def make_pool(sim: Simulator, disk: Disk, capacity: int = 32,
              policy=None) -> BufferPool:
    """A pool whose page keys map 1:1 onto disk addresses."""
    return BufferPool(
        sim, disk, capacity=capacity, address_of=lambda key: key.page_no,
        policy=policy,
    )


def make_database(
    n_pages: int = 128,
    pool_pages: int = 32,
    sharing: SharingConfig = None,
    n_cpus: int = 2,
    table_name: str = "t",
    extent_size: int = 8,
    **config_kwargs,
) -> Database:
    """A one-table database, opened and ready for scans."""
    config = SystemConfig(
        n_cpus=n_cpus,
        pool_pages=pool_pages,
        min_pool_pages=pool_pages,
        sharing=sharing or SharingConfig(),
        extent_size=extent_size,
        **config_kwargs,
    )
    db = Database(config)
    db.create_table(simple_table_schema(table_name), n_pages=n_pages)
    return db.open()


@pytest.fixture
def small_db() -> Database:
    """A small single-table database with sharing enabled."""
    return make_database()


@pytest.fixture
def base_db() -> Database:
    """Same database with the sharing mechanism disabled."""
    return make_database(sharing=SharingConfig(enabled=False))
