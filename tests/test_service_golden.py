"""Golden-result test for one pinned open-arrival service scenario.

``sv-steady`` at scale 0.1 / seed 42 — a Poisson interactive class over
two closed batch streams — is replayed on every test run and compared
field-by-field (plus by metrics digest) against a reference checked into
``tests/golden/``.  Any change that moves a single admission decision,
arrival draw, or engine counter fails here with the exact diverging
field.

To bless an intentional change::

    PYTHONPATH=src python -m pytest tests/test_service_golden.py --regen-golden

then commit the updated golden file alongside the code change.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.harness import ExperimentSettings
from repro.experiments.runner import (
    ExperimentTask,
    execute_task,
    first_divergence,
)

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
GOLDEN_FILE = GOLDEN_DIR / "service_open_arrivals.json"

SCENARIO = ExperimentSettings(scale=0.1, seed=42)


def _run_scenario() -> dict:
    result = execute_task(ExperimentTask("sv-steady", SCENARIO))
    return {
        "scenario": {
            "experiment": "sv-steady",
            "scale": SCENARIO.scale,
            "seed": SCENARIO.seed,
        },
        "digest": result.digest,
        "metrics": result.metrics,
    }


def test_open_arrival_service_matches_golden(regen_golden):
    actual = _run_scenario()
    if regen_golden or not GOLDEN_FILE.exists():
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        GOLDEN_FILE.write_text(
            json.dumps(actual, indent=2, sort_keys=True) + "\n"
        )
        assert GOLDEN_FILE.exists()
        return
    golden = json.loads(GOLDEN_FILE.read_text())
    divergence = first_divergence(golden, actual)
    assert divergence is None, (
        f"sv-steady diverged from tests/golden/{GOLDEN_FILE.name} at "
        f"{divergence}; if this change is intentional, regenerate with "
        f"--regen-golden (or REPRO_REGEN_GOLDEN=1) and commit the new "
        f"golden file"
    )


def test_service_golden_file_is_committed():
    """The reference must exist in the tree, not be a regen artifact."""
    assert GOLDEN_FILE.exists(), (
        "tests/golden/service_open_arrivals.json is missing; run with "
        "--regen-golden once and commit it"
    )
    golden = json.loads(GOLDEN_FILE.read_text())
    assert golden["scenario"]["experiment"] == "sv-steady"
    assert len(golden["digest"]) == 64  # full sha256 metrics digest
    assert golden["metrics"]["drained"] is True
    assert golden["metrics"]["n_completed"] > 0
    assert set(golden["metrics"]["classes"]) == {"interactive", "batch"}
