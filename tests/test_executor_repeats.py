"""Tests for repeated scan steps (nested-loop-join inner rescans)."""

import pytest

from repro.core.config import SharingConfig
from repro.engine.executor import execute_query, run_workload
from repro.engine.query import QuerySpec, ScanStep

from tests.conftest import make_database


def repeated_query(repeats=3):
    return QuerySpec(
        name="nlj-inner",
        steps=(ScanStep(table="t", repeats=repeats, label="inner"),),
    )


class TestRepeats:
    def test_validation(self):
        with pytest.raises(ValueError):
            ScanStep(table="t", repeats=0)

    def test_step_executed_n_times(self, small_db):
        proc = small_db.sim.spawn(execute_query(small_db, repeated_query(3)))
        small_db.sim.run()
        result = proc.completion.value
        assert len(result.steps) == 3
        assert [s.label for s in result.steps] == [
            "inner#0", "inner#1", "inner#2"
        ]
        assert result.pages_scanned == 3 * 128

    def test_single_repeat_keeps_plain_label(self, small_db):
        proc = small_db.sim.spawn(
            execute_query(small_db, QuerySpec(
                name="q", steps=(ScanStep(table="t", label="only"),)
            ))
        )
        small_db.sim.run()
        assert [s.label for s in proc.completion.value.steps] == ["only"]

    def test_sharing_helps_repeated_inner_scans(self):
        """The sequel's NLJ observation: an inner scan repeated back to
        back re-reads its range; last-finished placement lets the next
        repetition harvest the pool leftovers."""
        reads = {}
        for enabled in (False, True):
            db = make_database(n_pages=96, pool_pages=48,
                               sharing=SharingConfig(enabled=enabled))
            run_workload(db, [[repeated_query(4)]])
            reads[enabled] = db.disk.stats.pages_read
        assert reads[True] < reads[False]

    def test_repeated_results_all_equal(self, small_db):
        proc = small_db.sim.spawn(execute_query(small_db, repeated_query(3)))
        small_db.sim.run()
        values = [step.values for step in proc.completion.value.steps]
        assert values[0] == values[1] == values[2]
