"""Unit tests for generator-based processes."""

import pytest

from repro.sim.events import Interrupt, SimulationError
from repro.sim.kernel import Simulator


class TestProcessBasics:
    def test_process_runs_to_completion(self, sim):
        def worker(sim):
            yield sim.timeout(1.0)
            yield sim.timeout(2.0)
            return "done"

        proc = sim.spawn(worker(sim))
        sim.run()
        assert not proc.alive
        assert proc.completion.value == "done"
        assert sim.now == 3.0

    def test_process_receives_event_value(self, sim):
        def worker(sim):
            value = yield sim.timeout(1.0, value="payload")
            return value

        proc = sim.spawn(worker(sim))
        sim.run()
        assert proc.completion.value == "payload"

    def test_requires_generator(self, sim):
        with pytest.raises(SimulationError):
            sim.spawn(lambda: None)  # not a generator

    def test_yielding_non_event_raises(self, sim):
        def bad(sim):
            yield 42

        sim.spawn(bad(sim))
        with pytest.raises(SimulationError):
            sim.run()

    def test_processes_interleave_by_time(self, sim):
        order = []

        def worker(sim, name, delay):
            yield sim.timeout(delay)
            order.append(name)

        sim.spawn(worker(sim, "slow", 2.0))
        sim.spawn(worker(sim, "fast", 1.0))
        sim.run()
        assert order == ["fast", "slow"]

    def test_process_can_wait_on_another(self, sim):
        def producer(sim):
            yield sim.timeout(1.0)
            return 99

        def consumer(sim, producer_proc):
            value = yield producer_proc.completion
            return value + 1

        prod = sim.spawn(producer(sim))
        cons = sim.spawn(consumer(sim, prod))
        sim.run()
        assert cons.completion.value == 100

    def test_exception_propagates_through_wait(self, sim):
        def failing(sim):
            ev = sim.event()
            sim.schedule(1.0, lambda: ev.fail(RuntimeError("inner")))
            try:
                yield ev
            except RuntimeError as error:
                return f"caught {error}"

        proc = sim.spawn(failing(sim))
        sim.run()
        assert proc.completion.value == "caught inner"

    def test_process_return_none_by_default(self, sim):
        def worker(sim):
            yield sim.timeout(0.5)

        proc = sim.spawn(worker(sim))
        sim.run()
        assert proc.completion.value is None


class TestInterrupt:
    def test_interrupt_wakes_waiting_process(self, sim):
        finished_at = []

        def sleeper(sim):
            try:
                yield sim.timeout(100.0)
                return "slept"
            except Interrupt as interrupt:
                finished_at.append(sim.now)
                return f"interrupted:{interrupt.cause}"

        proc = sim.spawn(sleeper(sim))

        def interrupter(sim):
            yield sim.timeout(1.0)
            proc.interrupt("wakeup")

        sim.spawn(interrupter(sim))
        sim.run()
        assert proc.completion.value == "interrupted:wakeup"
        # The interrupted process finished at t=1, not t=100 (the abandoned
        # timer still drains through the queue afterwards).
        assert finished_at == [1.0]

    def test_interrupt_finished_process_is_noop(self, sim):
        def quick(sim):
            yield sim.timeout(0.1)

        proc = sim.spawn(quick(sim))
        sim.run()
        proc.interrupt("too late")  # must not raise
        sim.run()

    def test_stale_wakeup_after_interrupt_is_ignored(self, sim):
        """The original timeout firing after an interrupt must not resume
        the process twice."""
        log = []

        def sleeper(sim):
            try:
                yield sim.timeout(5.0)
                log.append("timeout")
            except Interrupt:
                log.append("interrupt")
                yield sim.timeout(10.0)
                log.append("second sleep done")

        proc = sim.spawn(sleeper(sim))

        def interrupter(sim):
            yield sim.timeout(1.0)
            proc.interrupt()

        sim.spawn(interrupter(sim))
        sim.run()
        assert log == ["interrupt", "second sleep done"]
        assert sim.now == 11.0
