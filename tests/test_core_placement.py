"""Unit tests for new-scan placement."""

import pytest

from repro.core.config import SharingConfig
from repro.core.placement import (
    align_to_extent,
    choose_start,
    expected_shared_pages,
)
from repro.core.scan_state import ScanDescriptor, ScanState

EXTENT = 16


def desc(first=0, last=999, speed=100.0):
    return ScanDescriptor("t", first, last, estimated_speed=speed)


def ongoing(scan_id, position, speed=100.0, first=0, last=999, scanned=0):
    state = ScanState(
        scan_id=scan_id,
        descriptor=desc(first, last, speed),
        start_page=position,
        start_time=0.0,
        speed=speed,
    )
    state.pages_scanned = scanned
    return state


class TestSharedPageEstimate:
    def test_candidate_outside_range_scores_zero(self):
        new = desc(first=500, last=999)
        candidate = ongoing(0, position=100)
        assert expected_shared_pages(new, candidate) == 0.0

    def test_equal_speeds_share_full_horizon(self):
        new = desc(first=0, last=999)
        candidate = ongoing(0, position=600)
        # Horizon = min(remaining=1000, phase1=400) = 400, ratio 1.
        assert expected_shared_pages(new, candidate) == pytest.approx(400.0)

    def test_speed_mismatch_discounts(self):
        new = desc(speed=100.0)
        slow = ongoing(0, position=600, speed=25.0)
        assert expected_shared_pages(new, slow) == pytest.approx(100.0)

    def test_candidate_with_little_remaining(self):
        new = desc()
        nearly_done = ongoing(0, position=100, scanned=990)
        assert expected_shared_pages(new, nearly_done) == pytest.approx(10.0)

    def test_finished_candidate_scores_zero(self):
        new = desc()
        candidate = ongoing(0, position=100)
        candidate.finished = True
        assert expected_shared_pages(new, candidate) == 0.0


class TestAlign:
    def test_aligns_down_to_extent(self):
        assert align_to_extent(37, first_page=0, extent_size=16) == 32

    def test_clamped_to_range_start(self):
        assert align_to_extent(37, first_page=35, extent_size=16) == 35

    def test_already_aligned(self):
        assert align_to_extent(32, first_page=0, extent_size=16) == 32


class TestChooseStart:
    def test_no_candidates_starts_at_range_start(self):
        decision = choose_start(desc(), [], SharingConfig(), EXTENT)
        assert decision.start_page == 0
        assert not decision.joined

    def test_joins_best_candidate(self):
        candidates = [
            ongoing(0, position=600, speed=100.0),
            ongoing(1, position=300, speed=10.0),
        ]
        decision = choose_start(desc(speed=100.0), candidates, SharingConfig(), EXTENT)
        assert decision.joined_scan_id == 0
        assert decision.start_page == 592  # 600 aligned down to extent

    def test_respects_min_share_pages(self):
        config = SharingConfig(min_share_pages=500)
        candidates = [ongoing(0, position=800)]  # only ~200 shared pages
        decision = choose_start(desc(), candidates, config, EXTENT)
        assert not decision.joined
        assert decision.start_page == 0

    def test_placement_disabled(self):
        config = SharingConfig(placement_enabled=False)
        candidates = [ongoing(0, position=600)]
        decision = choose_start(desc(), candidates, config, EXTENT)
        assert decision.start_page == 0
        assert not decision.joined

    def test_sharing_disabled(self):
        config = SharingConfig(enabled=False)
        candidates = [ongoing(0, position=600)]
        decision = choose_start(desc(), candidates, config, EXTENT)
        assert decision.start_page == 0

    def test_last_finished_used_when_idle(self):
        decision = choose_start(
            desc(), [], SharingConfig(), EXTENT, last_finished_position=512
        )
        assert decision.joined_last_finished
        assert decision.start_page == 512

    def test_last_finished_outside_range_ignored(self):
        decision = choose_start(
            desc(first=0, last=99), [], SharingConfig(), EXTENT,
            last_finished_position=512,
        )
        assert not decision.joined
        assert decision.start_page == 0

    def test_ongoing_candidate_beats_last_finished(self):
        candidates = [ongoing(0, position=600)]
        decision = choose_start(
            desc(), candidates, SharingConfig(), EXTENT, last_finished_position=512
        )
        assert decision.joined_scan_id == 0

    def test_candidate_outside_new_range_not_joined(self):
        candidates = [ongoing(0, position=900)]
        decision = choose_start(desc(first=0, last=499), candidates,
                                SharingConfig(), EXTENT)
        assert not decision.joined


class TestDegenerateInputs:
    """Guards for inputs the optimizer can legitimately produce: zero
    speed estimates, zero-page predictions, and degenerate extents."""

    def test_zero_speed_candidate_scores_zero(self):
        # The descriptor estimate is validated positive, but the runtime
        # smoothed speed can decay to zero on a stalled scan.
        stalled = ongoing(0, position=600)
        stalled.speed = 0.0
        assert expected_shared_pages(desc(), stalled) == 0.0

    def test_zero_speed_estimate_rejected_at_construction(self):
        with pytest.raises(ValueError):
            desc(speed=0.0)

    def test_estimated_zero_pages_scores_zero(self):
        new = ScanDescriptor("t", 0, 999, estimated_speed=100.0, estimated_pages=0)
        candidate = ongoing(0, position=600)
        assert expected_shared_pages(new, candidate) == 0.0

    def test_candidate_estimated_zero_pages_scores_zero(self):
        candidate = ongoing(0, position=600)
        object.__setattr__(candidate.descriptor, "estimated_pages", 0)
        assert expected_shared_pages(desc(), candidate) == 0.0

    def test_estimated_pages_caps_sharing_horizon(self):
        # The candidate will stop after 100 more pages even though its
        # declared range leaves 400.
        candidate = ongoing(0, position=600, scanned=50)
        object.__setattr__(candidate.descriptor, "estimated_pages", 150)
        assert expected_shared_pages(desc(), candidate) == pytest.approx(100.0)

    def test_exhausted_estimate_scores_zero(self):
        # Already past its prediction: nothing left to share.
        candidate = ongoing(0, position=600, scanned=200)
        object.__setattr__(candidate.descriptor, "estimated_pages", 100)
        assert expected_shared_pages(desc(), candidate) == 0.0

    def test_align_to_zero_extent_is_identity_clamped(self):
        from repro.core.placement import align_to_extent

        assert align_to_extent(37, 0, 0) == 37
        assert align_to_extent(37, 40, 0) == 40

    def test_zero_speed_candidates_never_crash_choose_start(self):
        candidates = []
        for i in range(3):
            stalled = ongoing(i, position=600)
            stalled.speed = 0.0
            candidates.append(stalled)
        decision = choose_start(desc(), candidates, SharingConfig(), EXTENT)
        assert decision.start_page == 0
        assert not decision.joined


try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - optional dependency
    HAVE_HYPOTHESIS = False


if HAVE_HYPOTHESIS:

    class TestPlacementProperties:
        @settings(max_examples=200, deadline=None)
        @given(
            first=st.integers(min_value=0, max_value=500),
            length=st.integers(min_value=1, max_value=500),
            position=st.integers(min_value=0, max_value=999),
            scanned=st.integers(min_value=0, max_value=2000),
            new_speed=st.floats(min_value=1e-3, max_value=1e6),
            cand_speed=st.floats(min_value=0.0, max_value=1e6),
            estimated=st.one_of(st.none(), st.integers(min_value=0, max_value=2000)),
        )
        def test_estimate_is_finite_and_bounded(
            self, first, length, position, scanned, new_speed, cand_speed, estimated
        ):
            new = ScanDescriptor(
                "t", first, first + length - 1,
                estimated_speed=new_speed, estimated_pages=estimated,
            )
            candidate = ongoing(0, position=position % 1000, scanned=scanned)
            candidate.speed = cand_speed
            score = expected_shared_pages(new, candidate)
            assert 0.0 <= score <= candidate.range_pages

        @settings(max_examples=100, deadline=None)
        @given(
            position=st.integers(min_value=0, max_value=999),
            speed=st.floats(min_value=0.0, max_value=1e6),
            extent=st.integers(min_value=0, max_value=64),  # 0 = degenerate
            last_finished=st.one_of(st.none(), st.integers(min_value=0, max_value=999)),
        )
        def test_choose_start_lands_inside_range(
            self, position, speed, extent, last_finished
        ):
            candidate = ongoing(0, position=position)
            candidate.speed = speed
            candidates = [candidate]
            decision = choose_start(
                desc(), candidates, SharingConfig(), extent,
                last_finished_position=last_finished,
                leftover_pages=16,
            )
            assert 0 <= decision.start_page <= 999


class TestEstimateOverflowEdges:
    """Division/overflow edges of expected_shared_pages (bugfix)."""

    def test_overscanned_candidate_scores_zero_not_negative(self):
        # A candidate that wrapped past its declared range has negative
        # remaining_pages; the estimate must clamp to 0.0, not go negative.
        runaway = ongoing(0, position=100, scanned=1500)
        assert expected_shared_pages(desc(), runaway) == 0.0

    def test_infinite_candidate_speed_scores_zero(self):
        stalled = ongoing(0, position=100)
        stalled.speed = float("inf")
        assert expected_shared_pages(desc(), stalled) == 0.0

    def test_both_speeds_infinite_scores_zero_not_nan(self):
        # inf/inf would be NaN; the estimate must short-circuit to 0.0.
        candidate = ongoing(0, position=100, speed=float("inf"))
        score = expected_shared_pages(desc(speed=float("inf")), candidate)
        assert score == 0.0

    def test_nan_candidate_speed_scores_zero(self):
        poisoned = ongoing(0, position=100)
        poisoned.speed = float("nan")
        assert expected_shared_pages(desc(), poisoned) == 0.0


class TestSubExtentTableGuard:
    """choose_start guard for tables smaller than one extent (bugfix)."""

    def test_join_lands_on_exact_position(self):
        new = desc(first=0, last=7)
        candidate = ongoing(0, position=5, first=0, last=7)
        decision = choose_start(
            new, [candidate], SharingConfig(min_share_pages=1),
            extent_size=16, table_pages=8,
        )
        assert decision.joined_scan_id == 0
        # Alignment would snap 5 back to page 0, silently defeating
        # placement; the guard keeps the exact attach position.
        assert decision.start_page == 5

    def test_normal_tables_still_extent_aligned(self):
        decision = choose_start(
            desc(), [ongoing(0, position=200)], SharingConfig(),
            extent_size=16, table_pages=1000,
        )
        assert decision.start_page == 192

    def test_unknown_table_pages_preserves_old_alignment(self):
        decision = choose_start(
            desc(), [ongoing(0, position=200)], SharingConfig(),
            extent_size=16,
        )
        assert decision.start_page == 192
