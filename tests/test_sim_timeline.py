"""Unit and property tests for step timelines."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.timeline import StepTimeline


class TestStepTimeline:
    def test_initial_level(self):
        timeline = StepTimeline(initial=3)
        assert timeline.current_level == 3
        assert timeline.level_at(100.0) == 3

    def test_record_changes_level(self):
        timeline = StepTimeline()
        timeline.record(1.0, 2)
        assert timeline.level_at(0.5) == 0
        assert timeline.level_at(1.0) == 2
        assert timeline.level_at(5.0) == 2

    def test_time_backwards_raises(self):
        timeline = StepTimeline()
        timeline.record(2.0, 1)
        with pytest.raises(ValueError):
            timeline.record(1.0, 2)

    def test_same_instant_update_collapses(self):
        timeline = StepTimeline()
        timeline.record(1.0, 2)
        timeline.record(1.0, 5)
        assert timeline.level_at(1.0) == 5
        assert len(list(timeline.change_points())) == 2

    def test_redundant_level_not_recorded(self):
        timeline = StepTimeline(initial=1)
        timeline.record(1.0, 1)
        assert len(list(timeline.change_points())) == 1

    def test_integral_simple(self):
        timeline = StepTimeline()
        timeline.record(1.0, 2)
        timeline.record(3.0, 0)
        # 0 for [0,1), 2 for [1,3), 0 after.
        assert timeline.integral(5.0) == pytest.approx(4.0)

    def test_integral_with_since(self):
        timeline = StepTimeline(initial=2)
        assert timeline.integral(4.0, since=1.0) == pytest.approx(6.0)

    def test_integral_reversed_bounds_raises(self):
        with pytest.raises(ValueError):
            StepTimeline().integral(1.0, since=2.0)

    def test_bucketed_integrals(self):
        timeline = StepTimeline()
        timeline.record(0.0, 1)
        timeline.record(2.0, 3)
        buckets = timeline.bucketed_integrals(until=4.0, bucket=2.0)
        assert buckets == [pytest.approx(2.0), pytest.approx(6.0)]

    def test_bucket_width_must_be_positive(self):
        with pytest.raises(ValueError):
            StepTimeline().bucketed_integrals(until=1.0, bucket=0.0)

    def test_time_at_or_above(self):
        timeline = StepTimeline()
        timeline.record(1.0, 2)
        timeline.record(2.0, 1)
        timeline.record(3.0, 3)
        assert timeline.time_at_or_above(2, until=4.0) == pytest.approx(2.0)


class TestTimelineProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.001, max_value=10.0),
                st.integers(min_value=0, max_value=8),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_integral_equals_sum_of_buckets(self, steps):
        """Bucketing must partition the integral exactly."""
        timeline = StepTimeline()
        t = 0.0
        for delta, level in steps:
            t += delta
            timeline.record(t, level)
        until = t + 1.0
        total = timeline.integral(until)
        buckets = timeline.bucketed_integrals(until, bucket=0.7)
        assert sum(buckets) == pytest.approx(total, rel=1e-9, abs=1e-9)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.001, max_value=10.0),
                st.integers(min_value=0, max_value=8),
            ),
            min_size=1,
            max_size=30,
        ),
        st.floats(min_value=0.0, max_value=50.0),
    )
    def test_integral_is_monotone_in_upper_bound(self, steps, extra):
        timeline = StepTimeline()
        t = 0.0
        for delta, level in steps:
            t += delta
            timeline.record(t, level)
        assert timeline.integral(t + extra) >= timeline.integral(t) - 1e-12
