"""Golden, determinism, and CLI coverage for the ``pl-*`` experiments.

The head-to-head policy comparison is pinned to a golden metrics file
(regenerate with ``--regen-golden`` / ``REPRO_REGEN_GOLDEN=1``); each
policy's ``pl-mix`` digest must be identical whether the runner executes
serially or with worker processes; and the ``sweep`` command over
``sharing_policy`` must emit the aggregated comparison table.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.policy import SHARING_POLICY_NAMES
from repro.experiments.harness import ExperimentSettings
from repro.experiments.policies import pl_head2head, pl_mix
from repro.experiments.registry import metrics_of
from repro.experiments.runner import first_divergence, run_suite

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
GOLDEN_FILE = GOLDEN_DIR / "policy_head2head.json"

#: Pinned scenario: small enough for the test lane, big enough that the
#: three policies genuinely differentiate (joins, waits, and hit rates
#: all differ at this point).
SCENARIO = ExperimentSettings(scale=0.15, n_streams=2, seed=7)


def test_head2head_matches_golden(regen_golden):
    actual = {
        "scenario": {
            "experiment": "pl-head2head",
            "scale": SCENARIO.scale,
            "n_streams": SCENARIO.n_streams,
            "seed": SCENARIO.seed,
        },
        "metrics": metrics_of(pl_head2head(SCENARIO)),
    }
    if regen_golden or not GOLDEN_FILE.exists():
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        GOLDEN_FILE.write_text(
            json.dumps(actual, indent=2, sort_keys=True) + "\n"
        )
        assert GOLDEN_FILE.exists()
        return
    golden = json.loads(GOLDEN_FILE.read_text())
    divergence = first_divergence(golden, actual)
    assert divergence is None, (
        f"policy head-to-head diverged from tests/golden/{GOLDEN_FILE.name} "
        f"at {divergence}; if intentional, regenerate with --regen-golden "
        f"(or REPRO_REGEN_GOLDEN=1) and commit the new golden file"
    )


def test_head2head_metrics_shape():
    golden = json.loads(GOLDEN_FILE.read_text())
    metrics = golden["metrics"]
    assert set(metrics["policies"]) == set(SHARING_POLICY_NAMES)
    for row in metrics["policies"].values():
        for key in ("makespan", "pages_read", "seeks", "hit_percent",
                    "end_to_end_gain_percent"):
            assert key in row


@pytest.mark.slow
@pytest.mark.parametrize("policy", SHARING_POLICY_NAMES)
def test_pl_mix_digest_stable_under_jobs(policy, tmp_path):
    """Serial and multi-process runs must produce identical digests."""
    settings = SCENARIO.with_(sharing_policy=policy)
    digests = []
    for jobs in (1, 2):
        suite = run_suite(
            settings, experiments=["pl-mix"], jobs=jobs, use_cache=False
        )
        (task,) = suite.tasks
        digests.append(task.digest)
    assert digests[0] == digests[1], (
        f"pl-mix digest for {policy} differs between --jobs 1 and --jobs 2"
    )


def test_pl_mix_runs_under_each_policy():
    for policy in SHARING_POLICY_NAMES:
        metrics = metrics_of(pl_mix(SCENARIO.with_(sharing_policy=policy)))
        assert metrics["policy"] == policy
        assert metrics["makespan"] > 0


@pytest.mark.slow
def test_sweep_emits_policy_comparison_table(capsys, tmp_path):
    code = main([
        "sweep", "pl-mix", "--param", "sharing_policy",
        "--values", ",".join(SHARING_POLICY_NAMES),
        "--scale", "0.15", "--streams", "2", "--seed", "7",
        "--jobs", "1", "--no-cache", "--cache-dir", str(tmp_path),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "=== sharing-policy comparison ===" in out
    for policy in SHARING_POLICY_NAMES:
        assert policy in out


def test_cli_rejects_unknown_sharing_policy():
    with pytest.raises(SystemExit):
        main(["run", "e1", "--sharing-policy", "elevator"])
