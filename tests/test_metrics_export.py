"""Unit tests for result export (JSON/CSV)."""

import csv
import io
import json

import pytest

from repro.core.config import SharingConfig
from repro.engine.executor import run_workload
from repro.metrics.export import (
    comparison_to_dict,
    queries_to_csv,
    series_to_csv,
    workload_to_dict,
    workload_to_json,
)
from repro.workloads.synthetic import uniform_scan_query

from tests.conftest import make_database


@pytest.fixture(scope="module")
def workload():
    db = make_database(sharing=SharingConfig(enabled=False))
    query = uniform_scan_query("t", name="full")
    return run_workload(db, [[query], [query]])


class TestJson:
    def test_dict_has_headline_fields(self, workload):
        data = workload_to_dict(workload, label="Base")
        assert data["label"] == "Base"
        assert data["pages_read"] == workload.pages_read
        assert len(data["streams"]) == 2
        assert data["streams"][0]["queries"][0]["name"] == "full"

    def test_json_round_trips(self, workload):
        text = workload_to_json(workload, label="x")
        parsed = json.loads(text)
        assert parsed["label"] == "x"
        assert parsed["makespan"] == pytest.approx(workload.makespan)

    def test_comparison_dict_gains(self, workload):
        data = comparison_to_dict(workload, workload)
        assert data["end_to_end_gain_percent"] == pytest.approx(0.0)
        assert data["base"]["label"] == "Base"
        assert data["shared"]["label"] == "SS"


class TestCsv:
    def test_queries_csv_rows(self, workload):
        text = queries_to_csv(workload)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0][0] == "stream_id"
        assert len(rows) == 1 + 2  # header + 2 queries
        assert rows[1][1] == "full"

    def test_series_csv_alignment(self):
        text = series_to_csv({"base": [1.0, 2.0, 3.0], "ss": [0.5, 1.5]})
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["bucket", "base", "ss"]
        assert rows[1][1] == "1.000000"
        assert rows[3][2] == ""  # shorter series padded

    def test_empty_series(self):
        assert series_to_csv({}) == ""
