"""Unit tests for disk statistics and trace bucketing."""

import pytest

from repro.disk.stats import DiskStats


class TestDiskStats:
    def test_record_read_accumulates(self):
        stats = DiskStats()
        stats.record_read(time=1.0, n_pages=8, seeked=True, seek_time=0.005,
                          xfer_time=0.002)
        stats.record_read(time=2.0, n_pages=4, seeked=False, seek_time=0.0,
                          xfer_time=0.001)
        assert stats.reads == 2
        assert stats.pages_read == 12
        assert stats.seeks == 1
        assert stats.seek_time == pytest.approx(0.005)
        assert stats.busy_time == pytest.approx(0.008)

    def test_record_write_separate(self):
        stats = DiskStats()
        stats.record_write(time=1.0, n_pages=2, seeked=True, seek_time=0.004,
                           xfer_time=0.001)
        assert stats.writes == 1
        assert stats.pages_written == 2
        assert stats.reads == 0
        assert stats.seeks == 1

    def test_bucket_trace_sums(self):
        stats = DiskStats()
        for t, pages in [(0.1, 4), (0.9, 4), (1.1, 8), (2.9, 2)]:
            stats.record_read(t, pages, seeked=False, seek_time=0, xfer_time=0)
        buckets = stats.pages_read_per_bucket(until=3.0, bucket=1.0)
        assert buckets == [8.0, 8.0, 2.0]

    def test_bucket_clamps_late_events(self):
        stats = DiskStats()
        stats.record_read(5.0, 4, seeked=False, seek_time=0, xfer_time=0)
        buckets = stats.pages_read_per_bucket(until=4.0, bucket=1.0)
        assert sum(buckets) == 4.0  # landed in the last bucket

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            DiskStats().pages_read_per_bucket(until=1.0, bucket=0.0)

    def test_seeks_per_bucket(self):
        stats = DiskStats()
        stats.record_read(0.5, 1, seeked=True, seek_time=0.005, xfer_time=0)
        stats.record_read(1.5, 1, seeked=True, seek_time=0.005, xfer_time=0)
        stats.record_read(1.6, 1, seeked=False, seek_time=0, xfer_time=0)
        assert stats.seeks_per_bucket(until=2.0, bucket=1.0) == [1.0, 1.0]
