"""Cross-module property-based tests (hypothesis).

These drive randomized mini-workloads through the full stack and check
the invariants that must hold for *any* workload, not just the TPC-H
templates: conservation of pages scanned, result determinism, pool
accounting, and grouping/throttling sanity.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import SharingConfig
from repro.core.grouping import form_groups
from repro.core.scan_state import ScanDescriptor, ScanState
from repro.core.throttle import evaluate_throttle
from repro.engine.executor import run_workload
from repro.workloads.synthetic import uniform_scan_query

from tests.conftest import make_database


# Strategy: a small set of scans with fractional ranges and CPU weights.
scan_specs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.75),   # lo fraction
        st.floats(min_value=0.1, max_value=1.0),    # width fraction
        st.floats(min_value=0.0, max_value=20.0),   # cpu units per row
        st.floats(min_value=0.0, max_value=0.05),   # start delay
    ),
    min_size=1,
    max_size=4,
)


def build_streams(specs):
    streams, delays = [], []
    for index, (lo, width, cpu, delay) in enumerate(specs):
        hi = min(1.0, lo + width)
        query = uniform_scan_query("t", lo, hi, cpu_units_per_row=cpu,
                                   name=f"scan{index}")
        streams.append([query])
        delays.append(delay)
    return streams, delays


class TestWorkloadProperties:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(specs=scan_specs)
    def test_pages_scanned_conserved_under_sharing(self, specs):
        """Sharing must change *when* pages are read, never *which*: each
        scan processes exactly its declared range size."""
        streams, delays = build_streams(specs)
        for enabled in (False, True):
            db = make_database(n_pages=64, pool_pages=24,
                               sharing=SharingConfig(enabled=enabled))
            table = db.catalog.table("t")
            result = run_workload(db, streams, stagger_list=delays)
            for stream, spec in zip(result.streams, specs):
                lo, width, _cpu, _delay = spec
                hi = min(1.0, lo + width)
                first, last = table.pages_for_fraction(lo, hi)
                expected = last - first + 1
                assert stream.queries[0].pages_scanned == expected

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(specs=scan_specs)
    def test_results_deterministic(self, specs):
        """Two identical runs produce identical timings and counters."""
        streams, delays = build_streams(specs)

        def run_once():
            db = make_database(n_pages=64, pool_pages=24)
            result = run_workload(db, streams, stagger_list=delays)
            return (
                result.makespan,
                result.pages_read,
                result.seeks,
                [s.finished_at for s in result.streams],
            )

        assert run_once() == run_once()

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(specs=scan_specs)
    def test_pool_accounting_consistent(self, specs):
        """logical = hits + inflight waits + misses; pool never exceeds
        capacity; all pins released at the end."""
        streams, delays = build_streams(specs)
        db = make_database(n_pages=64, pool_pages=24)
        run_workload(db, streams, stagger_list=delays)
        stats = db.pool.stats
        assert stats.logical_reads == stats.hits + stats.inflight_waits + stats.misses
        assert db.pool.resident_count <= db.pool.capacity
        assert db.pool.inflight_count == 0
        for key in db.pool.resident_keys():
            assert not db.pool.frame_of(key).pinned

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(specs=scan_specs)
    def test_sharing_never_amplifies_io(self, specs):
        """Sharing placement is a heuristic and may occasionally lose to a
        lucky baseline alignment, but it must never read more than the
        zero-reuse worst case: every scan reading its whole range from
        disk, plus bounded prefetch overshoot at range edges."""
        streams, delays = build_streams(specs)
        db = make_database(n_pages=64, pool_pages=24,
                           sharing=SharingConfig(enabled=True))
        table = db.catalog.table("t")
        demanded = 0
        for lo, width, _cpu, _delay in specs:
            first, last = table.pages_for_fraction(lo, min(1.0, lo + width))
            demanded += last - first + 1
        result = run_workload(db, streams, stagger_list=delays)
        extent = table.extent_size
        assert result.pages_read <= demanded + 2 * extent * len(specs)

    @settings(max_examples=100, deadline=None)
    @given(
        positions=st.lists(
            st.integers(min_value=0, max_value=999), min_size=2, max_size=8
        ),
        budget=st.integers(min_value=0, max_value=2000),
        speeds=st.lists(
            st.floats(min_value=1.0, max_value=1e4), min_size=1, max_size=8
        ),
    )
    def test_throttle_distance_always_in_circle(self, positions, budget, speeds):
        """For any grouping, every throttle evaluation measures a
        distance inside [0, table_pages) — circular, never negative —
        and never produces a negative wait."""
        table_pages = 1000
        scans = []
        for index, pos in enumerate(positions):
            speed = speeds[index % len(speeds)]
            descriptor = ScanDescriptor(
                "t", 0, table_pages - 1, estimated_speed=speed
            )
            scans.append(ScanState(
                scan_id=index, descriptor=descriptor, start_page=pos,
                start_time=0.0, speed=speed,
            ))
        groups = form_groups({"t": scans}, pool_budget_pages=budget)
        config = SharingConfig()
        for group in groups:
            for scan in group.members:
                decision = evaluate_throttle(scan, group, config,
                                             extent_size=16)
                assert 0 <= decision.distance < table_pages
                assert decision.wait >= 0.0

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(specs=scan_specs)
    def test_manager_empty_after_run(self, specs):
        streams, delays = build_streams(specs)
        db = make_database(n_pages=64, pool_pages=24)
        run_workload(db, streams, stagger_list=delays)
        assert db.sharing.active_scan_count == 0
        assert db.sharing.stats.scans_started == db.sharing.stats.scans_finished
