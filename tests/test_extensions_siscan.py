"""Integration tests for the SISCAN operator over a scattered index."""

import pytest

from repro.core.config import SharingConfig
from repro.extensions.index_sharing.index import BlockIndex
from repro.extensions.index_sharing.manager import IndexScanSharingManager
from repro.extensions.index_sharing.siscan import IndexScan, SharedIndexScan

from tests.conftest import make_database


def setup(n_pages=256, block=8, pool=48, sharing=None, scatter=True):
    db = make_database(n_pages=n_pages, pool_pages=pool, extent_size=block,
                       sharing=sharing or SharingConfig())
    index = BlockIndex(db.catalog.table("t"), block_size_pages=block,
                       scatter=scatter)
    ism = IndexScanSharingManager(
        db.sim, pages_per_entry=block, pool_capacity=pool,
        config=db.config.sharing,
    )
    return db, index, ism


def run_procs(db, procs):
    db.sim.run()
    results = []
    for proc in procs:
        if proc.completion.failed:
            raise proc.completion.value
        results.append(proc.completion.value)
    return results


class TestIndexScanBaseline:
    def test_scans_every_entry_in_key_order(self):
        db, index, _ = setup()
        scan = IndexScan(db, index, 0, index.n_entries - 1, record_blocks=True)
        [result] = run_procs(db, [db.sim.spawn(scan.run())])
        assert result.entries_scanned == index.n_entries
        expected = [index.block_of_entry(e) for e in range(index.n_entries)]
        assert result.visited_blocks == expected

    def test_scattered_scan_seeks_more_than_clustered(self):
        """The motivating pathology: key order != page order."""
        seeks = {}
        for scatter in (False, True):
            db, index, _ = setup(scatter=scatter)
            scan = IndexScan(db, index, 0, index.n_entries - 1)
            run_procs(db, [db.sim.spawn(scan.run())])
            seeks[scatter] = db.disk.stats.seeks
        assert seeks[True] > 2 * seeks[False]

    def test_range_validation(self):
        db, index, _ = setup()
        with pytest.raises(ValueError):
            IndexScan(db, index, 0, index.n_entries)


class TestSharedIndexScan:
    def test_covers_all_entries_despite_wrap(self):
        db, index, ism = setup()
        first = SharedIndexScan(db, index, ism, 0, index.n_entries - 1,
                                record_blocks=True)
        holder = {}

        def late_start(sim):
            yield sim.timeout(0.02)
            scan = SharedIndexScan(db, index, ism, 0, index.n_entries - 1,
                                   record_blocks=True)
            holder["result"] = yield from scan.run()

        procs = [db.sim.spawn(first.run()), db.sim.spawn(late_start(db.sim))]
        run_procs(db, procs)
        result = holder["result"]
        assert result.entries_scanned == index.n_entries
        assert sorted(result.visited_blocks) == sorted(range(index.n_blocks))

    def test_ism_sees_lifecycle(self):
        db, index, ism = setup()
        scan = SharedIndexScan(db, index, ism, 0, index.n_entries - 1)
        run_procs(db, [db.sim.spawn(scan.run())])
        assert ism.stats.scans_started == 1
        assert ism.stats.scans_finished == 1
        assert ism.active_scan_count == 0

    def test_concurrent_siscans_share_reads(self):
        """The headline claim, index edition: two staggered index scans
        over a scattered index read far fewer pages with sharing."""
        def run_pair(shared):
            config = SharingConfig(enabled=shared)
            db, index, ism = setup(sharing=config)
            cls = lambda: (
                SharedIndexScan(db, index, ism, 0, index.n_entries - 1)
                if shared
                else IndexScan(db, index, 0, index.n_entries - 1)
            )

            def late(sim):
                # Start once the first scan is well past the pool size, so
                # the baseline cannot ride its pages by accident.
                yield sim.timeout(0.08)
                result = yield from cls().run()
                return result

            procs = [db.sim.spawn(cls().run()), db.sim.spawn(late(db.sim))]
            run_procs(db, procs)
            return db.disk.stats.pages_read, db.sim.now

        base_pages, base_time = run_pair(shared=False)
        shared_pages, shared_time = run_pair(shared=True)
        assert shared_pages < base_pages
        assert shared_time < base_time

    def test_results_identical_to_baseline(self):
        """Sharing must not change which blocks get processed."""
        db, index, ism = setup()
        shared = SharedIndexScan(db, index, ism, 4, 20, record_blocks=True)
        [shared_result] = run_procs(db, [db.sim.spawn(shared.run())])
        db2, index2, _ = setup(sharing=SharingConfig(enabled=False))
        plain = IndexScan(db2, index2, 4, 20, record_blocks=True)
        [plain_result] = run_procs(db2, [db2.sim.spawn(plain.run())])
        assert sorted(shared_result.visited_blocks) == sorted(
            plain_result.visited_blocks
        )

    def test_throttling_reported(self):
        db, index, ism = setup(n_pages=512, pool=64)
        fast = SharedIndexScan(db, index, ism, 0, index.n_entries - 1,
                               cpu_per_page=1e-6)
        slow = SharedIndexScan(db, index, ism, 0, index.n_entries - 1,
                               cpu_per_page=3e-3)
        fast_proc = db.sim.spawn(fast.run())
        slow_proc = db.sim.spawn(slow.run())
        results = run_procs(db, [fast_proc, slow_proc])
        total_throttle = sum(r.throttle_seconds for r in results)
        assert total_throttle > 0
        assert results[1].throttle_seconds == 0  # the slow scan is never throttled
