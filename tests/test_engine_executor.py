"""Unit tests for query and stream execution."""

import pytest

from repro.core.config import SharingConfig
from repro.engine.executor import execute_query, run_workload
from repro.engine.expressions import col, lit
from repro.engine.operators import AggSpec
from repro.engine.query import QuerySpec, ScanStep
from repro.workloads.synthetic import uniform_scan_query

from tests.conftest import make_database


def count_query(lo=0.0, hi=1.0, name="count"):
    return uniform_scan_query("t", lo, hi, name=name)


class TestExecuteQuery:
    def test_returns_result_with_values(self, small_db):
        proc = small_db.sim.spawn(execute_query(small_db, count_query()))
        small_db.sim.run()
        result = proc.completion.value
        assert result.name == "count"
        assert result.pages_scanned == 128
        assert result.values["t"]["rows"] == 128 * 100

    def test_metrics_recorded(self, small_db):
        proc = small_db.sim.spawn(execute_query(small_db, count_query(),
                                                stream_id=3))
        small_db.sim.run()
        assert proc.completion.value is not None
        records = small_db.metrics.queries
        assert len(records) == 1
        assert records[0].stream_id == 3
        assert records[0].query_name == "count"

    def test_multi_step_query_runs_steps_in_order(self, small_db):
        spec = QuerySpec(
            name="two-step",
            steps=(
                ScanStep(table="t", fraction=(0.0, 0.5), label="first"),
                ScanStep(table="t", fraction=(0.5, 1.0), label="second"),
            ),
        )
        proc = small_db.sim.spawn(execute_query(small_db, spec))
        small_db.sim.run()
        result = proc.completion.value
        assert [s.label for s in result.steps] == ["first", "second"]
        assert result.steps[0].scan.finished_at <= result.steps[1].scan.started_at

    def test_filtered_aggregate_values_correct(self, small_db):
        spec = QuerySpec(
            name="filtered",
            steps=(
                ScanStep(
                    table="t",
                    predicate=col("value") < lit(50.0),
                    aggregates=(AggSpec("n", "count"),
                                AggSpec("max_v", "max", col("value"))),
                    label="t",
                ),
            ),
        )
        proc = small_db.sim.spawn(execute_query(small_db, spec))
        small_db.sim.run()
        values = proc.completion.value.values["t"]
        assert 0 < values["n"] < 128 * 100
        assert values["max_v"] < 50.0


class TestRunWorkload:
    def test_single_stream(self, small_db):
        result = run_workload(small_db, [[count_query()]])
        assert len(result.streams) == 1
        assert result.makespan > 0
        assert result.pages_read > 0

    def test_stagger_offsets_streams(self):
        db = make_database()
        result = run_workload(db, [[count_query()], [count_query()]], stagger=0.5)
        starts = sorted(s.started_at for s in result.streams)
        assert starts[1] - starts[0] == pytest.approx(0.5)

    def test_stagger_list(self):
        db = make_database()
        result = run_workload(
            db, [[count_query()], [count_query()]], stagger_list=[0.0, 1.25]
        )
        starts = sorted(s.started_at for s in result.streams)
        assert starts[1] == pytest.approx(1.25)

    def test_stagger_list_length_validated(self):
        db = make_database()
        with pytest.raises(ValueError):
            run_workload(db, [[count_query()]], stagger_list=[0.0, 1.0])

    def test_query_mean_elapsed(self):
        db = make_database()
        result = run_workload(
            db, [[count_query(name="q")], [count_query(name="q")]]
        )
        means = result.query_mean_elapsed()
        assert set(means) == {"q"}
        assert means["q"] > 0

    def test_stream_elapsed_lookup(self):
        db = make_database()
        result = run_workload(db, [[count_query()]])
        assert result.stream_elapsed(0) == pytest.approx(result.streams[0].elapsed)
        with pytest.raises(KeyError):
            result.stream_elapsed(9)

    def test_workload_failure_propagates(self):
        db = make_database()
        bad = QuerySpec(
            name="bad",
            steps=(ScanStep(table="missing"),),
        )
        with pytest.raises(KeyError):
            run_workload(db, [[bad]])


class TestBaseVsSharedExecution:
    def test_identical_query_values(self):
        """The sharing mechanism must never change query answers."""
        spec = QuerySpec(
            name="agg",
            steps=(
                ScanStep(
                    table="t",
                    predicate=col("value") < lit(30.0),
                    aggregates=(AggSpec("n", "count"),
                                AggSpec("s", "sum", col("value"))),
                    label="t",
                ),
            ),
        )
        results = {}
        for enabled in (False, True):
            db = make_database(sharing=SharingConfig(enabled=enabled))
            workload = run_workload(db, [[spec], [spec]])
            values = [
                q.values["t"] for s in workload.streams for q in s.queries
            ]
            results[enabled] = values
        for base_vals, shared_vals in zip(results[False], results[True]):
            assert base_vals["n"] == shared_vals["n"]
            # Wrapped scans sum the same rows in a different order.
            assert base_vals["s"] == pytest.approx(shared_vals["s"], rel=1e-9)
