"""Tests for the experiment registry and its uniform metric extraction."""

from __future__ import annotations

import pytest

from repro.experiments.experiments import (
    PerQueryResult,
    PerStreamResult,
    StreamScalingResult,
    SweepResult,
    ThroughputResult,
    TimelineResult,
    e1_overhead,
    e5_reads_timeline,
)
from repro.experiments.harness import ExperimentSettings
from repro.experiments.registry import (
    REGISTRY,
    UnknownExperimentError,
    all_experiments,
    get,
    metrics_of,
    render_result,
)

TINY = ExperimentSettings(scale=0.05, n_streams=2, seed=7)


@pytest.fixture(scope="module")
def tiny_overhead():
    """One real tiny E1 run; its Comparison seeds the heavier fixtures."""
    return e1_overhead(TINY.with_(n_streams=1))


class TestRegistryTable:
    def test_core_ids_registered(self):
        for exp_id in [f"e{i}" for i in range(1, 10)]:
            assert exp_id in REGISTRY
        for exp_id in ["a1", "a2", "a3", "a4", "a5", "a6", "a7", "a9"]:
            assert exp_id in REGISTRY

    def test_specs_well_formed(self):
        for spec in all_experiments():
            assert spec.description
            assert callable(spec.run)
            assert REGISTRY[spec.name] is spec

    def test_all_experiments_sorted(self):
        names = [spec.name for spec in all_experiments()]
        assert names == sorted(names)

    def test_get_unknown_raises_named_error(self):
        with pytest.raises(UnknownExperimentError) as excinfo:
            get("e99")
        assert "e99" in str(excinfo.value)
        assert "known:" in str(excinfo.value)


class TestMetricsOf:
    def test_overhead(self, tiny_overhead):
        metrics = metrics_of(tiny_overhead)
        assert "overhead_percent" in metrics
        assert metrics["base_makespan"] > 0

    def test_comparison(self, tiny_overhead):
        metrics = metrics_of(tiny_overhead.comparison)
        for key in ("base_makespan", "shared_makespan",
                    "end_to_end_gain_percent", "disk_read_gain_percent",
                    "disk_seek_gain_percent"):
            assert key in metrics

    def test_throughput(self, tiny_overhead):
        metrics = metrics_of(ThroughputResult(tiny_overhead.comparison))
        assert metrics["base_pages_read"] > 0

    def test_timeline(self, tiny_overhead):
        result = e5_reads_timeline(comparison=tiny_overhead.comparison)
        metrics = metrics_of(result)
        assert metrics["metric"] == "pages read / bucket"
        assert metrics["base_total"] == pytest.approx(sum(metrics["base_series"]))

    def test_per_stream_keys_stringified(self):
        result = PerStreamResult(base_elapsed={0: 2.0}, shared_elapsed={0: 1.0})
        metrics = metrics_of(result)
        assert metrics["base_elapsed"] == {"0": 2.0}
        assert metrics["gain_percent"]["0"] == pytest.approx(50.0)

    def test_per_query(self):
        result = PerQueryResult(base_elapsed={"Q6": 2.0},
                                shared_elapsed={"Q6": 1.5})
        metrics = metrics_of(result)
        assert metrics["gain_percent"]["Q6"] == pytest.approx(25.0)

    def test_stream_scaling(self, tiny_overhead):
        result = StreamScalingResult(points={1: tiny_overhead.comparison})
        metrics = metrics_of(result)
        assert set(metrics) == {"1"}
        assert metrics["1"]["base_qps"] > 0

    def test_sweep_rows(self):
        result = SweepResult(knob="k", rows=[("x", 1.0, 10, 2)])
        metrics = metrics_of(result)
        assert metrics["rows"] == [
            {"label": "x", "makespan": 1.0, "pages_read": 10, "seeks": 2}
        ]

    def test_comparison_dict(self, tiny_overhead):
        metrics = metrics_of({0.05: tiny_overhead.comparison})
        assert set(metrics) == {"0.05"}

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError, match="no metric extraction"):
            metrics_of(object())

    def test_metrics_are_json_safe(self, tiny_overhead):
        import json

        json.dumps(metrics_of(tiny_overhead))


class TestRenderResult:
    def test_renders_result_objects(self, tiny_overhead):
        assert "overhead" in render_result(tiny_overhead)

    def test_renders_pool_fraction_sweep(self, tiny_overhead):
        text = render_result({0.05: tiny_overhead.comparison})
        assert "pool" in text
        assert "5%" in text

    def test_renders_disk_count_sweep(self, tiny_overhead):
        text = render_result({1: tiny_overhead.comparison,
                              2: tiny_overhead.comparison})
        assert "disks" in text
