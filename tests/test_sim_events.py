"""Unit tests for the event primitives."""

from heapq import heappop, heappush

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import Event, EventQueue, SimulationError
from repro.sim.kernel import Simulator


class TestEvent:
    def test_starts_untriggered(self, sim):
        ev = Event(sim)
        assert not ev.triggered
        assert not ev.failed

    def test_succeed_sets_value(self, sim):
        ev = Event(sim)
        ev.succeed(42)
        assert ev.triggered
        assert ev.value == 42
        assert not ev.failed

    def test_value_before_trigger_raises(self, sim):
        ev = Event(sim)
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_double_trigger_raises(self, sim):
        ev = Event(sim)
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self, sim):
        ev = Event(sim)
        with pytest.raises(SimulationError):
            ev.fail("not an exception")

    def test_fail_stores_exception(self, sim):
        ev = Event(sim)
        error = ValueError("boom")
        ev.fail(error)
        assert ev.failed
        assert ev.value is error

    def test_callback_runs_on_trigger(self, sim):
        ev = Event(sim)
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        ev.succeed("hello")
        sim.run()
        assert seen == ["hello"]

    def test_callback_added_after_trigger_still_runs(self, sim):
        ev = Event(sim)
        ev.succeed(7)
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        sim.run()
        assert seen == [7]

    def test_multiple_callbacks_run_in_order(self, sim):
        ev = Event(sim)
        seen = []
        ev.add_callback(lambda e: seen.append("first"))
        ev.add_callback(lambda e: seen.append("second"))
        ev.succeed()
        sim.run()
        assert seen == ["first", "second"]


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        order = []
        queue.push(2.0, lambda: order.append("late"))
        queue.push(1.0, lambda: order.append("early"))
        while len(queue):
            _, cb = queue.pop()
            cb()
        assert order == ["early", "late"]

    def test_same_time_preserves_insertion_order(self):
        queue = EventQueue()
        order = []
        for i in range(5):
            queue.push(1.0, lambda i=i: order.append(i))
        while len(queue):
            queue.pop()[1]()
        assert order == [0, 1, 2, 3, 4]

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_peek_time_returns_earliest(self):
        queue = EventQueue()
        queue.push(5.0, lambda: None)
        queue.push(3.0, lambda: None)
        assert queue.peek_time() == 3.0

    def test_len_counts_entries(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        queue.pop()
        assert len(queue) == 1


class TestEventQueueTwoLane:
    """Direct coverage of the ready-slab/heap split behind push/pop/peek."""

    def test_push_at_cursor_lands_on_ready_slab(self):
        queue = EventQueue()
        queue.push(0.0, "due-now")
        assert list(queue._ready) == ["due-now"]
        assert queue._heap == []

    def test_push_future_lands_on_heap(self):
        queue = EventQueue()
        queue.push(1.0, "later")
        assert not queue._ready
        assert len(queue._heap) == 1

    def test_push_into_past_raises(self):
        queue = EventQueue()
        queue.push(2.0, "a")
        queue.pop()  # advances the cursor to 2.0
        with pytest.raises(SimulationError):
            queue.push(1.0, "late")

    def test_push_nan_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().push(float("nan"), "bad")

    def test_push_inf_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().push(float("inf"), "never")

    def test_push_many_due_now_extends_slab_in_order(self):
        queue = EventQueue()
        queue.push_many(0.0, ["a", "b", "c"])
        assert list(queue._ready) == ["a", "b", "c"]

    def test_push_many_future_keeps_insertion_order(self):
        queue = EventQueue()
        queue.push_many(1.0, ["a", "b"])
        queue.push(1.0, "c")
        assert [queue.pop() for _ in range(3)] == [
            (1.0, "a"), (1.0, "b"), (1.0, "c"),
        ]

    def test_push_many_nan_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().push_many(float("nan"), ["bad"])

    def test_push_many_inf_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().push_many(float("inf"), ["never"])

    def test_pop_prefers_heap_entries_at_cursor_time(self):
        # Heap entries at the cursor's time were pushed before the cursor
        # reached it, so their sequence numbers precede any slab entry.
        queue = EventQueue()
        queue.push(1.0, "heap-1")
        queue.push(1.0, "heap-2")
        assert queue.pop() == (1.0, "heap-1")  # cursor is now 1.0
        queue.push(1.0, "slab")
        assert queue.pop() == (1.0, "heap-2")
        assert queue.pop() == (1.0, "slab")

    def test_pop_advances_cursor(self):
        queue = EventQueue()
        queue.push(3.0, "a")
        queue.pop()
        assert queue.time == 3.0

    def test_peek_time_reports_cursor_for_ready_slab(self):
        queue = EventQueue()
        queue.push(2.0, "a")
        queue.pop()
        queue.push(2.0, "slab")
        queue.push(5.0, "future")
        assert queue.peek_time() == 2.0

    def test_peek_time_prefers_earlier_heap_entry(self):
        queue = EventQueue()
        queue.push(0.0, "slab")
        queue.push(4.0, "future")
        assert queue.peek_time() == 0.0
        queue.pop()
        assert queue.peek_time() == 4.0


class LegacyEventQueue:
    """The pre-rework single-heap queue, kept verbatim as the oracle for
    the equivalence property below (do not use outside tests)."""

    def __init__(self):
        self._heap = []
        self._seq = 0

    def __len__(self):
        return len(self._heap)

    def push(self, time, callback):
        heappush(self._heap, (time, self._seq, callback))
        self._seq += 1

    def pop(self):
        time, _seq, callback = heappop(self._heap)
        return time, callback


#: One queue operation: (kind, delay-from-now, batch size).  Delays are
#: drawn from a tiny set so duplicate timestamps (the interesting case for
#: ordering) occur constantly.
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["push", "push_many", "pop"]),
        st.sampled_from([0.0, 0.25, 1.0]),
        st.integers(min_value=1, max_value=3),
    ),
    max_size=60,
)


class TestQueueEquivalence:
    @settings(max_examples=300, deadline=None)
    @given(ops=_OPS)
    def test_two_lane_queue_matches_legacy_heapq(self, ops):
        """The split queue pops in exactly the legacy (time, seq) order.

        Drives both implementations through the same simulator-valid
        schedule — pushes at ``now + delay`` where ``now`` is the time of
        the last pop, mirroring ``Simulator.schedule`` — and asserts pop
        order matches entry for entry.  (The legacy ``requeue`` API has no
        equivalent: the batched run loop checks ``until`` before popping,
        so nothing is ever re-queued.)
        """
        new = EventQueue()
        old = LegacyEventQueue()
        now = 0.0
        next_id = 0
        for kind, delay, batch in ops:
            if kind == "pop":
                if not len(old):
                    continue
                popped_old = old.pop()
                popped_new = new.pop()
                assert popped_new == popped_old
                now = popped_old[0]
                continue
            time = now + delay
            count = 1 if kind == "push" else batch
            items = [("cb", next_id + i) for i in range(count)]
            next_id += count
            if kind == "push":
                new.push(time, items[0])
                old.push(time, items[0])
            else:
                new.push_many(time, items)
                for item in items:
                    old.push(time, item)
        assert len(new) == len(old)
        while len(old):
            assert new.pop() == old.pop()
