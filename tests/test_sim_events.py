"""Unit tests for the event primitives."""

import pytest

from repro.sim.events import Event, EventQueue, SimulationError
from repro.sim.kernel import Simulator


class TestEvent:
    def test_starts_untriggered(self, sim):
        ev = Event(sim)
        assert not ev.triggered
        assert not ev.failed

    def test_succeed_sets_value(self, sim):
        ev = Event(sim)
        ev.succeed(42)
        assert ev.triggered
        assert ev.value == 42
        assert not ev.failed

    def test_value_before_trigger_raises(self, sim):
        ev = Event(sim)
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_double_trigger_raises(self, sim):
        ev = Event(sim)
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self, sim):
        ev = Event(sim)
        with pytest.raises(SimulationError):
            ev.fail("not an exception")

    def test_fail_stores_exception(self, sim):
        ev = Event(sim)
        error = ValueError("boom")
        ev.fail(error)
        assert ev.failed
        assert ev.value is error

    def test_callback_runs_on_trigger(self, sim):
        ev = Event(sim)
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        ev.succeed("hello")
        sim.run()
        assert seen == ["hello"]

    def test_callback_added_after_trigger_still_runs(self, sim):
        ev = Event(sim)
        ev.succeed(7)
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        sim.run()
        assert seen == [7]

    def test_multiple_callbacks_run_in_order(self, sim):
        ev = Event(sim)
        seen = []
        ev.add_callback(lambda e: seen.append("first"))
        ev.add_callback(lambda e: seen.append("second"))
        ev.succeed()
        sim.run()
        assert seen == ["first", "second"]


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        order = []
        queue.push(2.0, lambda: order.append("late"))
        queue.push(1.0, lambda: order.append("early"))
        while len(queue):
            _, cb = queue.pop()
            cb()
        assert order == ["early", "late"]

    def test_same_time_preserves_insertion_order(self):
        queue = EventQueue()
        order = []
        for i in range(5):
            queue.push(1.0, lambda i=i: order.append(i))
        while len(queue):
            queue.pop()[1]()
        assert order == [0, 1, 2, 3, 4]

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_peek_time_returns_earliest(self):
        queue = EventQueue()
        queue.push(5.0, lambda: None)
        queue.push(3.0, lambda: None)
        assert queue.peek_time() == 3.0

    def test_len_counts_entries(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        queue.pop()
        assert len(queue) == 1
