"""Victim selection under pinned/reserved pressure, across every policy.

Bugfix coverage: every ``choose_victim`` implementation must return
``None`` — never leak ``StopIteration``/``KeyError`` or pick a pinned
page — when the evictable set is empty, and the pool must surface that
single condition as the typed :class:`~repro.buffer.pool.PoolExhausted`.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.buffer.page import PageKey, Priority
from repro.buffer.pool import BufferPoolError, PoolExhausted
from repro.buffer.replacement import _POLICY_NAMES, make_policy

from tests.conftest import make_pool

PRIORITIES = [Priority.LOW, Priority.NORMAL, Priority.HIGH]

# One random workload: distinct admitted pages, re-hit indices (possibly
# repeating), release priorities, and a pin mask over the admitted pages.
workload = st.tuples(
    st.lists(st.integers(min_value=0, max_value=63),
             unique=True, min_size=1, max_size=16),
    st.lists(st.integers(min_value=0, max_value=15), max_size=24),
    st.lists(st.integers(min_value=0, max_value=2), max_size=24),
    st.lists(st.booleans(), min_size=16, max_size=16),
)


class TestChooseVictimNeverLeaks:
    @pytest.mark.parametrize("name", _POLICY_NAMES)
    @settings(max_examples=30, deadline=None)
    @given(data=workload)
    def test_random_pin_sets(self, name, data):
        pages, hit_indices, priorities, pin_mask = data
        policy = make_policy(name, 32)
        keys = [PageKey(0, page) for page in pages]
        for k in keys:
            policy.on_admit(k)
        for position, index in enumerate(hit_indices):
            k = keys[index % len(keys)]
            policy.on_hit(k)
            priority = PRIORITIES[priorities[position % len(priorities)]
                                  if priorities else 1]
            policy.on_release(k, priority)
        pinned = {k for k, is_pinned in zip(keys, pin_mask) if is_pinned}
        unpinned = set(keys) - pinned

        victim = policy.choose_victim(lambda k: k not in pinned)
        if unpinned:
            assert victim in unpinned, (
                f"{name}: victim {victim} not among evictable pages"
            )
        else:
            assert victim is None, (
                f"{name}: returned {victim} with every frame pinned"
            )
        # With nothing evictable at all, every policy must yield None.
        assert policy.choose_victim(lambda k: False) is None

    @pytest.mark.parametrize("name", _POLICY_NAMES)
    def test_empty_policy_returns_none(self, name):
        policy = make_policy(name, 32)
        assert policy.choose_victim(lambda k: True) is None


class TestPoolExhausted:
    def _overcommit(self, sim, disk):
        pool = make_pool(sim, disk, capacity=4)

        def worker(sim):
            for n in range(5):  # pin 5 pages in a 4-page pool
                yield from pool.fix(PageKey(0, n))

        proc = sim.spawn(worker(sim))
        sim.run()
        return proc

    def test_overcommit_raises_typed_error(self, sim, disk):
        proc = self._overcommit(sim, disk)
        assert proc.completion.failed
        assert type(proc.completion.value) is PoolExhausted

    def test_pool_exhausted_is_a_buffer_pool_error(self, sim, disk):
        """Existing except BufferPoolError handlers keep working."""
        proc = self._overcommit(sim, disk)
        assert isinstance(proc.completion.value, BufferPoolError)
