"""Unit tests for the database facade and system config."""

import pytest

from repro.core.config import SharingConfig
from repro.engine.database import Database, SystemConfig
from repro.workloads.synthetic import simple_table_schema


class TestSystemConfig:
    def test_defaults_valid(self):
        SystemConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [{"n_cpus": 0}, {"pool_fraction": 0.0}, {"pool_fraction": 1.5},
         {"extent_size": 0}],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SystemConfig(**kwargs)


class TestDatabaseLifecycle:
    def test_open_requires_tables(self):
        db = Database()
        with pytest.raises(RuntimeError):
            db.open()

    def test_pool_sized_from_fraction(self):
        db = Database(SystemConfig(pool_fraction=0.5, min_pool_pages=4))
        db.create_table(simple_table_schema(), n_pages=1000)
        db.open()
        assert db.pool.capacity == 500

    def test_pool_floor_applies(self):
        db = Database(SystemConfig(pool_fraction=0.01, min_pool_pages=96))
        db.create_table(simple_table_schema(), n_pages=100)
        db.open()
        assert db.pool.capacity == 96

    def test_explicit_pool_pages_wins(self):
        db = Database(SystemConfig(pool_pages=128))
        db.create_table(simple_table_schema(), n_pages=1000)
        db.open()
        assert db.pool.capacity == 128

    def test_no_tables_after_open(self):
        db = Database(SystemConfig(pool_pages=32))
        db.create_table(simple_table_schema("a"), n_pages=64)
        db.open()
        with pytest.raises(RuntimeError):
            db.create_table(simple_table_schema("b"), n_pages=64)

    def test_double_open_rejected(self):
        db = Database(SystemConfig(pool_pages=32))
        db.create_table(simple_table_schema(), n_pages=64)
        db.open()
        with pytest.raises(RuntimeError):
            db.open()

    def test_accessors_before_open_raise(self):
        db = Database()
        with pytest.raises(RuntimeError):
            _ = db.pool
        with pytest.raises(RuntimeError):
            _ = db.sharing

    def test_sharing_enabled_reflects_config(self):
        db = Database(SystemConfig(pool_pages=32,
                                   sharing=SharingConfig(enabled=False)))
        db.create_table(simple_table_schema(), n_pages=64)
        db.open()
        assert not db.sharing_enabled

    def test_default_scan_speed_estimate_positive(self):
        db = Database(SystemConfig(pool_pages=32))
        db.create_table(simple_table_schema(), n_pages=64)
        db.open()
        assert db.default_scan_speed_estimate("t") > 0

    def test_policy_from_config(self):
        db = Database(SystemConfig(pool_pages=32, policy="lru"))
        db.create_table(simple_table_schema(), n_pages=64)
        db.open()
        assert db.pool.policy.name == "lru"
