"""Unit tests for the TPC-H-shaped workload package."""

import numpy as np
import pytest

from repro.core.config import SharingConfig
from repro.engine.database import SystemConfig
from repro.engine.executor import execute_query
from repro.workloads.streams import tpch_stream, tpch_streams
from repro.workloads.tpch_queries import QUERY_FACTORIES, make_query
from repro.workloads.tpch_schema import (
    TPCH_BASE_PAGES,
    make_tpch_database,
    tpch_schemas,
)


@pytest.fixture(scope="module")
def tiny_db():
    """A very small TPC-H database shared by read-only query tests."""
    return make_tpch_database(
        SystemConfig(sharing=SharingConfig(enabled=False)), scale=0.05
    )


class TestSchemas:
    def test_all_tables_present(self):
        schemas = tpch_schemas()
        assert set(schemas) == set(TPCH_BASE_PAGES)

    def test_lineitem_clustered_on_shipdate(self):
        schemas = tpch_schemas()
        assert schemas["lineitem"].clustering_column.name == "l_shipdate"
        assert schemas["orders"].clustering_column.name == "o_orderdate"

    def test_database_builds_and_opens(self, tiny_db):
        assert tiny_db.is_open
        assert len(tiny_db.catalog) == len(TPCH_BASE_PAGES)

    def test_scale_shrinks_tables(self):
        db = make_tpch_database(SystemConfig(), scale=0.05)
        lineitem = db.catalog.table("lineitem")
        assert lineitem.n_pages == int(1600 * 0.05)

    def test_scale_floor_is_one_extent(self):
        db = make_tpch_database(SystemConfig(extent_size=16), scale=0.001)
        assert db.catalog.table("nation").n_pages == 16

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            make_tpch_database(scale=0.0)


class TestQueryTemplates:
    def test_all_22_templates_exist(self):
        assert len(QUERY_FACTORIES) == 22
        assert {f"Q{i}" for i in range(1, 23)} == set(QUERY_FACTORIES)

    @pytest.mark.parametrize("name", sorted(QUERY_FACTORIES))
    def test_template_instantiates(self, name):
        spec = make_query(name, np.random.default_rng(0))
        assert spec.name == name
        assert spec.steps

    def test_unknown_template_rejected(self):
        with pytest.raises(KeyError):
            make_query("Q99")

    @pytest.mark.parametrize("name", sorted(QUERY_FACTORIES))
    def test_every_template_executes(self, tiny_db, name):
        spec = make_query(name, np.random.default_rng(7))
        proc = tiny_db.sim.spawn(execute_query(tiny_db, spec))
        tiny_db.sim.run()
        if proc.completion.failed:
            raise proc.completion.value
        result = proc.completion.value
        assert result.pages_scanned > 0
        assert result.values

    def test_q1_is_cpu_heavier_than_q6_per_page(self, tiny_db):
        """Q1 must be CPU-bound relative to Q6 — the property the two
        staggered experiments rely on."""
        results = {}
        for name in ("Q1", "Q6"):
            spec = make_query(name, np.random.default_rng(3))
            proc = tiny_db.sim.spawn(execute_query(tiny_db, spec))
            tiny_db.sim.run()
            result = proc.completion.value
            results[name] = result.cpu_seconds / result.pages_scanned
        assert results["Q1"] > 3 * results["Q6"]

    def test_q6_scans_one_year_slice(self):
        spec = make_query("Q6", np.random.default_rng(1))
        step = spec.steps[0]
        assert step.table == "lineitem"
        lo, hi = step.cluster_range
        assert hi - lo <= 366.0

    def test_q21_scans_lineitem_twice(self):
        spec = make_query("Q21", np.random.default_rng(1))
        lineitem_steps = [s for s in spec.steps if s.table == "lineitem"]
        assert len(lineitem_steps) == 2

    def test_parameters_vary_with_rng(self):
        a = make_query("Q6", np.random.default_rng(1))
        b = make_query("Q6", np.random.default_rng(2))
        assert (
            a.steps[0].cluster_range != b.steps[0].cluster_range
            or a.steps[0].predicate is not b.steps[0].predicate
        )


class TestStreams:
    def test_stream_contains_all_queries_once(self):
        stream = tpch_stream(0)
        names = sorted(q.name for q in stream)
        assert names == sorted(QUERY_FACTORIES)

    def test_streams_have_different_orders(self):
        streams = tpch_streams(3)
        orders = [tuple(q.name for q in s) for s in streams]
        assert len(set(orders)) > 1

    def test_streams_deterministic_for_seed(self):
        a = [q.name for q in tpch_stream(1, seed=5)]
        b = [q.name for q in tpch_stream(1, seed=5)]
        assert a == b

    def test_query_subset(self):
        stream = tpch_stream(0, query_names=["Q1", "Q6"])
        assert sorted(q.name for q in stream) == ["Q1", "Q6"]

    def test_stream_count_validated(self):
        with pytest.raises(ValueError):
            tpch_streams(0)
