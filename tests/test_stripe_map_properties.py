"""Property-based tests (hypothesis) for the striped address map.

The :class:`~repro.disk.geometry.StripeMap` is the foundation the whole
multi-device layer stands on: the array's request routing, the per-device
elevators, and the push pipeline's one-fetch-per-extent guarantee all
assume the map is a *total, stable, balanced partition* of the global
page space.  These tests state those words as executable properties over
arbitrary (device count, stripe size, page) triples.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import SharingConfig
from repro.disk.geometry import StripeMap
from repro.engine.database import Database, SystemConfig
from repro.workloads.synthetic import simple_table_schema

maps = st.builds(
    StripeMap,
    n_devices=st.integers(min_value=1, max_value=8),
    stripe_pages=st.integers(min_value=1, max_value=64),
)
pages = st.integers(min_value=0, max_value=8192)


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(stripe_map=maps, page=pages)
    def test_locate_then_global_of_is_identity(self, stripe_map, page):
        device, local = stripe_map.locate(page)
        assert stripe_map.global_of(device, local) == page

    @settings(max_examples=200, deadline=None)
    @given(
        stripe_map=maps,
        device=st.integers(min_value=0, max_value=7),
        local=st.integers(min_value=0, max_value=4096),
    )
    def test_global_of_then_locate_is_identity(self, stripe_map, device, local):
        if device >= stripe_map.n_devices:
            with pytest.raises(ValueError):
                stripe_map.global_of(device, local)
            return
        page = stripe_map.global_of(device, local)
        assert stripe_map.locate(page) == (device, local)


class TestPartition:
    @settings(max_examples=100, deadline=None)
    @given(stripe_map=maps, page=pages)
    def test_total_every_page_has_exactly_one_home(self, stripe_map, page):
        device, local = stripe_map.locate(page)
        assert 0 <= device < stripe_map.n_devices
        assert local >= 0
        # Same call, same answer: the map holds no state to drift.
        assert stripe_map.locate(page) == (device, local)

    @settings(max_examples=50, deadline=None)
    @given(
        stripe_map=maps,
        total=st.integers(min_value=1, max_value=1024),
    )
    def test_injective_over_a_prefix(self, stripe_map, total):
        homes = {stripe_map.locate(page) for page in range(total)}
        assert len(homes) == total

    @settings(max_examples=100, deadline=None)
    @given(stripe_map=maps, page=pages)
    def test_contiguous_within_a_stripe(self, stripe_map, page):
        """Pages of one stripe land on one device at consecutive locals."""
        run = stripe_map.run_on_device(page, stripe_map.stripe_pages * 2)
        device, local = stripe_map.locate(page)
        for offset in range(run):
            assert stripe_map.locate(page + offset) == (device, local + offset)


class TestBalance:
    @settings(max_examples=100, deadline=None)
    @given(
        stripe_map=maps,
        n_stripes=st.integers(min_value=0, max_value=64),
        tail=st.integers(min_value=0, max_value=63),
    )
    def test_loads_balanced_within_one_stripe(self, stripe_map, n_stripes, tail):
        total = n_stripes * stripe_map.stripe_pages + min(
            tail, stripe_map.stripe_pages - 1
        )
        loads = stripe_map.device_loads(total)
        assert sum(loads) == total
        assert len(loads) == stripe_map.n_devices
        # Round-robin placement: no device is more than one stripe unit
        # ahead of any other.
        assert max(loads) - min(loads) <= stripe_map.stripe_pages


class TestConfigStability:
    @settings(max_examples=10, deadline=None)
    @given(
        n_disks=st.integers(min_value=1, max_value=4),
        stripe_extents=st.integers(min_value=1, max_value=3),
    )
    def test_reopening_same_config_rebuilds_the_same_map(
        self, n_disks, stripe_extents
    ):
        """Two databases from one SystemConfig agree on every placement:
        the stripe map is a pure function of the config."""

        def build():
            config = SystemConfig(
                n_cpus=1, pool_pages=32, min_pool_pages=32,
                sharing=SharingConfig(), extent_size=8,
                n_disks=n_disks, stripe_extents=stripe_extents,
            )
            db = Database(config)
            db.create_table(simple_table_schema("t"), n_pages=64)
            return db.open()

        first, second = build(), build()
        map_a = first.disk.stripe_map if n_disks > 1 else None
        map_b = second.disk.stripe_map if n_disks > 1 else None
        if n_disks == 1:
            # A single device needs no striping; nothing to compare.
            return
        assert map_a == map_b
        assert map_a.stripe_pages == stripe_extents * 8
        for page in range(64):
            assert map_a.locate(page) == map_b.locate(page)
