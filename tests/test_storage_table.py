"""Unit tests for tables: extents and range resolution."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.schema import ColumnSpec, make_schema
from repro.storage.table import Table


def make_table(n_pages=100, extent_size=16):
    schema = make_schema(
        "t",
        [ColumnSpec("id", "sequence"), ColumnSpec("day", "clustered", 0.0, 1000.0)],
        rows_per_page=50,
    )
    return Table(schema, n_pages=n_pages, extent_size=extent_size)


class TestBasics:
    def test_row_count(self):
        table = make_table(n_pages=10)
        assert table.n_rows == 500

    def test_extent_count_rounds_up(self):
        assert make_table(n_pages=100, extent_size=16).n_extents == 7

    def test_extent_of(self):
        table = make_table(extent_size=16)
        assert table.extent_of(0) == 0
        assert table.extent_of(15) == 0
        assert table.extent_of(16) == 1

    def test_extent_pages_full(self):
        table = make_table(extent_size=16)
        assert table.extent_pages(1) == list(range(16, 32))

    def test_extent_pages_partial_tail(self):
        table = make_table(n_pages=100, extent_size=16)
        assert table.extent_pages(6) == list(range(96, 100))

    def test_extent_out_of_range(self):
        table = make_table()
        with pytest.raises(IndexError):
            table.extent_pages(99)

    def test_page_out_of_range(self):
        table = make_table(n_pages=10)
        with pytest.raises(IndexError):
            table.extent_of(10)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_table(n_pages=0)
        with pytest.raises(ValueError):
            make_table(extent_size=0)


class TestClusterRanges:
    def test_full_range(self):
        table = make_table(n_pages=100)
        assert table.pages_for_cluster_range(0.0, 1000.0) == (0, 99)

    def test_half_range(self):
        table = make_table(n_pages=100)
        first, last = table.pages_for_cluster_range(0.0, 500.0)
        assert first == 0
        assert last == 49

    def test_middle_slice(self):
        table = make_table(n_pages=100)
        first, last = table.pages_for_cluster_range(250.0, 750.0)
        assert first == 25
        assert last == 74

    def test_out_of_bounds_clamped(self):
        table = make_table(n_pages=100)
        assert table.pages_for_cluster_range(-50.0, 2000.0) == (0, 99)

    def test_reversed_range_rejected(self):
        with pytest.raises(ValueError):
            make_table().pages_for_cluster_range(10.0, 5.0)

    def test_no_clustering_column_raises(self):
        schema = make_schema("t", [ColumnSpec("id", "sequence")])
        table = Table(schema, n_pages=10)
        with pytest.raises(ValueError):
            table.pages_for_cluster_range(0.0, 1.0)

    def test_range_actually_contains_matching_rows(self):
        """Every row with day in [low, high] lives inside the returned
        page range — the correctness contract of clustered range scans."""
        table = make_table(n_pages=50)
        low, high = 200.0, 400.0
        first, last = table.pages_for_cluster_range(low, high)
        for page in range(table.n_pages):
            day = table.page_data(page)["day"]
            has_match = bool(((day >= low) & (day <= high)).any())
            inside = first <= page <= last
            if has_match:
                assert inside, f"page {page} has matching rows outside range"


class TestFractionRanges:
    def test_full_fraction(self):
        assert make_table(n_pages=80).pages_for_fraction(0.0, 1.0) == (0, 79)

    def test_quarter(self):
        assert make_table(n_pages=80).pages_for_fraction(0.0, 0.25) == (0, 19)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            make_table().pages_for_fraction(0.5, 0.4)
        with pytest.raises(ValueError):
            make_table().pages_for_fraction(-0.1, 0.5)

    @settings(max_examples=50, deadline=None)
    @given(
        lo=st.floats(min_value=0.0, max_value=1.0),
        width=st.floats(min_value=0.0, max_value=1.0),
        n_pages=st.integers(min_value=1, max_value=500),
    )
    def test_fraction_range_always_valid(self, lo, width, n_pages):
        hi = min(1.0, lo + width)
        table = make_table(n_pages=n_pages)
        first, last = table.pages_for_fraction(lo, hi)
        assert 0 <= first <= last < n_pages
