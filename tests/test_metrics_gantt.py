"""Unit tests for the ASCII gantt renderer."""

from repro.core.config import SharingConfig
from repro.engine.executor import run_workload
from repro.metrics.gantt import render_gantt, workload_gantt
from repro.workloads.synthetic import uniform_scan_query

from tests.conftest import make_database


class TestRenderGantt:
    def test_empty(self):
        assert render_gantt([]) == "(no scans)"

    def test_bar_positions_proportional(self):
        text = render_gantt(
            [("early", 0.0, 5.0, 1), ("late", 5.0, 10.0, 2)], width=20
        )
        early_line, late_line = text.splitlines()[:2]
        # The early bar starts at the left edge; the late bar starts at
        # about the middle.
        assert early_line.split("|")[1].startswith("#")
        assert late_line.split("|")[1].startswith(" " * 10)

    def test_weight_shown(self):
        text = render_gantt([("s", 0.0, 1.0, 42)])
        assert text.splitlines()[0].rstrip().endswith("42")

    def test_minimum_bar_width(self):
        text = render_gantt([("tiny", 0.0, 0.0001, 1), ("big", 0.0, 10.0, 1)])
        assert "#" in text.splitlines()[0]

    def test_scale_line_shows_horizon(self):
        text = render_gantt([("s", 0.0, 2.5, 1)])
        assert "2.500s" in text.splitlines()[-1]


class TestWorkloadGantt:
    def test_renders_all_scans(self):
        db = make_database(sharing=SharingConfig(enabled=False))
        query = uniform_scan_query("t", name="full")
        workload = run_workload(db, [[query], [query]])
        text = workload_gantt(workload)
        bar_lines = [line for line in text.splitlines() if line.startswith("t")]
        assert len(bar_lines) == 2
