"""Unit tests for the push-based operator pipeline."""

import numpy as np
import pytest

from repro.engine.costs import CostModel
from repro.engine.expressions import col, lit
from repro.engine.operators import (
    AggSpec,
    Filter,
    GroupByAggregate,
    Pipeline,
    Project,
    RowCounter,
)

COST = CostModel()


def page(n=10):
    return {
        "a": np.arange(n, dtype=np.int64),
        "b": np.full(n, 2.0),
        "tag": np.array(["x", "y"] * (n // 2), dtype=object),
    }


class TestAggSpec:
    def test_count_needs_no_expression(self):
        AggSpec("n", "count")

    def test_other_funcs_need_expression(self):
        with pytest.raises(ValueError):
            AggSpec("s", "sum")

    def test_unknown_func_rejected(self):
        with pytest.raises(ValueError):
            AggSpec("m", "median", col("a"))


class TestGroupByAggregate:
    def test_global_sum_and_count(self):
        agg = GroupByAggregate(
            [AggSpec("total", "sum", col("a")), AggSpec("n", "count")], COST
        )
        agg.push(page(10), 10)
        agg.push(page(10), 10)
        result = agg.finish()
        assert result["total"] == 2 * sum(range(10))
        assert result["n"] == 20

    def test_min_max(self):
        agg = GroupByAggregate(
            [AggSpec("lo", "min", col("a")), AggSpec("hi", "max", col("a"))], COST
        )
        agg.push(page(10), 10)
        result = agg.finish()
        assert result["lo"] == 0
        assert result["hi"] == 9

    def test_avg(self):
        agg = GroupByAggregate([AggSpec("mean", "avg", col("a"))], COST)
        agg.push(page(10), 10)
        assert agg.finish()["mean"] == pytest.approx(4.5)

    def test_avg_of_nothing_is_zero(self):
        agg = GroupByAggregate([AggSpec("mean", "avg", col("a"))], COST)
        assert agg.finish()["mean"] == 0.0

    def test_grouped_counts(self):
        agg = GroupByAggregate(
            [AggSpec("n", "count")], COST, group_by=["tag"]
        )
        agg.push(page(10), 10)
        result = agg.finish()
        assert result[("x",)]["n"] == 5
        assert result[("y",)]["n"] == 5

    def test_grouped_sum_across_batches(self):
        agg = GroupByAggregate(
            [AggSpec("s", "sum", col("a"))], COST, group_by=["tag"]
        )
        agg.push(page(10), 10)
        agg.push(page(10), 10)
        result = agg.finish()
        assert result[("x",)]["s"] == 2 * (0 + 2 + 4 + 6 + 8)
        assert result[("y",)]["s"] == 2 * (1 + 3 + 5 + 7 + 9)

    def test_needs_at_least_one_aggregate(self):
        with pytest.raises(ValueError):
            GroupByAggregate([], COST)

    def test_push_returns_positive_units(self):
        agg = GroupByAggregate([AggSpec("n", "count")], COST)
        assert agg.push(page(10), 10) > 0

    def test_empty_batch_is_free(self):
        agg = GroupByAggregate([AggSpec("n", "count")], COST)
        assert agg.push({}, 0) == 0.0


class TestFilter:
    def test_filters_rows(self):
        sink = GroupByAggregate([AggSpec("n", "count")], COST)
        filt = Filter(col("a") < lit(5), sink, COST)
        filt.push(page(10), 10)
        assert sink.finish()["n"] == 5
        assert filt.selectivity == pytest.approx(0.5)

    def test_all_pass_shortcut(self):
        sink = GroupByAggregate([AggSpec("n", "count")], COST)
        filt = Filter(col("a") >= lit(0), sink, COST)
        filt.push(page(10), 10)
        assert sink.finish()["n"] == 10

    def test_none_pass_skips_downstream(self):
        sink = RowCounter()
        filt = Filter(col("a") < lit(0), sink, COST)
        filt.push(page(10), 10)
        assert sink.finish() == 0

    def test_filtered_columns_consistent(self):
        """All surviving columns must be compacted together."""
        collected = {}

        class Probe(RowCounter):
            def required_columns(self):
                return None  # unknown: may read anything

            def push(self, data, n_rows):
                collected.update({k: len(v) for k, v in data.items()})
                return super().push(data, n_rows)

        filt = Filter(col("a") < lit(3), Probe(), COST)
        filt.push(page(10), 10)
        assert set(collected.values()) == {3}
        assert set(collected) == set(page(10))

    def test_compaction_projects_to_required_columns(self):
        """A downstream that declares its columns gets only those."""
        collected = {}

        class Probe(RowCounter):
            def required_columns(self):
                return frozenset({"b"})

            def push(self, data, n_rows):
                collected.update({k: len(v) for k, v in data.items()})
                return super().push(data, n_rows)

        filt = Filter(col("a") < lit(3), Probe(), COST)
        filt.push(page(10), 10)
        assert set(collected) == {"b"}
        assert collected["b"] == 3

    def test_required_columns_includes_own_predicate(self):
        filt = Filter(col("a") < lit(3), RowCounter(), COST)
        assert filt.required_columns() == frozenset({"a"})


class TestProject:
    def test_adds_computed_column(self):
        seen = {}

        class Probe(RowCounter):
            def push(self, data, n_rows):
                seen["doubled"] = data["doubled"].copy()
                return super().push(data, n_rows)

        proj = Project({"doubled": col("a") * lit(2)}, Probe(), COST)
        proj.push(page(4), 4)
        np.testing.assert_array_equal(seen["doubled"], [0, 2, 4, 6])


class TestPipeline:
    def test_process_page_returns_seconds(self):
        sink = GroupByAggregate([AggSpec("n", "count")], COST)
        pipeline = Pipeline(Filter(col("a") < lit(5), sink, COST), COST)
        seconds = pipeline.process_page(0, page(10))
        assert seconds > 0
        assert pipeline.pages == 1
        assert pipeline.rows == 10

    def test_extra_units_increase_cost(self):
        def build(extra):
            sink = GroupByAggregate([AggSpec("n", "count")], COST)
            return Pipeline(sink, COST, extra_units_per_row=extra)

        cheap_cost = build(0.0).process_page(0, page(10))
        heavy_cost = build(50.0).process_page(0, page(10))
        assert heavy_cost > cheap_cost

    def test_estimated_units_positive_and_ordered(self):
        light_sink = GroupByAggregate([AggSpec("n", "count")], COST)
        light = Pipeline(light_sink, COST)
        heavy_sink = GroupByAggregate(
            [AggSpec(f"s{i}", "sum", col("a") * lit(i)) for i in range(8)],
            COST,
            group_by=["tag"],
        )
        heavy = Pipeline(Filter(col("a") < lit(5), heavy_sink, COST), COST)
        assert 0 < light.estimated_units_per_page(100) < heavy.estimated_units_per_page(100)

    def test_result_delegates_to_terminal(self):
        sink = GroupByAggregate([AggSpec("n", "count")], COST)
        pipeline = Pipeline(sink, COST)
        pipeline.process_page(0, page(6))
        assert pipeline.result()["n"] == 6
