"""Tests for the structured event-tracing subsystem (repro.trace)."""

import json

import pytest

from repro.core.config import SharingConfig
from repro.engine.executor import run_workload
from repro.metrics.export import trace_to_jsonl
from repro.trace import (
    BufferFix,
    JsonlSink,
    NullSink,
    RingBufferSink,
    SimDispatch,
    Tracer,
    get_tracer,
    render_summary,
    set_tracer,
    summarize,
    tracing,
)
from repro.workloads.synthetic import uniform_scan_query

from tests.conftest import make_database


def fix_event(i):
    return BufferFix(time=float(i), space_id=0, page_no=i, outcome="hit")


def run_traced_workload(sink):
    db = make_database(n_pages=64, pool_pages=24,
                       sharing=SharingConfig(enabled=True))
    streams = [
        [uniform_scan_query("t", 0.0, 1.0, name=f"q{i}")] for i in range(2)
    ]
    with tracing(sink):
        result = run_workload(db, streams, stagger=0.002)
    return result


class TestTracer:
    def test_disabled_by_default(self):
        tracer = Tracer()
        assert not tracer.enabled
        tracer.emit(fix_event(0))  # must be a silent no-op
        assert tracer.events_emitted == 0

    def test_global_tracer_starts_disabled(self):
        assert not get_tracer().enabled

    def test_emit_stamps_increasing_seq(self):
        sink = RingBufferSink(capacity=None)
        tracer = Tracer([sink])
        for i in range(5):
            tracer.emit(fix_event(i))
        assert [e.seq for e in sink.events()] == [1, 2, 3, 4, 5]
        assert tracer.events_emitted == 5

    def test_emit_fans_out_to_all_sinks(self):
        a, b = RingBufferSink(), RingBufferSink()
        tracer = Tracer([a, b])
        tracer.emit(fix_event(0))
        assert len(a) == len(b) == 1

    def test_tracing_context_installs_and_restores(self):
        before = get_tracer()
        with tracing(NullSink()) as tracer:
            assert get_tracer() is tracer
            assert tracer.enabled
        assert get_tracer() is before
        assert not tracer.enabled  # sinks closed and detached on exit

    def test_set_tracer_returns_previous(self):
        replacement = Tracer()
        previous = set_tracer(replacement)
        try:
            assert get_tracer() is replacement
        finally:
            set_tracer(previous)


class TestRingBufferSink:
    def test_bounded_capacity_keeps_most_recent(self):
        sink = RingBufferSink(capacity=10)
        tracer = Tracer([sink])
        for i in range(50):
            tracer.emit(fix_event(i))
        assert len(sink) == 10
        assert sink.total_seen == 50
        assert [e.seq for e in sink.events()] == list(range(41, 51))

    def test_unbounded_keeps_everything(self):
        sink = RingBufferSink(capacity=None)
        tracer = Tracer([sink])
        for i in range(50):
            tracer.emit(fix_event(i))
        assert len(sink) == sink.total_seen == 50

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)

    def test_counts_by_category(self):
        sink = RingBufferSink()
        tracer = Tracer([sink])
        tracer.emit(fix_event(0))
        tracer.emit(SimDispatch(time=0.0, queue_len=1))
        assert sink.counts_by_category == {"buffer": 1, "sim": 1}


class TestWorkloadTracing:
    def test_events_in_emission_and_time_order(self):
        sink = RingBufferSink(capacity=None)
        run_traced_workload(sink)
        events = sink.events()
        assert events
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        times = [e.time for e in events]
        assert times == sorted(times)  # simulated time never runs backwards

    def test_all_layers_emit(self):
        sink = RingBufferSink(capacity=None)
        run_traced_workload(sink)
        categories = {e.category for e in sink.events()}
        assert {"sim", "disk", "buffer", "manager", "query"} <= categories

    def test_tracing_does_not_perturb_results(self):
        """Attaching a tracer must not change any simulated outcome."""
        streams = [
            [uniform_scan_query("t", 0.0, 1.0, name=f"q{i}")] for i in range(2)
        ]

        def run_once(traced):
            db = make_database(n_pages=64, pool_pages=24,
                               sharing=SharingConfig(enabled=True))
            if traced:
                with tracing(RingBufferSink(capacity=None)):
                    result = run_workload(db, streams, stagger=0.002)
            else:
                result = run_workload(db, streams, stagger=0.002)
            return (result.makespan, result.pages_read, result.seeks)

        assert run_once(traced=False) == run_once(traced=True)

    def test_disabled_tracer_emits_nothing(self):
        tracer = get_tracer()
        assert not tracer.enabled
        emitted_before = tracer.events_emitted
        db = make_database(n_pages=64, pool_pages=24)
        streams = [[uniform_scan_query("t", 0.0, 1.0, name="q")]]
        run_workload(db, streams)
        assert tracer.events_emitted == emitted_before
        assert not tracer.enabled


class TestJsonlSink:
    def test_jsonl_file_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        ring = RingBufferSink(capacity=None)
        sink = JsonlSink(str(path))
        db = make_database(n_pages=64, pool_pages=24,
                           sharing=SharingConfig(enabled=True))
        streams = [[uniform_scan_query("t", 0.0, 1.0, name="q")]]
        with tracing(ring, sink):
            run_workload(db, streams)
        lines = path.read_text().splitlines()
        assert len(lines) == sink.events_written == ring.total_seen > 0
        parsed = [json.loads(line) for line in lines]
        assert parsed == [e.to_dict() for e in ring.events()]
        for record in parsed:
            assert {"seq", "category", "kind", "time"} <= record.keys()

    def test_trace_to_jsonl_matches_to_dict(self):
        events = [fix_event(0), SimDispatch(time=1.0, queue_len=2)]
        tracer = Tracer([NullSink()])
        for event in events:
            tracer.emit(event)
        lines = trace_to_jsonl(events).splitlines()
        assert [json.loads(line) for line in lines] == [
            e.to_dict() for e in events
        ]


class TestSummary:
    def test_summarize_counts_and_span(self):
        events = [fix_event(0), fix_event(3), SimDispatch(time=1.0, queue_len=0)]
        summary = summarize(events)
        assert summary["n_events"] == 3
        assert summary["first_time"] == 0.0
        assert summary["last_time"] == 3.0
        assert summary["counts"] == {"buffer.fix": 2, "sim.dispatch": 1}

    def test_render_summary_mentions_truncation(self):
        events = [fix_event(i) for i in range(3)]
        text = render_summary(events, total_seen=10)
        assert "buffer.fix" in text
        assert "3/10" in text

    def test_render_summary_empty(self):
        assert "no events" in render_summary([])
