"""Unit tests for the scan operators."""

import pytest

from repro.core.config import SharingConfig
from repro.scans.base import scan_order
from repro.scans.shared_scan import SharedTableScan
from repro.scans.table_scan import TableScan

from tests.conftest import make_database


def run_scan(db, scan):
    proc = db.sim.spawn(scan.run(), name="scan")
    db.sim.run()
    if proc.completion.failed:
        raise proc.completion.value
    return proc.completion.value


def cheap(page_no, data, n_rows):
    return 1e-6


class TestScanOrder:
    def test_no_wrap(self):
        assert list(scan_order(0, 4, 0)) == [0, 1, 2, 3, 4]

    def test_wrap_from_middle(self):
        assert list(scan_order(0, 4, 2)) == [2, 3, 4, 0, 1]

    def test_wrap_from_last(self):
        assert list(scan_order(0, 4, 4)) == [4, 0, 1, 2, 3]

    def test_offset_range(self):
        assert list(scan_order(10, 13, 12)) == [12, 13, 10, 11]

    def test_start_outside_range_rejected(self):
        with pytest.raises(ValueError):
            list(scan_order(0, 4, 5))

    def test_every_page_exactly_once(self):
        pages = list(scan_order(3, 17, 9))
        assert sorted(pages) == list(range(3, 18))


class TestTableScan:
    def test_visits_full_range_in_order(self):
        db = make_database(n_pages=32, sharing=SharingConfig(enabled=False))
        scan = TableScan(db, "t", 0, 31, on_page=cheap, record_visits=True)
        result = run_scan(db, scan)
        assert result.visited_pages == list(range(32))
        assert result.pages_scanned == 32
        assert result.rows_seen == 32 * 100

    def test_partial_range(self):
        db = make_database(n_pages=32, sharing=SharingConfig(enabled=False))
        scan = TableScan(db, "t", 8, 15, on_page=cheap, record_visits=True)
        result = run_scan(db, scan)
        assert result.visited_pages == list(range(8, 16))

    def test_bad_range_rejected(self):
        db = make_database(n_pages=32)
        with pytest.raises(ValueError):
            TableScan(db, "t", 0, 32, on_page=cheap)

    def test_cpu_time_accumulated(self):
        db = make_database(n_pages=16, sharing=SharingConfig(enabled=False))
        scan = TableScan(db, "t", 0, 15, on_page=lambda p, d, n: 0.001)
        result = run_scan(db, scan)
        assert result.cpu_seconds == pytest.approx(0.016)
        assert result.elapsed >= 0.016

    def test_prefetch_reads_extents(self):
        db = make_database(n_pages=32, extent_size=8,
                           sharing=SharingConfig(enabled=False))
        scan = TableScan(db, "t", 0, 31, on_page=cheap)
        run_scan(db, scan)
        # 4 extents -> 4 physical requests of 8 pages each.
        assert db.disk.stats.reads == 4
        assert db.disk.stats.pages_read == 32


class TestSharedTableScan:
    def test_covers_whole_range_despite_wrap(self):
        db = make_database(n_pages=64)
        # Prime the manager with a scan in progress so the next placement
        # lands mid-range.
        first = SharedTableScan(db, "t", 0, 63, on_page=cheap, record_visits=True)
        second_holder = {}

        def start_second(sim):
            yield sim.timeout(0.005)
            scan = SharedTableScan(db, "t", 0, 63, on_page=cheap, record_visits=True)
            result = yield from scan.run()
            second_holder["result"] = result

        proc1 = db.sim.spawn(first.run())
        db.sim.spawn(start_second(db.sim))
        db.sim.run()
        assert not proc1.completion.failed
        result = second_holder["result"]
        assert sorted(result.visited_pages) == list(range(64))

    def test_manager_sees_start_and_end(self):
        db = make_database(n_pages=32)
        scan = SharedTableScan(db, "t", 0, 31, on_page=cheap)
        run_scan(db, scan)
        assert db.sharing.stats.scans_started == 1
        assert db.sharing.stats.scans_finished == 1
        assert db.sharing.active_scan_count == 0

    def test_manager_deregistered_even_on_failure(self):
        db = make_database(n_pages=32)

        def explode(page_no, data, n_rows):
            raise RuntimeError("page processing failed")

        scan = SharedTableScan(db, "t", 0, 31, on_page=explode)
        proc = db.sim.spawn(scan.run())
        db.sim.run()
        assert proc.completion.failed
        assert db.sharing.active_scan_count == 0

    def test_result_identical_to_plain_scan(self):
        """Sharing must never change which pages a scan processes."""
        shared_db = make_database(n_pages=48)
        base_db = make_database(n_pages=48, sharing=SharingConfig(enabled=False))
        shared = SharedTableScan(shared_db, "t", 0, 47, on_page=cheap,
                                 record_visits=True)
        plain = TableScan(base_db, "t", 0, 47, on_page=cheap, record_visits=True)
        shared_result = run_scan(shared_db, shared)
        plain_result = run_scan(base_db, plain)
        assert sorted(shared_result.visited_pages) == plain_result.visited_pages

    def test_two_aligned_scans_share_physical_reads(self):
        """The headline mechanism: two concurrent scans read the table's
        pages from disk roughly once, not twice."""
        db = make_database(n_pages=64, pool_pages=32)

        def spawn_scan():
            scan = SharedTableScan(db, "t", 0, 63, on_page=cheap)
            return db.sim.spawn(scan.run())

        procs = [spawn_scan(), spawn_scan()]
        db.sim.run()
        for proc in procs:
            assert not proc.completion.failed
        # Unshared lower bound would be 128 pages; sharing should stay
        # close to 64.
        assert db.disk.stats.pages_read < 96

    def test_throttle_seconds_reported(self):
        db = make_database(n_pages=128, pool_pages=64)
        # A fast scan and a slow scan: the fast one must get throttled.
        fast = SharedTableScan(db, "t", 0, 127, on_page=lambda p, d, n: 1e-6)
        slow = SharedTableScan(db, "t", 0, 127, on_page=lambda p, d, n: 2e-3)
        proc_fast = db.sim.spawn(fast.run())
        proc_slow = db.sim.spawn(slow.run())
        db.sim.run()
        fast_result = proc_fast.completion.value
        slow_result = proc_slow.completion.value
        assert fast_result.throttle_seconds > 0
        assert slow_result.throttle_seconds == 0
