"""Unit tests for tablespace allocation and the catalog."""

import pytest

from repro.buffer.page import PageKey
from repro.storage.catalog import Catalog
from repro.storage.schema import ColumnSpec, make_schema
from repro.storage.table import Table
from repro.storage.tablespace import Tablespace


def make_table(name, n_pages=10):
    return Table(
        make_schema(name, [ColumnSpec("id", "sequence")]), n_pages=n_pages
    )


class TestTablespace:
    def test_allocations_are_disjoint_and_ordered(self):
        ts = Tablespace(total_disk_pages=1000, inter_table_gap=5)
        a = ts.allocate(100)
        b = ts.allocate(50)
        assert ts.address_of(PageKey(a, 0)) == 0
        assert ts.address_of(PageKey(b, 0)) == 105  # 100 pages + 5 gap

    def test_addresses_contiguous_within_space(self):
        ts = Tablespace(total_disk_pages=1000)
        space = ts.allocate(20)
        addrs = [ts.address_of(PageKey(space, p)) for p in range(20)]
        assert addrs == list(range(addrs[0], addrs[0] + 20))

    def test_page_out_of_space_rejected(self):
        ts = Tablespace(total_disk_pages=1000)
        space = ts.allocate(10)
        with pytest.raises(IndexError):
            ts.address_of(PageKey(space, 10))

    def test_unknown_space_rejected(self):
        ts = Tablespace(total_disk_pages=1000)
        with pytest.raises(KeyError):
            ts.address_of(PageKey(99, 0))

    def test_disk_full_rejected(self):
        ts = Tablespace(total_disk_pages=100)
        ts.allocate(90)
        with pytest.raises(ValueError):
            ts.allocate(50)

    def test_allocated_pages_excludes_gaps(self):
        ts = Tablespace(total_disk_pages=1000, inter_table_gap=10)
        ts.allocate(30)
        ts.allocate(20)
        assert ts.allocated_pages == 50


class TestCatalog:
    def test_create_and_lookup(self):
        catalog = Catalog(Tablespace(1000))
        table = catalog.create_table(make_table("orders"))
        assert catalog.table("orders") is table
        assert table.space_id >= 0

    def test_duplicate_name_rejected(self):
        catalog = Catalog(Tablespace(1000))
        catalog.create_table(make_table("t"))
        with pytest.raises(ValueError):
            catalog.create_table(make_table("t"))

    def test_unknown_table_error_lists_known(self):
        catalog = Catalog(Tablespace(1000))
        catalog.create_table(make_table("a"))
        with pytest.raises(KeyError, match="'a'"):
            catalog.table("missing")

    def test_table_of_space(self):
        catalog = Catalog(Tablespace(1000))
        table = catalog.create_table(make_table("t"))
        assert catalog.table_of_space(table.space_id) is table
        with pytest.raises(KeyError):
            catalog.table_of_space(999)

    def test_page_key_validates_range(self):
        catalog = Catalog(Tablespace(1000))
        catalog.create_table(make_table("t", n_pages=10))
        key = catalog.page_key("t", 3)
        assert key.page_no == 3
        with pytest.raises(IndexError):
            catalog.page_key("t", 10)

    def test_total_pages_and_iteration(self):
        catalog = Catalog(Tablespace(1000))
        catalog.create_table(make_table("a", 10))
        catalog.create_table(make_table("b", 20))
        assert catalog.total_pages == 30
        assert len(catalog) == 2
        assert catalog.table_names() == ["a", "b"]
        assert {t.name for t in catalog} == {"a", "b"}

    def test_address_of_distinct_tables_never_collides(self):
        catalog = Catalog(Tablespace(10_000))
        a = catalog.create_table(make_table("a", 50))
        b = catalog.create_table(make_table("b", 50))
        addrs_a = {catalog.address_of(PageKey(a.space_id, p)) for p in range(50)}
        addrs_b = {catalog.address_of(PageKey(b.space_id, p)) for p in range(50)}
        assert not (addrs_a & addrs_b)
