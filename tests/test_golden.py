"""Golden-result test: a pinned staggered two-scan scenario.

A small E2-style run (two staggered Q6 scans, Base vs SS) is replayed
on every test run and compared field-by-field against a reference
checked into ``tests/golden/``.  Any change to the simulator, the
sharing mechanism, the tracer, or the workload generator that moves a
single number or event count fails here with the exact diverging field.

To bless an intentional change::

    PYTHONPATH=src python -m pytest tests/test_golden.py --regen-golden
    # or: REPRO_REGEN_GOLDEN=1 python -m pytest tests/test_golden.py

then commit the updated golden file alongside the code change.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.experiments import e2_staggered_q6
from repro.experiments.harness import ExperimentSettings
from repro.experiments.registry import metrics_of
from repro.experiments.runner import first_divergence
from repro.trace import RingBufferSink, tracing
from repro.trace.summary import summarize

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
GOLDEN_FILE = GOLDEN_DIR / "staggered_two_scan.json"

#: Pinned scenario: small enough to run in under a second, big enough
#: that the two scans genuinely overlap and a scan join happens.
SCENARIO = ExperimentSettings(scale=0.2, n_streams=2, seed=123)
N_RUNS = 2


def _run_scenario() -> dict:
    ring = RingBufferSink(capacity=500_000)
    with tracing(ring):
        result = e2_staggered_q6(SCENARIO, n_runs=N_RUNS)
    summary = summarize(ring.events())
    assert ring.total_seen == summary["n_events"], (
        "ring buffer overflowed; raise its capacity so the golden trace "
        "summary covers every event"
    )
    return {
        "scenario": {
            "experiment": "e2",
            "n_runs": N_RUNS,
            "scale": SCENARIO.scale,
            "n_streams": SCENARIO.n_streams,
            "seed": SCENARIO.seed,
        },
        "metrics": metrics_of(result),
        "trace": {
            "n_events": summary["n_events"],
            "first_time": summary["first_time"],
            "last_time": summary["last_time"],
            "counts": summary["counts"],
        },
    }


def test_staggered_two_scan_matches_golden(regen_golden):
    actual = _run_scenario()
    if regen_golden or not GOLDEN_FILE.exists():
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        GOLDEN_FILE.write_text(
            json.dumps(actual, indent=2, sort_keys=True) + "\n"
        )
        assert GOLDEN_FILE.exists()
        return
    golden = json.loads(GOLDEN_FILE.read_text())
    divergence = first_divergence(golden, actual)
    assert divergence is None, (
        f"staggered two-scan scenario diverged from tests/golden/"
        f"{GOLDEN_FILE.name} at {divergence}; if this change is "
        f"intentional, regenerate with --regen-golden (or "
        f"REPRO_REGEN_GOLDEN=1) and commit the new golden file"
    )


def test_golden_file_is_committed():
    """The reference must exist in the tree, not be a regen artifact."""
    assert GOLDEN_FILE.exists(), (
        "tests/golden/staggered_two_scan.json is missing; run with "
        "--regen-golden once and commit it"
    )
    golden = json.loads(GOLDEN_FILE.read_text())
    assert golden["scenario"]["n_runs"] == N_RUNS
    assert golden["trace"]["n_events"] > 0
    assert golden["metrics"]["base_makespan"] > 0
