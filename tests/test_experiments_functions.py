"""Micro-scale smoke + structure tests for every experiment function.

The benchmarks run these at measurement scale; these tests protect the
harness itself — each experiment must build, run, and return a
structurally valid, renderable result even at tiny scale.
"""

import pytest

from repro.experiments import (
    ExperimentSettings,
    ablation_bufferpool_sweep,
    ablation_disk_array,
    ablation_disk_scheduler,
    ablation_fairness_cap,
    ablation_policies,
    ablation_priority,
    ablation_threshold,
    ablation_throttling,
    e1_overhead,
    e2_staggered_q6,
    e3_staggered_q1,
    e4_throughput,
    e5_reads_timeline,
    e6_seeks_timeline,
    e7_per_stream,
    e8_per_query,
    e9_stream_scaling,
)

TINY = ExperimentSettings(scale=0.05, n_streams=2, query_names=("Q6", "Q14"))


class TestCoreExperiments:
    def test_e1(self):
        result = e1_overhead(TINY)
        assert "overhead" in result.render()
        assert isinstance(result.overhead_percent, float)

    def test_e2(self):
        result = e2_staggered_q6(TINY, n_runs=2)
        assert len(result.per_run_base) == 2
        assert len(result.per_run_gains()) == 2
        assert "Q6" in result.render()

    def test_e3(self):
        result = e3_staggered_q1(TINY, n_runs=2)
        assert len(result.per_run_shared) == 2
        assert "Q1" in result.render()

    def test_e4(self):
        result = e4_throughput(TINY)
        assert "%" in result.render()
        assert result.comparison.base.pages_read > 0

    def test_e5_e6_share_comparison(self):
        from repro.experiments.harness import compare_modes

        comparison = compare_modes(TINY)
        reads = e5_reads_timeline(comparison=comparison)
        seeks = e6_seeks_timeline(comparison=comparison)
        assert len(reads.base_series) > 0
        assert len(seeks.base_series) > 0
        assert "bucket" in reads.render()

    def test_e7(self):
        result = e7_per_stream(TINY)
        assert set(result.gains()) == {0, 1}

    def test_e8(self):
        result = e8_per_query(TINY)
        assert set(result.gains()) == {"Q6", "Q14"}
        assert result.regressions(tolerance_percent=1e9) == []

    def test_e9(self):
        result = e9_stream_scaling(TINY, stream_counts=(1, 2))
        assert set(result.points) == {1, 2}
        assert result.throughput(2, shared=True) > 0
        assert "streams" in result.render()


class TestAblations:
    def test_a1(self):
        result = ablation_throttling(TINY)
        assert set(result.makespans()) == {"base", "no-throttle", "full"}

    def test_a2(self):
        result = ablation_priority(TINY)
        assert "no-priority" in result.makespans()

    def test_a3(self):
        result = ablation_threshold(TINY, thresholds=(1.0, 4.0))
        assert len(result.rows) == 2

    def test_a4(self):
        comparisons = ablation_bufferpool_sweep(TINY, fractions=(0.3, 1.5))
        assert set(comparisons) == {0.3, 1.5}

    def test_a5(self):
        result = ablation_policies(TINY, policies=("lru",))
        labels = [row[0] for row in result.rows]
        assert labels == ["lru (no sharing)", "priority-lru + sharing"]

    def test_a6(self):
        result = ablation_fairness_cap(TINY, caps=(0.0, 0.8))
        assert "cap 80%" in result.makespans()

    def test_a7(self):
        result = ablation_disk_scheduler(TINY)
        assert set(result.makespans()) == {
            "fifo", "fifo + sharing", "elevator", "elevator + sharing"
        }

    def test_a9(self):
        comparisons = ablation_disk_array(TINY, disk_counts=(1, 2))
        assert set(comparisons) == {1, 2}
        for comparison in comparisons.values():
            assert comparison.base.pages_read > 0
