"""Unit tests for memory-budgeted spillable operators.

The contract under test: budgeted operators produce *exactly* the same
answers as their unbudgeted counterparts — spilling changes only the
simulated cost — and they spill when (and only when) their state
outgrows the granted frames or the pool claws frames back mid-scan.
"""

import numpy as np
import pytest

from repro.engine.costs import CostModel
from repro.engine.executor import execute_query
from repro.engine.memory import OperatorMemory, TempSpace
from repro.engine.operators import AggSpec, GroupByAggregate
from repro.engine.query import QuerySpec, ScanStep
from repro.engine.expressions import col
from repro.engine.spill import (
    BudgetedGroupBy,
    HashBuildSink,
    HashProbe,
    SortSpillGroupBy,
    chunk_factor,
    partition_of,
)

from tests.conftest import make_database

COST = CostModel()


def key_page(n=200, n_keys=997, offset=0):
    """One synthetic page with a high-cardinality group key column."""
    keys = (np.arange(n, dtype=np.int64) * 31 + offset) % n_keys
    return {
        "k": keys,
        "v": keys.astype(np.float64) / 2.0,
    }


def drive(db, generator):
    proc = db.sim.spawn(generator)
    db.sim.run()
    if isinstance(proc.completion.value, BaseException):
        raise proc.completion.value
    return proc.completion.value


AGGS = (
    AggSpec("n", "count"),
    AggSpec("total", "sum", col("v")),
    AggSpec("mean", "avg", col("v")),
    AggSpec("hi", "max", col("v")),
)


def feed_and_finalize(db, operator, n_pages=6):
    """Push pages through ``operator`` and drive its finalize phase."""
    for page_no in range(n_pages):
        operator.push(key_page(offset=page_no * 57), 200)

    def finisher(sim):
        yield from operator.finalize_sim(db)

    drive(db, finisher(db.sim))
    return operator.finish()


class TestBudgetedEquivalence:
    """Spilling must never change the answer, only the cost."""

    @pytest.mark.parametrize("operator_cls",
                             [BudgetedGroupBy, SortSpillGroupBy])
    def test_matches_classic_aggregate(self, operator_cls):
        db = make_database(pool_pages=64)
        classic = GroupByAggregate(AGGS, COST, group_by=("k",))
        for page_no in range(6):
            classic.push(key_page(offset=page_no * 57), 200)
        expected = classic.finish()

        memory = OperatorMemory(db, "agg", budget_pages=2)
        memory.negotiate()
        budgeted = operator_cls(AGGS, COST, memory, group_by=("k",))
        result = feed_and_finalize(db, budgeted)

        assert budgeted.spill.spill_events > 0, "budget of 2 should spill"
        assert set(result) == set(expected)
        for group, values in expected.items():
            for name in ("n", "hi"):
                assert result[group][name] == values[name]
            for name in ("total", "mean"):
                assert result[group][name] == pytest.approx(values[name])
        memory.release()

    def test_hash_and_sort_strategies_agree_on_values(self):
        results = {}
        for operator_cls in (BudgetedGroupBy, SortSpillGroupBy):
            db = make_database(pool_pages=64)
            memory = OperatorMemory(db, "agg", budget_pages=2)
            memory.negotiate()
            operator = operator_cls(AGGS, COST, memory, group_by=("k",))
            results[operator_cls] = feed_and_finalize(db, operator)
        hash_result, sort_result = results.values()
        assert hash_result.keys() == sort_result.keys()
        for group in hash_result:
            assert hash_result[group]["n"] == sort_result[group]["n"]

    def test_no_spill_within_budget(self):
        db = make_database(pool_pages=64)
        memory = OperatorMemory(db, "agg", budget_pages=32)
        memory.negotiate()
        operator = BudgetedGroupBy(AGGS, COST, memory, group_by=("k",))
        feed_and_finalize(db, operator)
        assert operator.spill.spill_events == 0
        assert not db.temp.allocated, "spill-free run must not touch temp"


class TestSpillUnderClawBack:
    def test_claw_back_forces_spill_below_budget(self):
        """A pool claw-back must make the operator shed state even
        though its table still fits the *originally* granted frames."""
        db = make_database(pool_pages=64)
        memory = OperatorMemory(db, "agg", budget_pages=16)
        granted = memory.negotiate()
        assert granted == 16
        operator = BudgetedGroupBy(AGGS, COST, memory, group_by=("k",))
        operator.push(key_page(), 200)
        assert operator.spill.spill_events == 0

        db.pool._claw_back_one()
        assert memory.spill_requested
        assert memory.pressure_events == 1
        assert memory.pages == 15

        operator.push(key_page(offset=13), 200)
        assert operator.spill.spill_events > 0
        assert not memory.spill_requested, "spill must clear the flag"
        assert db.temp.pages_written > 0

    def test_release_returns_surviving_frames_only(self):
        db = make_database(pool_pages=64)
        memory = OperatorMemory(db, "agg", budget_pages=8)
        memory.negotiate()
        db.pool._claw_back_one()
        db.pool._claw_back_one()
        assert memory.clawed_pages == 2
        freed = memory.release()
        assert freed == 6
        assert memory.stats()["granted_pages"] == 8

    def test_negotiate_clamps_to_usable_floor(self):
        db = make_database(pool_pages=16)
        memory = OperatorMemory(db, "agg", budget_pages=1000)
        granted = memory.negotiate()
        assert granted == 16 - db.pool.MIN_USABLE_FRAMES
        memory.release()
        assert db.pool.reserved_frames == 0


class TestMultibufferJoin:
    def build_table(self, n_pages=4):
        table = {}
        for page_no in range(n_pages):
            for key in ((np.arange(200) * 31 + page_no * 57) % 997):
                table[int(key)] = table.get(int(key), 0) + 1
        return table

    def test_chunk_sums_equal_single_pass(self):
        table = self.build_table()
        single = HashProbe("k", COST, table, chunk=(0, 1))
        for page_no in range(5):
            single.push(key_page(offset=page_no * 101), 200)
        expected = single.finish()

        n_chunks = 3
        totals = {"rows_probed": 0, "matches": 0}
        for chunk_id in range(n_chunks):
            probe = HashProbe("k", COST, table, chunk=(chunk_id, n_chunks))
            for page_no in range(5):
                probe.push(key_page(offset=page_no * 101), 200)
            out = probe.finish()
            totals["matches"] += out["matches"]
            totals["rows_probed"] = max(totals["rows_probed"],
                                        out["rows_probed"])
        assert totals["matches"] == expected["matches"]
        assert totals["rows_probed"] == expected["rows_probed"]

    def test_build_sink_spills_and_recovers_counts(self):
        db = make_database(pool_pages=64)
        expected = self.build_table(n_pages=6)

        memory = OperatorMemory(db, "join", budget_pages=2)
        memory.negotiate()
        sink = HashBuildSink("k", COST, memory=memory)
        for page_no in range(6):
            sink.push(key_page(offset=page_no * 57), 200)
        assert sink.spill.spill_events > 0

        def finisher(sim):
            yield from sink.finalize_sim(db)

        drive(db, finisher(db.sim))
        assert sink.finish() == expected
        assert sink.pages_needed >= 1
        memory.release()

    def test_chunk_factor(self):
        assert chunk_factor(0, 8) == 1
        assert chunk_factor(8, 8) == 1
        assert chunk_factor(9, 8) == 2
        assert chunk_factor(64, 8) == 8
        assert chunk_factor(5, 0) == 5

    def test_partition_of_is_stable(self):
        assert partition_of(42, 8) == partition_of(42, 8)
        assert 0 <= partition_of(float("nan"), 8) < 8
        counts = [0] * 8
        for key in range(1000):
            counts[partition_of(key, 8)] += 1
        assert all(count > 0 for count in counts)


class TestTempSpace:
    def test_lazy_allocation_and_wraparound(self):
        db = make_database(pool_pages=32, temp_space_pages=10)
        temp = db.temp
        assert isinstance(temp, TempSpace)
        assert not temp.allocated

        addr_a, _ = temp.write_run(6)
        assert temp.allocated
        addr_b, _ = temp.write_run(6)      # would overflow: wraps to base
        assert addr_b == addr_a
        assert temp.pages_written == 12
        db.sim.run()

    def test_rejects_bad_sizes(self):
        db = make_database(pool_pages=32)
        with pytest.raises(ValueError):
            db.temp.write_run(0)
        with pytest.raises(ValueError):
            db.temp.read_run(0, 0)
        with pytest.raises(ValueError):
            TempSpace(db, 0)


class TestExecutorIntegration:
    def grouped_query(self, budget):
        return QuerySpec(
            name="grouped",
            steps=(
                ScanStep(
                    table="t",
                    aggregates=(AggSpec("n", "count"),
                                AggSpec("total", "sum", col("value"))),
                    group_by=("id",),
                    agg_budget_pages=budget,
                    label="t",
                ),
            ),
        )

    def run_query(self, db, spec):
        proc = db.sim.spawn(execute_query(db, spec))
        db.sim.run()
        return proc.completion.value

    def test_budgeted_step_spills_and_matches_unbudgeted(self):
        # 12800 distinct ids = 200 frames of groups; a 2-page budget
        # must spill, a None budget runs the classic operator.
        budgeted_db = make_database(n_pages=128, pool_pages=32)
        budgeted = self.run_query(budgeted_db, self.grouped_query(2))
        stats = budgeted.operator_stats()
        assert stats["spill_events"] > 0
        assert stats["spill_pages_written"] > 0
        assert stats["granted_pages"] == 2
        assert budgeted_db.pool.reserved_frames == 0, "budget released"

        classic_db = make_database(n_pages=128, pool_pages=32)
        classic = self.run_query(classic_db, self.grouped_query(None))
        assert classic.operator_stats() == {}
        assert budgeted.values["t"] == classic.values["t"]
        assert budgeted_db.sim.now > classic_db.sim.now, (
            "spill I/O and merge CPU must cost simulated time"
        )

    def test_join_steps_chunk_and_match(self):
        db = make_database(n_pages=64, pool_pages=32)
        spec = QuerySpec(
            name="join",
            steps=(
                ScanStep(table="t", join_build_key="id",
                         join_budget_pages=2, label="build"),
                ScanStep(table="t", join_probe_key="id", label="probe"),
            ),
        )
        result = self.run_query(db, spec)
        stats = result.operator_stats()
        # 6400 unique ids need 50 key-pages; 2 granted frames -> chunks.
        assert stats["join_chunks"] == 25
        assert stats["build_pages_needed"] == 50
        assert result.values["probe"]["matches"] == 64 * 100
        assert db.pool.reserved_frames == 0


class TestBudgetedTemplates:
    def test_make_query_reaches_budgeted_templates(self):
        from repro.workloads.tpch_queries import (
            BUDGETED_QUERY_FACTORIES,
            make_query,
        )

        rng = np.random.default_rng(7)
        for name in sorted(BUDGETED_QUERY_FACTORIES):
            spec = make_query(name, rng)
            budgets = [
                step.agg_budget_pages or step.join_budget_pages
                for step in spec.steps
            ]
            assert any(budget is not None for budget in budgets), name

    def test_unknown_query_lists_budgeted_names(self):
        from repro.workloads.tpch_queries import make_query

        rng = np.random.default_rng(7)
        with pytest.raises(KeyError, match="AG1"):
            make_query("nope", rng)
