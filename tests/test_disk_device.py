"""Unit tests for the simulated disk device."""

import pytest

from repro.disk.device import Disk
from repro.disk.geometry import DiskGeometry
from repro.sim.events import SimulationError
from repro.sim.kernel import Simulator


@pytest.fixture
def fast_geo():
    return DiskGeometry(total_pages=1000)


def read_pages(sim, disk, requests, log):
    for start, n in requests:
        done = yield disk.read(start, n)
        log.append((sim.now, start, n, done.start_page))


class TestValidation:
    def test_zero_pages_rejected(self, sim, fast_geo):
        disk = Disk(sim, fast_geo)
        with pytest.raises(SimulationError):
            disk.read(0, 0)

    def test_out_of_range_rejected(self, sim, fast_geo):
        disk = Disk(sim, fast_geo)
        with pytest.raises(SimulationError):
            disk.read(999, 2)
        with pytest.raises(SimulationError):
            disk.read(-1, 1)


class TestServiceModel:
    def test_single_read_takes_seek_plus_transfer(self, sim, fast_geo):
        disk = Disk(sim, fast_geo)
        log = []
        sim.spawn(read_pages(sim, disk, [(100, 4)], log))
        sim.run()
        expected = (
            fast_geo.seek_time(0, 100)
            + fast_geo.settle_time
            + fast_geo.transfer_time(4)
        )
        assert sim.now == pytest.approx(expected)

    def test_sequential_read_skips_seek(self, sim, fast_geo):
        disk = Disk(sim, fast_geo)
        log = []
        # Head parks at page 0, so a read starting at 0 is sequential too.
        sim.spawn(read_pages(sim, disk, [(0, 4), (4, 4)], log))
        sim.run()
        assert disk.stats.seeks == 0
        assert disk.stats.reads == 2

    def test_non_sequential_reads_each_seek(self, sim, fast_geo):
        disk = Disk(sim, fast_geo)
        log = []
        sim.spawn(read_pages(sim, disk, [(100, 4), (500, 4), (10, 4)], log))
        sim.run()
        assert disk.stats.seeks == 3

    def test_fifo_service_order(self, sim, fast_geo):
        disk = Disk(sim, fast_geo)
        completions = []

        def submit_all(sim):
            events = [disk.read(500, 1), disk.read(0, 1), disk.read(900, 1)]
            for ev in events:
                ev.add_callback(
                    lambda e: completions.append(e.value.start_page)
                )
            yield sim.timeout(0)

        sim.spawn(submit_all(sim))
        sim.run()
        assert completions == [500, 0, 900]

    def test_head_position_tracks_last_transfer(self, sim, fast_geo):
        disk = Disk(sim, fast_geo)
        log = []
        sim.spawn(read_pages(sim, disk, [(100, 8)], log))
        sim.run()
        assert disk.head_position == 108


class TestStatsAndTraces:
    def test_pages_read_accumulates(self, sim, fast_geo):
        disk = Disk(sim, fast_geo)
        log = []
        sim.spawn(read_pages(sim, disk, [(0, 4), (100, 8)], log))
        sim.run()
        assert disk.stats.pages_read == 12
        assert disk.stats.reads == 2

    def test_write_stats_separate(self, sim, fast_geo):
        disk = Disk(sim, fast_geo)

        def writer(sim):
            yield disk.write(50, 2)

        sim.spawn(writer(sim))
        sim.run()
        assert disk.stats.writes == 1
        assert disk.stats.pages_written == 2
        assert disk.stats.pages_read == 0

    def test_read_trace_bucketing(self, sim, fast_geo):
        disk = Disk(sim, fast_geo)
        log = []
        sim.spawn(read_pages(sim, disk, [(0, 4), (200, 4), (400, 4)], log))
        sim.run()
        buckets = disk.stats.pages_read_per_bucket(until=sim.now, bucket=sim.now)
        assert sum(buckets) == 12

    def test_outstanding_timeline_returns_to_zero(self, sim, fast_geo):
        disk = Disk(sim, fast_geo)
        log = []
        sim.spawn(read_pages(sim, disk, [(0, 2), (600, 2)], log))
        sim.run()
        assert disk.outstanding_timeline.current_level == 0
        assert disk.outstanding_timeline.time_at_or_above(1, sim.now) == pytest.approx(
            sim.now
        )

    def test_queue_length_while_busy(self, sim, fast_geo):
        disk = Disk(sim, fast_geo)

        def submit(sim):
            disk.read(0, 100)
            disk.read(500, 1)
            disk.read(700, 1)
            yield sim.timeout(0)
            assert disk.busy
            assert disk.queue_length == 2

        sim.spawn(submit(sim))
        sim.run()
        assert not disk.busy
        assert disk.queue_length == 0
