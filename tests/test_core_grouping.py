"""Unit tests for scan grouping (Figure-14 analog)."""

from hypothesis import given, settings, strategies as st

from repro.core.grouping import form_groups
from repro.core.scan_state import ScanDescriptor, ScanState


def state(scan_id, position, table="t", table_pages=1000, speed=100.0):
    descriptor = ScanDescriptor(
        table_name=table, first_page=0, last_page=table_pages - 1,
        estimated_speed=speed,
    )
    st_ = ScanState(
        scan_id=scan_id, descriptor=descriptor, start_page=position,
        start_time=0.0, speed=speed,
    )
    return st_


class TestFormGroups:
    def test_no_scans_no_groups(self):
        assert form_groups({}, pool_budget_pages=100) == []

    def test_single_scan_is_own_leader_and_trailer(self):
        s = state(0, 50)
        groups = form_groups({"t": [s]}, pool_budget_pages=100)
        assert len(groups) == 1
        assert groups[0].leader is s
        assert groups[0].trailer is s
        assert s.is_leader and s.is_trailer
        assert groups[0].extent_pages == 0

    def test_close_scans_grouped(self):
        a, b = state(0, 50), state(1, 60)
        groups = form_groups({"t": [a, b]}, pool_budget_pages=100)
        assert len(groups) == 1
        assert groups[0].trailer is a
        assert groups[0].leader is b
        assert b.is_leader and not b.is_trailer
        assert a.is_trailer and not a.is_leader

    def test_budget_exhausted_keeps_scans_apart(self):
        a, b = state(0, 0), state(1, 500)
        groups = form_groups({"t": [a, b]}, pool_budget_pages=100)
        assert len(groups) == 2

    def test_paper_example_groups(self):
        """The paper's worked example: offsets 10/50/60/75 and 20/40 with a
        50-page budget yield groups (A), (B,C,D), (E,F)."""
        a = state(0, 10, table="t1")
        b = state(1, 50, table="t1")
        c = state(2, 60, table="t1")
        d = state(3, 75, table="t1")
        e = state(4, 20, table="t2")
        f = state(5, 40, table="t2")
        groups = form_groups({"t1": [a, b, c, d], "t2": [e, f]},
                             pool_budget_pages=50)
        by_members = {
            tuple(sorted(m.scan_id for m in g.members)) for g in groups
        }
        assert by_members == {(0,), (1, 2, 3), (4, 5)}
        # Total extent: (B,C,D) spans 25, (E,F) spans 20 -> 45 <= 50.
        total = sum(g.extent_pages for g in groups)
        assert total == 45

    def test_closest_pairs_merged_first(self):
        # Budget only allows one merge; the closest pair must win.
        a, b, c = state(0, 0), state(1, 30), state(2, 40)
        groups = form_groups({"t": [a, b, c]}, pool_budget_pages=15)
        by_members = {tuple(sorted(m.scan_id for m in g.members)) for g in groups}
        assert by_members == {(0,), (1, 2)}

    def test_scans_on_different_tables_never_grouped(self):
        a = state(0, 10, table="x")
        b = state(1, 12, table="y")
        groups = form_groups({"x": [a], "y": [b]}, pool_budget_pages=1000)
        assert len(groups) == 2

    def test_leader_is_frontmost_by_position(self):
        scans = [state(i, pos) for i, pos in enumerate([90, 10, 50])]
        groups = form_groups({"t": scans}, pool_budget_pages=1000)
        assert len(groups) == 1
        assert groups[0].leader.scan_id == 0  # position 90
        assert groups[0].trailer.scan_id == 1  # position 10

    def test_wrapped_scan_grouped_with_scan_it_follows(self):
        """Regression: a scan that wrapped past the range end (small
        linear position) is just behind the scan it chases.  The old
        linear gap (980 pages here) kept the pair apart; the circular
        gap is 20."""
        a, b = state(0, 990), state(1, 10)
        groups = form_groups({"t": [a, b]}, pool_budget_pages=50)
        assert len(groups) == 1
        assert groups[0].trailer is a
        assert groups[0].leader is b
        assert groups[0].extent_pages == 20
        assert b.is_leader and a.is_trailer

    def test_group_ids_unique(self):
        scans = [state(i, i * 300) for i in range(4)]
        groups = form_groups({"t": scans}, pool_budget_pages=10)
        ids = [g.group_id for g in groups]
        assert len(set(ids)) == len(ids)

    def test_contains(self):
        a, b = state(0, 0), state(1, 5)
        groups = form_groups({"t": [a, b]}, pool_budget_pages=100)
        assert a in groups[0]
        assert b in groups[0]

    @settings(max_examples=50, deadline=None)
    @given(
        positions=st.lists(
            st.integers(min_value=0, max_value=999), min_size=1, max_size=12
        ),
        budget=st.integers(min_value=0, max_value=2000),
    )
    def test_partition_invariants(self, positions, budget):
        """Groups always partition the scan set, total extent respects the
        budget, and each group is a circular arc: walking the members from
        the trailer, distances (in scan direction) never decrease, and
        every member lies within the trailer→leader extent."""
        scans = [state(i, pos) for i, pos in enumerate(positions)]
        groups = form_groups({"t": scans}, pool_budget_pages=budget)
        seen = [m.scan_id for g in groups for m in g.members]
        assert sorted(seen) == sorted(s.scan_id for s in scans)
        assert sum(g.extent_pages for g in groups) <= max(budget, 0)
        for group in groups:
            circle = group.table_pages
            trailer = group.trailer
            offsets = [
                trailer.forward_distance_to(m, circle) for m in group.members
            ]
            assert offsets == sorted(offsets)
            assert offsets[0] == 0
            assert offsets[-1] == group.extent_pages <= max(budget, 0)
