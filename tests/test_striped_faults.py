"""Fault injection against striped arrays and the push pipeline.

The ``device=`` option pins a disk clause to one spindle; these tests
prove the pin is exact (other spindles stay clean), that the pipeline's
delivery invariants hold under kills and degradation, and that chaos
runs over a striped push database stay digest-deterministic under
``--jobs``.
"""

from __future__ import annotations

import pytest

from repro.core.config import SharingConfig
from repro.disk.array import DiskArray
from repro.disk.geometry import DiskGeometry
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultSpecError, parse_fault_spec
from repro.scans.shared_scan import SharedTableScan
from repro.sim.kernel import Simulator

from tests.conftest import make_database


def cheap(page_no, data, n_rows):
    return 1e-6


class TestDeviceOption:
    def test_parse_device_option(self):
        (delay,) = parse_fault_spec("disk-delay:factor=2.0,device=1")
        assert delay.device == 1
        (error,) = parse_fault_spec("disk-error:rate=0.1,device=3")
        assert error.device == 3

    def test_default_hits_every_device(self):
        (delay,) = parse_fault_spec("disk-delay:factor=2.0")
        assert delay.device == -1
        for index in range(4):
            assert delay.matches_device(index)

    def test_pinned_clause_matches_one_device(self):
        (delay,) = parse_fault_spec("disk-delay:factor=2.0,device=2")
        assert delay.matches_device(2)
        assert not delay.matches_device(0)
        assert not delay.matches_device(3)

    @pytest.mark.parametrize("kind", ["disk-delay:factor=2.0",
                                      "disk-error:rate=0.1"])
    def test_negative_device_rejected(self, kind):
        with pytest.raises(FaultSpecError, match="device"):
            parse_fault_spec(f"{kind},device=-2")


def timed_array_read(plan, n_disks=2, start=0, n_pages=64):
    """One striped read under a plan; returns (elapsed, array)."""
    sim = Simulator()
    array = DiskArray(sim, n_disks=n_disks,
                      geometry=DiskGeometry(total_pages=4096),
                      stripe_pages=8)
    if plan is not None:
        FaultInjector(sim, plan).attach(disk=array)
    array.read(start, n_pages)
    sim.run()
    return sim.now, array


class TestDeviceScopedInjection:
    def test_delay_on_one_device_spares_the_others(self):
        # A 64-page read over a 2-way, 8-page stripe issues 4 requests
        # per device; a pinned clause stretches exactly device 1's half.
        plan = FaultPlan.from_spec("disk-delay:factor=8.0,device=1", seed=0)
        elapsed, array = timed_array_read(plan)
        injector = array.disks[0]._faults
        assert injector.stats.disk_delayed_requests == 4
        clean_elapsed, _ = timed_array_read(None)
        assert elapsed > clean_elapsed

    def test_global_delay_stretches_every_request(self):
        _, pinned_array = timed_array_read(
            FaultPlan.from_spec("disk-delay:factor=8.0,device=0", seed=0)
        )
        _, global_array = timed_array_read(
            FaultPlan.from_spec("disk-delay:factor=8.0", seed=0)
        )
        pinned = pinned_array.disks[0]._faults.stats.disk_delayed_requests
        unpinned = global_array.disks[0]._faults.stats.disk_delayed_requests
        assert unpinned == 2 * pinned

    def test_errors_strike_only_the_pinned_device(self):
        plan = FaultPlan.from_spec(
            "disk-error:rate=1.0,max_retries=2,backoff=0.001,device=1",
            seed=0,
        )
        _, array = timed_array_read(plan, n_pages=128)
        injector = array.disks[0]._faults
        assert injector.stats.disk_errors_injected > 0
        # Every request on device 1 retried; device 0 never did.
        assert array.disks[1].stats.io_retries > 0
        assert array.disks[0].stats.io_retries == 0

    def test_out_of_range_device_never_fires(self):
        plan = FaultPlan.from_spec("disk-delay:factor=8.0,device=7", seed=0)
        elapsed, array = timed_array_read(plan)
        clean_elapsed, _ = timed_array_read(None)
        assert elapsed == pytest.approx(clean_elapsed)
        assert array.disks[0]._faults.stats.disk_delayed_requests == 0


def run_push_chaos(fault_spec, seed=11, n_scans=3, n_pages=256):
    db = make_database(
        n_pages=n_pages, pool_pages=96,
        sharing=SharingConfig(enabled=True),
        n_disks=2, stripe_extents=1, push_enabled=True,
        fault_plan=FaultPlan.from_spec(fault_spec, seed=seed),
    )
    scans = [
        SharedTableScan(db, "t", 0, n_pages - 1, on_page=cheap)
        for _ in range(n_scans)
    ]
    procs = [db.sim.spawn(scan.run()) for scan in scans]
    db.sim.run()
    for proc in procs:
        if proc.completion.failed:
            raise proc.completion.value
    db.faults.check_invariants()
    assert db.faults.checker.checks_run > 0
    return db


class TestPushInvariantsUnderFaults:
    def test_device_degradation_keeps_delivery_invariants(self):
        db = run_push_chaos(
            "disk-delay:factor=6.0,device=0;"
            "disk-error:rate=0.3,max_retries=3,backoff=0.001,device=1"
        )
        assert db.push.stats.extents_pushed > 0
        assert db.push.stats.duplicate_deliveries == 0

    def test_kills_leave_no_consumer_sets_behind(self):
        db = run_push_chaos(
            "scan-kill:target=any,at=0.3,count=2;disk-delay:factor=2.0"
        )
        assert db.sharing.stats.scans_aborted >= 1
        for consumers in db.push.consumer_sets().values():
            assert not consumers
        assert db.push.stats.duplicate_deliveries == 0


@pytest.mark.slow
class TestStripedChaosDeterminism:
    """Chaos over a striped push database: serial digest == --jobs digest."""

    def test_serial_vs_jobs_identical_digests(self):
        from repro.experiments.harness import ExperimentSettings
        from repro.experiments.runner import (
            ExperimentTask,
            metrics_digest,
            run_tasks,
        )

        chaotic = ExperimentSettings(
            scale=0.05, n_streams=2, seed=7,
            device_count=2, stripe_extents=1, push_prefetch=True,
            fault_spec="disk-delay:factor=3.0,device=1;leader-abort",
        )
        tasks = [ExperimentTask("e1", chaotic),
                 ExperimentTask("st-push", chaotic)]
        serial = run_tasks(tasks, jobs=1, use_cache=False)
        fanned = run_tasks(tasks, jobs=2, use_cache=False)
        for left, right in zip(serial.tasks, fanned.tasks):
            assert metrics_digest(left.metrics) == metrics_digest(right.metrics)
        assert serial.suite_digest() == fanned.suite_digest()
