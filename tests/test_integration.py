"""End-to-end integration tests: the paper's claims at test scale.

These run full workloads through every layer (simulator, disk, pool,
storage, manager, engine) and assert the *directional* properties the
paper reports — the benchmark harness then measures the magnitudes.

Marked ``slow``: the fast CI lane (``-m "not slow"``) skips this module.
"""

import pytest

pytestmark = pytest.mark.slow

from repro.core.config import SharingConfig
from repro.engine.database import SystemConfig
from repro.engine.executor import run_workload
from repro.workloads.streams import tpch_streams
from repro.workloads.synthetic import uniform_scan_query
from repro.workloads.tpch_schema import make_tpch_database

from tests.conftest import make_database


def run_tpch(enabled, n_streams=3, query_names=("Q21", "Q18", "Q9", "Q17"),
             scale=0.2, **sharing_kwargs):
    # Default queries are full-table-scan heavy (Q21 scans lineitem twice)
    # so the scanned ranges dwarf the pool even at test scale — the regime
    # the paper's mechanism targets.
    # Pin the pool to ~12 % of the scaled database: the default 96-page
    # floor would be ~19 % at this scale, far from the paper's 5 % regime.
    config = SystemConfig(
        pool_pages=64,
        sharing=SharingConfig(enabled=enabled, **sharing_kwargs),
    )
    db = make_tpch_database(config, scale=scale)
    result = run_workload(db, tpch_streams(n_streams, query_names=list(query_names)))
    return db, result


class TestSharingWins:
    def test_concurrent_identical_scans_read_less(self):
        """Staggered full scans: without sharing the latecomers re-read
        pages the pool already evicted; with sharing they join the ongoing
        scan's position and piggyback."""
        results = {}
        for enabled in (False, True):
            db = make_database(n_pages=256, pool_pages=64,
                               sharing=SharingConfig(enabled=enabled))
            query = uniform_scan_query("t", name="full")
            results[enabled] = run_workload(
                db, [[query] for _ in range(4)], stagger=0.02
            )
        assert results[True].pages_read < results[False].pages_read
        assert results[True].makespan < results[False].makespan

    def test_tpch_mix_improves_end_to_end(self):
        _, base = run_tpch(enabled=False)
        _, shared = run_tpch(enabled=True)
        assert shared.makespan < base.makespan
        assert shared.pages_read < base.pages_read

    def test_seeks_reduced(self):
        _, base = run_tpch(enabled=False)
        _, shared = run_tpch(enabled=True)
        assert shared.seeks < base.seeks

    def test_hit_ratio_improves(self):
        _, base = run_tpch(enabled=False)
        _, shared = run_tpch(enabled=True)
        assert shared.buffer_hit_ratio > base.buffer_hit_ratio


def _assert_values_close(a, b, path=""):
    """Recursive comparison tolerating float summation-order differences
    (a wrapped scan accumulates the same pages in a different order)."""
    assert type(a) is type(b), f"{path}: {type(a)} != {type(b)}"
    if isinstance(a, dict):
        assert a.keys() == b.keys(), f"{path}: keys differ"
        for key in a:
            _assert_values_close(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, float):
        assert a == pytest.approx(b, rel=1e-9), f"{path}: {a} != {b}"
    else:
        assert a == b, f"{path}: {a} != {b}"


class TestCorrectnessUnderSharing:
    def test_query_answers_identical(self):
        """Placement, wrap-around, throttling, and prioritization must not
        change any query's result values (up to float summation order)."""
        def collect(enabled):
            _, result = run_tpch(enabled=enabled, n_streams=2,
                                 query_names=("Q1", "Q6"))
            answers = {}
            for stream in result.streams:
                for query in stream.queries:
                    answers[(stream.stream_id, query.name)] = query.values
            return answers

        _assert_values_close(collect(False), collect(True))

    def test_pages_scanned_identical(self):
        _, base = run_tpch(enabled=False, n_streams=2, query_names=("Q6",))
        _, shared = run_tpch(enabled=True, n_streams=2, query_names=("Q6",))
        pages = lambda r: sorted(
            q.pages_scanned for s in r.streams for q in s.queries
        )
        assert pages(base) == pages(shared)


class TestFairness:
    def test_no_stream_left_behind(self):
        """Throttling redistributes time but no stream may regress badly
        versus the baseline."""
        _, base = run_tpch(enabled=False, n_streams=3)
        _, shared = run_tpch(enabled=True, n_streams=3)
        for stream_id in range(3):
            assert shared.stream_elapsed(stream_id) <= 1.15 * base.stream_elapsed(
                stream_id
            )

    def test_throttle_time_bounded_by_cap(self):
        db, result = run_tpch(enabled=True, n_streams=3)
        for stream in result.streams:
            for query in stream.queries:
                # No query may spend more time throttled than the 80 %
                # fairness cap allows relative to its own runtime.
                assert query.throttle_seconds <= 0.8 * query.elapsed + 1e-6


class TestMechanismAccounting:
    def test_manager_observed_all_scans(self):
        db, result = run_tpch(enabled=True, n_streams=2, query_names=("Q1", "Q6"))
        total_steps = sum(
            len(q.steps) for s in result.streams for q in s.queries
        )
        assert db.sharing.stats.scans_started == total_steps
        assert db.sharing.stats.scans_finished == total_steps

    def test_placement_joins_happen(self):
        db, _ = run_tpch(enabled=True, n_streams=4, query_names=("Q1", "Q6"))
        joined = (db.sharing.stats.scans_joined_ongoing
                  + db.sharing.stats.scans_joined_last_finished)
        assert joined > 0

    def test_throttling_disabled_means_no_waits(self):
        db, result = run_tpch(enabled=True, throttling_enabled=False)
        assert result.throttle_seconds == 0.0
        assert db.sharing.stats.throttle_waits == 0

    def test_cpu_breakdown_well_formed(self):
        db, _ = run_tpch(enabled=True)
        breakdown = db.cpu_breakdown()
        total = sum(breakdown.as_dict().values())
        assert total == pytest.approx(1.0)
        assert all(v >= 0 for v in breakdown.as_dict().values())


class TestSingleStreamOverhead:
    def test_overhead_below_two_percent(self):
        """The paper reports sub-1 % overhead without concurrency; allow a
        small margin at this tiny scale."""
        _, base = run_tpch(enabled=False, n_streams=1)
        _, shared = run_tpch(enabled=True, n_streams=1)
        overhead = (shared.makespan - base.makespan) / base.makespan
        assert overhead < 0.02
