"""Tests for ClusterSpec, seed derivation, and the ClusterService."""

import pytest

from repro.cluster.service import (
    ClusterService,
    derive_loadgen_seed,
    derive_replica_seed,
)
from repro.cluster.spec import ClusterSpec
from repro.experiments.harness import ExperimentSettings
from repro.experiments.runner import canonical_json
from repro.service.spec import ControllerConfig
from repro.workloads.loadgen import LoadSpec, UserClass

SETTINGS = ExperimentSettings(scale=0.1, seed=42)


def _load(**changes) -> LoadSpec:
    base = dict(
        classes=(
            UserClass(name="scan", templates=("Q6", "Q14"),
                      think_mean=1000 / 60.0),
        ),
        n_users=1000,
        horizon=0.6,
        max_arrivals_per_class=60,
    )
    base.update(changes)
    return LoadSpec(**base)


def _spec(**changes) -> ClusterSpec:
    base = dict(
        load=_load(),
        n_replicas=2,
        controller=ControllerConfig(interval=0.01),
    )
    base.update(changes)
    return ClusterSpec(**base)


class TestClusterSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            _spec(n_replicas=0)
        with pytest.raises(ValueError):
            _spec(replication_factor=3)  # > n_replicas
        with pytest.raises(ValueError):
            _spec(balance="random")
        with pytest.raises(ValueError):
            _spec(replica_overrides=((5, (("pool_pages", 64),)),))

    def test_overrides_for(self):
        spec = _spec(replica_overrides=((1, (("pool_pages", 64),)),))
        assert spec.overrides_for(0) == {}
        assert spec.overrides_for(1) == {"pool_pages": 64}

    def test_describe_is_json_safe(self):
        canonical_json(_spec().describe())


class TestSeedDerivation:
    def test_replica_seeds_distinct_and_stable(self):
        seeds = {derive_replica_seed(42, k) for k in range(8)}
        assert len(seeds) == 8
        assert derive_replica_seed(42, 3) == derive_replica_seed(42, 3)

    def test_base_seed_decorrelates(self):
        assert derive_replica_seed(42, 0) != derive_replica_seed(43, 0)
        assert derive_loadgen_seed(42) != derive_loadgen_seed(43)

    def test_loadgen_seed_differs_from_replica_seeds(self):
        assert derive_loadgen_seed(42) not in {
            derive_replica_seed(42, k) for k in range(8)
        }


class TestClusterService:
    def test_run_drains_and_conserves_arrivals(self):
        result = ClusterService(_spec(), SETTINGS, scenario="t").run()
        assert result.drained
        assert result.n_offered > 0
        assert result.n_arrived == result.n_offered
        assert result.n_completed + result.n_abandoned == result.n_arrived
        routed = sum(r.arrivals_routed for r in result.replicas)
        assert routed == result.n_offered

    def test_rerun_is_byte_identical(self):
        a = ClusterService(_spec(), SETTINGS, scenario="t").run()
        b = ClusterService(_spec(), SETTINGS, scenario="t").run()
        assert canonical_json(a.metrics()) == canonical_json(b.metrics())

    def test_seed_changes_the_run(self):
        a = ClusterService(_spec(), SETTINGS, scenario="t").run()
        b = ClusterService(
            _spec(), SETTINGS.with_(seed=43), scenario="t"
        ).run()
        assert canonical_json(a.metrics()) != canonical_json(b.metrics())

    def test_metrics_shape(self):
        result = ClusterService(_spec(), SETTINGS, scenario="t").run()
        metrics = result.metrics()
        assert metrics["scenario"] == "t"
        assert set(metrics["replicas"]) == {"0", "1"}
        assert metrics["fleet_throughput"] > 0
        assert 0.0 <= metrics["fleet_miss_rate"] <= 1.0
        assert metrics["router"]["assigned"]
        canonical_json(metrics)  # must be JSON-safe

    def test_render_contains_fleet_row(self):
        result = ClusterService(_spec(), SETTINGS, scenario="t").run()
        text = result.render()
        assert "FLEET" in text
        assert "r0" in text and "r1" in text

    def test_least_loaded_with_full_replication_balances(self):
        spec = _spec(
            n_replicas=2, replication_factor=2, balance="least-loaded"
        )
        result = ClusterService(spec, SETTINGS, scenario="t").run()
        routed = [r.arrivals_routed for r in result.replicas]
        assert abs(routed[0] - routed[1]) <= 1

    def test_replica_override_changes_only_that_replica(self):
        base = ClusterService(_spec(), SETTINGS, scenario="t").run()
        tweaked = ClusterService(
            _spec(replica_overrides=((1, (("pool_pages", 8),)),)),
            SETTINGS, scenario="t",
        ).run()
        assert canonical_json(base.replicas[0].service.metrics()) == \
            canonical_json(tweaked.replicas[0].service.metrics())
        assert canonical_json(base.replicas[1].service.metrics()) != \
            canonical_json(tweaked.replicas[1].service.metrics())

    def test_replica_pinned_fault_isolates_other_replicas(self):
        """Killing replica 1's scans must not move a single draw on
        replica 0 — the ``replica=`` pin filters clauses before the
        injector is even built."""
        clean = ClusterService(_spec(), SETTINGS, scenario="t").run()
        faulty = ClusterService(
            _spec(), SETTINGS.with_(
                fault_spec="scan-kill:target=any,at=0.3,count=2,replica=1"
            ), scenario="t",
        ).run()
        assert canonical_json(clean.replicas[0].service.metrics()) == \
            canonical_json(faulty.replicas[0].service.metrics())
        assert canonical_json(clean.replicas[1].service.metrics()) != \
            canonical_json(faulty.replicas[1].service.metrics())

    def test_unpinned_fault_hits_every_replica(self):
        clean = ClusterService(_spec(), SETTINGS, scenario="t").run()
        faulty = ClusterService(
            _spec(), SETTINGS.with_(fault_spec="disk-delay:factor=8.0"),
            scenario="t",
        ).run()
        for k in range(2):
            assert canonical_json(clean.replicas[k].service.metrics()) != \
                canonical_json(faulty.replicas[k].service.metrics())
