"""Tests for the perf microbenchmark harness and its regression gate.

The benchmark *bodies* are exercised (cheaply, with tiny iteration
counts) so a broken hot path fails here before it fails in CI's bench
lane; the report/compare/CLI plumbing is tested without timing anything.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.perf.bench import (
    BenchReport,
    SCHEMA_VERSION,
    bench_dispatch,
    bench_fix_hit,
    bench_fix_hit_generator,
    bench_fix_many,
    bench_fix_miss,
    bench_push_many,
    calibrate,
    compare_reports,
    load_report,
    render_report,
    run_benchmarks,
    write_report,
)


def make_report(calib=1_000_000.0, fix_hit=500_000.0, wall=0.5,
                mode="full") -> BenchReport:
    report = BenchReport(mode=mode, calibration_ops_per_sec=calib)
    report.add_throughput("fix_hit", fix_hit)
    report.add_wall("staggered_q6", wall)
    report.derived["fix_hit_speedup_vs_generator"] = 4.0
    report.meta["python"] = "3.x"
    return report


class TestBenchBodies:
    def test_calibration_positive(self):
        assert calibrate(repeats=1) > 0

    def test_fix_hit_bodies_run(self):
        assert bench_fix_hit(200) > 0
        assert bench_fix_hit_generator(200) > 0

    def test_fix_miss_body_runs(self):
        assert bench_fix_miss(64) > 0

    def test_dispatch_body_runs(self):
        assert bench_dispatch(500) > 0

    def test_batch_bodies_run(self):
        assert bench_push_many(500) > 0
        assert bench_fix_many(200) > 0

    def test_only_restricts_battery(self):
        report = run_benchmarks(quick=True, only=["dispatch"])
        assert set(report.benchmarks) == {"dispatch"}
        # The speedup ratio needs both fix benches; neither ran.
        assert "fix_hit_speedup_vs_generator" not in report.derived

    def test_only_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            run_benchmarks(quick=True, only=["no_such_bench"])


class TestReport:
    def test_normalization_math(self):
        report = make_report(calib=2_000_000.0, fix_hit=500_000.0, wall=0.5)
        assert report.benchmarks["fix_hit"]["normalized"] == pytest.approx(0.25)
        # Wall costs scale the other way: spin-op equivalents of work.
        assert report.benchmarks["staggered_q6"]["normalized"] == pytest.approx(
            1_000_000.0)

    def test_json_round_trip(self, tmp_path):
        report = make_report()
        path = str(tmp_path / "bench.json")
        write_report(report, path)
        loaded = load_report(path)
        assert loaded.to_dict() == report.to_dict()

    def test_unsupported_schema_rejected(self):
        payload = make_report().to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            BenchReport.from_dict(payload)

    def test_render_mentions_every_benchmark(self):
        text = render_report(make_report())
        assert "fix_hit" in text and "staggered_q6" in text
        assert "fix_hit_speedup_vs_generator" in text


class TestCompareReports:
    def test_identical_reports_pass(self):
        report = make_report()
        assert compare_reports(report, report) == []

    def test_faster_machine_same_code_passes(self):
        """A 3x faster machine with identical code must not trip the gate:
        raw throughput and the calibration rate scale together."""
        base = make_report(calib=1e6, fix_hit=5e5, wall=0.6)
        current = make_report(calib=3e6, fix_hit=1.5e6, wall=0.2)
        assert compare_reports(base, current) == []

    def test_throughput_regression_detected(self):
        base = make_report(fix_hit=500_000.0)
        slow = make_report(fix_hit=300_000.0)  # -40% on the same machine
        problems = compare_reports(base, slow, tolerance=0.20)
        assert len(problems) == 1 and "fix_hit" in problems[0]

    def test_wall_regression_detected(self):
        base = make_report(wall=0.5)
        slow = make_report(wall=0.9)
        problems = compare_reports(base, slow, tolerance=0.20)
        assert len(problems) == 1 and "staggered_q6" in problems[0]

    def test_within_tolerance_passes(self):
        base = make_report(fix_hit=500_000.0, wall=0.5)
        wobbly = make_report(fix_hit=450_000.0, wall=0.55)  # -10% / +10%
        assert compare_reports(base, wobbly, tolerance=0.20) == []

    def test_missing_benchmark_is_a_regression(self):
        base = make_report()
        current = make_report()
        del current.benchmarks["staggered_q6"]
        problems = compare_reports(base, current)
        assert problems == ["staggered_q6: missing from current run"]

    def test_extra_benchmark_in_current_ignored(self):
        base = make_report()
        current = make_report()
        current.add_throughput("brand_new", 1.0)
        assert compare_reports(base, current) == []

    def test_per_benchmark_tolerance_overrides_global(self):
        """A baseline entry's own tolerance key wins over --tolerance."""
        base = make_report(wall=0.5)
        base.benchmarks["staggered_q6"]["tolerance"] = 0.50
        slow = make_report(wall=0.65)  # +30%: over 20%, under 50%
        assert compare_reports(base, slow, tolerance=0.20) == []
        slower = make_report(wall=0.80)  # +60%: over the per-bench 50%
        problems = compare_reports(base, slower, tolerance=0.20)
        assert len(problems) == 1 and "50%" in problems[0]

    def test_tolerance_key_survives_round_trip(self, tmp_path):
        report = make_report()
        report.add_wall("soak_multi_device", 2.0, tolerance=0.35)
        path = str(tmp_path / "bench.json")
        write_report(report, path)
        loaded = load_report(path)
        assert loaded.benchmarks["soak_multi_device"]["tolerance"] == 0.35


class TestCliBench:
    def test_parser_accepts_bench_options(self):
        args = build_parser().parse_args(
            ["bench", "--quick", "--out", "b.json",
             "--check", "BENCH_kernel.json", "--tolerance", "0.1"]
        )
        assert args.command == "bench"
        assert args.quick and args.out == "b.json"
        assert args.check == "BENCH_kernel.json"
        assert args.tolerance == 0.1

    @pytest.fixture
    def fake_run(self, monkeypatch):
        """Replace the expensive battery with a canned report."""
        import repro.perf.bench as bench_mod

        canned = make_report()
        monkeypatch.setattr(bench_mod, "run_benchmarks",
                            lambda quick=False, only=None: canned)
        return canned

    def test_bench_writes_report_and_exits_zero(self, fake_run, tmp_path,
                                                capsys):
        out = str(tmp_path / "bench.json")
        assert main(["bench", "--quick", "--out", out]) == 0
        payload = json.load(open(out))
        assert payload["schema_version"] == SCHEMA_VERSION
        assert "fix_hit" in payload["benchmarks"]
        assert "fix_hit" in capsys.readouterr().out

    def test_bench_check_passes_against_itself(self, fake_run, tmp_path,
                                               capsys):
        baseline = str(tmp_path / "baseline.json")
        write_report(fake_run, baseline)
        assert main(["bench", "--check", baseline]) == 0
        assert "no regression" in capsys.readouterr().out

    def test_bench_check_fails_on_regression(self, fake_run, tmp_path,
                                             capsys):
        baseline = str(tmp_path / "baseline.json")
        write_report(make_report(fix_hit=5_000_000.0), baseline)
        assert main(["bench", "--check", baseline]) == 3
        assert "PERF REGRESSION" in capsys.readouterr().err

    def test_bench_check_missing_baseline_errors(self, fake_run, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench", "--check", str(tmp_path / "nope.json")])

    def test_bench_rejects_silly_tolerance(self, fake_run):
        with pytest.raises(SystemExit):
            main(["bench", "--tolerance", "1.5"])
        with pytest.raises(SystemExit):
            main(["bench", "--tolerance", "0"])

    def test_bench_only_conflicts_with_check(self, fake_run, tmp_path):
        baseline = str(tmp_path / "baseline.json")
        write_report(fake_run, baseline)
        with pytest.raises(SystemExit, match="--only cannot be combined"):
            main(["bench", "--only", "dispatch", "--check", baseline])
