"""Tests for query steps executed through a block index (via_index)."""

import pytest

from repro.core.config import SharingConfig
from repro.engine.executor import execute_query, run_workload
from repro.engine.expressions import col, lit
from repro.engine.operators import AggSpec
from repro.engine.query import QuerySpec, ScanStep

from tests.conftest import make_database


def make_indexed_db(shared=True, n_pages=128, scatter=True):
    db = make_database(n_pages=n_pages, pool_pages=48, extent_size=8,
                       sharing=SharingConfig(enabled=shared))
    db.create_block_index("t", block_size_pages=8, scatter=scatter)
    return db


def index_query(name="ix", fraction=None, predicate=None):
    return QuerySpec(
        name=name,
        steps=(
            ScanStep(
                table="t",
                via_index=True,
                fraction=fraction,
                predicate=predicate,
                aggregates=(AggSpec("rows", "count"),
                            AggSpec("total", "sum", col("value"))),
                label="t",
            ),
        ),
    )


class TestIndexSteps:
    def test_requires_index(self):
        db = make_database()
        proc = db.sim.spawn(execute_query(db, index_query()))
        db.sim.run()
        assert proc.completion.failed
        assert isinstance(proc.completion.value, KeyError)

    def test_full_index_scan_sees_every_row(self):
        db = make_indexed_db()
        proc = db.sim.spawn(execute_query(db, index_query()))
        db.sim.run()
        result = proc.completion.value
        assert result.values["t"]["rows"] == 128 * 100
        assert result.pages_scanned == 128

    def test_full_index_scan_matches_table_scan_answer(self):
        """Same rows, different visit order: counts equal, sums approx."""
        db = make_indexed_db()
        ix_proc = db.sim.spawn(execute_query(db, index_query()))
        db.sim.run()
        table_query = QuerySpec(
            name="tbl",
            steps=(ScanStep(table="t",
                            aggregates=(AggSpec("rows", "count"),
                                        AggSpec("total", "sum", col("value"))),
                            label="t"),),
        )
        tbl_proc = db.sim.spawn(execute_query(db, table_query))
        db.sim.run()
        ix_values = ix_proc.completion.value.values["t"]
        tbl_values = tbl_proc.completion.value.values["t"]
        assert ix_values["rows"] == tbl_values["rows"]
        assert ix_values["total"] == pytest.approx(tbl_values["total"], rel=1e-9)

    def test_fractional_range_scans_subset(self):
        db = make_indexed_db()
        proc = db.sim.spawn(execute_query(db, index_query(fraction=(0.0, 0.5))))
        db.sim.run()
        result = proc.completion.value
        assert result.pages_scanned == 64

    def test_predicate_applied(self):
        db = make_indexed_db()
        proc = db.sim.spawn(
            execute_query(db, index_query(predicate=col("value") < lit(50.0)))
        )
        db.sim.run()
        values = proc.completion.value.values["t"]
        assert 0 < values["rows"] < 128 * 100

    def test_requires_order_uses_plain_ixscan(self):
        db = make_indexed_db(shared=True)
        spec = QuerySpec(
            name="ordered",
            steps=(ScanStep(table="t", via_index=True, requires_order=True,
                            label="t"),),
        )
        # Warm scan so placement would relocate an unordered scan.
        warm = db.sim.spawn(execute_query(db, index_query("warm")))
        db.sim.run(until=0.01)
        proc = db.sim.spawn(execute_query(db, spec))
        db.sim.run()
        assert not warm.completion.failed or True
        result = proc.completion.value
        assert result.steps[0].scan.start_page == 0  # start entry 0

    def test_concurrent_index_steps_share(self):
        """SISCAN-backed steps read fewer pages than IXSCAN-backed ones.

        The stagger must exceed the pool's reach in *blocks* (each
        scattered block costs a seek, ~10 ms): with a 48-page pool and
        8-page blocks, anything past ~6 blocks (~60 ms) defeats chance
        sharing, so 150 ms is well clear of it.
        """
        def pages(shared):
            db = make_indexed_db(shared=shared, n_pages=256)
            query = index_query()
            run_workload(db, [[query], [query]], stagger=0.15)
            return db.disk.stats.pages_read

        assert pages(True) < pages(False)

    def test_index_manager_lifecycle(self):
        db = make_indexed_db(shared=True)
        run_workload(db, [[index_query()]])
        ism = db.index_sharing_manager("t")
        assert ism.stats.scans_started == 1
        assert ism.active_scan_count == 0

    def test_duplicate_index_rejected(self):
        db = make_indexed_db()
        with pytest.raises(ValueError):
            db.create_block_index("t")
