"""Validation tests for the declarative service specifications."""

import pytest

from repro.service.spec import (
    CLASS_ARRIVAL_KINDS,
    ControllerConfig,
    ServiceClass,
    ServiceSpec,
)
from repro.workloads.arrivals import ARRIVAL_KINDS


class TestServiceClass:
    def test_defaults_are_valid_open_poisson(self):
        cls = ServiceClass(name="c")
        assert cls.is_open
        assert cls.arrival == "poisson"
        assert cls.query_weight_map() is None

    def test_all_arrival_kinds_accepted(self):
        for kind in CLASS_ARRIVAL_KINDS:
            ServiceClass(name="c", arrival=kind, alpha=1.5)

    def test_closed_is_not_open(self):
        assert not ServiceClass(name="c", arrival="closed").is_open

    def test_arrival_kinds_cover_open_generators(self):
        assert set(ARRIVAL_KINDS) < set(CLASS_ARRIVAL_KINDS)
        assert "closed" in CLASS_ARRIVAL_KINDS

    @pytest.mark.parametrize("kwargs", [
        dict(name=""),
        dict(name="c", weight=0.0),
        dict(name="c", weight=-1.0),
        dict(name="c", max_mpl=-1),
        dict(name="c", latency_slo=0.0),
        dict(name="c", patience=-0.5),
        dict(name="c", arrival="uniform"),
        dict(name="c", rate=0.0),
        dict(name="c", arrival="closed", n_streams=0),
        dict(name="c", query_names=()),
    ])
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ValueError):
            ServiceClass(**kwargs)

    def test_closed_class_ignores_rate_validation(self):
        # Closed classes never consult rate, so rate<=0 is not an error.
        ServiceClass(name="c", arrival="closed", rate=0.0)

    def test_query_weight_map_round_trips(self):
        cls = ServiceClass(
            name="c", query_names=("Q6", "Q14"),
            query_weights=(("Q6", 3.0), ("Q14", 1.0)),
        )
        assert cls.query_weight_map() == {"Q6": 3.0, "Q14": 1.0}


class TestControllerConfig:
    def test_defaults_valid(self):
        config = ControllerConfig()
        assert config.min_mpl <= config.initial_mpl <= config.max_mpl

    @pytest.mark.parametrize("kwargs", [
        dict(min_mpl=0),
        dict(initial_mpl=20, max_mpl=16),
        dict(initial_mpl=0),
        dict(interval=0.0),
        dict(miss_rate_low=0.8, miss_rate_high=0.5),
        dict(miss_rate_high=1.5),
        dict(pressure_high=0.0),
        dict(pressure_high=1.5),
        dict(decrease_factor=1.0),
        dict(decrease_factor=0.0),
        dict(increase_step=0),
        dict(speed_floor=1.0),
        dict(speed_floor=-0.1),
        dict(miss_ewma_alpha=0.0),
        dict(miss_ewma_alpha=1.5),
        dict(min_window_reads=0),
    ])
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ValueError):
            ControllerConfig(**kwargs)


class TestServiceSpec:
    def test_minimal_spec(self):
        spec = ServiceSpec(classes=(ServiceClass(name="a"),))
        assert spec.class_named("a").name == "a"
        with pytest.raises(KeyError):
            spec.class_named("b")

    def test_rejects_empty_classes(self):
        with pytest.raises(ValueError):
            ServiceSpec(classes=())

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            ServiceSpec(classes=(
                ServiceClass(name="a"), ServiceClass(name="a"),
            ))

    def test_rejects_bad_horizon_and_cap(self):
        classes = (ServiceClass(name="a"),)
        with pytest.raises(ValueError):
            ServiceSpec(classes=classes, horizon=0.0)
        with pytest.raises(ValueError):
            ServiceSpec(classes=classes, max_arrivals_per_class=0)

    def test_spec_is_hashable_and_frozen(self):
        spec = ServiceSpec(classes=(ServiceClass(name="a"),))
        hash(spec)  # cache keys rely on this
        with pytest.raises(AttributeError):
            spec.horizon = 5.0
