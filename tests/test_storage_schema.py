"""Unit tests for column and table schemas."""

import pytest

from repro.storage.schema import ColumnSpec, TableSchema, make_schema


class TestColumnSpec:
    def test_valid_kinds(self):
        ColumnSpec("a", "int_uniform", 0, 10)
        ColumnSpec("b", "float_uniform", 0.0, 1.0)
        ColumnSpec("c", "choice", categories=("x", "y"))
        ColumnSpec("d", "sequence")
        ColumnSpec("e", "clustered", 0.0, 100.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ColumnSpec("a", "zipf")

    def test_choice_needs_categories(self):
        with pytest.raises(ValueError):
            ColumnSpec("a", "choice")

    def test_reversed_bounds_rejected(self):
        with pytest.raises(ValueError):
            ColumnSpec("a", "int_uniform", 10, 0)


class TestTableSchema:
    def test_needs_columns(self):
        with pytest.raises(ValueError):
            TableSchema("t", columns=())

    def test_rows_per_page_positive(self):
        with pytest.raises(ValueError):
            TableSchema(
                "t", columns=(ColumnSpec("a", "sequence"),), rows_per_page=0
            )

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(ValueError):
            TableSchema(
                "t",
                columns=(ColumnSpec("a", "sequence"), ColumnSpec("a", "sequence")),
            )

    def test_column_lookup(self):
        schema = make_schema("t", [ColumnSpec("a", "sequence")])
        assert schema.column("a").kind == "sequence"
        with pytest.raises(KeyError):
            schema.column("missing")

    def test_column_names_order(self):
        schema = make_schema(
            "t", [ColumnSpec("b", "sequence"), ColumnSpec("a", "sequence")]
        )
        assert schema.column_names() == ["b", "a"]

    def test_clustering_column_found(self):
        schema = make_schema(
            "t",
            [ColumnSpec("a", "sequence"), ColumnSpec("d", "clustered", 0, 10)],
        )
        assert schema.clustering_column.name == "d"

    def test_clustering_column_absent(self):
        schema = make_schema("t", [ColumnSpec("a", "sequence")])
        assert schema.clustering_column is None
