"""Unit tests for the push prefetch pipeline and its pool entry point.

Covers the three push contracts in isolation and end-to-end:

* ``BufferPool.push_read`` makes pages resident without touching the
  hit/miss classification (the accounting identity is about *demand*
  reads only);
* the pipeline delivers each pushed extent at most once per registered
  consumer, merges concurrent registrations, and purges departing scans;
* ``ArrayStats`` is an exact aggregate of its per-device split.
"""

from __future__ import annotations

import pytest

from repro.buffer.page import PageKey
from repro.core.config import SharingConfig
from repro.disk.array import DiskArray
from repro.disk.geometry import DiskGeometry
from repro.faults.plan import FaultPlan
from repro.scans.shared_scan import SharedTableScan
from repro.sim.kernel import Simulator

from tests.conftest import make_database, make_pool


def cheap(page_no, data, n_rows):
    return 1e-6


def keys(*page_nos):
    return [PageKey(0, page_no) for page_no in page_nos]


def push_db(n_pages=256, pool_pages=96, n_disks=2, **kwargs):
    return make_database(
        n_pages=n_pages, pool_pages=pool_pages,
        sharing=SharingConfig(enabled=True),
        n_disks=n_disks, stripe_extents=1, push_enabled=True,
        **kwargs,
    )


def run_scans(db, n_scans, n_pages=256, allow_abort=False):
    scans = [
        SharedTableScan(db, "t", 0, n_pages - 1, on_page=cheap)
        for _ in range(n_scans)
    ]
    procs = [db.sim.spawn(scan.run()) for scan in scans]
    db.sim.run()
    for proc in procs:
        if proc.completion.failed and not allow_abort:
            raise proc.completion.value
    return [proc.completion.value for proc in procs]


class TestPushRead:
    def test_absent_pages_become_resident(self, sim, disk):
        pool = make_pool(sim, disk, capacity=32)
        completion, outcome = pool.push_read(keys(0, 1, 2, 3))
        assert outcome == "issued"
        landed = []
        completion.add_callback(lambda ev: landed.append(sim.now))
        sim.run()
        assert landed
        for key in keys(0, 1, 2, 3):
            assert pool.try_fix(key) is not None
            pool.unfix(key)

    def test_resident_pages_cost_nothing(self, sim, disk):
        pool = make_pool(sim, disk, capacity=32)
        pool.push_read(keys(0, 1))
        sim.run()
        before = pool.stats.physical_requests
        completion, outcome = pool.push_read(keys(0, 1))
        assert outcome == "resident"
        assert completion is None
        assert pool.stats.physical_requests == before

    def test_push_does_not_touch_demand_accounting(self, sim, disk):
        pool = make_pool(sim, disk, capacity=32)
        pool.push_read(keys(0, 1, 2, 3))
        sim.run()
        stats = pool.stats
        assert stats.logical_reads == 0
        assert stats.hits == 0
        assert stats.misses == 0
        assert stats.pushed_requests == 1
        assert stats.pushed_pages == 4

    def test_pushed_pages_are_counted_as_physical(self, sim, disk):
        pool = make_pool(sim, disk, capacity=32)
        pool.push_read(keys(0, 1, 2, 3))
        sim.run()
        assert pool.stats.physical_pages_read == 4
        assert pool.stats.pushed_pages == 4

    def test_full_pool_of_pinned_pages_reports_no_room(self, sim, disk):
        pool = make_pool(sim, disk, capacity=4)

        def pin_all():
            for key in keys(0, 1, 2, 3):
                yield from pool.fix(key)

        sim.spawn(pin_all())
        sim.run()
        completion, outcome = pool.push_read(keys(10, 11, 12, 13))
        assert outcome == "no_room"
        assert completion is None

    def test_push_evicts_clean_unpinned_pages_for_room(self, sim, disk):
        pool = make_pool(sim, disk, capacity=4)

        def fill_then_release():
            for key in keys(0, 1, 2, 3):
                yield from pool.fix(key)
                pool.unfix(key)

        sim.spawn(fill_then_release())
        sim.run()
        completion, outcome = pool.push_read(keys(10, 11, 12, 13))
        assert outcome == "issued"
        sim.run()
        for key in keys(10, 11, 12, 13):
            assert pool.try_fix(key) is not None
            pool.unfix(key)


class TestPipelineDelivery:
    def test_group_members_all_receive_each_extent_once(self):
        db = push_db()
        run_scans(db, 3)
        stats = db.push.stats
        assert stats.extents_pushed > 0
        assert stats.deliveries > 0
        assert stats.duplicate_deliveries == 0
        for counts in db.push.delivery_counts().values():
            assert all(count == 1 for count in counts.values())

    def test_only_the_driver_pushes(self):
        db = push_db()
        run_scans(db, 3)
        stats = db.push.stats
        # Trailing members cross extent boundaries too; none may push.
        assert stats.non_driver_calls > 0

    def test_push_converts_trailer_misses_into_hits(self):
        pull = make_database(
            n_pages=256, pool_pages=96,
            sharing=SharingConfig(enabled=True), n_disks=2, stripe_extents=1,
        )
        run_scans(pull, 3)
        push = push_db()
        run_scans(push, 3)
        assert push.pool.stats.misses < pull.pool.stats.misses
        assert (
            push.pool.stats.physical_pages_read
            <= pull.pool.stats.physical_pages_read
        )

    def test_accounting_identity_holds_with_push(self):
        db = push_db()
        run_scans(db, 3)
        stats = db.pool.stats
        assert stats.logical_reads == (
            stats.hits + stats.misses + stats.inflight_waits
        )

    def test_single_scan_prefetches_for_itself(self):
        db = push_db()
        run_scans(db, 1)
        stats = db.push.stats
        assert stats.extents_pushed > 0
        assert stats.duplicate_deliveries == 0

    def test_negative_depth_rejected(self):
        from repro.buffer.push import PushPipeline

        db = push_db()
        with pytest.raises(ValueError, match="push depth"):
            PushPipeline(db.sim, db.pool, db.catalog, db.sharing, depth=-1)

    def test_push_disabled_means_no_pipeline(self):
        db = make_database(sharing=SharingConfig(enabled=True))
        assert db.push is None
        assert db.pool.stats.pushed_pages == 0


class TestConsumerLifecycle:
    def test_aborted_scan_leaves_every_consumer_set(self):
        db = push_db(
            fault_plan=FaultPlan.from_spec(
                "scan-kill:target=any,at=0.5", seed=3
            ),
        )
        results = run_scans(db, 3, allow_abort=True)
        assert any(result.aborted for result in results)
        for consumers in db.push.consumer_sets().values():
            assert not consumers
        for counts in db.push.delivery_counts().values():
            assert not counts
        assert db.faults.checker.checks_run > 0

    def test_killed_leader_purges_and_successor_drives(self):
        db = push_db(
            fault_plan=FaultPlan.from_spec(
                "scan-kill:target=leader,at=0.4", seed=5
            ),
        )
        results = run_scans(db, 3, allow_abort=True)
        assert any(result.aborted for result in results)
        assert db.push.stats.duplicate_deliveries == 0
        assert db.sharing.active_scan_count == 0

    def test_policy_hooks_report_group_roles(self):
        db = push_db()
        manager = db.sharing
        assert manager.push_pipeline is db.push
        descriptors = []

        def probe():
            yield db.sim.timeout(0.0)

        # Drive two overlapping scans far enough to group, then inspect.
        scans = [
            SharedTableScan(db, "t", 0, 255, on_page=cheap) for _ in range(2)
        ]
        procs = [db.sim.spawn(scan.run()) for scan in scans]

        def snapshot():
            yield db.sim.timeout(0.05)
            for scan_id in list(manager._states):
                descriptors.append((
                    scan_id,
                    manager.is_push_driver(scan_id),
                    sorted(manager.push_consumer_set(scan_id)),
                ))

        db.sim.spawn(snapshot())
        db.sim.run()
        for proc in procs:
            assert not proc.completion.failed
        grouped = [entry for entry in descriptors if len(entry[2]) > 1]
        if grouped:  # the two scans overlapped into one group
            drivers = [entry for entry in grouped if entry[1]]
            assert len(drivers) == 1
            assert drivers[0][2] == sorted(
                scan_id for scan_id, _, _ in descriptors
            )


class TestPerDeviceStats:
    def test_aggregate_equals_sum_of_per_device(self):
        sim = Simulator()
        array = DiskArray(sim, n_disks=4,
                          geometry=DiskGeometry(total_pages=4096),
                          stripe_pages=8)
        for start in (0, 40, 256, 512, 1000):
            array.read(start, 32)
        sim.run()
        per_device = array.stats.per_device
        assert len(per_device) == 4
        assert array.stats.reads == sum(stats.reads for stats in per_device)
        assert array.stats.pages_read == sum(
            stats.pages_read for stats in per_device
        )
        assert array.stats.seeks == sum(stats.seeks for stats in per_device)
        assert array.stats.busy_time == pytest.approx(
            sum(stats.busy_time for stats in per_device)
        )

    def test_every_device_carries_load_on_a_striped_scan(self):
        sim = Simulator()
        array = DiskArray(sim, n_disks=4,
                          geometry=DiskGeometry(total_pages=4096),
                          stripe_pages=8)
        array.read(0, 256)
        sim.run()
        assert all(stats.pages_read > 0 for stats in array.stats.per_device)

    def test_device_indices_match_positions(self):
        sim = Simulator()
        array = DiskArray(sim, n_disks=3,
                          geometry=DiskGeometry(total_pages=4096),
                          stripe_pages=8)
        assert [disk.device_index for disk in array.disks] == [0, 1, 2]
