"""Unit and integration tests for the striped disk array."""

import pytest

from repro.core.config import SharingConfig
from repro.disk.array import DiskArray
from repro.disk.geometry import DiskGeometry
from repro.engine.database import Database, SystemConfig
from repro.engine.executor import run_workload
from repro.sim.events import SimulationError
from repro.workloads.synthetic import simple_table_schema, uniform_scan_query


@pytest.fixture
def geo():
    return DiskGeometry(total_pages=4096)


def make_array(sim, geo, n_disks=4, stripe=8):
    return DiskArray(sim, n_disks=n_disks, geometry=geo, stripe_pages=stripe)


class TestStriping:
    def test_validation(self, sim, geo):
        with pytest.raises(SimulationError):
            DiskArray(sim, n_disks=0, geometry=geo)
        with pytest.raises(SimulationError):
            DiskArray(sim, n_disks=2, geometry=geo, stripe_pages=0)

    def test_locate_round_robin(self, sim, geo):
        array = make_array(sim, geo, n_disks=4, stripe=8)
        # Pages 0..7 on disk 0, 8..15 on disk 1, ..., 32..39 back on 0.
        assert array.locate(0) == (0, 0)
        assert array.locate(7) == (0, 7)
        assert array.locate(8) == (1, 0)
        assert array.locate(31) == (3, 7)
        assert array.locate(32) == (0, 8)

    def test_locate_is_injective_per_disk(self, sim, geo):
        array = make_array(sim, geo, n_disks=3, stripe=8)
        seen = set()
        for page in range(400):
            location = array.locate(page)
            assert location not in seen
            seen.add(location)

    def test_read_within_one_stripe(self, sim, geo):
        array = make_array(sim, geo)

        def reader(sim):
            yield array.read(0, 8)

        sim.spawn(reader(sim))
        sim.run()
        assert array.stats.reads == 1
        assert array.stats.pages_read == 8

    def test_read_spanning_stripes_splits(self, sim, geo):
        array = make_array(sim, geo, n_disks=4, stripe=8)

        def reader(sim):
            yield array.read(4, 16)  # crosses two stripe boundaries

        sim.spawn(reader(sim))
        sim.run()
        assert array.stats.reads == 3  # 4..7, 8..15, 16..19
        assert array.stats.pages_read == 16

    def test_parallel_stripes_faster_than_single_disk(self, geo):
        """One large request spread over 4 spindles completes faster
        than on one spindle."""
        from repro.disk.device import Disk
        from repro.sim.kernel import Simulator

        def span(n_disks):
            sim = Simulator()
            device = (
                make_array(sim, geo, n_disks=n_disks, stripe=8)
                if n_disks > 1
                else Disk(sim, geo)
            )

            def reader(sim):
                yield device.read(0, 64)

            sim.spawn(reader(sim))
            return sim.run()

        assert span(4) < span(1)

    def test_outstanding_timeline_returns_to_zero(self, sim, geo):
        array = make_array(sim, geo)

        def reader(sim):
            yield array.read(0, 32)
            yield array.read(100, 16)

        sim.spawn(reader(sim))
        sim.run()
        assert array.outstanding_timeline.current_level == 0


class TestDatabaseIntegration:
    def run_db(self, n_disks, enabled=True):
        db = Database(SystemConfig(
            pool_pages=48,
            n_disks=n_disks,
            disk_stripe_pages=16,
            sharing=SharingConfig(enabled=enabled),
        ))
        db.create_table(simple_table_schema("t"), n_pages=256, extent_size=16)
        db.open()
        query = uniform_scan_query("t", name="full")
        result = run_workload(db, [[query] for _ in range(3)], stagger=0.02)
        return db, result

    def test_workload_runs_on_array(self):
        db, result = self.run_db(n_disks=4)
        assert result.pages_read >= 256
        assert result.makespan > 0

    def test_more_spindles_reduce_makespan(self):
        _, one = self.run_db(n_disks=1, enabled=False)
        _, four = self.run_db(n_disks=4, enabled=False)
        assert four.makespan < one.makespan

    def test_sharing_still_helps_on_array(self):
        _, base = self.run_db(n_disks=4, enabled=False)
        _, shared = self.run_db(n_disks=4, enabled=True)
        assert shared.pages_read < base.pages_read

    def test_cpu_breakdown_works_with_array(self):
        db, _ = self.run_db(n_disks=2)
        breakdown = db.cpu_breakdown()
        assert sum(breakdown.as_dict().values()) == pytest.approx(1.0)
