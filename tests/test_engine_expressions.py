"""Unit tests for the vectorized expression AST."""

import numpy as np
import pytest

from repro.engine.expressions import col, lit


@pytest.fixture
def page():
    return {
        "a": np.array([1, 2, 3, 4, 5]),
        "b": np.array([5.0, 4.0, 3.0, 2.0, 1.0]),
        "tag": np.array(["x", "y", "x", "z", "y"], dtype=object),
    }


class TestComparisons:
    def test_less_than(self, page):
        mask = (col("a") < lit(3)).evaluate(page)
        np.testing.assert_array_equal(mask, [True, True, False, False, False])

    def test_greater_equal(self, page):
        mask = (col("a") >= lit(4)).evaluate(page)
        np.testing.assert_array_equal(mask, [False, False, False, True, True])

    def test_column_vs_column(self, page):
        mask = (col("a") > col("b")).evaluate(page)
        np.testing.assert_array_equal(mask, [False, False, False, True, True])

    def test_eq_and_ne(self, page):
        np.testing.assert_array_equal(
            col("tag").eq(lit("x")).evaluate(page), [True, False, True, False, False]
        )
        np.testing.assert_array_equal(
            col("tag").ne(lit("x")).evaluate(page), [False, True, False, True, True]
        )

    def test_missing_column_raises(self, page):
        with pytest.raises(KeyError, match="missing"):
            (col("missing") < lit(1)).evaluate(page)


class TestCompound:
    def test_between(self, page):
        mask = col("a").between(2, 4).evaluate(page)
        np.testing.assert_array_equal(mask, [False, True, True, True, False])

    def test_isin(self, page):
        mask = col("tag").isin(["x", "z"]).evaluate(page)
        np.testing.assert_array_equal(mask, [True, False, True, True, False])

    def test_and_or_not(self, page):
        expr = (col("a") > lit(1)) & (col("a") < lit(5))
        np.testing.assert_array_equal(
            expr.evaluate(page), [False, True, True, True, False]
        )
        expr = (col("a") < lit(2)) | (col("a") > lit(4))
        np.testing.assert_array_equal(
            expr.evaluate(page), [True, False, False, False, True]
        )
        expr = ~(col("a") < lit(3))
        np.testing.assert_array_equal(
            expr.evaluate(page), [False, False, True, True, True]
        )


class TestArithmetic:
    def test_add_sub_mul(self, page):
        np.testing.assert_allclose(
            (col("a") + col("b")).evaluate(page), [6.0, 6.0, 6.0, 6.0, 6.0]
        )
        np.testing.assert_allclose(
            (col("a") - lit(1)).evaluate(page), [0, 1, 2, 3, 4]
        )
        np.testing.assert_allclose(
            (col("a") * lit(2)).evaluate(page), [2, 4, 6, 8, 10]
        )

    def test_tpch_revenue_shape(self, page):
        revenue = col("b") * (lit(1.0) - lit(0.1))
        np.testing.assert_allclose(
            revenue.evaluate(page), page["b"] * 0.9
        )


class TestCostModel:
    def test_columns_and_literals_free(self):
        assert col("a").cost_units_per_row == 0.0
        assert lit(1).cost_units_per_row == 0.0

    def test_comparison_costs_one_unit(self):
        assert (col("a") < lit(1)).cost_units_per_row == 1.0

    def test_costs_compose(self):
        expr = (col("a") < lit(1)) & (col("b") > lit(2))
        assert expr.cost_units_per_row == pytest.approx(2.5)

    def test_arithmetic_nesting_adds_cost(self):
        simple = col("a") * lit(2)
        nested = (col("a") * lit(2)) * (col("b") + lit(1))
        assert nested.cost_units_per_row > simple.cost_units_per_row


class TestColumnTracking:
    def test_columns_collected(self):
        expr = (col("a") < lit(1)) & col("tag").isin(["x"])
        assert expr.columns() == frozenset({"a", "tag"})

    def test_between_columns(self):
        assert col("a").between(0, 1).columns() == frozenset({"a"})
