"""Index-scan sharing (the SISCAN design, future work of the target paper).

Why index scans are harder than table scans (and why this package
exists): a table scan's location is a page number, so the distance
between two scans is plain arithmetic.  An index scan's location is a
*key position*, and the block/row ids it visits are in no particular
page order — two scans' distance in scan order cannot be computed from
their current pages.  The SISCAN design solves this with **anchors**:
every scan remembers a fixed reference location plus the number of
entries it has advanced since (its *offset*); scans that share an anchor
are mutually ordered, forming **anchor groups** within which the
grouping / throttling / prioritization machinery of the table-scan paper
applies unchanged.

Public pieces:

* :class:`~repro.extensions.index_sharing.index.BlockIndex` — a simulated
  MDC-style block index whose entries are key-ordered but whose blocks
  are scattered across the table;
* :class:`~repro.extensions.index_sharing.manager.IndexScanSharingManager`
  (the ISM) — anchors/offsets, anchor groups, placement by estimated
  page reads, throttling, page priorities;
* :class:`~repro.extensions.index_sharing.siscan.SharedIndexScan` — the
  SISCAN operator (two-phase wrap-around traversal in key order), and
  :class:`~repro.extensions.index_sharing.siscan.IndexScan` — the plain
  IXSCAN baseline.
"""

from repro.extensions.index_sharing.index import BlockIndex
from repro.extensions.index_sharing.manager import (
    IndexScanDescriptor,
    IndexScanSharingManager,
    IndexScanState,
)
from repro.extensions.index_sharing.siscan import IndexScan, SharedIndexScan

__all__ = [
    "BlockIndex",
    "IndexScan",
    "IndexScanDescriptor",
    "IndexScanSharingManager",
    "IndexScanState",
    "SharedIndexScan",
]
