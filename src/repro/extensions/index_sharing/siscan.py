"""IXSCAN and SISCAN operators over a simulated block index.

``IndexScan`` is the baseline (the paper's Figure-1 IXSCAN): it walks
the key range front to back, fixing each entry's block with a fixed
NORMAL release priority.

``SharedIndexScan`` is the SISCAN (the paper's Figure-3 logic): it asks
the ISM where to start, walks from there to the end key, wraps to the
start key, and finishes just before its start location — calling the ISM
at every update interval (possibly serving an inserted wait) and
releasing pages with the ISM-chosen priority.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional

from repro.buffer.page import Priority
from repro.extensions.index_sharing.index import BlockIndex
from repro.extensions.index_sharing.manager import (
    IndexScanDescriptor,
    IndexScanSharingManager,
)


@dataclass
class IndexScanResult:
    """What a finished index scan reports."""

    index_name: str
    first_entry: int
    last_entry: int
    start_entry: int
    entries_scanned: int = 0
    pages_fixed: int = 0
    cpu_seconds: float = 0.0
    throttle_seconds: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    visited_blocks: List[int] = field(default_factory=list)

    @property
    def elapsed(self) -> float:
        """Simulated scan duration."""
        return self.finished_at - self.started_at


class IndexScan:
    """Baseline IXSCAN: key order, no sharing.

    Per-page CPU comes either from the flat ``cpu_per_page`` or, when an
    ``on_page`` callback is given (the engine integration path), from the
    callback's return value — the same contract as the table scans, so
    query pipelines plug in unchanged.
    """

    def __init__(
        self,
        database: Any,
        index: BlockIndex,
        first_entry: int,
        last_entry: int,
        cpu_per_page: float = 1e-5,
        on_page: Optional[Any] = None,
        record_blocks: bool = False,
    ):
        if not 0 <= first_entry <= last_entry < index.n_entries:
            raise ValueError(
                f"bad entry range [{first_entry}, {last_entry}] for index of "
                f"{index.n_entries} entries"
            )
        self.db = database
        self.index = index
        self.first_entry = first_entry
        self.last_entry = last_entry
        self.cpu_per_page = cpu_per_page
        self.on_page = on_page
        self.record_blocks = record_blocks

    def run(self) -> Generator:
        """Simulation process body; returns an :class:`IndexScanResult`."""
        result = IndexScanResult(
            index_name=self.index.table.name,
            first_entry=self.first_entry,
            last_entry=self.last_entry,
            start_entry=self.first_entry,
            started_at=self.db.sim.now,
        )
        for entry_index, block_id in self.index.entries(
            self.first_entry, self.last_entry
        ):
            yield from self._process_block(block_id, Priority.NORMAL, result)
            result.entries_scanned += 1
        result.finished_at = self.db.sim.now
        return result

    def _process_block(
        self, block_id: int, priority: Priority, result: IndexScanResult
    ) -> Generator:
        db = self.db
        pages = self.index.block_pages(block_id)
        keys = [db.catalog.page_key(self.index.table.name, p) for p in pages]
        for page_no, key in zip(pages, keys):
            frame = yield from db.pool.fix(key, prefetch=keys)
            assert frame.key == key
            try:
                if self.on_page is not None:
                    cpu_seconds = self.on_page(
                        page_no,
                        self.index.table.page_data(page_no),
                        self.index.table.schema.rows_per_page,
                    )
                else:
                    cpu_seconds = self.cpu_per_page
                if cpu_seconds > 0:
                    yield db.cpu.acquire()
                    try:
                        yield db.sim.timeout(cpu_seconds)
                    finally:
                        db.cpu.release()
                    result.cpu_seconds += cpu_seconds
            finally:
                db.pool.unfix(key, priority)
            result.pages_fixed += 1
        if self.record_blocks:
            result.visited_blocks.append(block_id)


class SharedIndexScan(IndexScan):
    """SISCAN: ISM-placed start, wrap-around, throttled, prioritized."""

    def __init__(
        self,
        database: Any,
        index: BlockIndex,
        ism: IndexScanSharingManager,
        first_entry: int,
        last_entry: int,
        cpu_per_page: float = 1e-5,
        on_page: Optional[Any] = None,
        estimated_speed: Optional[float] = None,
        record_blocks: bool = False,
    ):
        super().__init__(database, index, first_entry, last_entry,
                         cpu_per_page, on_page=on_page,
                         record_blocks=record_blocks)
        self.ism = ism
        io_per_entry = (
            database.config.geometry.transfer_time(1) * index.block_size_pages
        )
        cpu_per_entry = cpu_per_page * index.block_size_pages
        self.estimated_speed = estimated_speed or (
            1.0 / max(io_per_entry, cpu_per_entry)
        )

    def run(self) -> Generator:
        """Simulation process body; returns an :class:`IndexScanResult`."""
        descriptor = IndexScanDescriptor(
            index_name=self.index.table.name,
            first_entry=self.first_entry,
            last_entry=self.last_entry,
            estimated_speed=self.estimated_speed,
        )
        state = self.ism.start_scan(descriptor)
        result = IndexScanResult(
            index_name=self.index.table.name,
            first_entry=self.first_entry,
            last_entry=self.last_entry,
            start_entry=state.start_entry,
            started_at=self.db.sim.now,
        )
        # The config interval is in *pages* (the prototype updated at
        # every extent boundary); convert to entries for this block size.
        interval = max(
            1,
            self.ism.config.update_interval_pages // self.index.block_size_pages,
        )
        entries_done = 0
        wrapped_pending = False
        try:
            # Phase 1: start location -> end key.
            for entry_index, block_id in self.index.entries(
                state.start_entry, self.last_entry
            ):
                priority = self.ism.page_priority(state.scan_id)
                yield from self._process_block(block_id, priority, result)
                entries_done += 1
                if entries_done % interval == 0:
                    yield from self._report(
                        state.scan_id, entry_index, entries_done,
                        wrapped_pending, result,
                    )
                    wrapped_pending = False
            # Phase 2: start key -> start location.
            if state.start_entry > self.first_entry:
                wrapped_pending = True
                for entry_index, block_id in self.index.entries(
                    self.first_entry, state.start_entry - 1
                ):
                    priority = self.ism.page_priority(state.scan_id)
                    yield from self._process_block(block_id, priority, result)
                    entries_done += 1
                    if entries_done % interval == 0:
                        yield from self._report(
                            state.scan_id, entry_index, entries_done,
                            wrapped_pending, result,
                        )
                        wrapped_pending = False
            result.entries_scanned = entries_done
        finally:
            self.ism.end_scan(state.scan_id)
        result.finished_at = self.db.sim.now
        return result

    def _report(
        self,
        scan_id: int,
        location: int,
        entries_done: int,
        wrapped: bool,
        result: IndexScanResult,
    ) -> Generator:
        wait = self.ism.update_location(
            scan_id, location, entries_done, wrapped_since_last=wrapped
        )
        yield from self.db.charge_manager_call_overhead()
        if wait > 0:
            result.throttle_seconds += wait
            yield self.db.sim.timeout(wait)
