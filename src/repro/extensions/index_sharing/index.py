"""A simulated MDC-style block index.

Each entry pairs a key position with a **block** — a contiguous run of
pages holding rows of that key value.  Entries are stored in key order,
but the blocks they point to are scattered across the table (the result
of out-of-order inserts), so an index scan in key order produces a
*non-sequential* page access pattern: the exact situation where the
distance between two index scans cannot be inferred from their current
page numbers, motivating anchors and offsets.
"""

from __future__ import annotations

import zlib
from typing import Iterator, List, Tuple

import numpy as np

from repro.storage.table import Table


class BlockIndex:
    """Key-ordered index over a table's blocks, with scattered placement.

    Args:
        table: The indexed table.
        block_size_pages: Pages per block (the MDC block size; the
            prototype used 16 pages of 32 KiB).
        scatter_seed: Seed for the deterministic block permutation.  With
            ``scatter=False`` the index degenerates to a clustered index
            (blocks in key order), useful in tests.
    """

    def __init__(self, table: Table, block_size_pages: int = 16,
                 scatter: bool = True, scatter_seed: int = 0):
        if block_size_pages < 1:
            raise ValueError(
                f"block_size_pages must be >= 1, got {block_size_pages}"
            )
        self.table = table
        self.block_size_pages = block_size_pages
        self.n_blocks = (table.n_pages + block_size_pages - 1) // block_size_pages
        order = np.arange(self.n_blocks)
        if scatter:
            rng = np.random.default_rng(
                zlib.crc32(f"{table.name}:{scatter_seed}".encode())
            )
            rng.shuffle(order)
        # _block_of[i] = block id of the i-th entry in key order.
        self._block_of: List[int] = [int(b) for b in order]

    @property
    def n_entries(self) -> int:
        """Number of index entries (== number of blocks)."""
        return self.n_blocks

    def block_of_entry(self, entry_index: int) -> int:
        """Block id the ``entry_index``-th key points to."""
        if not 0 <= entry_index < self.n_entries:
            raise IndexError(
                f"entry {entry_index} out of range for index of "
                f"{self.n_entries} entries"
            )
        return self._block_of[entry_index]

    def block_pages(self, block_id: int) -> List[int]:
        """Table page numbers making up one block."""
        if not 0 <= block_id < self.n_blocks:
            raise IndexError(
                f"block {block_id} out of range for {self.n_blocks} blocks"
            )
        start = block_id * self.block_size_pages
        end = min(start + self.block_size_pages, self.table.n_pages)
        return list(range(start, end))

    def entries(self, first_entry: int, last_entry: int) -> Iterator[Tuple[int, int]]:
        """Iterate ``(entry_index, block_id)`` over an inclusive key range."""
        if not 0 <= first_entry <= last_entry < self.n_entries:
            raise IndexError(
                f"entry range [{first_entry}, {last_entry}] invalid for "
                f"{self.n_entries} entries"
            )
        for entry_index in range(first_entry, last_entry + 1):
            yield entry_index, self._block_of[entry_index]

    def entries_for_key_fraction(self, lo_frac: float, hi_frac: float) -> Tuple[int, int]:
        """Entry range covering a fractional slice of the key domain."""
        if not (0.0 <= lo_frac <= hi_frac <= 1.0):
            raise ValueError(f"bad key fraction range [{lo_frac}, {hi_frac}]")
        first = min(int(lo_frac * self.n_entries), self.n_entries - 1)
        last = min(
            max(first, int(hi_frac * self.n_entries + 0.999999) - 1),
            self.n_entries - 1,
        )
        return first, last

    def scatter_factor(self) -> float:
        """Fraction of adjacent entry pairs whose blocks are non-adjacent
        on disk (1.0 = fully scattered; 0.0 = clustered)."""
        if self.n_entries < 2:
            return 0.0
        non_adjacent = sum(
            1
            for i in range(self.n_entries - 1)
            if self._block_of[i + 1] != self._block_of[i] + 1
        )
        return non_adjacent / (self.n_entries - 1)
