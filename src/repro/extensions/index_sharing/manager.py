"""The index scan sharing manager (ISM) — anchors, offsets, placement.

Location semantics: the ISM stores each SISCAN's current location (a
key position) and can *compare* locations — keys are ordered — but it
cannot compute a *distance* from two locations, because index entries
are not uniformly spaced over pages.  Distances therefore come from the
anchor/offset machinery: a scan's offset counts the entries it advanced
since its anchor, and two scans sharing an anchor are ordered by offset
difference.  Scans acquire a shared anchor when one is placed at the
other's location.

A SISCAN that wraps (finishes phase one and restarts at its range
start) receives a *fresh* anchor: the jump breaks the offset ordering
with its old group, exactly as a newly started scan would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.buffer.page import Priority
from repro.core.config import SharingConfig
from repro.sim.kernel import Simulator

_MIN_SPEED = 1e-9


@dataclass(frozen=True)
class IndexScanDescriptor:
    """Registration data for one index scan (key range + estimates)."""

    index_name: str
    first_entry: int
    last_entry: int
    estimated_speed: float  # entries per second

    def __post_init__(self) -> None:
        if self.first_entry < 0 or self.last_entry < self.first_entry:
            raise ValueError(
                f"bad entry range [{self.first_entry}, {self.last_entry}]"
            )
        if self.estimated_speed <= 0:
            raise ValueError(
                f"estimated_speed must be positive, got {self.estimated_speed}"
            )

    @property
    def range_entries(self) -> int:
        """Entries between start and end key, inclusive."""
        return self.last_entry - self.first_entry + 1

    @property
    def estimated_total_time(self) -> float:
        """Estimated seconds for the whole scan."""
        return self.range_entries / self.estimated_speed


@dataclass
class IndexScanState:
    """Runtime state of one registered SISCAN."""

    scan_id: int
    descriptor: IndexScanDescriptor
    start_entry: int
    start_time: float
    speed: float
    anchor_id: int = -1
    anchor_offset: int = 0
    location: int = 0  # current key position (entry index)
    entries_scanned: int = 0
    last_update_time: float = 0.0
    entries_at_last_update: int = 0
    accumulated_delay: float = 0.0
    throttle_exempt: bool = False
    finished: bool = False
    is_leader: bool = False
    is_trailer: bool = False

    @property
    def remaining_entries(self) -> int:
        """Entries left in the scan."""
        return max(0, self.descriptor.range_entries - self.entries_scanned)


@dataclass
class AnchorGroup:
    """Scans sharing one anchor, ordered by offset."""

    anchor_id: int
    members: List[IndexScanState] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def trailer(self) -> IndexScanState:
        """Smallest offset (rear of the group)."""
        return self.members[0]

    @property
    def leader(self) -> IndexScanState:
        """Largest offset (front of the group)."""
        return self.members[-1]


@dataclass
class IndexSharingStats:
    """Counters for tests and reports."""

    scans_started: int = 0
    scans_finished: int = 0
    scans_joined: int = 0
    anchors_created: int = 0
    throttle_waits: int = 0
    total_throttle_time: float = 0.0
    rebases_on_wrap: int = 0


class IndexScanSharingManager:
    """Tracks SISCANs and decides placement, waits, and priorities."""

    def __init__(
        self,
        sim: Simulator,
        pages_per_entry: int,
        pool_capacity: int,
        config: Optional[SharingConfig] = None,
    ):
        if pages_per_entry < 1:
            raise ValueError(f"pages_per_entry must be >= 1, got {pages_per_entry}")
        self.sim = sim
        self.pages_per_entry = pages_per_entry
        self.pool_capacity = pool_capacity
        self.config = config or SharingConfig()
        self.stats = IndexSharingStats()
        self._states: Dict[int, IndexScanState] = {}
        self._last_finished: Dict[str, int] = {}
        self._next_scan_id = 0
        self._next_anchor_id = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start_scan(self, descriptor: IndexScanDescriptor) -> IndexScanState:
        """Register a SISCAN; decides its start location and anchor."""
        start_entry, joined = self._place(descriptor)
        state = IndexScanState(
            scan_id=self._next_scan_id,
            descriptor=descriptor,
            start_entry=start_entry,
            start_time=self.sim.now,
            speed=descriptor.estimated_speed,
            location=start_entry,
            last_update_time=self.sim.now,
        )
        self._next_scan_id += 1
        if joined is not None:
            state.anchor_id = joined.anchor_id
            state.anchor_offset = joined.anchor_offset
            self.stats.scans_joined += 1
        else:
            state.anchor_id = self._new_anchor()
            state.anchor_offset = 0
        self._states[state.scan_id] = state
        self.stats.scans_started += 1
        self._reclassify()
        return state

    def update_location(
        self, scan_id: int, location: int, entries_scanned: int,
        wrapped_since_last: bool = False,
    ) -> float:
        """Record progress; returns seconds of inserted throttle wait.

        ``wrapped_since_last`` tells the ISM the scan jumped from its
        range end back to its range start, which rebases it onto a fresh
        anchor (offset ordering with the old group is void).
        """
        state = self._state(scan_id)
        if entries_scanned < state.entries_scanned:
            raise ValueError(
                f"scan {scan_id}: entries_scanned went backwards "
                f"({entries_scanned} < {state.entries_scanned})"
            )
        delta_entries = entries_scanned - state.entries_at_last_update
        delta_time = self.sim.now - state.last_update_time
        if wrapped_since_last:
            state.anchor_id = self._new_anchor()
            state.anchor_offset = 0
            self.stats.rebases_on_wrap += 1
        else:
            state.anchor_offset += entries_scanned - state.entries_scanned
        state.location = location
        state.entries_scanned = entries_scanned
        if delta_time > 0 and delta_entries > 0:
            instantaneous = delta_entries / delta_time
            alpha = self.config.speed_smoothing
            state.speed = alpha * instantaneous + (1 - alpha) * state.speed
            state.last_update_time = self.sim.now
            state.entries_at_last_update = entries_scanned

        if not (self.config.enabled and self.config.throttling_enabled):
            self._reclassify()
            return 0.0
        self._reclassify()
        return self._throttle(state)

    def page_priority(self, scan_id: int) -> Priority:
        """Release priority for the scan's current block pages."""
        state = self._state(scan_id)
        if not (
            self.config.enabled
            and self.config.prioritization_enabled
            and self.config.grouping_enabled
        ):
            return Priority.NORMAL
        group = self._group_of(state)
        if group is None or group.size <= 1:
            return Priority.NORMAL
        if state.is_leader:
            return Priority.HIGH
        if state.is_trailer:
            return Priority.LOW
        return Priority.NORMAL

    def end_scan(self, scan_id: int) -> None:
        """Deregister a finished SISCAN."""
        state = self._state(scan_id)
        state.finished = True
        self._last_finished[state.descriptor.index_name] = state.location
        del self._states[scan_id]
        self.stats.scans_finished += 1
        self._reclassify()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def active_scan_count(self) -> int:
        """Currently registered scans."""
        return len(self._states)

    def anchor_groups(self) -> List[AnchorGroup]:
        """Current anchor groups (size >= 1), ordered by anchor id."""
        by_anchor: Dict[int, List[IndexScanState]] = {}
        for state in self._states.values():
            by_anchor.setdefault(state.anchor_id, []).append(state)
        groups = []
        for anchor_id in sorted(by_anchor):
            members = sorted(
                by_anchor[anchor_id], key=lambda s: (s.anchor_offset, s.scan_id)
            )
            groups.append(AnchorGroup(anchor_id=anchor_id, members=members))
        return groups

    # ------------------------------------------------------------------
    # Placement — the sharing-potential estimate
    # ------------------------------------------------------------------

    def expected_shared_pages(
        self, descriptor: IndexScanDescriptor, candidate: IndexScanState
    ) -> float:
        """Estimated pages co-read if the new scan starts at ``candidate``.

        Constant-speed analysis (the paper's calculateReads evaluated for
        a two-scan overlap): sharing lasts until either the candidate
        finishes or the new scan reaches its range end (its pre-wrap
        phase), and proceeds at the slower scan's pace.
        """
        if candidate.finished:
            return 0.0
        if not descriptor.first_entry <= candidate.location <= descriptor.last_entry:
            return 0.0
        phase_one = descriptor.last_entry - candidate.location + 1
        cand_speed = max(candidate.speed, _MIN_SPEED)
        new_speed = max(descriptor.estimated_speed, _MIN_SPEED)
        overlap_time = min(
            candidate.remaining_entries / cand_speed, phase_one / new_speed
        )
        shared_entries = overlap_time * min(cand_speed, new_speed)
        return shared_entries * self.pages_per_entry

    def _place(
        self, descriptor: IndexScanDescriptor
    ) -> Tuple[int, Optional[IndexScanState]]:
        if not (self.config.enabled and self.config.placement_enabled):
            return descriptor.first_entry, None
        candidates = [
            state
            for state in self._states.values()
            if state.descriptor.index_name == descriptor.index_name
        ]
        best: Optional[IndexScanState] = None
        best_pages = 0.0
        for candidate in candidates:
            pages = self.expected_shared_pages(descriptor, candidate)
            if pages > best_pages:
                best_pages = pages
                best = candidate
        if best is not None and best_pages >= self.config.min_share_pages:
            return best.location, best
        if not candidates:
            last = self._last_finished.get(descriptor.index_name)
            if last is not None:
                leftover_entries = max(
                    1, self.pool_capacity // (2 * self.pages_per_entry)
                )
                backed_off = last - leftover_entries + 1
                if descriptor.first_entry < backed_off <= descriptor.last_entry:
                    return backed_off, None
        return descriptor.first_entry, None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _state(self, scan_id: int) -> IndexScanState:
        try:
            return self._states[scan_id]
        except KeyError:
            raise KeyError(f"unknown or finished index scan id {scan_id}") from None

    def _new_anchor(self) -> int:
        anchor_id = self._next_anchor_id
        self._next_anchor_id += 1
        self.stats.anchors_created += 1
        return anchor_id

    def _group_of(self, state: IndexScanState) -> Optional[AnchorGroup]:
        for group in self.anchor_groups():
            if any(m.scan_id == state.scan_id for m in group.members):
                return group
        return None

    def _reclassify(self) -> None:
        if not (self.config.enabled and self.config.grouping_enabled):
            for state in self._states.values():
                state.is_leader = state.is_trailer = False
            return
        for group in self.anchor_groups():
            for member in group.members:
                member.is_leader = member.scan_id == group.leader.scan_id
                member.is_trailer = member.scan_id == group.trailer.scan_id

    def _throttle(self, state: IndexScanState) -> float:
        group = self._group_of(state)
        if group is None or group.size <= 1:
            return 0.0
        if not state.is_leader or state.throttle_exempt:
            return 0.0
        trailer = group.trailer
        if trailer.finished:
            return 0.0
        gap_entries = state.anchor_offset - trailer.anchor_offset
        threshold_entries = (
            self.config.distance_threshold_extents
            * 16  # pages per prefetch extent (the prototype's constant)
            / self.pages_per_entry
        )
        if gap_entries <= threshold_entries:
            return 0.0
        target_entries = (
            self.config.target_distance_extents * 16 / self.pages_per_entry
        )
        wait = (gap_entries - target_entries) / max(trailer.speed, _MIN_SPEED)
        wait = min(wait, self.config.max_wait_per_update)
        allowance = (
            self.config.slowdown_cap_fraction * state.descriptor.estimated_total_time
            - state.accumulated_delay
        )
        if allowance <= 0:
            state.throttle_exempt = True
            return 0.0
        if wait > allowance:
            wait = allowance
            state.throttle_exempt = True
        state.accumulated_delay += wait
        self.stats.throttle_waits += 1
        self.stats.total_throttle_time += wait
        return wait
