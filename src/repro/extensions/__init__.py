"""Extensions beyond the target paper.

``index_sharing`` implements the ICDE 2007 paper's stated future work —
sharing for *index-based* scans — following the design its authors
published a few months later (VLDB 2007): SISCAN operators with
anchor/offset location tracking, anchor groups, and sharing-potential
placement over block indexes whose block ids are not laid out in key
order.
"""
