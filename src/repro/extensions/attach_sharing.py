"""QPipe-style attach/detach scan sharing — the related-work baseline.

Harizopoulos et al. (SIGMOD 2005) propose one continuously circulating
scan per table; queries *attach* to it at its current position, consume
every page it produces, and detach once they have seen a full circle.
The paper under reproduction argues this works well only for scans of
similar speeds: the shared producer must run at the pace of its slowest
consumer (or drift splits the group), while grouping + throttling keeps
fast scans' delay bounded by the fairness cap.

This module implements the attach model faithfully enough to measure
that trade-off: a per-table circular daemon that fixes pages and
synchronously delivers each page to all attached consumers, so the
effective group speed is the slowest consumer's.  The scheduler ablation
``bench_a8_attach.py`` compares it against both the vanilla engine and
the paper's mechanism under homogeneous and heterogeneous consumer
speeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.buffer.page import Priority
from repro.scans.base import ScanResult

OnPage = Callable[[int, dict, int], float]


@dataclass
class _Consumer:
    """One attached query-side consumer."""

    consumer_id: int
    on_page: OnPage
    pages_needed: int
    pages_seen: int = 0
    attached_at: float = 0.0
    result: ScanResult = None  # type: ignore[assignment]
    done_event: Any = None

    @property
    def finished(self) -> bool:
        return self.pages_seen >= self.pages_needed


class CircularScanDaemon:
    """A per-table circular scan that broadcasts pages to consumers."""

    def __init__(self, database: Any, table_name: str):
        self.db = database
        self.table = database.catalog.table(table_name)
        self._consumers: Dict[int, _Consumer] = {}
        self._next_consumer_id = 0
        self._position = 0  # next page to produce
        self._running = False

    @property
    def active_consumers(self) -> int:
        """Number of currently attached consumers."""
        return len(self._consumers)

    @property
    def position(self) -> int:
        """The page the daemon will produce next."""
        return self._position

    def attach(self, on_page: OnPage) -> _Consumer:
        """Attach a consumer at the daemon's current position."""
        consumer = _Consumer(
            consumer_id=self._next_consumer_id,
            on_page=on_page,
            pages_needed=self.table.n_pages,
            attached_at=self.db.sim.now,
            result=ScanResult(
                table_name=self.table.name,
                first_page=0,
                last_page=self.table.n_pages - 1,
                start_page=self._position,
                started_at=self.db.sim.now,
            ),
            done_event=self.db.sim.event(),
        )
        self._next_consumer_id += 1
        self._consumers[consumer.consumer_id] = consumer
        if not self._running:
            self._running = True
            self.db.sim.spawn(self._run(), name=f"daemon-{self.table.name}")
        return consumer

    def _run(self) -> Generator:
        db = self.db
        table = self.table
        while self._consumers:
            page_no = self._position
            extent_no = table.extent_of(page_no)
            prefetch = db.catalog.extent_keys(table.name, extent_no)
            key = prefetch[page_no - extent_no * table.extent_size]
            frame = yield from db.pool.fix(key, prefetch=prefetch)
            assert frame.key == key
            try:
                data = table.page_data(page_no)
                # Synchronous broadcast: every attached consumer processes
                # the page before the daemon moves on — the group advances
                # at the slowest consumer's pace (the model the paper's
                # throttling is the answer to).
                for consumer in list(self._consumers.values()):
                    cpu_seconds = consumer.on_page(
                        page_no, data, table.schema.rows_per_page
                    )
                    if cpu_seconds > 0:
                        yield db.cpu.acquire()
                        try:
                            yield db.sim.timeout(cpu_seconds)
                        finally:
                            db.cpu.release()
                    consumer.pages_seen += 1
                    consumer.result.pages_scanned += 1
                    consumer.result.rows_seen += table.schema.rows_per_page
                    consumer.result.cpu_seconds += cpu_seconds
                    if consumer.finished:
                        consumer.result.finished_at = db.sim.now
                        del self._consumers[consumer.consumer_id]
                        consumer.done_event.succeed(consumer.result)
            finally:
                db.pool.unfix(key, Priority.NORMAL)
            self._position = (self._position + 1) % table.n_pages
        self._running = False


class AttachScanManager:
    """Facade: one circular daemon per table, attach-style full scans."""

    def __init__(self, database: Any):
        self.db = database
        self._daemons: Dict[str, CircularScanDaemon] = {}

    def daemon(self, table_name: str) -> CircularScanDaemon:
        """The (lazily created) daemon for a table."""
        if table_name not in self._daemons:
            self._daemons[table_name] = CircularScanDaemon(self.db, table_name)
        return self._daemons[table_name]

    def scan(self, table_name: str, on_page: OnPage) -> Generator:
        """Attach to the table's daemon and wait for a full circle.

        Simulation generator: drive with ``yield from``; returns the
        consumer's :class:`~repro.scans.base.ScanResult`.
        """
        consumer = self.daemon(table_name).attach(on_page)
        result = yield consumer.done_event
        return result
