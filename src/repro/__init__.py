"""repro — reproduction of *"Increasing Buffer-Locality for Multiple
Relational Table Scans through Grouping and Throttling"* (ICDE 2007).

The package builds a complete simulated DBMS execution stack (discrete-
event kernel, disk model, priority bufferpool, storage layer, vectorized
query engine) and, on top of it, the paper's contribution: a scan
sharing manager that places, groups, throttles, and re-prioritizes
concurrent table scans to maximize bufferpool reuse.

Quickstart::

    from repro import SystemConfig, SharingConfig, run_workload
    from repro.workloads import make_tpch_database, tpch_streams

    db = make_tpch_database(SystemConfig(sharing=SharingConfig(enabled=True)))
    result = run_workload(db, tpch_streams(5))
    print(result.makespan, result.pages_read, result.seeks)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.buffer import BufferPool, PageKey, Priority, make_policy
from repro.core import (
    ScanDescriptor,
    ScanGroup,
    ScanSharingManager,
    ScanState,
    SharingConfig,
)
from repro.disk import Disk, DiskGeometry
from repro.engine import (
    AggSpec,
    CostModel,
    Database,
    QuerySpec,
    ScanStep,
    SystemConfig,
    WorkloadResult,
    col,
    execute_query,
    lit,
    run_workload,
)
from repro.scans import SharedTableScan, TableScan
from repro.sim import Simulator
from repro.storage import Catalog, ColumnSpec, Table, TableSchema

__version__ = "1.0.0"

__all__ = [
    "AggSpec",
    "BufferPool",
    "Catalog",
    "ColumnSpec",
    "CostModel",
    "Database",
    "Disk",
    "DiskGeometry",
    "PageKey",
    "Priority",
    "QuerySpec",
    "ScanDescriptor",
    "ScanGroup",
    "ScanSharingManager",
    "ScanState",
    "ScanStep",
    "SharedTableScan",
    "SharingConfig",
    "Simulator",
    "SystemConfig",
    "Table",
    "TableSchema",
    "TableScan",
    "WorkloadResult",
    "col",
    "execute_query",
    "lit",
    "make_policy",
    "run_workload",
    "__version__",
]
