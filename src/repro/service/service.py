"""The query service: arrivals → weighted-fair queues → admission → engine.

:class:`QueryService` owns one run over one
:class:`~repro.engine.database.Database`.  Per-class producers (open
arrival plans or closed looping streams) submit requests into per-class
admission queues; a weighted-fair selector hands admission slots to the
class owed the next one; the
:class:`~repro.service.controller.AdmissionController` bounds how many
slots exist at all, shrinking under bufferpool/scan backpressure.
Admitted requests run as ordinary
:func:`~repro.engine.executor.execute_query` processes, so the shared
scan engine, tracing, fault injection, and metrics collection all see
exactly the workload a closed harness would have produced.

Determinism: every stochastic choice derives from the database seed via
SHA-256 (per class, per closed stream), all queue decisions are pure
functions of event order, and the simulator dispatches ties in push
order — so a run is a pure function of ``(ServiceSpec, SystemConfig)``.
"""

from __future__ import annotations

import hashlib
from functools import partial
from typing import Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.engine.database import Database
from repro.engine.executor import execute_query
from repro.service.controller import AdmissionController
from repro.service.metrics import ServiceResult, compute_class_metrics
from repro.service.queues import AdmissionQueue, QueryRequest, WeightedFairSelector
from repro.service.spec import ServiceClass, ServiceSpec
from repro.sim.events import Event
from repro.trace.events import (
    ServiceAbandoned,
    ServiceAdmitted,
    ServiceArrival,
    ServiceCompleted,
)
from repro.trace.tracer import get_tracer
from repro.workloads.arrivals import ArrivalPlan, _query_mix, make_arrivals
from repro.workloads.tpch_queries import QUERY_FACTORIES


def _class_seed(base_seed: int, class_name: str) -> int:
    """Stable per-class RNG seed derived from the database seed."""
    payload = f"repro.service:{base_seed}:{class_name}".encode()
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


class QueryService:
    """One admission-controlled service run over a database.

    ``arrival_plans`` optionally maps open class names to explicit
    pre-built :class:`~repro.workloads.arrivals.ArrivalPlan` objects;
    classes listed there skip ``make_arrivals`` and replay the given
    plan verbatim.  The cluster layer uses this to hand each replica
    its routed share of a fleet-wide load plan.
    """

    def __init__(
        self,
        db: Database,
        spec: ServiceSpec,
        scenario: str = "",
        arrival_plans: Optional[Dict[str, "ArrivalPlan"]] = None,
    ):
        self.db = db
        self.spec = spec
        self.scenario = scenario
        self.arrival_plans = dict(arrival_plans or {})
        self.controller = AdmissionController(db, spec.controller)
        self.controller.on_increase = self._try_admit
        self._queues: Dict[str, AdmissionQueue] = {
            cls.name: AdmissionQueue(cls) for cls in spec.classes
        }
        self._selector = WeightedFairSelector(list(self._queues.values()))
        self._requests: Dict[str, List[QueryRequest]] = {
            cls.name: [] for cls in spec.classes
        }
        self._next_request_id = 0
        self._running = 0
        self._producers = 0
        self._in_system = 0
        self._in_system_samples: List[Tuple[float, int]] = []
        self._peak_running = 0
        self._peak_in_system = 0
        self._last_resolved = 0.0
        self._failures: List[BaseException] = []

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    def run(self) -> ServiceResult:
        """Drive the whole service to completion and reduce to a result."""
        base_seed = self.db.config.seed
        for cls in self.spec.classes:
            seed = _class_seed(base_seed, cls.name)
            if cls.is_open:
                if cls.name in self.arrival_plans:
                    plan = self.arrival_plans[cls.name]
                else:
                    plan = make_arrivals(
                        cls.arrival,
                        cls.rate,
                        self.spec.horizon,
                        seed=seed,
                        query_names=cls.query_names,
                        query_weights=cls.query_weight_map(),
                        max_arrivals=self.spec.max_arrivals_per_class,
                        sigma=cls.sigma,
                        alpha=cls.alpha,
                        rate_off=cls.rate_off,
                        mean_on_seconds=cls.mean_on,
                        mean_off_seconds=cls.mean_off,
                    )
                self._producers += 1
                self.db.sim.spawn(
                    self._open_producer(cls, plan), name=f"arrivals-{cls.name}"
                )
            else:
                for stream in range(cls.n_streams):
                    self._producers += 1
                    self.db.sim.spawn(
                        self._closed_producer(cls, seed, stream),
                        name=f"{cls.name}-stream-{stream}",
                    )
        self.controller.start()
        self.db.sim.run()
        process = self.controller.process
        if process is not None and process.completion.triggered \
                and process.completion.failed:
            raise process.completion.value
        if self._failures:
            raise self._failures[0]
        return self._build_result()

    def _open_producer(self, cls: ServiceClass, plan) -> Generator:
        last = 0.0
        for query, arrival_time in zip(plan.queries, plan.arrival_times):
            yield self.db.sim.timeout(arrival_time - last)
            last = arrival_time
            self._submit(cls, query)
        self._producer_done()

    def _closed_producer(
        self, cls: ServiceClass, seed: int, stream: int
    ) -> Generator:
        rng = np.random.default_rng((seed, stream))
        names, probabilities = _query_mix(
            cls.query_names, cls.query_weight_map()
        )
        while self.db.sim.now < self.spec.horizon:
            name = str(rng.choice(names, p=probabilities))
            request = self._submit(cls, QUERY_FACTORIES[name](rng))
            yield request.completion
        self._producer_done()

    def _producer_done(self) -> None:
        self._producers -= 1
        self._maybe_finished()

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------

    def _submit(self, cls: ServiceClass, query) -> QueryRequest:
        now = self.db.sim.now
        request = QueryRequest(
            request_id=self._next_request_id,
            class_name=cls.name,
            query=query,
            arrived_at=now,
            completion=self.db.sim.event(),
        )
        self._next_request_id += 1
        queue = self._queues[cls.name]
        queue.push(request, now)
        self._requests[cls.name].append(request)
        self._note_in_system(+1)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(ServiceArrival(
                time=now, request_id=request.request_id,
                service_class=cls.name, query=query.name,
                queue_len=len(queue),
            ))
        if cls.patience is not None:
            self.db.sim.schedule(cls.patience, partial(self._abandon, request))
        self._try_admit()
        return request

    def _abandon(self, request: QueryRequest) -> None:
        """Patience timer fired; a no-op unless the request still waits."""
        if request.admitted or request.resolved:
            return
        now = self.db.sim.now
        queue = self._queues[request.class_name]
        if not queue.remove(request, now):
            return
        request.abandoned_at = now
        self._note_in_system(-1)
        self._last_resolved = now
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(ServiceAbandoned(
                time=now, request_id=request.request_id,
                service_class=request.class_name,
                waited=request.admission_wait,
            ))
        request.completion.succeed(None)
        self._maybe_finished()

    def _try_admit(self) -> None:
        """Admit from the fairest eligible queue while slots remain."""
        while self.controller.has_slot(self._running):
            queue = self._selector.select()
            if queue is None:
                return
            now = self.db.sim.now
            request = queue.pop(now)
            self._selector.charge(queue)
            request.admitted_at = now
            queue.running += 1
            self._running += 1
            self._peak_running = max(self._peak_running, self._running)
            tracer = get_tracer()
            if tracer.enabled:
                tracer.emit(ServiceAdmitted(
                    time=now, request_id=request.request_id,
                    service_class=request.class_name,
                    waited=request.admission_wait,
                    running=self._running,
                ))
            process = self.db.sim.spawn(
                execute_query(self.db, request.query,
                              stream_id=request.request_id),
                name=f"request-{request.request_id}",
            )
            process.completion.add_callback(
                partial(self._on_query_done, request, queue)
            )

    def _on_query_done(
        self, request: QueryRequest, queue: AdmissionQueue, event: Event
    ) -> None:
        now = self.db.sim.now
        queue.running -= 1
        self._running -= 1
        request.finished_at = now
        self._note_in_system(-1)
        self._last_resolved = now
        if event.failed:
            self._failures.append(event.value)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(ServiceCompleted(
                time=now, request_id=request.request_id,
                service_class=request.class_name,
                latency=request.latency, waited=request.admission_wait,
            ))
        request.completion.succeed(None)
        self._maybe_finished()
        self._try_admit()

    def _note_in_system(self, delta: int) -> None:
        self._in_system += delta
        self._peak_in_system = max(self._peak_in_system, self._in_system)
        self._in_system_samples.append((self.db.sim.now, self._in_system))

    def _maybe_finished(self) -> None:
        if self._producers == 0 and self._in_system == 0:
            self.controller.stop()

    # ------------------------------------------------------------------
    # Reduction
    # ------------------------------------------------------------------

    def _build_result(self) -> ServiceResult:
        from repro.metrics.report import percentile

        span = self._last_resolved if self._last_resolved > 0 else self.spec.horizon
        stats = self.db.pool.stats
        miss_rate = (
            stats.misses / stats.logical_reads if stats.logical_reads else 0.0
        )
        populations = [count for _, count in self._in_system_samples]
        result = ServiceResult(
            scenario=self.scenario,
            horizon=self.spec.horizon,
            end_time=self._last_resolved,
            classes=[
                compute_class_metrics(
                    cls, self._requests[cls.name], self._queues[cls.name], span
                )
                for cls in self.spec.classes
            ],
            controller_enabled=self.spec.controller.enabled,
            mpl_final=self.controller.mpl,
            mpl_min=self.controller.stats.min_mpl_seen,
            mpl_max=self.controller.stats.max_mpl_seen,
            mpl_increases=self.controller.stats.increases,
            mpl_decreases=self.controller.stats.decreases,
            controller_ticks=self.controller.stats.ticks,
            peak_running=self._peak_running,
            peak_in_system=self._peak_in_system,
            in_system_p99=percentile(populations, 99) if populations else 0.0,
            buffer_hit_ratio=stats.hit_ratio,
            buffer_miss_rate=miss_rate,
            pages_read=self.db.disk.stats.pages_read,
            drained=self._producers == 0 and self._in_system == 0,
        )
        return result
