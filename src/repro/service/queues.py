"""Per-class admission queues and deterministic weighted-fair selection."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.engine.query import QuerySpec
from repro.service.spec import ServiceClass
from repro.sim.events import Event


@dataclass
class QueryRequest:
    """One request travelling through the service.

    ``completion`` succeeds when the request either finishes execution
    or abandons its queue — closed-class producer loops wait on it.
    """

    request_id: int
    class_name: str
    query: QuerySpec
    arrived_at: float
    completion: Event
    admitted_at: Optional[float] = None
    finished_at: Optional[float] = None
    abandoned_at: Optional[float] = None

    @property
    def admitted(self) -> bool:
        return self.admitted_at is not None

    @property
    def resolved(self) -> bool:
        """Whether the request has left the system (done or abandoned)."""
        return self.finished_at is not None or self.abandoned_at is not None

    @property
    def admission_wait(self) -> float:
        """Time spent queued before admission or abandonment."""
        if self.admitted_at is not None:
            return self.admitted_at - self.arrived_at
        if self.abandoned_at is not None:
            return self.abandoned_at - self.arrived_at
        raise ValueError(f"request {self.request_id} is still queued")

    @property
    def latency(self) -> float:
        """End-to-end time from arrival to completion."""
        if self.finished_at is None:
            raise ValueError(f"request {self.request_id} never finished")
        return self.finished_at - self.arrived_at


@dataclass
class AdmissionQueue:
    """FIFO of waiting requests for one service class.

    Tracks the class's running count (for its per-class MPL cap) and
    samples its own length on every transition so queue-growth metrics
    need no polling process.
    """

    spec: ServiceClass
    running: int = 0
    _waiting: Deque[QueryRequest] = field(default_factory=deque)
    #: ``(time, queue_len)`` recorded at every push/pop/remove.
    length_samples: List[Tuple[float, int]] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.spec.name

    def __len__(self) -> int:
        return len(self._waiting)

    @property
    def eligible(self) -> bool:
        """Whether this class can receive an admission slot right now."""
        if not self._waiting:
            return False
        return self.spec.max_mpl == 0 or self.running < self.spec.max_mpl

    def push(self, request: QueryRequest, now: float) -> None:
        self._waiting.append(request)
        self.length_samples.append((now, len(self._waiting)))

    def pop(self, now: float) -> QueryRequest:
        request = self._waiting.popleft()
        self.length_samples.append((now, len(self._waiting)))
        return request

    def remove(self, request: QueryRequest, now: float) -> bool:
        """Drop an abandoning request; False if it already left the queue."""
        try:
            self._waiting.remove(request)
        except ValueError:
            return False
        self.length_samples.append((now, len(self._waiting)))
        return True


class WeightedFairSelector:
    """Start-time weighted-fair queuing over admission queues.

    Each admission charges the chosen class ``1 / weight`` of virtual
    time; the next slot goes to the eligible class with the smallest
    accumulated virtual time.  Ties break on class name so selection is
    a pure function of admission history — no wall clock, no randomness.
    """

    def __init__(self, queues: Sequence[AdmissionQueue]):
        self._queues = sorted(queues, key=lambda q: q.name)
        self._virtual: Dict[str, float] = {q.name: 0.0 for q in self._queues}

    def select(self) -> Optional[AdmissionQueue]:
        """The eligible queue owed the next slot, or None."""
        candidates = [q for q in self._queues if q.eligible]
        if not candidates:
            return None
        return min(candidates, key=lambda q: (self._virtual[q.name], q.name))

    def charge(self, queue: AdmissionQueue) -> None:
        """Record one admission against ``queue``'s fair share."""
        self._virtual[queue.name] += 1.0 / queue.spec.weight

    def virtual_time(self, name: str) -> float:
        """Accumulated weighted service of a class (for tests)."""
        return self._virtual[name]
