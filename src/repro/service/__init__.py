"""repro.service — admission-controlled multi-stream query service.

The paper's evaluation drives the shared-scan engine from a *closed*
harness: N streams, each firing its next query the moment the previous
one finishes.  A warehouse front-end is an *open* system — requests
arrive whether or not the engine is keeping up — and the decision of
which and how many queries to admit dominates buffer-locality gains
once concurrency is open-ended.  This package adds that front-end:

* :mod:`repro.service.spec` — frozen declarative specs: named service
  classes (priority weight, per-class MPL cap, latency SLO, patience),
  an AIMD controller configuration, and the :class:`ServiceSpec` that
  binds them to a horizon.
* :mod:`repro.service.queues` — per-class admission queues and a
  deterministic weighted-fair selector.
* :mod:`repro.service.controller` — the MPL/admission controller:
  throttles concurrency on live bufferpool miss-rate, pool-pressure,
  and scan-speed signals (backpressure), reopens as they recover.
* :mod:`repro.service.service` — :class:`QueryService`, the sim-time
  service loop tying arrivals → queues → admission → executor.
* :mod:`repro.service.metrics` — per-class SLO metrics and the
  :class:`ServiceResult` / :class:`ServiceComparison` result objects.
* :mod:`repro.service.scenarios` — named scenarios (steady, overload,
  burst, soak) registered as ``sv-*`` experiments.
"""

from repro.service.spec import ControllerConfig, ServiceClass, ServiceSpec
from repro.service.service import QueryService
from repro.service.metrics import ClassMetrics, ServiceComparison, ServiceResult

__all__ = [
    "ClassMetrics",
    "ControllerConfig",
    "QueryService",
    "ServiceClass",
    "ServiceComparison",
    "ServiceResult",
    "ServiceSpec",
]
