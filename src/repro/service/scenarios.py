"""Named service scenarios, registered as ``sv-*`` experiments.

Rates and horizons are calibrated in units of the estimated Q6 service
time at the current ``scale``, so offered load (ρ = arrival rate ×
service time) — the thing that actually determines queueing behaviour —
is scale-invariant: ``serve-sim steady --scale 0.1`` exercises the same
regime as ``--scale 1.0``, just faster.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from repro.core.config import SharingConfig
from repro.engine.database import SystemConfig
from repro.experiments.harness import (
    ExperimentSettings,
    build_database,
    expected_pool_pages,
    expected_table_pages,
)
from repro.service.metrics import ServiceComparison, ServiceResult
from repro.service.service import QueryService
from repro.service.spec import ControllerConfig, ServiceClass, ServiceSpec

#: scenario name -> one-line description (shown by ``serve-sim --list``).
SCENARIOS: Dict[str, str] = {
    "steady": "open interactive class + closed batch streams at moderate load",
    "overload": "heavy-tailed overload; controller on vs off (backpressure proof)",
    "burst": "MMPP on/off bursts over a background trickle",
    "soak": "long mixed soak: interactive + batch + heavy-tailed ad-hoc",
}


def estimated_query_seconds(settings: ExperimentSettings) -> float:
    """Rough Q6 service time at these settings (the calibration unit).

    Q6 scans a one-year lineitem slice (the date domain spans seven
    years); cost ≈ slice pages × per-page transfer, doubled for seeks
    and queueing.  Only used to scale rates/horizons — precision is not
    required.
    """
    lineitem = expected_table_pages(settings, "lineitem")
    slice_pages = max(1, lineitem // 7)
    per_page = SystemConfig().geometry.transfer_time(1)
    return slice_pages * per_page * 2.0


def _controller(cost: float, **overrides) -> ControllerConfig:
    base = dict(
        initial_mpl=4,
        min_mpl=1,
        max_mpl=8,
        interval=max(0.005, cost * 0.5),
    )
    base.update(overrides)
    return ControllerConfig(**base)


def build_service_spec(
    name: str, settings: ExperimentSettings
) -> ServiceSpec:
    """The :class:`ServiceSpec` for one named scenario at these settings."""
    if name not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {name!r} (known: {', '.join(sorted(SCENARIOS))})"
        )
    cost = estimated_query_seconds(settings)

    if name == "steady":
        classes = (
            ServiceClass(
                name="interactive", weight=3.0, arrival="poisson",
                rate=0.5 / cost, query_names=("Q6", "Q14"),
                query_weights=(("Q6", 3.0), ("Q14", 1.0)),
                latency_slo=6.0 * cost, patience=30.0 * cost,
            ),
            ServiceClass(
                name="batch", weight=1.0, arrival="closed", n_streams=2,
                max_mpl=2, query_names=("Q1",),
            ),
        )
        horizon = 150.0 * cost
        controller = _controller(cost)
    elif name == "overload":
        # A pure same-table overload is *absorbed* by scan sharing
        # (more concurrency = more group members = fewer reads), so the
        # mix spans several tables (Q3/Q14 steps) where excess
        # concurrency genuinely destroys locality; see sv_overload for
        # the matching tight-pool environment.
        classes = (
            ServiceClass(
                name="adhoc", weight=1.0, arrival="lognormal", sigma=1.2,
                rate=2.5 / cost, query_names=("Q6", "Q14", "Q3"),
                query_weights=(("Q6", 6.0), ("Q14", 2.0), ("Q3", 1.0)),
                latency_slo=8.0 * cost, patience=12.0 * cost,
            ),
        )
        horizon = 80.0 * cost
        controller = _controller(cost, max_mpl=6)
    elif name == "burst":
        classes = (
            ServiceClass(
                name="bursty", weight=2.0, arrival="mmpp",
                rate=3.0 / cost, rate_off=0.1 / cost,
                mean_on=15.0 * cost, mean_off=20.0 * cost,
                query_names=("Q6",), patience=15.0 * cost,
            ),
            ServiceClass(
                name="background", weight=1.0, arrival="poisson",
                rate=0.2 / cost, query_names=("Q6", "Q14"),
            ),
        )
        horizon = 120.0 * cost
        controller = _controller(cost)
    else:  # soak
        classes = (
            ServiceClass(
                name="interactive", weight=3.0, arrival="poisson",
                rate=0.6 / cost, query_names=("Q6", "Q14"),
                latency_slo=8.0 * cost, patience=40.0 * cost,
            ),
            ServiceClass(
                name="batch", weight=1.0, arrival="closed", n_streams=1,
                max_mpl=1, query_names=("Q1",),
            ),
            ServiceClass(
                name="adhoc", weight=1.5, arrival="pareto", alpha=1.6,
                rate=0.4 / cost, query_names=("Q6",),
                patience=25.0 * cost,
            ),
        )
        horizon = 400.0 * cost
        controller = _controller(cost)

    if settings.service_horizon is not None:
        horizon = settings.service_horizon
    return ServiceSpec(classes=classes, horizon=horizon, controller=controller)


def run_scenario(
    name: str,
    settings: ExperimentSettings,
    controller_enabled: bool = True,
) -> ServiceResult:
    """Build a fresh database and run one scenario on it.

    The overload scenario additionally halves the bufferpool (unless
    the caller pinned ``pool_pages`` explicitly): with the default
    pool the whole working set stays resident at small scales and
    unbounded admission never pays for its locality loss.
    """
    if name == "overload" and settings.pool_pages is None:
        settings = settings.with_(
            pool_pages=max(48, expected_pool_pages(settings) // 2)
        )
    spec = build_service_spec(name, settings)
    if not controller_enabled:
        spec = replace(spec, controller=replace(spec.controller, enabled=False))
    sharing = settings.apply_sharing_overrides(SharingConfig())
    db = build_database(settings, sharing)
    return QueryService(db, spec, scenario=name).run()


def sv_steady(settings: ExperimentSettings) -> ServiceResult:
    """Moderate-load mixed scenario (the golden/smoke workhorse)."""
    return run_scenario("steady", settings)


def sv_overload(settings: ExperimentSettings) -> ServiceComparison:
    """Overload with the controller on vs off — the backpressure proof."""
    return ServiceComparison(
        scenario="overload",
        controlled=run_scenario("overload", settings, controller_enabled=True),
        uncontrolled=run_scenario("overload", settings, controller_enabled=False),
    )


def sv_burst(settings: ExperimentSettings) -> ServiceResult:
    """Bursty MMPP arrivals over a background trickle."""
    return run_scenario("burst", settings)


def sv_soak(settings: ExperimentSettings) -> ServiceResult:
    """Long mixed soak; pair with ``--faults`` for chaos coverage."""
    return run_scenario("soak", settings)
