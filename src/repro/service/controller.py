"""The MPL/admission controller: backpressure from live engine signals.

The controller is a simulation process that wakes every ``interval``
seconds and adjusts the global multiprogramming level (MPL) — the
number of requests the service may run concurrently — using three
signals read directly from the engine:

* **miss rate** — bufferpool misses over logical reads *since the last
  tick* (windowed, so a long warm prefix cannot mask a cold spell);
* **pool pressure** — the fraction of frames reserved away from the
  pool (fault-injected memory pressure);
* **scan speed** — each active scan's measured speed from the sharing
  manager, normalized by its own optimizer-estimated solo speed; when
  the mean ratio collapses below ``speed_floor`` the disk (or a
  dragging group) is saturated even if the pool still hits.

The windowed miss rate is EWMA-smoothed and near-idle windows are
ignored, so one cold scan start does not read as thrash.

Control is AIMD: any red signal halves the MPL (multiplicative
decrease), a clean window raises it by ``increase_step`` (additive
increase).  Decreases do not evict running queries; the service simply
stops admitting until completions bring the running count back under
the bound — classic admission-control backpressure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.engine.database import Database
from repro.service.spec import ControllerConfig
from repro.trace.events import ServiceMplChanged
from repro.trace.tracer import get_tracer


@dataclass
class ControllerStats:
    """What the controller did over one run."""

    ticks: int = 0
    increases: int = 0
    decreases: int = 0
    min_mpl_seen: int = 0
    max_mpl_seen: int = 0


class AdmissionController:
    """AIMD MPL controller over a :class:`~repro.engine.database.Database`."""

    def __init__(self, db: Database, config: ControllerConfig):
        self.db = db
        self.config = config
        self.mpl = config.initial_mpl
        self.stats = ControllerStats(
            min_mpl_seen=config.initial_mpl, max_mpl_seen=config.initial_mpl
        )
        #: Invoked after every MPL increase so the service can re-try
        #: admission immediately instead of waiting for a completion.
        self.on_increase: Optional[Callable[[], None]] = None
        self._stopped = False
        self._last_logical = db.pool.stats.logical_reads
        self._last_misses = db.pool.stats.misses
        self._miss_ewma = 0.0
        self.process = None

    def has_slot(self, running: int) -> bool:
        """Whether another request may be admitted at ``running`` live."""
        if not self.config.enabled:
            return True
        return running < self.mpl

    def start(self) -> None:
        """Spawn the control loop (no-op when disabled)."""
        if self.config.enabled:
            self.process = self.db.sim.spawn(self._loop(), name="mpl-controller")

    def stop(self) -> None:
        """Ask the control loop to exit after its current sleep."""
        self._stopped = True

    def _loop(self) -> Generator:
        while not self._stopped:
            yield self.db.sim.timeout(self.config.interval)
            if self._stopped:
                break
            self._tick()

    def _tick(self) -> None:
        config = self.config
        stats = self.db.pool.stats
        logical_delta = stats.logical_reads - self._last_logical
        miss_delta = stats.misses - self._last_misses
        self._last_logical = stats.logical_reads
        self._last_misses = stats.misses
        if logical_delta >= config.min_window_reads:
            window_rate = miss_delta / logical_delta
            alpha = config.miss_ewma_alpha
            self._miss_ewma += alpha * (window_rate - self._miss_ewma)
        miss_rate = self._miss_ewma
        pressure = self.db.pool.reserved_frames / self.db.pool.capacity

        ratios = [
            s.speed / s.descriptor.estimated_speed
            for s in self.db.sharing.active_scans()
            if s.speed > 0 and s.descriptor.estimated_speed > 0
        ]
        mean_speed = sum(ratios) / len(ratios) if ratios else 0.0
        speed_collapsed = bool(ratios) and mean_speed < config.speed_floor

        old_mpl = self.mpl
        if miss_rate > config.miss_rate_high or pressure > config.pressure_high \
                or speed_collapsed:
            self.mpl = max(config.min_mpl, int(self.mpl * config.decrease_factor))
        elif miss_rate < config.miss_rate_low and pressure <= config.pressure_high:
            self.mpl = min(config.max_mpl, self.mpl + config.increase_step)

        self.stats.ticks += 1
        if self.mpl < old_mpl:
            self.stats.decreases += 1
        elif self.mpl > old_mpl:
            self.stats.increases += 1
        self.stats.min_mpl_seen = min(self.stats.min_mpl_seen, self.mpl)
        self.stats.max_mpl_seen = max(self.stats.max_mpl_seen, self.mpl)

        if self.mpl != old_mpl:
            tracer = get_tracer()
            if tracer.enabled:
                tracer.emit(ServiceMplChanged(
                    time=self.db.sim.now, old_mpl=old_mpl, new_mpl=self.mpl,
                    miss_rate=miss_rate, pool_pressure=pressure,
                    mean_speed=mean_speed,
                ))
            if self.mpl > old_mpl and self.on_increase is not None:
                self.on_increase()
