"""Declarative, hashable specifications for the query service.

Everything here is frozen so a :class:`ServiceSpec` can sit inside
:class:`~repro.experiments.harness.ExperimentSettings`-style cache keys
and be rebuilt identically in worker processes — the same property the
experiment runner relies on for ``--jobs`` determinism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.workloads.arrivals import ARRIVAL_KINDS

#: Arrival kinds a service class may declare: the open kinds from
#: ``workloads.arrivals`` plus ``closed`` (a fixed set of looping streams).
CLASS_ARRIVAL_KINDS = ARRIVAL_KINDS + ("closed",)


@dataclass(frozen=True)
class ServiceClass:
    """One named workload class served by the query service.

    Open classes (``arrival`` in :data:`~repro.workloads.arrivals.ARRIVAL_KINDS`)
    generate a pre-computed arrival plan at ``rate`` per second; closed
    classes run ``n_streams`` loops that submit a new request as soon as
    the previous one completes (TPC-H throughput-test style).
    """

    name: str
    #: Weighted-fair share relative to other classes (higher = more slots).
    weight: float = 1.0
    #: Per-class concurrency cap; 0 means only the global MPL bound applies.
    max_mpl: int = 0
    #: Optional end-to-end latency SLO in simulated seconds.
    latency_slo: Optional[float] = None
    #: Queued requests abandon after this wait; None waits forever.
    patience: Optional[float] = None
    arrival: str = "poisson"
    #: Arrivals per simulated second (open classes only).
    rate: float = 1.0
    #: Looping streams (closed classes only).
    n_streams: int = 1
    query_names: Tuple[str, ...] = ("Q6",)
    #: ``(name, weight)`` pairs biasing the query template draw.
    query_weights: Tuple[Tuple[str, float], ...] = ()
    #: Lognormal tail weight (``arrival == "lognormal"``).
    sigma: float = 1.0
    #: Pareto shape (``arrival == "pareto"``); must exceed 1.
    alpha: float = 1.5
    #: MMPP off-phase rate and mean phase sojourns (``arrival == "mmpp"``).
    rate_off: float = 0.0
    mean_on: float = 1.0
    mean_off: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("service class needs a name")
        if self.weight <= 0:
            raise ValueError(f"class {self.name}: weight must be positive")
        if self.max_mpl < 0:
            raise ValueError(f"class {self.name}: max_mpl must be >= 0")
        if self.latency_slo is not None and self.latency_slo <= 0:
            raise ValueError(f"class {self.name}: latency_slo must be positive")
        if self.patience is not None and self.patience <= 0:
            raise ValueError(f"class {self.name}: patience must be positive")
        if self.arrival not in CLASS_ARRIVAL_KINDS:
            raise ValueError(
                f"class {self.name}: unknown arrival kind {self.arrival!r}; "
                f"expected one of {CLASS_ARRIVAL_KINDS}"
            )
        if self.is_open and self.rate <= 0:
            raise ValueError(f"class {self.name}: open classes need rate > 0")
        if not self.is_open and self.n_streams < 1:
            raise ValueError(f"class {self.name}: closed classes need n_streams >= 1")
        if not self.query_names:
            raise ValueError(f"class {self.name}: needs at least one query template")

    @property
    def is_open(self) -> bool:
        """Whether this class draws from an open arrival process."""
        return self.arrival != "closed"

    def query_weight_map(self) -> Optional[Dict[str, float]]:
        """``query_weights`` as the dict the arrival generators accept."""
        return dict(self.query_weights) if self.query_weights else None


@dataclass(frozen=True)
class ControllerConfig:
    """AIMD configuration for the MPL/admission controller.

    With ``enabled=False`` the service admits without bound — the
    uncontrolled baseline the overload scenario compares against.
    """

    enabled: bool = True
    initial_mpl: int = 4
    min_mpl: int = 1
    max_mpl: int = 16
    #: Seconds between controller ticks.
    interval: float = 0.05
    #: Windowed bufferpool miss-rate above which MPL shrinks.
    miss_rate_high: float = 0.55
    #: Miss-rate below which MPL may grow again.
    miss_rate_low: float = 0.35
    #: Fraction of pool frames reserved away (fault pressure) that
    #: triggers a shrink regardless of miss rate.
    pressure_high: float = 0.5
    #: Shrink: ``mpl = max(min_mpl, int(mpl * decrease_factor))``.
    decrease_factor: float = 0.5
    #: Grow: ``mpl = min(max_mpl, mpl + increase_step)``.
    increase_step: int = 1
    #: Mean active-scan speed below this fraction of the scans' own
    #: estimated (solo) speeds reads as saturation — the group-speed
    #: backpressure signal.  0 disables the signal.
    speed_floor: float = 0.25
    #: EWMA weight of the newest miss-rate window (1.0 = no smoothing).
    miss_ewma_alpha: float = 0.3
    #: Windows with fewer logical reads than this don't move the
    #: miss-rate estimate (a near-idle window is not a signal).
    min_window_reads: int = 16

    def __post_init__(self) -> None:
        if self.min_mpl < 1:
            raise ValueError("min_mpl must be >= 1")
        if not self.min_mpl <= self.initial_mpl <= self.max_mpl:
            raise ValueError(
                f"need min_mpl <= initial_mpl <= max_mpl, got "
                f"{self.min_mpl} / {self.initial_mpl} / {self.max_mpl}"
            )
        if self.interval <= 0:
            raise ValueError("controller interval must be positive")
        if not 0.0 <= self.miss_rate_low <= self.miss_rate_high <= 1.0:
            raise ValueError("need 0 <= miss_rate_low <= miss_rate_high <= 1")
        if not 0.0 < self.pressure_high <= 1.0:
            raise ValueError("pressure_high must be in (0, 1]")
        if not 0.0 < self.decrease_factor < 1.0:
            raise ValueError("decrease_factor must be in (0, 1)")
        if self.increase_step < 1:
            raise ValueError("increase_step must be >= 1")
        if not 0.0 <= self.speed_floor < 1.0:
            raise ValueError("speed_floor must be in [0, 1)")
        if not 0.0 < self.miss_ewma_alpha <= 1.0:
            raise ValueError("miss_ewma_alpha must be in (0, 1]")
        if self.min_window_reads < 1:
            raise ValueError("min_window_reads must be >= 1")


@dataclass(frozen=True)
class ServiceSpec:
    """A full service configuration: classes + horizon + controller."""

    classes: Tuple[ServiceClass, ...]
    #: Arrival window in simulated seconds; the run drains after it closes.
    horizon: float = 10.0
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    #: Safety bound per open class.
    max_arrivals_per_class: int = 10_000

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("service spec needs at least one class")
        names = [cls.name for cls in self.classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate service class names: {names}")
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")
        if self.max_arrivals_per_class < 1:
            raise ValueError("max_arrivals_per_class must be >= 1")

    def class_named(self, name: str) -> ServiceClass:
        """Look a class up by name."""
        for cls in self.classes:
            if cls.name == name:
                return cls
        raise KeyError(f"no service class named {name!r}")
