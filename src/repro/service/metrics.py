"""Per-class SLO metrics and result objects for service runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.metrics.report import format_service_table, format_table, percentile
from repro.service.queues import AdmissionQueue, QueryRequest
from repro.service.spec import ServiceClass


@dataclass
class ClassMetrics:
    """SLO-facing metrics for one service class over one run."""

    name: str
    n_arrived: int = 0
    n_completed: int = 0
    n_abandoned: int = 0
    wait_mean: float = 0.0
    wait_p50: float = 0.0
    wait_p95: float = 0.0
    wait_p99: float = 0.0
    latency_mean: float = 0.0
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    latency_p99: float = 0.0
    #: Completions per simulated second over the run span.
    throughput: float = 0.0
    #: Fraction of completed requests inside the latency SLO (None: no SLO).
    slo_attainment: Optional[float] = None
    #: Fraction of arrivals that abandoned before admission.
    abandonment_rate: float = 0.0
    queue_p99: float = 0.0
    queue_peak: int = 0
    #: Expected queue-length ceiling for open classes with patience
    #: (arrivals during one patience window, doubled for slack); the
    #: boundedness assertion compares ``queue_p99`` against it.
    queue_bound: Optional[float] = None

    def as_dict(self) -> Dict[str, Any]:
        """The row shape :func:`~repro.metrics.report.format_service_table` eats."""
        return {
            "class": self.name,
            "n_arrived": self.n_arrived,
            "n_completed": self.n_completed,
            "n_abandoned": self.n_abandoned,
            "wait_mean": self.wait_mean,
            "wait_p50": self.wait_p50,
            "wait_p95": self.wait_p95,
            "wait_p99": self.wait_p99,
            "latency_mean": self.latency_mean,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "throughput": self.throughput,
            "slo_attainment": self.slo_attainment,
            "abandonment_rate": self.abandonment_rate,
            "queue_p99": self.queue_p99,
            "queue_peak": self.queue_peak,
            "queue_bound": self.queue_bound,
        }


def compute_class_metrics(
    spec: ServiceClass,
    requests: Sequence[QueryRequest],
    queue: AdmissionQueue,
    span: float,
) -> ClassMetrics:
    """Reduce one class's requests + queue samples to :class:`ClassMetrics`."""
    metrics = ClassMetrics(name=spec.name, n_arrived=len(requests))
    completed = [r for r in requests if r.finished_at is not None]
    abandoned = [r for r in requests if r.abandoned_at is not None]
    waits = [r.admission_wait for r in requests if r.resolved]
    latencies = [r.latency for r in completed]
    metrics.n_completed = len(completed)
    metrics.n_abandoned = len(abandoned)
    if requests:
        metrics.abandonment_rate = len(abandoned) / len(requests)
    if waits:
        metrics.wait_mean = sum(waits) / len(waits)
        metrics.wait_p50 = percentile(waits, 50)
        metrics.wait_p95 = percentile(waits, 95)
        metrics.wait_p99 = percentile(waits, 99)
    if latencies:
        metrics.latency_mean = sum(latencies) / len(latencies)
        metrics.latency_p50 = percentile(latencies, 50)
        metrics.latency_p95 = percentile(latencies, 95)
        metrics.latency_p99 = percentile(latencies, 99)
    if span > 0:
        metrics.throughput = len(completed) / span
    if spec.latency_slo is not None and completed:
        within = sum(1 for lat in latencies if lat <= spec.latency_slo)
        metrics.slo_attainment = within / len(completed)
    lengths = [length for _, length in queue.length_samples]
    if lengths:
        metrics.queue_p99 = percentile(lengths, 99)
        metrics.queue_peak = max(lengths)
    if spec.is_open and spec.patience is not None:
        # Abandonment caps the waiting line near rate × patience
        # (arrivals during one patience window); double it for slack.
        metrics.queue_bound = 2.0 * spec.rate * spec.patience + 4.0
    return metrics


@dataclass
class ServiceResult:
    """Everything measured over one service run."""

    scenario: str
    horizon: float
    #: Simulated time when the last request resolved.
    end_time: float
    classes: List[ClassMetrics] = field(default_factory=list)
    controller_enabled: bool = True
    mpl_final: int = 0
    mpl_min: int = 0
    mpl_max: int = 0
    mpl_increases: int = 0
    mpl_decreases: int = 0
    controller_ticks: int = 0
    #: Highest concurrent running count observed.
    peak_running: int = 0
    #: Highest queued+running population observed.
    peak_in_system: int = 0
    in_system_p99: float = 0.0
    buffer_hit_ratio: float = 0.0
    buffer_miss_rate: float = 0.0
    pages_read: int = 0
    #: True when every arrived request completed or abandoned.
    drained: bool = False

    @property
    def n_arrived(self) -> int:
        return sum(c.n_arrived for c in self.classes)

    @property
    def n_completed(self) -> int:
        return sum(c.n_completed for c in self.classes)

    @property
    def n_abandoned(self) -> int:
        return sum(c.n_abandoned for c in self.classes)

    def class_metrics(self, name: str) -> ClassMetrics:
        for metrics in self.classes:
            if metrics.name == name:
                return metrics
        raise KeyError(f"no class {name!r} in result")

    def metrics(self) -> Dict[str, Any]:
        """JSON-safe dict — the unit of caching and digesting."""
        return {
            "scenario": self.scenario,
            "horizon": self.horizon,
            "end_time": self.end_time,
            "n_arrived": self.n_arrived,
            "n_completed": self.n_completed,
            "n_abandoned": self.n_abandoned,
            "drained": self.drained,
            "peak_running": self.peak_running,
            "peak_in_system": self.peak_in_system,
            "in_system_p99": self.in_system_p99,
            "buffer_hit_ratio": self.buffer_hit_ratio,
            "buffer_miss_rate": self.buffer_miss_rate,
            "pages_read": self.pages_read,
            "controller": {
                "enabled": self.controller_enabled,
                "mpl_final": self.mpl_final,
                "mpl_min": self.mpl_min,
                "mpl_max": self.mpl_max,
                "increases": self.mpl_increases,
                "decreases": self.mpl_decreases,
                "ticks": self.controller_ticks,
            },
            "classes": {c.name: c.as_dict() for c in self.classes},
        }

    def render(self) -> str:
        controller = (
            f"controller: mpl {self.mpl_final} "
            f"(range {self.mpl_min}-{self.mpl_max}, "
            f"+{self.mpl_increases}/-{self.mpl_decreases} over "
            f"{self.controller_ticks} ticks)"
            if self.controller_enabled
            else "controller: disabled (unbounded admission)"
        )
        lines = [
            f"scenario {self.scenario}: "
            f"{self.n_completed}/{self.n_arrived} completed, "
            f"{self.n_abandoned} abandoned, "
            f"drained={'yes' if self.drained else 'NO'} "
            f"at t={self.end_time:.3f}s (horizon {self.horizon:.3f}s)",
            controller,
            f"engine: hit ratio {self.buffer_hit_ratio:.3f}, "
            f"miss rate {self.buffer_miss_rate:.3f}, "
            f"pages read {self.pages_read}, "
            f"peak running {self.peak_running}, "
            f"peak in-system {self.peak_in_system}",
            "",
            format_service_table([c.as_dict() for c in self.classes]),
        ]
        return "\n".join(lines)


def bounded_problems(label: str, metrics: Dict[str, Any]) -> List[str]:
    """Boundedness violations in one task's metrics dict (empty = OK).

    Used by ``serve-sim --assert-bounded``: the run must have drained,
    concurrency must have stayed within the controller's MPL range, and
    every patience-bounded open class must have kept its p99 queue
    length under its abandonment ceiling.  For a comparison, only the
    controlled run is held to the bounds — the uncontrolled baseline is
    *supposed* to blow through them.
    """
    if "controlled" in metrics and "uncontrolled" in metrics:
        return bounded_problems(f"{label}.controlled", metrics["controlled"])
    problems: List[str] = []
    if not metrics.get("drained", False):
        problems.append(f"{label}: run did not drain "
                        f"({metrics.get('n_arrived', '?')} arrived, "
                        f"{metrics.get('n_completed', '?')} completed)")
    controller = metrics.get("controller", {})
    if controller.get("enabled"):
        bound = controller.get("mpl_max", 0)
        peak = metrics.get("peak_running", 0)
        if peak > bound:
            problems.append(
                f"{label}: peak running {peak} exceeded MPL bound {bound}"
            )
    for name, row in sorted(metrics.get("classes", {}).items()):
        bound = row.get("queue_bound")
        if bound is not None and row.get("queue_p99", 0.0) > bound:
            problems.append(
                f"{label}/{name}: p99 queue length {row['queue_p99']:.1f} "
                f"exceeded bound {bound:.1f}"
            )
    return problems


@dataclass
class ServiceComparison:
    """Controller-on vs controller-off over the same scenario + seed."""

    scenario: str
    controlled: ServiceResult
    uncontrolled: ServiceResult

    def metrics(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "controlled": self.controlled.metrics(),
            "uncontrolled": self.uncontrolled.metrics(),
            "miss_rate_delta": (
                self.uncontrolled.buffer_miss_rate
                - self.controlled.buffer_miss_rate
            ),
            "peak_in_system_ratio": (
                self.uncontrolled.peak_in_system
                / max(1, self.controlled.peak_in_system)
            ),
        }

    def render(self) -> str:
        rows: List[Tuple[object, ...]] = []
        for label, result in (
            ("controlled", self.controlled),
            ("uncontrolled", self.uncontrolled),
        ):
            rows.append((
                label, result.n_completed, result.n_abandoned,
                result.peak_running, result.peak_in_system,
                result.in_system_p99, result.buffer_miss_rate,
                result.end_time,
            ))
        header = format_table(
            ["run", "done", "abandoned", "peak_run", "peak_sys",
             "sys_p99", "miss_rate", "end (s)"],
            rows,
        )
        sections = [f"scenario {self.scenario}: backpressure comparison", header]
        for label, result in (
            ("controlled", self.controlled),
            ("uncontrolled", self.uncontrolled),
        ):
            sections.append("")
            sections.append(f"-- {label} --")
            sections.append(result.render())
        return "\n".join(sections)
