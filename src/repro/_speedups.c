/* Compiled fast path for the simulation kernel's event queue.
 *
 * CEventQueue mirrors repro.sim.events.EventQueue exactly — the same
 * two-lane design (ready slab of due-now callbacks + a (time, seq) binary
 * heap for future times) with the heap held in parallel C arrays (double
 * times, long long seqs, PyObject* callbacks) instead of tuple entries,
 * and the whole Simulator.run drain loop implemented in C (see cq_run).
 *
 * Dispatch order is bit-for-bit identical to the pure-python queue; the
 * golden-suite digest equality is enforced by tests/test_compiled_backend.py
 * and the compiled CI lane.  Enable with REPRO_COMPILED=1 after building
 * via `make compiled`.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <math.h>

/* Resolved lazily from repro.sim.events / repro.trace.events. */
static PyObject *SimulationErrorClass = NULL;
static PyObject *SimDispatchClass = NULL;

typedef struct {
    PyObject_HEAD
    /* Heap lane: parallel arrays ordered as a binary min-heap on
     * (time, seq). */
    double *times;
    long long *seqs;
    PyObject **cbs;
    Py_ssize_t heap_len;
    Py_ssize_t heap_cap;
    /* Ready lane: ring buffer of callbacks due at exactly `time`. */
    PyObject **ready;
    Py_ssize_t ready_head;
    Py_ssize_t ready_len;
    Py_ssize_t ready_cap; /* power of two (0 until first use) */
    long long seq;
    double time; /* the queue's time cursor */
} CEventQueue;

static int
load_simulation_error(void)
{
    if (SimulationErrorClass == NULL) {
        PyObject *mod = PyImport_ImportModule("repro.sim.events");
        if (mod == NULL)
            return -1;
        SimulationErrorClass = PyObject_GetAttrString(mod, "SimulationError");
        Py_DECREF(mod);
        if (SimulationErrorClass == NULL)
            return -1;
    }
    return 0;
}

/* Matches the pure queue's "cannot schedule into the past" message,
 * including repr-style float formatting. */
static int
raise_past_error(double time, double now)
{
    char *time_str, *now_str;

    if (load_simulation_error() < 0)
        return -1;
    time_str = PyOS_double_to_string(time, 'r', 0, Py_DTSF_ADD_DOT_0, NULL);
    if (time_str == NULL)
        return -1;
    now_str = PyOS_double_to_string(now, 'r', 0, Py_DTSF_ADD_DOT_0, NULL);
    if (now_str == NULL) {
        PyMem_Free(time_str);
        return -1;
    }
    PyErr_Format(SimulationErrorClass,
                 "cannot schedule into the past (time=%s, now=%s)",
                 time_str, now_str);
    PyMem_Free(time_str);
    PyMem_Free(now_str);
    return -1;
}

/* ------------------------------------------------------------------ */
/* Heap lane                                                           */
/* ------------------------------------------------------------------ */

static int
heap_reserve(CEventQueue *q, Py_ssize_t need)
{
    Py_ssize_t cap;
    double *times;
    long long *seqs;
    PyObject **cbs;

    if (need <= q->heap_cap)
        return 0;
    cap = q->heap_cap ? q->heap_cap : 64;
    while (cap < need)
        cap *= 2;
    times = PyMem_Realloc(q->times, (size_t)cap * sizeof(double));
    if (times == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    q->times = times;
    seqs = PyMem_Realloc(q->seqs, (size_t)cap * sizeof(long long));
    if (seqs == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    q->seqs = seqs;
    cbs = PyMem_Realloc(q->cbs, (size_t)cap * sizeof(PyObject *));
    if (cbs == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    q->cbs = cbs;
    q->heap_cap = cap;
    return 0;
}

/* Insert (time, seq, cb) keeping the heap invariant; steals no reference
 * (caller keeps ownership; we incref). */
static int
heap_push(CEventQueue *q, double time, PyObject *cb)
{
    Py_ssize_t pos, parent;
    long long seq;

    if (heap_reserve(q, q->heap_len + 1) < 0)
        return -1;
    seq = q->seq++;
    pos = q->heap_len++;
    while (pos > 0) {
        parent = (pos - 1) >> 1;
        /* Parent stays above us when it sorts strictly earlier; seq ties
         * are impossible (seqs are unique). */
        if (q->times[parent] < time ||
            (q->times[parent] == time && q->seqs[parent] < seq))
            break;
        q->times[pos] = q->times[parent];
        q->seqs[pos] = q->seqs[parent];
        q->cbs[pos] = q->cbs[parent];
        pos = parent;
    }
    q->times[pos] = time;
    q->seqs[pos] = seq;
    q->cbs[pos] = cb;
    Py_INCREF(cb);
    return 0;
}

/* Remove and return the root callback (ownership transferred to the
 * caller); *time_out receives its time.  heap_len must be > 0. */
static PyObject *
heap_pop_root(CEventQueue *q, double *time_out)
{
    PyObject *root_cb = q->cbs[0];
    double time, t;
    long long s;
    PyObject *cb;
    Py_ssize_t pos, child, end;

    *time_out = q->times[0];
    end = --q->heap_len;
    if (end == 0)
        return root_cb;
    /* Sink the last element from the root. */
    time = q->times[end];
    s = q->seqs[end];
    cb = q->cbs[end];
    pos = 0;
    for (;;) {
        child = 2 * pos + 1;
        if (child >= end)
            break;
        if (child + 1 < end &&
            (q->times[child + 1] < q->times[child] ||
             (q->times[child + 1] == q->times[child] &&
              q->seqs[child + 1] < q->seqs[child])))
            child += 1;
        if (time < q->times[child] ||
            (time == q->times[child] && s < q->seqs[child]))
            break;
        q->times[pos] = q->times[child];
        q->seqs[pos] = q->seqs[child];
        q->cbs[pos] = q->cbs[child];
        pos = child;
    }
    t = time;
    q->times[pos] = t;
    q->seqs[pos] = s;
    q->cbs[pos] = cb;
    return root_cb;
}

/* ------------------------------------------------------------------ */
/* Ready lane                                                          */
/* ------------------------------------------------------------------ */

static int
ready_push(CEventQueue *q, PyObject *cb)
{
    if (q->ready_len == q->ready_cap) {
        Py_ssize_t cap = q->ready_cap ? q->ready_cap * 2 : 64;
        PyObject **buf = PyMem_Malloc((size_t)cap * sizeof(PyObject *));
        Py_ssize_t i;
        if (buf == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        for (i = 0; i < q->ready_len; i++)
            buf[i] = q->ready[(q->ready_head + i) & (q->ready_cap - 1)];
        PyMem_Free(q->ready);
        q->ready = buf;
        q->ready_head = 0;
        q->ready_cap = cap;
    }
    q->ready[(q->ready_head + q->ready_len) & (q->ready_cap - 1)] = cb;
    Py_INCREF(cb);
    q->ready_len++;
    return 0;
}

/* Ownership transferred to the caller; ready_len must be > 0. */
static PyObject *
ready_pop(CEventQueue *q)
{
    PyObject *cb = q->ready[q->ready_head];
    q->ready_head = (q->ready_head + 1) & (q->ready_cap - 1);
    q->ready_len--;
    return cb;
}

/* ------------------------------------------------------------------ */
/* Type machinery                                                      */
/* ------------------------------------------------------------------ */

static PyObject *
cq_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    CEventQueue *q = (CEventQueue *)type->tp_alloc(type, 0);
    if (q == NULL)
        return NULL;
    q->times = NULL;
    q->seqs = NULL;
    q->cbs = NULL;
    q->heap_len = 0;
    q->heap_cap = 0;
    q->ready = NULL;
    q->ready_head = 0;
    q->ready_len = 0;
    q->ready_cap = 0;
    q->seq = 0;
    q->time = 0.0;
    return (PyObject *)q;
}

static int
cq_traverse(CEventQueue *q, visitproc visit, void *arg)
{
    Py_ssize_t i;
    for (i = 0; i < q->heap_len; i++)
        Py_VISIT(q->cbs[i]);
    for (i = 0; i < q->ready_len; i++)
        Py_VISIT(q->ready[(q->ready_head + i) & (q->ready_cap - 1)]);
    return 0;
}

static int
cq_clear(CEventQueue *q)
{
    Py_ssize_t i;
    for (i = 0; i < q->heap_len; i++)
        Py_CLEAR(q->cbs[i]);
    q->heap_len = 0;
    for (i = 0; i < q->ready_len; i++) {
        Py_ssize_t slot = (q->ready_head + i) & (q->ready_cap - 1);
        Py_CLEAR(q->ready[slot]);
    }
    q->ready_len = 0;
    q->ready_head = 0;
    return 0;
}

static void
cq_dealloc(CEventQueue *q)
{
    PyObject_GC_UnTrack(q);
    cq_clear(q);
    PyMem_Free(q->times);
    PyMem_Free(q->seqs);
    PyMem_Free(q->cbs);
    PyMem_Free(q->ready);
    Py_TYPE(q)->tp_free((PyObject *)q);
}

static Py_ssize_t
cq_len(CEventQueue *q)
{
    return q->heap_len + q->ready_len;
}

/* ------------------------------------------------------------------ */
/* Queue API (mirrors the pure-python EventQueue)                      */
/* ------------------------------------------------------------------ */

/* Shared routing for push/push_many: -1 error, 0 ready lane, 1 heap. */
static int
route_time(CEventQueue *q, double time)
{
    if (time > q->time) {
        if (isinf(time)) {
            if (load_simulation_error() == 0)
                PyErr_SetString(SimulationErrorClass,
                                "cannot schedule at time=inf");
            return -1;
        }
        return 1;
    }
    if (time == q->time)
        return 0;
    /* NaN falls through both comparisons above, same as the pure queue. */
    return raise_past_error(time, q->time);
}

static PyObject *
cq_push(CEventQueue *q, PyObject *args)
{
    double time;
    PyObject *cb;
    int lane;

    if (!PyArg_ParseTuple(args, "dO:push", &time, &cb))
        return NULL;
    lane = route_time(q, time);
    if (lane < 0)
        return NULL;
    if (lane == 1 ? heap_push(q, time, cb) : ready_push(q, cb))
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
cq_push_many(CEventQueue *q, PyObject *args)
{
    double time;
    PyObject *callbacks, *iter, *cb;
    int lane;

    if (!PyArg_ParseTuple(args, "dO:push_many", &time, &callbacks))
        return NULL;
    lane = route_time(q, time);
    if (lane < 0)
        return NULL;
    iter = PyObject_GetIter(callbacks);
    if (iter == NULL)
        return NULL;
    while ((cb = PyIter_Next(iter)) != NULL) {
        int failed = lane == 1 ? heap_push(q, time, cb) : ready_push(q, cb);
        Py_DECREF(cb);
        if (failed) {
            Py_DECREF(iter);
            return NULL;
        }
    }
    Py_DECREF(iter);
    if (PyErr_Occurred())
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
cq_peek_time(CEventQueue *q, PyObject *Py_UNUSED(ignored))
{
    if (q->ready_len && (q->heap_len == 0 || q->times[0] > q->time))
        return PyFloat_FromDouble(q->time);
    if (q->heap_len == 0)
        Py_RETURN_NONE;
    return PyFloat_FromDouble(q->times[0]);
}

static PyObject *
cq_pop(CEventQueue *q, PyObject *Py_UNUSED(ignored))
{
    PyObject *cb, *result;
    double time;

    if (q->ready_len && (q->heap_len == 0 || q->times[0] > q->time)) {
        cb = ready_pop(q);
        time = q->time;
    } else {
        if (q->heap_len == 0) {
            PyErr_SetString(PyExc_IndexError, "pop from an empty queue");
            return NULL;
        }
        cb = heap_pop_root(q, &time);
        if (time > q->time)
            q->time = time;
    }
    result = Py_BuildValue("(dN)", time, cb);
    return result;
}

/* ------------------------------------------------------------------ */
/* The drain loop                                                      */
/* ------------------------------------------------------------------ */

static int
emit_dispatch(CEventQueue *q, PyObject *tracer_active, double now)
{
    PyObject *tracer, *kwargs, *empty, *event, *emitted;

    tracer = PyObject_CallNoArgs(tracer_active);
    if (tracer == NULL)
        return -1;
    if (tracer == Py_None) {
        Py_DECREF(tracer);
        return 0;
    }
    if (SimDispatchClass == NULL) {
        PyObject *mod = PyImport_ImportModule("repro.trace.events");
        if (mod == NULL) {
            Py_DECREF(tracer);
            return -1;
        }
        SimDispatchClass = PyObject_GetAttrString(mod, "SimDispatch");
        Py_DECREF(mod);
        if (SimDispatchClass == NULL) {
            Py_DECREF(tracer);
            return -1;
        }
    }
    kwargs = Py_BuildValue("{s:d,s:n}", "time", now, "queue_len",
                           q->heap_len + q->ready_len);
    if (kwargs == NULL) {
        Py_DECREF(tracer);
        return -1;
    }
    empty = PyTuple_New(0);
    if (empty == NULL) {
        Py_DECREF(kwargs);
        Py_DECREF(tracer);
        return -1;
    }
    event = PyObject_Call(SimDispatchClass, empty, kwargs);
    Py_DECREF(empty);
    Py_DECREF(kwargs);
    if (event == NULL) {
        Py_DECREF(tracer);
        return -1;
    }
    emitted = PyObject_CallMethod(tracer, "emit", "O", event);
    Py_DECREF(event);
    Py_DECREF(tracer);
    if (emitted == NULL)
        return -1;
    Py_DECREF(emitted);
    return 0;
}

static int
set_sim_now(PyObject *sim, double now)
{
    PyObject *value = PyFloat_FromDouble(now);
    int result;
    if (value == NULL)
        return -1;
    result = PyObject_SetAttrString(sim, "_now", value);
    Py_DECREF(value);
    return result;
}

/* run(sim, until_or_None, tracer_active, sample) -> final time.
 *
 * The C twin of the batched pure-python Simulator.run loop: drain the
 * ready slab, then all heap entries at the next timestamp (advancing
 * sim._now and the cursor once per distinct time), until the queue is
 * empty or the next heap time exceeds `until`.  The caller (Simulator.run)
 * handles the until-already-in-the-past quirk and the final clock advance.
 * The sampling countdown lives on the simulator (`_trace_countdown`), so
 * it persists across run() calls exactly like the pure loop's.
 */
static PyObject *
cq_run(CEventQueue *q, PyObject *args)
{
    PyObject *sim, *until_obj, *tracer_active;
    long long sample;
    int bounded;
    double until = 0.0, now;
    long long countdown;
    PyObject *now_obj, *countdown_obj;

    if (!PyArg_ParseTuple(args, "OOOL:run", &sim, &until_obj, &tracer_active,
                          &sample))
        return NULL;
    bounded = until_obj != Py_None;
    if (bounded) {
        until = PyFloat_AsDouble(until_obj);
        if (until == -1.0 && PyErr_Occurred())
            return NULL;
    }
    now_obj = PyObject_GetAttrString(sim, "_now");
    if (now_obj == NULL)
        return NULL;
    now = PyFloat_AsDouble(now_obj);
    Py_DECREF(now_obj);
    if (now == -1.0 && PyErr_Occurred())
        return NULL;
    countdown_obj = PyObject_GetAttrString(sim, "_trace_countdown");
    if (countdown_obj == NULL)
        return NULL;
    countdown = PyLong_AsLongLong(countdown_obj);
    Py_DECREF(countdown_obj);
    if (countdown == -1 && PyErr_Occurred())
        return NULL;
    for (;;) {
        while (q->ready_len) {
            PyObject *cb = ready_pop(q);
            PyObject *res;
            if (sample && --countdown <= 0) {
                countdown = sample;
                if (emit_dispatch(q, tracer_active, now) < 0) {
                    Py_DECREF(cb);
                    goto error;
                }
            }
            res = PyObject_CallNoArgs(cb);
            Py_DECREF(cb);
            if (res == NULL)
                goto error;
            Py_DECREF(res);
        }
        if (q->heap_len == 0)
            break;
        {
            double t = q->times[0];
            if (bounded && t > until) {
                now = until;
                break;
            }
            now = t;
            q->time = t;
            if (set_sim_now(sim, t) < 0)
                goto error;
            for (;;) {
                double popped_time;
                PyObject *cb = heap_pop_root(q, &popped_time);
                PyObject *res;
                if (sample && --countdown <= 0) {
                    countdown = sample;
                    if (emit_dispatch(q, tracer_active, now) < 0) {
                        Py_DECREF(cb);
                        goto error;
                    }
                }
                res = PyObject_CallNoArgs(cb);
                Py_DECREF(cb);
                if (res == NULL)
                    goto error;
                Py_DECREF(res);
                if (q->heap_len == 0 || q->times[0] != t)
                    break;
            }
        }
    }
    countdown_obj = PyLong_FromLongLong(countdown);
    if (countdown_obj == NULL)
        return NULL;
    if (PyObject_SetAttrString(sim, "_trace_countdown", countdown_obj) < 0) {
        Py_DECREF(countdown_obj);
        return NULL;
    }
    Py_DECREF(countdown_obj);
    return PyFloat_FromDouble(now);

error:
    /* Like the pure loop, a callback exception leaves `_trace_countdown`
     * at its pre-run value. */
    return NULL;
}

/* ------------------------------------------------------------------ */

static PyObject *
cq_get_time(CEventQueue *q, void *Py_UNUSED(closure))
{
    return PyFloat_FromDouble(q->time);
}

static PyGetSetDef cq_getset[] = {
    {"time", (getter)cq_get_time, NULL,
     "The queue's time cursor (the time of the ready slab).", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyMethodDef cq_methods[] = {
    {"push", (PyCFunction)cq_push, METH_VARARGS,
     "push(time, callback): schedule callback at absolute time."},
    {"push_many", (PyCFunction)cq_push_many, METH_VARARGS,
     "push_many(time, callbacks): bulk-schedule callbacks at one time."},
    {"peek_time", (PyCFunction)cq_peek_time, METH_NOARGS,
     "Time of the next scheduled callback, or None."},
    {"pop", (PyCFunction)cq_pop, METH_NOARGS,
     "Remove and return (time, callback) for the next entry."},
    {"run", (PyCFunction)cq_run, METH_VARARGS,
     "run(sim, until, tracer_active, sample): drain the queue in C."},
    {NULL, NULL, 0, NULL},
};

static PySequenceMethods cq_as_sequence = {
    .sq_length = (lenfunc)cq_len,
};

static PyTypeObject CEventQueueType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._speedups.CEventQueue",
    .tp_doc = "Array-backed deterministic event queue (compiled backend).",
    .tp_basicsize = sizeof(CEventQueue),
    .tp_itemsize = 0,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_new = cq_new,
    .tp_dealloc = (destructor)cq_dealloc,
    .tp_traverse = (traverseproc)cq_traverse,
    .tp_clear = (inquiry)cq_clear,
    .tp_methods = cq_methods,
    .tp_getset = cq_getset,
    .tp_as_sequence = &cq_as_sequence,
};

static PyModuleDef speedups_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro._speedups",
    .m_doc = "Compiled fast paths for the simulation kernel.",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__speedups(void)
{
    PyObject *module;

    if (PyType_Ready(&CEventQueueType) < 0)
        return NULL;
    module = PyModule_Create(&speedups_module);
    if (module == NULL)
        return NULL;
    Py_INCREF(&CEventQueueType);
    if (PyModule_AddObject(module, "CEventQueue",
                           (PyObject *)&CEventQueueType) < 0) {
        Py_DECREF(&CEventQueueType);
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
