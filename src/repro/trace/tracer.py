"""The process-wide tracer.

One :class:`Tracer` exists per process (replaceable for tests via
:func:`set_tracer` or the :func:`tracing` context manager).  Subsystems
emit through the pattern::

    tracer = get_tracer()
    if tracer.enabled:
        tracer.emit(DiskRequestQueued(time=now, ...))

The ``enabled`` guard keeps hot paths allocation-free when no sink is
installed: a disabled tracer costs one attribute check per potential
event, which is what the E1 overhead benchmark holds the line on.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence

from repro.trace.events import TraceEvent
from repro.trace.sinks import TraceSink


#: Monotonic counter bumped whenever the process-wide tracer is swapped
#: or any tracer's sink set changes.  Hot paths cache a tracer reference
#: in a :class:`TracerHandle` and revalidate it with one integer compare
#: instead of calling :func:`get_tracer` on every potential event.
_generation = 0


def _bump_generation() -> None:
    global _generation
    _generation += 1


def tracer_generation() -> int:
    """The current tracer/sink-change generation (for cached handles)."""
    return _generation


class Tracer:
    """Stamps emission order onto events and fans them out to sinks."""

    __slots__ = ("_sinks", "_seq")

    def __init__(self, sinks: Optional[Sequence[TraceSink]] = None):
        self._sinks: List[TraceSink] = list(sinks or [])
        self._seq = 0

    @property
    def enabled(self) -> bool:
        """True when at least one sink will receive events."""
        return bool(self._sinks)

    @property
    def events_emitted(self) -> int:
        """Number of events emitted so far (the current seq stamp)."""
        return self._seq

    def emit(self, event: TraceEvent) -> None:
        """Stamp ``event`` and deliver it to every sink."""
        if not self._sinks:
            return
        self._seq += 1
        event.seq = self._seq
        for sink in self._sinks:
            sink.write(event)

    def add_sink(self, sink: TraceSink) -> TraceSink:
        """Attach a sink (enabling the tracer); returns it for chaining."""
        self._sinks.append(sink)
        _bump_generation()
        return sink

    def remove_sink(self, sink: TraceSink) -> None:
        """Detach a sink; the tracer disables itself when none remain."""
        self._sinks.remove(sink)
        _bump_generation()

    def close(self) -> None:
        """Close every sink and detach them all."""
        for sink in self._sinks:
            sink.close()
        self._sinks = []
        _bump_generation()


class TracerHandle:
    """A cached reference to the process-wide tracer for hot paths.

    ``get_tracer()`` plus the ``enabled`` property cost a function call
    and a descriptor lookup per potential event; a handle amortizes both
    to one integer compare.  The cache is revalidated against the module
    generation counter, so swapping tracers (``set_tracer``/``tracing``)
    or mutating any tracer's sink set mid-run is picked up on the very
    next event::

        _TRACER = TracerHandle()          # module level, next to imports

        tracer = _TRACER.active()         # in the hot path
        if tracer is not None:
            tracer.emit(...)
    """

    __slots__ = ("_tracer", "_generation")

    def __init__(self) -> None:
        self._tracer: Optional[Tracer] = None
        self._generation = -1

    def active(self) -> Optional[Tracer]:
        """The current tracer if it has at least one sink, else ``None``."""
        if self._generation != _generation:
            self._tracer = _tracer
            self._generation = _generation
        tracer = self._tracer
        return tracer if tracer._sinks else None


#: The process-wide tracer.  Disabled (no sinks) by default, so tracing
#: is a no-op unless a sink is installed.
_tracer = Tracer()


def get_tracer() -> Tracer:
    """The current process-wide tracer."""
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` process-wide; returns the previous one."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    _bump_generation()
    return previous


@contextmanager
def tracing(*sinks: TraceSink) -> Iterator[Tracer]:
    """Temporarily install a fresh tracer writing to ``sinks``.

    Restores the previous tracer (and closes the temporary one's sinks)
    on exit — the idiom tests and the CLI use::

        with tracing(RingBufferSink()) as tracer:
            run_workload(db, streams)
    """
    tracer = Tracer(sinks)
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
        tracer.close()
