"""Trace sinks — where emitted events go.

A sink is anything with ``write(event)`` and ``close()``.  Three are
provided: a bounded in-memory ring buffer (the default for interactive
inspection), a JSONL file writer (for offline analysis), and a null sink
(swallows everything; useful to measure emission overhead in isolation).
"""

from __future__ import annotations

import json
from collections import Counter, deque
from typing import IO, List, Optional, Union

from repro.trace.events import TraceEvent


class TraceSink:
    """Base sink: subclasses override :meth:`write`."""

    def write(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (default: nothing to do)."""


class NullSink(TraceSink):
    """Accepts and discards every event."""

    def write(self, event: TraceEvent) -> None:
        pass


class RingBufferSink(TraceSink):
    """Keeps the most recent ``capacity`` events in memory.

    ``capacity=None`` keeps everything (an unbounded collector, handy in
    tests and short runs).  ``total_seen`` counts all writes, including
    those that have since been pushed out of the buffer.
    """

    def __init__(self, capacity: Optional[int] = 10_000):
        if capacity is not None and capacity < 1:
            raise ValueError(f"ring buffer capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._buffer: deque = deque(maxlen=capacity)
        self.total_seen = 0
        self.counts_by_category: Counter = Counter()

    def write(self, event: TraceEvent) -> None:
        self._buffer.append(event)
        self.total_seen += 1
        self.counts_by_category[event.category] += 1

    def events(self) -> List[TraceEvent]:
        """Snapshot of the retained events, oldest first."""
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)


class JsonlSink(TraceSink):
    """Writes one JSON object per event to a file or open stream."""

    def __init__(self, target: Union[str, IO[str]]):
        if isinstance(target, str):
            self._file: IO[str] = open(target, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False
        self.events_written = 0

    def write(self, event: TraceEvent) -> None:
        self._file.write(json.dumps(event.to_dict()) + "\n")
        self.events_written += 1

    def close(self) -> None:
        self._file.flush()
        if self._owns_file:
            self._file.close()
