"""repro.trace — structured event tracing across the whole stack.

Every layer (sim kernel, disk, bufferpool, sharing manager, executor)
emits typed events through one process-wide :class:`Tracer`.  With no
sink installed the tracer is disabled and every call site short-circuits
on ``tracer.enabled`` — tracing off is a no-op.

Typical use::

    from repro.trace import RingBufferSink, tracing

    sink = RingBufferSink(capacity=50_000)
    with tracing(sink):
        run_workload(db, streams)
    events = sink.events()

or from the command line: ``python -m repro trace e4 --out run.jsonl``.
"""

from repro.trace.events import (
    BufferEvict,
    BufferFix,
    BufferRelease,
    DiskRequestComplete,
    DiskRequestQueued,
    DiskServiceStart,
    FairnessCapTripped,
    QueryFinished,
    QueryStarted,
    Regrouped,
    ScanDeregistered,
    ScanRegistered,
    ServiceAbandoned,
    ServiceAdmitted,
    ServiceArrival,
    ServiceCompleted,
    ServiceMplChanged,
    SimDispatch,
    ThrottleEvaluated,
    TraceEvent,
)
from repro.trace.sinks import JsonlSink, NullSink, RingBufferSink, TraceSink
from repro.trace.summary import attribute_by_scan, render_summary, summarize
from repro.trace.tracer import (
    Tracer,
    TracerHandle,
    get_tracer,
    set_tracer,
    tracer_generation,
    tracing,
)

__all__ = [
    "BufferEvict",
    "BufferFix",
    "BufferRelease",
    "DiskRequestComplete",
    "DiskRequestQueued",
    "DiskServiceStart",
    "FairnessCapTripped",
    "JsonlSink",
    "NullSink",
    "QueryFinished",
    "QueryStarted",
    "Regrouped",
    "RingBufferSink",
    "ScanDeregistered",
    "ScanRegistered",
    "ServiceAbandoned",
    "ServiceAdmitted",
    "ServiceArrival",
    "ServiceCompleted",
    "ServiceMplChanged",
    "SimDispatch",
    "ThrottleEvaluated",
    "TraceEvent",
    "TraceSink",
    "Tracer",
    "TracerHandle",
    "attribute_by_scan",
    "get_tracer",
    "render_summary",
    "set_tracer",
    "summarize",
    "tracer_generation",
    "tracing",
]
