"""Typed trace events emitted by every layer of the stack.

Each event is a small dataclass carrying the simulated ``time`` it was
emitted at plus layer-specific payload fields.  Class-level ``category``
(which subsystem) and ``kind`` (which transition) identify the event
without string fields per instance; the :class:`~repro.trace.tracer.Tracer`
stamps a process-wide ``seq`` number on emission so sinks can recover the
exact emission order even when simulated timestamps tie.

Events serialize to flat dictionaries (:meth:`TraceEvent.to_dict`) so the
JSONL sink and the CLI summary need no per-type knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Optional, Tuple


@dataclass
class TraceEvent:
    """Base of all trace events: a timestamped, categorized record."""

    time: float

    #: Subsystem that emitted the event (``sim``/``disk``/``buffer``/...).
    category = "generic"
    #: Transition within the subsystem (``dispatch``/``queued``/...).
    kind = "event"
    #: Emission order stamp, assigned by the tracer (0 = never emitted).
    seq = 0

    def to_dict(self) -> Dict[str, object]:
        """Flat JSON-serializable view of the event."""
        record: Dict[str, object] = {
            "seq": self.seq,
            "category": self.category,
            "kind": self.kind,
        }
        for spec in fields(self):
            record[spec.name] = getattr(self, spec.name)
        return record


# ----------------------------------------------------------------------
# Simulation kernel
# ----------------------------------------------------------------------


@dataclass
class SimDispatch(TraceEvent):
    """One event-loop callback dispatched at ``time``."""

    queue_len: int = 0

    category = "sim"
    kind = "dispatch"


# ----------------------------------------------------------------------
# Disk device
# ----------------------------------------------------------------------


@dataclass
class DiskRequestQueued(TraceEvent):
    """A transfer entered the device queue."""

    start_page: int = 0
    n_pages: int = 0
    is_write: bool = False
    queue_len: int = 0

    category = "disk"
    kind = "queued"


@dataclass
class DiskServiceStart(TraceEvent):
    """The arm picked a request up; seek/transfer components resolved."""

    start_page: int = 0
    n_pages: int = 0
    is_write: bool = False
    sequential: bool = False
    seek_time: float = 0.0
    transfer_time: float = 0.0
    wait_time: float = 0.0

    category = "disk"
    kind = "service_start"


@dataclass
class DiskRequestComplete(TraceEvent):
    """A transfer finished; ``total_time`` spans submit to completion."""

    start_page: int = 0
    n_pages: int = 0
    is_write: bool = False
    service_time: float = 0.0
    total_time: float = 0.0

    category = "disk"
    kind = "complete"


# ----------------------------------------------------------------------
# Bufferpool
# ----------------------------------------------------------------------


@dataclass
class BufferFix(TraceEvent):
    """A fix classified by its first resolution path."""

    space_id: int = 0
    page_no: int = 0
    outcome: str = "hit"  # hit | miss | inflight_wait

    category = "buffer"
    kind = "fix"


@dataclass
class BufferRelease(TraceEvent):
    """An unfix carrying the release-priority transition."""

    space_id: int = 0
    page_no: int = 0
    priority: int = 0

    category = "buffer"
    kind = "release"


@dataclass
class BufferEvict(TraceEvent):
    """A victim left the pool."""

    space_id: int = 0
    page_no: int = 0
    written_back: bool = False

    category = "buffer"
    kind = "evict"


# ----------------------------------------------------------------------
# Scan sharing manager
# ----------------------------------------------------------------------


@dataclass
class ScanRegistered(TraceEvent):
    """A scan registered; includes the placement decision it received."""

    scan_id: int = 0
    table: str = ""
    first_page: int = 0
    last_page: int = 0
    start_page: int = 0
    joined_scan_id: Optional[int] = None
    joined_last_finished: bool = False

    category = "manager"
    kind = "register"


@dataclass
class ScanDeregistered(TraceEvent):
    """A scan finished and left the manager."""

    scan_id: int = 0
    table: str = ""
    pages_scanned: int = 0
    accumulated_delay: float = 0.0

    category = "manager"
    kind = "deregister"


@dataclass
class Regrouped(TraceEvent):
    """Groups were re-formed across all tables."""

    n_scans: int = 0
    n_groups: int = 0
    forced: bool = False
    group_sizes: Tuple[int, ...] = ()

    category = "manager"
    kind = "regroup"

    def to_dict(self) -> Dict[str, object]:
        record = super().to_dict()
        record["group_sizes"] = list(self.group_sizes)
        return record


@dataclass
class ThrottleEvaluated(TraceEvent):
    """One throttle evaluation with everything that went into it."""

    scan_id: int = 0
    group_id: int = -1
    distance: int = 0
    threshold: float = 0.0
    allowance: float = 0.0
    wait: float = 0.0
    capped_by_fairness: bool = False

    category = "manager"
    kind = "throttle"


@dataclass
class FairnessCapTripped(TraceEvent):
    """A scan hit the 80 % rule and is permanently exempt from now on."""

    scan_id: int = 0
    accumulated_delay: float = 0.0
    estimated_total_time: float = 0.0

    category = "manager"
    kind = "fairness_cap"


@dataclass
class ScanAborted(TraceEvent):
    """A scan died without finishing and was torn out of its group."""

    scan_id: int = 0
    table: str = ""
    pages_scanned: int = 0

    category = "manager"
    kind = "abort"


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------


@dataclass
class FaultScanKilled(TraceEvent):
    """The injector killed a scan mid-flight."""

    scan_id: int = 0
    target: str = ""
    pages_scanned: int = 0

    category = "fault"
    kind = "scan_kill"


@dataclass
class FaultDiskDelay(TraceEvent):
    """A disk service time was stretched by an active delay window."""

    start_page: int = 0
    factor: float = 1.0

    category = "fault"
    kind = "disk_delay"


@dataclass
class FaultDiskError(TraceEvent):
    """A disk request failed transiently and will be retried."""

    start_page: int = 0
    n_pages: int = 0
    retries: int = 0
    backoff: float = 0.0

    category = "fault"
    kind = "disk_error"


@dataclass
class FaultPoolPressure(TraceEvent):
    """A pressure window reserved (or released) bufferpool frames."""

    reserved: int = 0
    released: int = 0
    effective_capacity: int = 0

    category = "fault"
    kind = "pool_pressure"


@dataclass
class InvariantChecked(TraceEvent):
    """One full pass of the sharing-invariant checker."""

    n_scans: int = 0
    n_groups: int = 0
    strict_order: bool = False

    category = "fault"
    kind = "invariant"


# ----------------------------------------------------------------------
# Query service (admission control)
# ----------------------------------------------------------------------


@dataclass
class ServiceArrival(TraceEvent):
    """A request arrived at a service class and entered its queue."""

    request_id: int = 0
    service_class: str = ""
    query: str = ""
    queue_len: int = 0

    category = "service"
    kind = "arrival"


@dataclass
class ServiceAdmitted(TraceEvent):
    """A queued request was admitted and began executing."""

    request_id: int = 0
    service_class: str = ""
    waited: float = 0.0
    running: int = 0

    category = "service"
    kind = "admit"


@dataclass
class ServiceCompleted(TraceEvent):
    """An admitted request finished; ``latency`` spans arrival to finish."""

    request_id: int = 0
    service_class: str = ""
    latency: float = 0.0
    waited: float = 0.0

    category = "service"
    kind = "complete"


@dataclass
class ServiceAbandoned(TraceEvent):
    """A queued request ran out of patience and left without service."""

    request_id: int = 0
    service_class: str = ""
    waited: float = 0.0

    category = "service"
    kind = "abandon"


@dataclass
class ServiceMplChanged(TraceEvent):
    """The admission controller moved the MPL bound."""

    old_mpl: int = 0
    new_mpl: int = 0
    miss_rate: float = 0.0
    pool_pressure: float = 0.0
    mean_speed: float = 0.0

    category = "service"
    kind = "mpl"


# ----------------------------------------------------------------------
# Executor
# ----------------------------------------------------------------------


@dataclass
class QueryStarted(TraceEvent):
    """A query began executing on a stream."""

    stream_id: int = 0
    query: str = ""

    category = "query"
    kind = "start"


@dataclass
class QueryFinished(TraceEvent):
    """A query completed; ``elapsed`` is its simulated span."""

    stream_id: int = 0
    query: str = ""
    elapsed: float = 0.0
    pages_scanned: int = 0
    throttle_seconds: float = 0.0

    category = "query"
    kind = "finish"
