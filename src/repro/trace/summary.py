"""Rendering a captured trace as a human-readable summary."""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence

from repro.trace.events import TraceEvent


def summarize(events: Sequence[TraceEvent]) -> Dict[str, object]:
    """Aggregate a trace into per-(category, kind) counts and time span."""
    counts: Counter = Counter()
    first_time = last_time = None
    for event in events:
        counts[(event.category, event.kind)] += 1
        if first_time is None or event.time < first_time:
            first_time = event.time
        if last_time is None or event.time > last_time:
            last_time = event.time
    return {
        "n_events": len(events),
        "first_time": first_time,
        "last_time": last_time,
        "counts": {
            f"{category}.{kind}": count
            for (category, kind), count in sorted(counts.items())
        },
    }


def attribute_by_scan(events: Sequence[TraceEvent]) -> Dict[int, Dict[str, object]]:
    """Group manager-lifecycle events by scan id.

    Interleaved multi-stream traces mix many scans' register/throttle/
    deregister events; this pulls each scan's thread back out.  Returns
    ``scan_id -> record`` where each record carries the table, the
    registration/end times, how the scan ended (``"deregister"``,
    ``"abort"``, or ``None`` while still live), the pages it reported,
    the group it joined at registration (if any), and its throttle
    activity (evaluation count + summed inserted wait).
    """
    records: Dict[int, Dict[str, object]] = {}

    def record_of(scan_id: int) -> Dict[str, object]:
        return records.setdefault(scan_id, {
            "table": None,
            "registered_at": None,
            "ended_at": None,
            "end_kind": None,
            "pages_scanned": 0,
            "joined_scan_id": None,
            "throttle_evaluations": 0,
            "throttle_wait": 0.0,
        })

    for event in events:
        if event.category != "manager":
            continue
        scan_id = getattr(event, "scan_id", None)
        if scan_id is None:
            continue  # regroup events span all scans
        record = record_of(scan_id)
        if event.kind == "register":
            record["table"] = event.table
            record["registered_at"] = event.time
            record["joined_scan_id"] = event.joined_scan_id
        elif event.kind in ("deregister", "abort"):
            record["ended_at"] = event.time
            record["end_kind"] = event.kind
            record["pages_scanned"] = event.pages_scanned
            if event.kind == "deregister":
                record["table"] = event.table or record["table"]
        elif event.kind == "throttle":
            record["throttle_evaluations"] = (
                record["throttle_evaluations"] + 1
            )
            record["throttle_wait"] = record["throttle_wait"] + event.wait
    return records


def render_summary(events: Sequence[TraceEvent], total_seen: int = 0) -> str:
    """A table of event counts by category.kind, plus the time span."""
    from repro.metrics.report import format_table

    summary = summarize(events)
    rows: List[List[object]] = [
        [name, count] for name, count in summary["counts"].items()
    ]
    table = format_table(["event", "count"], rows) if rows else "(no events)"
    span = ""
    if summary["first_time"] is not None:
        span = (
            f"\n{summary['n_events']} events over simulated "
            f"[{summary['first_time']:.6f}, {summary['last_time']:.6f}] s"
        )
        if total_seen > summary["n_events"]:
            span += f" (ring buffer retained {summary['n_events']}/{total_seen})"
    return table + span
