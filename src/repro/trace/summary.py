"""Rendering a captured trace as a human-readable summary."""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence

from repro.trace.events import TraceEvent


def summarize(events: Sequence[TraceEvent]) -> Dict[str, object]:
    """Aggregate a trace into per-(category, kind) counts and time span."""
    counts: Counter = Counter()
    first_time = last_time = None
    for event in events:
        counts[(event.category, event.kind)] += 1
        if first_time is None or event.time < first_time:
            first_time = event.time
        if last_time is None or event.time > last_time:
            last_time = event.time
    return {
        "n_events": len(events),
        "first_time": first_time,
        "last_time": last_time,
        "counts": {
            f"{category}.{kind}": count
            for (category, kind), count in sorted(counts.items())
        },
    }


def render_summary(events: Sequence[TraceEvent], total_seen: int = 0) -> str:
    """A table of event counts by category.kind, plus the time span."""
    from repro.metrics.report import format_table

    summary = summarize(events)
    rows: List[List[object]] = [
        [name, count] for name, count in summary["counts"].items()
    ]
    table = format_table(["event", "count"], rows) if rows else "(no events)"
    span = ""
    if summary["first_time"] is not None:
        span = (
            f"\n{summary['n_events']} events over simulated "
            f"[{summary['first_time']:.6f}, {summary['last_time']:.6f}] s"
        )
        if total_seen > summary["n_events"]:
            span += f" (ring buffer retained {summary['n_events']}/{total_seen})"
    return table + span
