"""Tunables for the scan sharing manager.

Defaults follow the paper's prototype: location updates every 16 pages
(one extent), a leader–trailer drift threshold of two prefetch extents,
and the 80 % accumulated-slowdown fairness cap.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SharingConfig:
    """All knobs of the sharing mechanism.

    Attributes:
        enabled: Master switch.  Off = vanilla engine (the paper's "Base").
        placement_enabled: New scans may start at an ongoing scan's
            position (and wrap) instead of at their range start.
        grouping_enabled: Form scan groups; prerequisite for throttling
            and prioritization.
        throttling_enabled: Insert waits into group leaders that drift
            too far ahead.
        prioritization_enabled: Leaders/trailers release pages with
            HIGH/LOW bufferpool priorities.
        update_interval_pages: Scan operators call the manager every this
            many pages (the prototype used 16 × 32 KiB pages).
        distance_threshold_extents: Throttle the leader once its distance
            to the trailer exceeds this many prefetch extents.
        target_distance_extents: Throttling aims to shrink the gap back
            to this many extents.
        max_wait_per_update: Upper bound (seconds) on a single inserted
            wait, so one update call never stalls a scan pathologically.
        slowdown_cap_fraction: Once a scan's accumulated inserted waiting
            exceeds this fraction of its estimated total scan time it is
            never throttled again (the paper's 80 % fairness rule).
        min_share_pages: Placement joins an ongoing scan only if the
            estimated number of co-read pages is at least this.
        last_finished_retention_wraps: A finished scan's end position is
            kept as a placement hint only until this many bufferpool
            turnovers of scan traffic (pages reported via location
            updates, in units of the pool capacity) have streamed past.
            Beyond that the pages the finisher left behind are certainly
            evicted, and placing a late arrival behind the cold position
            would only delay its sequential start.  The default is
            deliberately conservative — several dozen turnovers — so the
            hint is pruned only when it is overwhelmingly certain to be
            cold.
        regroup_interval: Seconds between group re-formations.
        speed_smoothing: Weight of the newest speed sample in the
            exponential moving average (1.0 = use only the latest
            interval, like the prototype).
        pool_budget_fraction: Fraction of the bufferpool the combined
            group extents may occupy during group formation.
    """

    enabled: bool = True
    placement_enabled: bool = True
    grouping_enabled: bool = True
    throttling_enabled: bool = True
    prioritization_enabled: bool = True
    update_interval_pages: int = 16
    distance_threshold_extents: float = 2.0
    target_distance_extents: float = 1.0
    max_wait_per_update: float = 0.5
    slowdown_cap_fraction: float = 0.8
    min_share_pages: int = 16
    last_finished_retention_wraps: float = 64.0
    regroup_interval: float = 0.25
    speed_smoothing: float = 0.7
    pool_budget_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.update_interval_pages < 1:
            raise ValueError(
                f"update_interval_pages must be >= 1, got {self.update_interval_pages}"
            )
        if self.distance_threshold_extents < self.target_distance_extents:
            raise ValueError(
                "distance_threshold_extents must be >= target_distance_extents "
                f"({self.distance_threshold_extents} < {self.target_distance_extents})"
            )
        if not 0.0 <= self.slowdown_cap_fraction <= 1.0:
            raise ValueError(
                f"slowdown_cap_fraction must be in [0, 1], got "
                f"{self.slowdown_cap_fraction}"
            )
        if self.max_wait_per_update < 0:
            raise ValueError(
                f"max_wait_per_update must be >= 0, got {self.max_wait_per_update}"
            )
        if not 0.0 < self.speed_smoothing <= 1.0:
            raise ValueError(
                f"speed_smoothing must be in (0, 1], got {self.speed_smoothing}"
            )
        if self.last_finished_retention_wraps <= 0:
            raise ValueError(
                f"last_finished_retention_wraps must be > 0, got "
                f"{self.last_finished_retention_wraps}"
            )
        if not 0.0 < self.pool_budget_fraction <= 1.0:
            raise ValueError(
                f"pool_budget_fraction must be in (0, 1], got "
                f"{self.pool_budget_fraction}"
            )

    def disabled(self) -> "SharingConfig":
        """A copy with the master switch off (the baseline configuration)."""
        return replace(self, enabled=False)

    def with_(self, **changes) -> "SharingConfig":
        """A modified copy (thin wrapper over :func:`dataclasses.replace`)."""
        return replace(self, **changes)


#: The paper's baseline: plain engine, no sharing machinery active.
BASELINE = SharingConfig(enabled=False)

#: The paper's full mechanism with prototype defaults.
FULL_SHARING = SharingConfig()
