"""Start-location selection for a new shared scan.

The overall objective is to maximize bufferpool sharing: a new scan may
begin at the current position of an ongoing scan (then wrap around its
range), provided the expected number of co-read pages justifies it.  The
expected sharing with a candidate is estimated from (1) how much of the
candidate's *remaining* range overlaps the pages the new scan still has
ahead of it before wrapping, and (2) how compatible the two speeds are —
scans of very different speeds drift apart and stop sharing quickly.

When no scan is active on the table, the new scan starts at the final
position of the most recently finished scan, reusing whatever pages that
scan left behind in the pool (the paper's special case).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.config import SharingConfig
from repro.core.scan_state import ScanDescriptor, ScanState


@dataclass(frozen=True)
class PlacementDecision:
    """Where a new scan should start and why."""

    start_page: int
    joined_scan_id: Optional[int] = None
    joined_last_finished: bool = False
    expected_shared_pages: float = 0.0

    @property
    def joined(self) -> bool:
        """Whether the scan starts at another scan's position."""
        return self.joined_scan_id is not None or self.joined_last_finished


def expected_shared_pages(descriptor: ScanDescriptor, candidate: ScanState) -> float:
    """Estimate pages the new scan would co-read when joining ``candidate``.

    Zero when the candidate's position lies outside the new scan's range
    (joining there is impossible — the paper's precondition).  Otherwise
    the sharing horizon is bounded by the candidate's remaining pages and
    by the pages the new scan covers before wrapping, discounted by the
    speed-compatibility ratio.
    """
    # Degenerate candidates first: a zero-length range would make the
    # position modulus divide by zero, and a scan predicted (or declared)
    # to read nothing shares nothing.  Likewise a new scan estimated at
    # zero pages gains nothing from joining anyone.
    if candidate.range_pages <= 0 or descriptor.range_pages <= 0:
        return 0.0
    if candidate.descriptor.estimated_pages == 0 or descriptor.estimated_pages == 0:
        return 0.0
    position = candidate.position
    if not descriptor.first_page <= position <= descriptor.last_page:
        return 0.0
    if candidate.finished:
        return 0.0
    phase_one_pages = descriptor.last_page - position + 1
    remaining = candidate.remaining_pages
    # When the optimizer predicted a short scan, the candidate stops
    # after estimated_pages even though its declared range is longer.
    estimated = candidate.descriptor.estimated_pages
    if estimated is not None:
        remaining = min(remaining, max(0, estimated - candidate.pages_scanned))
    if remaining <= 0:
        return 0.0
    horizon = min(remaining, phase_one_pages)
    if horizon <= 0:
        return 0.0
    new_speed = descriptor.estimated_speed
    candidate_speed = candidate.speed
    # A zero/negative speed shares nothing; a non-finite one (a stalled
    # candidate whose smoothed speed overflowed, or a NaN from upstream)
    # must yield 0.0 rather than propagate inf/nan into the score.  The
    # raw speeds are checked, not min/max of them: min(x, nan) is x, so a
    # NaN would otherwise slip through as a perfect speed match.
    if not math.isfinite(new_speed) or not math.isfinite(candidate_speed):
        return 0.0
    if new_speed <= 0 or candidate_speed <= 0:
        return 0.0
    slower = min(new_speed, candidate_speed)
    faster = max(new_speed, candidate_speed)
    return horizon * (slower / faster)


def align_to_extent(page: int, first_page: int, extent_size: int) -> int:
    """Snap a start page down to an extent boundary, clamped to the range."""
    if extent_size <= 0:
        return max(page, first_page)
    aligned = (page // extent_size) * extent_size
    return max(aligned, first_page)


def choose_start(
    descriptor: ScanDescriptor,
    candidates: Iterable[ScanState],
    config: SharingConfig,
    extent_size: int,
    last_finished_position: Optional[int] = None,
    leftover_pages: int = 0,
    table_pages: Optional[int] = None,
) -> PlacementDecision:
    """Pick the new scan's starting page.

    Evaluates every ongoing scan on the table as a join target, falls back
    to the last finished scan's end position, and otherwise starts at the
    range's first page.

    ``last_finished_position`` is the last page the most recently finished
    scan *read*; ``leftover_pages`` estimates how many of its trailing
    pages are still in the bufferpool, so the new scan starts that many
    pages earlier and turns them into hits (the paper's "technically, we
    should start several pages before the last scan's location").
    ``table_pages`` (when known) guards extent alignment against tables
    smaller than a single extent.
    """
    default = PlacementDecision(start_page=descriptor.first_page)
    if not config.enabled or not config.placement_enabled:
        return default
    if table_pages is not None and extent_size > table_pages:
        # A degenerate table smaller than one extent would snap every
        # join position back to page zero, silently defeating placement.
        # Treat alignment as a no-op instead: joins land on the exact
        # candidate position.
        extent_size = 0

    best_candidate: Optional[ScanState] = None
    best_score = 0.0
    for candidate in candidates:
        score = expected_shared_pages(descriptor, candidate)
        if score > best_score:
            best_score = score
            best_candidate = candidate

    if best_candidate is not None and best_score >= config.min_share_pages:
        start = align_to_extent(
            best_candidate.position, descriptor.first_page, extent_size
        )
        return PlacementDecision(
            start_page=start,
            joined_scan_id=best_candidate.scan_id,
            expected_shared_pages=best_score,
        )

    if best_candidate is None and last_finished_position is not None:
        backed_off = last_finished_position - max(leftover_pages - 1, 0)
        if descriptor.first_page <= backed_off <= descriptor.last_page:
            start = align_to_extent(backed_off, descriptor.first_page, extent_size)
            if start != descriptor.first_page:
                return PlacementDecision(start_page=start, joined_last_finished=True)

    return default
