"""Leader throttling — drift control inside a scan group.

The group leader is the only scan ever slowed down.  When its distance to
the trailer exceeds the threshold (two prefetch extents by default), a
wait sized from the trailer's *measured* speed is inserted into the
leader's next location-update call, long enough for the gap to shrink
back to the target distance.  The wait simply makes the update call
appear slow to the scan, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SharingConfig
from repro.core.grouping import ScanGroup
from repro.core.scan_state import ScanState

#: Floor for speed values used as divisors.
_MIN_SPEED = 1e-9


@dataclass(frozen=True)
class ThrottleDecision:
    """Outcome of one throttle evaluation.

    Carries the inputs the decision was made from (``distance``,
    ``threshold``, ``allowance``) so the tracing layer can record every
    evaluation without re-deriving them.
    """

    wait: float
    capped_by_fairness: bool
    distance: int = 0
    threshold: float = 0.0
    allowance: float = 0.0

    @property
    def throttled(self) -> bool:
        """Whether any wait was inserted."""
        return self.wait > 0.0


def evaluate_throttle(
    scan: ScanState,
    group: ScanGroup,
    config: SharingConfig,
    extent_size: int,
) -> ThrottleDecision:
    """Decide how long ``scan`` should wait at this location update.

    Only a group leader with at least one follower is ever throttled.
    The fairness cap (the paper's 80 % rule) permanently exempts a scan
    whose accumulated delay has consumed its share of estimated scan
    time.
    """
    no_wait = ThrottleDecision(wait=0.0, capped_by_fairness=False)
    if not config.throttling_enabled or not config.enabled:
        return no_wait
    if scan.throttle_exempt or scan.finished:
        return no_wait
    if group.size <= 1 or not scan.is_leader:
        return no_wait

    # Anchor the decision on the rear-most member still participating
    # in throttling.  A finished member no longer needs the leader held
    # back, and a fairness-exempted one is deliberately running free
    # (e.g. an exempted fast scan that wrapped around and now trails
    # the group circularly) — slowing others to match it is backwards.
    anchors = [
        member
        for member in group.members
        if member.scan_id != scan.scan_id
        and not member.finished
        and not member.throttle_exempt
    ]
    if not anchors:
        return no_wait
    trailer = anchors[0]
    # The leader-trailer gap is measured circularly in scan direction
    # (trailer chasing leader): a leader that has wrapped past the range
    # end sits at a *smaller* linear position than its trailer, and a
    # linear difference would go negative and silently disable
    # throttling for the rest of the scan.
    circle = group.table_pages if group.table_pages > 0 else (
        max(scan.descriptor.last_page, trailer.descriptor.last_page) + 1
    )
    distance = trailer.forward_distance_to(scan, circle)
    threshold = config.distance_threshold_extents * extent_size
    if distance <= threshold:
        return ThrottleDecision(
            wait=0.0, capped_by_fairness=False,
            distance=distance, threshold=threshold,
        )

    target = config.target_distance_extents * extent_size
    trailer_speed = max(trailer.speed, _MIN_SPEED)
    wait = (distance - target) / trailer_speed
    wait = min(wait, config.max_wait_per_update)

    # Fairness: never delay a scan beyond the cap fraction of its
    # estimated total time.
    allowance = (
        config.slowdown_cap_fraction * scan.estimated_total_time
        - scan.accumulated_delay
    )
    if allowance <= 0.0:
        scan.throttle_exempt = True
        return ThrottleDecision(
            wait=0.0, capped_by_fairness=True,
            distance=distance, threshold=threshold, allowance=allowance,
        )
    capped = wait > allowance
    if capped:
        wait = allowance
        scan.throttle_exempt = True
    return ThrottleDecision(
        wait=wait, capped_by_fairness=capped,
        distance=distance, threshold=threshold, allowance=allowance,
    )
