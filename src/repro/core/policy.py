"""The pluggable scan-sharing policy interface.

The paper's grouping+throttling mechanism is one point in the
scan-sharing design space.  To compare it against rivals (cooperative
attach/elevator scans, predictive buffer management) every strategy
implements :class:`SharingPolicy` — exactly the calls the scan operator
and the harness make:

* :meth:`SharingPolicy.start_scan` — register, get a start location;
* :meth:`SharingPolicy.update_location` — report progress, possibly
  receive an inserted throttle wait (0.0 for non-throttling policies);
* :meth:`SharingPolicy.page_priority` — release priority for the
  current page;
* :meth:`SharingPolicy.end_scan` / :meth:`SharingPolicy.abort_scan` —
  deregister (cleanly, or after a mid-scan death).

A policy never touches the bufferpool or the disk; it only observes scan
progress and answers placement/wait/priority questions.  Policies are
constructed by :func:`make_sharing_policy` from the registry names in
:data:`SHARING_POLICY_NAMES`, which is the value space of the
``sharing_policy`` axis threaded through :class:`~repro.engine.database.
SystemConfig` and ``ExperimentSettings``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.buffer.page import Priority
from repro.core.config import SharingConfig
from repro.core.placement import PlacementDecision
from repro.core.scan_state import ScanDescriptor, ScanState
from repro.sim.kernel import Simulator
from repro.storage.catalog import Catalog
from repro.storage.table import Table
from repro.trace.events import ScanAborted, ScanDeregistered, ScanRegistered
from repro.trace.tracer import get_tracer

#: Registry names accepted by :func:`make_sharing_policy` (and by the
#: ``sharing_policy`` fields of SystemConfig / ExperimentSettings).
SHARING_POLICY_NAMES = ("grouping-throttling", "cooperative", "pbm")


@dataclass
class SharingStats:
    """Counters exposed for tests and experiment reports.

    Shared by every policy; counters a policy has no concept of (e.g.
    ``throttle_waits`` under ``cooperative``) simply stay zero.
    """

    scans_started: int = 0
    scans_finished: int = 0
    scans_aborted: int = 0
    scans_joined_ongoing: int = 0
    scans_joined_last_finished: int = 0
    regroups: int = 0
    throttle_waits: int = 0
    total_throttle_time: float = 0.0
    fairness_cap_hits: int = 0
    # (time, number_of_groups) samples taken at each regroup.
    group_count_trace: List[Tuple[float, int]] = field(default_factory=list)


class SharingPolicy(ABC):
    """Abstract scan-sharing strategy: placement, pacing, priorities."""

    #: Registry name; subclasses override (one of SHARING_POLICY_NAMES).
    policy_name = "abstract"

    def __init__(
        self,
        sim: Simulator,
        catalog: Catalog,
        pool_capacity: int,
        config: Optional[SharingConfig] = None,
    ):
        self.sim = sim
        self.catalog = catalog
        self.pool_capacity = pool_capacity
        self.config = config or SharingConfig()
        self.stats = SharingStats()
        self._states: Dict[int, ScanState] = {}
        self._next_scan_id = 0
        # Set by the fault injector: called after every structural change
        # so the invariant checker sees each one.  None (the default)
        # costs one attribute test per change.
        self.invariant_hook: Optional[Callable[[], None]] = None
        # The push prefetch pipeline, when the database enables it; the
        # policy notifies it of every scan exit so consumer sets never
        # outlive their scans.
        self._push = None

    # ------------------------------------------------------------------
    # The policy interface (what scans and the harness call)
    # ------------------------------------------------------------------

    @abstractmethod
    def start_scan(self, descriptor: ScanDescriptor) -> ScanState:
        """Register a new scan and decide where it starts."""

    @abstractmethod
    def update_location(self, scan_id: int, pages_scanned: int) -> float:
        """Record scan progress; returns seconds of inserted wait.

        ``pages_scanned`` is the cumulative page count since scan start
        (monotonically non-decreasing).  Non-throttling policies always
        return 0.0.
        """

    @abstractmethod
    def page_priority(self, scan_id: int) -> Priority:
        """Replacement priority for pages this scan releases right now."""

    @abstractmethod
    def end_scan(self, scan_id: int) -> None:
        """Deregister a finished scan."""

    @abstractmethod
    def abort_scan(self, scan_id: int) -> None:
        """Deregister a scan that died without finishing."""

    # ------------------------------------------------------------------
    # Introspection (sensible defaults for non-grouping policies)
    # ------------------------------------------------------------------

    @property
    def active_scan_count(self) -> int:
        """Number of currently registered scans."""
        return len(self._states)

    def active_scans(self) -> List[ScanState]:
        """Snapshot of registered scan states."""
        return list(self._states.values())

    def scan_state(self, scan_id: int) -> ScanState:
        """State of a registered scan (raises if unknown/finished)."""
        return self._state(scan_id)

    def group_of(self, scan_id: int):
        """The group a scan belongs to — None for non-grouping policies."""
        self._state(scan_id)  # preserve the unknown-scan error contract
        return None

    def last_finished_position(self, table_name: str) -> Optional[int]:
        """Final position of the last finished scan (placement policies)."""
        return None

    # ------------------------------------------------------------------
    # Push pipeline hooks (defaults: every scan drives its own push)
    # ------------------------------------------------------------------

    def bind_push(self, pipeline) -> None:
        """Wire the push prefetch pipeline in (called by Database.open)."""
        self._push = pipeline

    @property
    def push_pipeline(self):
        """The bound push pipeline, or None when push is disabled."""
        return self._push

    def push_consumer_set(self, scan_id: int) -> List[int]:
        """Scan ids to register as consumers of extents this scan pushes.

        Grouping policies return the whole group; cooperative returns
        the scan plus its attached followers.  The default — a set of
        one — turns the pipeline into plain per-scan read-ahead.
        """
        self._state(scan_id)  # preserve the unknown-scan error contract
        return [scan_id]

    def is_push_driver(self, scan_id: int) -> bool:
        """Whether this scan issues pushes for its consumer set.

        Exactly one member of every consumer set answers True (the group
        leader / attach target); the rest consume without re-requesting.
        """
        self._state(scan_id)
        return True

    # ------------------------------------------------------------------
    # Shared bookkeeping for concrete policies
    # ------------------------------------------------------------------

    def _state(self, scan_id: int) -> ScanState:
        try:
            return self._states[scan_id]
        except KeyError:
            raise KeyError(f"unknown or finished scan id {scan_id}") from None

    def _checked_table(self, descriptor: ScanDescriptor) -> Table:
        """The descriptor's table, with its range validated against it."""
        table = self.catalog.table(descriptor.table_name)
        if descriptor.last_page >= table.n_pages:
            raise ValueError(
                f"scan range [{descriptor.first_page}, {descriptor.last_page}] "
                f"exceeds table {table.name!r} of {table.n_pages} pages"
            )
        return table

    def _admit(
        self, descriptor: ScanDescriptor, decision: PlacementDecision
    ) -> ScanState:
        """Create, register, count, and trace a new scan state."""
        state = ScanState(
            scan_id=self._next_scan_id,
            descriptor=descriptor,
            start_page=decision.start_page,
            start_time=self.sim.now,
            speed=descriptor.estimated_speed,
            last_update_time=self.sim.now,
        )
        self._next_scan_id += 1
        self._states[state.scan_id] = state
        self.stats.scans_started += 1
        if decision.joined_scan_id is not None:
            self.stats.scans_joined_ongoing += 1
        if decision.joined_last_finished:
            self.stats.scans_joined_last_finished += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(ScanRegistered(
                time=self.sim.now, scan_id=state.scan_id,
                table=descriptor.table_name,
                first_page=descriptor.first_page,
                last_page=descriptor.last_page,
                start_page=decision.start_page,
                joined_scan_id=decision.joined_scan_id,
                joined_last_finished=decision.joined_last_finished,
            ))
        return state

    def _retire(self, scan_id: int, aborted: bool) -> ScanState:
        """Deregister, count, and trace a scan leaving the system."""
        state = self._state(scan_id)
        state.finished = True
        del self._states[scan_id]
        if self._push is not None:
            self._push.scan_ended(scan_id, aborted)
        tracer = get_tracer()
        if aborted:
            self.stats.scans_aborted += 1
            if tracer.enabled:
                tracer.emit(ScanAborted(
                    time=self.sim.now, scan_id=scan_id,
                    table=state.descriptor.table_name,
                    pages_scanned=state.pages_scanned,
                ))
        else:
            self.stats.scans_finished += 1
            if tracer.enabled:
                tracer.emit(ScanDeregistered(
                    time=self.sim.now, scan_id=scan_id,
                    table=state.descriptor.table_name,
                    pages_scanned=state.pages_scanned,
                    accumulated_delay=state.accumulated_delay,
                ))
        return state

    def _record_progress(self, scan_id: int, pages_scanned: int) -> ScanState:
        """Update a scan's position/speed bookkeeping from a progress report."""
        state = self._state(scan_id)
        if pages_scanned < state.pages_scanned:
            raise ValueError(
                f"scan {scan_id}: pages_scanned went backwards "
                f"({pages_scanned} < {state.pages_scanned})"
            )
        now = self.sim.now
        delta_pages = pages_scanned - state.pages_at_last_update
        delta_time = now - state.last_update_time
        state.pages_scanned = pages_scanned
        if delta_time > 0 and delta_pages > 0:
            instantaneous = delta_pages / delta_time
            alpha = self.config.speed_smoothing
            state.speed = alpha * instantaneous + (1.0 - alpha) * state.speed
        # Advance the bookkeeping unconditionally: pages reported in a
        # zero-elapsed-time update must not be counted again in the next
        # sample's delta, and a no-progress interval must not stretch the
        # next sample's time window.
        state.last_update_time = now
        state.pages_at_last_update = pages_scanned
        return state


def make_sharing_policy(
    name: str,
    sim: Simulator,
    catalog: Catalog,
    pool_capacity: int,
    config: Optional[SharingConfig] = None,
) -> SharingPolicy:
    """Construct a scan-sharing policy by registry name.

    Imports lazily so the concrete policies may themselves import this
    module for the base class.
    """
    normalized = name.lower()
    if normalized in ("grouping-throttling", "grouping_throttling"):
        from repro.core.manager import ScanSharingManager

        return ScanSharingManager(sim, catalog, pool_capacity, config)
    if normalized == "cooperative":
        from repro.core.cooperative import CooperativeScanManager

        return CooperativeScanManager(sim, catalog, pool_capacity, config)
    if normalized == "pbm":
        from repro.core.pbm import PbmScanManager

        return PbmScanManager(sim, catalog, pool_capacity, config)
    raise ValueError(
        f"unknown sharing policy {name!r}; known: {SHARING_POLICY_NAMES}"
    )
