"""Adaptive bufferpool page prioritization.

Leaders release pages HIGH — scans behind them in the group will fix the
same pages shortly, so the pool should hold on to them.  Trailers release
LOW — no group member follows, so those pages would be re-read by nobody
and may be victimized first.  Everyone else, and every scan outside a
multi-member group, releases NORMAL.
"""

from __future__ import annotations

from repro.buffer.page import Priority
from repro.core.config import SharingConfig
from repro.core.scan_state import ScanState


def release_priority(scan: ScanState, group_size: int, config: SharingConfig) -> Priority:
    """Priority for pages the scan releases right now."""
    if not (
        config.enabled and config.prioritization_enabled and config.grouping_enabled
    ):
        return Priority.NORMAL
    if group_size <= 1:
        return Priority.NORMAL
    if scan.is_leader:
        return Priority.HIGH
    if scan.is_trailer:
        return Priority.LOW
    return Priority.NORMAL
