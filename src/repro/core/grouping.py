"""Scan grouping — the paper's leader/trailer classification algorithm.

Scans on the same table are sorted by position; adjacent pairs are then
merged into groups in order of increasing distance until the combined
extent of all groups would exceed the bufferpool budget (the paper's
Figure-14 ``findLeadersTrailers``).  Each resulting group's front-most
member is its *leader* and the rear-most its *trailer*; a scan alone in a
group is both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.scan_state import ScanState


@dataclass
class ScanGroup:
    """A set of same-table scans close enough to share bufferpool pages."""

    group_id: int
    table_name: str
    members: List[ScanState] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of scans in the group."""
        return len(self.members)

    @property
    def trailer(self) -> ScanState:
        """The rear-most scan (smallest position)."""
        return self.members[0]

    @property
    def leader(self) -> ScanState:
        """The front-most scan (largest position)."""
        return self.members[-1]

    @property
    def extent_pages(self) -> int:
        """Distance in pages between trailer and leader."""
        return self.leader.position - self.trailer.position

    def __contains__(self, scan: ScanState) -> bool:
        return any(member.scan_id == scan.scan_id for member in self.members)


def form_groups(
    scans_by_table: Dict[str, Sequence[ScanState]],
    pool_budget_pages: int,
) -> List[ScanGroup]:
    """Partition active scans into groups under a bufferpool budget.

    Implements the paper's greedy merge: consider all adjacent same-table
    scan pairs, sorted by distance; merge the closest pairs first; stop
    adding pairs once the sum of group extents would exceed
    ``pool_budget_pages``.  Also updates each state's ``group_id`` /
    ``is_leader`` / ``is_trailer`` flags.
    """
    # Collect candidate adjacent pairs across all tables.
    sorted_scans: Dict[str, List[ScanState]] = {}
    pairs: List[Tuple[int, str, int]] = []  # (distance, table, index of left scan)
    for table_name, scans in scans_by_table.items():
        ordered = sorted(scans, key=lambda s: (s.position, s.scan_id))
        sorted_scans[table_name] = ordered
        for i in range(len(ordered) - 1):
            distance = ordered[i + 1].position - ordered[i].position
            pairs.append((distance, table_name, i))
    pairs.sort(key=lambda p: (p[0], p[1], p[2]))

    # Greedily accept pairs while the budget holds.  Accepting a pair
    # joins two adjacent chains, growing the total extent by exactly the
    # pair's distance.
    accepted: Dict[str, set] = {name: set() for name in sorted_scans}
    total_extent = 0
    for distance, table_name, index in pairs:
        if total_extent + distance > pool_budget_pages:
            continue
        accepted[table_name].add(index)
        total_extent += distance

    # Build groups as maximal runs of accepted adjacencies.
    groups: List[ScanGroup] = []
    next_group_id = 0
    for table_name, ordered in sorted_scans.items():
        if not ordered:
            continue
        run_start = 0
        for i in range(len(ordered)):
            run_ends = i == len(ordered) - 1 or i not in accepted[table_name]
            if run_ends:
                group = ScanGroup(
                    group_id=next_group_id,
                    table_name=table_name,
                    members=ordered[run_start : i + 1],
                )
                next_group_id += 1
                groups.append(group)
                run_start = i + 1

    # Stamp membership flags onto the states.
    for group in groups:
        for member in group.members:
            member.group_id = group.group_id
            member.is_leader = member.scan_id == group.leader.scan_id
            member.is_trailer = member.scan_id == group.trailer.scan_id
    return groups
