"""Scan grouping — the paper's leader/trailer classification algorithm.

Scans on the same table are points on a *circle*: a shared scan starts
mid-range, runs to the end, wraps, and finishes where it began.  Scans
are therefore sorted by position and the candidate adjacencies are the
circular gaps between neighbours — including the gap from the last scan
back around to the first, so a scan that has wrapped past the range end
is still recognized as being just behind the scan it follows.  Gaps are
merged into groups in order of increasing distance until the combined
extent of all groups would exceed the bufferpool budget (the paper's
Figure-14 ``findLeadersTrailers``).  Each resulting group is a circular
arc of scans; its rear-most member (the arc start) is the *trailer* and
its front-most (the arc end) the *leader*; a scan alone in a group is
both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.scan_state import ScanState


@dataclass
class ScanGroup:
    """A set of same-table scans close enough to share bufferpool pages.

    ``members`` are stored in scan order along the group's arc: the
    trailer first, the leader last.  ``table_pages`` is the circle
    modulus used for wrap-aware distances (0 = fall back to linear,
    for hand-built groups in tests).
    """

    group_id: int
    table_name: str
    members: List[ScanState] = field(default_factory=list)
    table_pages: int = 0

    @property
    def size(self) -> int:
        """Number of scans in the group."""
        return len(self.members)

    @property
    def trailer(self) -> ScanState:
        """The rear-most scan (start of the group's arc)."""
        return self.members[0]

    @property
    def leader(self) -> ScanState:
        """The front-most scan (end of the group's arc)."""
        return self.members[-1]

    @property
    def extent_pages(self) -> int:
        """Pages spanned from trailer to leader, measured along the scan
        direction (wrap-aware when ``table_pages`` is known)."""
        if self.table_pages > 0:
            return self.trailer.forward_distance_to(self.leader, self.table_pages)
        return self.leader.position - self.trailer.position

    def __contains__(self, scan: ScanState) -> bool:
        return any(member.scan_id == scan.scan_id for member in self.members)


def _circle_pages(scans: Sequence[ScanState]) -> int:
    """Default circle modulus for a table: one past its largest range."""
    return max(s.descriptor.last_page for s in scans) + 1


def form_groups(
    scans_by_table: Dict[str, Sequence[ScanState]],
    pool_budget_pages: int,
    table_pages: Optional[Dict[str, int]] = None,
) -> List[ScanGroup]:
    """Partition active scans into groups under a bufferpool budget.

    Implements the paper's greedy merge over circular adjacencies: all
    same-table neighbour gaps (including the wrap-around gap) are sorted
    by distance; the closest are merged first; a gap is skipped when the
    sum of group extents would exceed ``pool_budget_pages`` or when it
    would close a full circle (which adds no new members).  Also updates
    each state's ``group_id`` / ``is_leader`` / ``is_trailer`` flags.

    ``table_pages`` optionally supplies each table's true page count as
    the circle modulus; by default it is inferred from the scan ranges.
    """
    # Collect candidate circular-adjacency gaps across all tables.
    sorted_scans: Dict[str, List[ScanState]] = {}
    modulus: Dict[str, int] = {}
    pairs: List[Tuple[int, str, int]] = []  # (distance, table, index of rear scan)
    for table_name, scans in scans_by_table.items():
        ordered = sorted(scans, key=lambda s: (s.position, s.scan_id))
        sorted_scans[table_name] = ordered
        if not ordered:
            continue
        circle = (table_pages or {}).get(table_name) or _circle_pages(ordered)
        modulus[table_name] = circle
        if len(ordered) > 1:
            for i in range(len(ordered)):
                nxt = ordered[(i + 1) % len(ordered)]
                distance = (nxt.position - ordered[i].position) % circle
                pairs.append((distance, table_name, i))
    pairs.sort(key=lambda p: (p[0], p[1], p[2]))

    # Greedily accept gaps while the budget holds.  Accepting a gap
    # joins two adjacent chains, growing the total extent by exactly the
    # gap's distance.  A table with k scans has k circular gaps but a
    # chain needs only k-1: the last gap would close the circle without
    # merging anything, so it is never accepted.
    accepted: Dict[str, set] = {name: set() for name in sorted_scans}
    total_extent = 0
    for distance, table_name, index in pairs:
        if len(accepted[table_name]) == len(sorted_scans[table_name]) - 1:
            continue
        if total_extent + distance > pool_budget_pages:
            continue
        accepted[table_name].add(index)
        total_extent += distance

    # Build groups as maximal circular arcs of accepted adjacencies: a
    # group starts at each scan whose incoming gap was not accepted.
    groups: List[ScanGroup] = []
    next_group_id = 0
    for table_name, ordered in sorted_scans.items():
        if not ordered:
            continue
        k = len(ordered)
        edges = accepted[table_name]
        starts = (
            [i for i in range(k) if (i - 1) % k not in edges] if k > 1 else [0]
        )
        for start in starts:
            length = 1
            while length < k and (start + length - 1) % k in edges:
                length += 1
            group = ScanGroup(
                group_id=next_group_id,
                table_name=table_name,
                members=[ordered[(start + j) % k] for j in range(length)],
                table_pages=modulus[table_name],
            )
            next_group_id += 1
            groups.append(group)

    # Stamp membership flags onto the states.
    for group in groups:
        for member in group.members:
            member.group_id = group.group_id
            member.is_leader = member.scan_id == group.leader.scan_id
            member.is_trailer = member.scan_id == group.trailer.scan_id
    return groups
