"""Cooperative attach/elevator scan sharing (the QPipe-style rival).

From Cooperative Scans / QPipe lineage (see PAPERS.md, "From Cooperative
Scans to Predictive Buffer Management"): a new scan does not start at the
beginning of its range — it *attaches* at the current read position of
the hottest overlapping scan and wraps around ("circular scan" /
"elevator").  Compared to the paper's grouping+throttling mechanism:

* placement is unconditional — a new scan always attaches to the hottest
  in-range scan, with no minimum-expected-sharing threshold;
* there is no throttling: attached scans drift apart at their natural
  speeds (the policy's known weakness on speed-diverse mixes);
* pages are released at NORMAL priority — the bufferpool's own victim
  policy is not steered.

"Hottest" is the scan with the most co-travellers within one extent of
its position (the densest convoy — attaching there maximizes the pages
already streaming through the pool), with speed and then scan id as
deterministic tie-breaks.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.buffer.page import Priority
from repro.core.placement import (
    PlacementDecision,
    align_to_extent,
    expected_shared_pages,
)
from repro.core.policy import SharingPolicy
from repro.core.scan_state import ScanDescriptor, ScanState

__all__ = ["CooperativeScanManager"]


class CooperativeScanManager(SharingPolicy):
    """Attach-at-hottest-scan ("elevator") sharing policy."""

    policy_name = "cooperative"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # follower scan id -> the scan it attached to, while both live.
        self._attached_to: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Scan lifecycle callbacks
    # ------------------------------------------------------------------

    def start_scan(self, descriptor: ScanDescriptor) -> ScanState:
        """Register a new scan; attach it at the hottest in-range scan."""
        table = self._checked_table(descriptor)
        decision = self._attach_point(descriptor, table.extent_size)
        state = self._admit(descriptor, decision)
        if decision.joined_scan_id is not None:
            self._attached_to[state.scan_id] = decision.joined_scan_id
        if self.invariant_hook is not None:
            self.invariant_hook()
        return state

    def update_location(self, scan_id: int, pages_scanned: int) -> float:
        """Record progress; cooperative scans are never throttled."""
        self._record_progress(scan_id, pages_scanned)
        return 0.0

    def page_priority(self, scan_id: int) -> Priority:
        """Cooperative scans do not steer the victim policy."""
        self._state(scan_id)
        return Priority.NORMAL

    def end_scan(self, scan_id: int) -> None:
        """Deregister a finished scan and drop its attach edges."""
        self._detach(scan_id)
        self._retire(scan_id, aborted=False)
        if self.invariant_hook is not None:
            self.invariant_hook()

    def abort_scan(self, scan_id: int) -> None:
        """Deregister a dead scan; nobody may keep attaching to it."""
        self._detach(scan_id)
        self._retire(scan_id, aborted=True)
        if self.invariant_hook is not None:
            self.invariant_hook()

    # ------------------------------------------------------------------
    # Introspection (used by tests and the invariant checker)
    # ------------------------------------------------------------------

    def attach_target(self, scan_id: int) -> Optional[int]:
        """The scan this one attached to at start, while both are live."""
        return self._attached_to.get(scan_id)

    def attach_edges(self) -> Dict[int, int]:
        """Snapshot of live follower -> target attachments."""
        return dict(self._attached_to)

    def push_consumer_set(self, scan_id: int) -> List[int]:
        """The scan plus every follower currently attached to it."""
        self._state(scan_id)
        followers = sorted(
            follower
            for follower, target in self._attached_to.items()
            if target == scan_id
        )
        return [scan_id] + followers

    def is_push_driver(self, scan_id: int) -> bool:
        """Unattached scans drive; attached followers ride the push."""
        self._state(scan_id)
        return scan_id not in self._attached_to

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _detach(self, scan_id: int) -> None:
        """Remove every attach edge touching a departing scan."""
        self._attached_to.pop(scan_id, None)
        stale = [
            follower
            for follower, target in self._attached_to.items()
            if target == scan_id
        ]
        for follower in stale:
            del self._attached_to[follower]

    def _attach_point(
        self, descriptor: ScanDescriptor, extent_size: int
    ) -> PlacementDecision:
        """Where the new scan attaches: the hottest overlapping scan."""
        default = PlacementDecision(start_page=descriptor.first_page)
        if not (self.config.enabled and self.config.placement_enabled):
            return default
        candidates = [
            state
            for state in self._states.values()
            if state.descriptor.table_name == descriptor.table_name
            and not state.finished
            and descriptor.first_page <= state.position <= descriptor.last_page
        ]
        if not candidates:
            return default
        table_pages = self.catalog.table(descriptor.table_name).n_pages
        if extent_size > table_pages:
            # Same guard as choose_start: a table smaller than one extent
            # must not snap every attach point back to page zero.
            extent_size = 0
        hottest = max(
            candidates,
            key=lambda state: (
                self._heat(state, candidates, table_pages, extent_size),
                state.speed,
                -state.scan_id,
            ),
        )
        start = align_to_extent(
            hottest.position, descriptor.first_page, extent_size
        )
        return PlacementDecision(
            start_page=start,
            joined_scan_id=hottest.scan_id,
            expected_shared_pages=expected_shared_pages(descriptor, hottest),
        )

    @staticmethod
    def _heat(
        state: ScanState,
        candidates: List[ScanState],
        table_pages: int,
        extent_size: int,
    ) -> int:
        """Convoy density: scans within one extent of ``state``'s position."""
        position = state.position
        count = 0
        for other in candidates:
            forward = (other.position - position) % table_pages
            backward = (position - other.position) % table_pages
            if min(forward, backward) <= extent_size:
                count += 1
        return count
