"""Per-scan state tracked by the sharing manager.

For every registered scan the manager maintains (cf. the paper's list of
attributes): its current location, pages remaining in the scan range, its
average speed (initialized from the optimizer's estimates and updated
from runtime measurements), the scan range itself, and the accumulated
throttle delay used by the fairness cap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class ScanDescriptor:
    """What a scan declares when registering (compiler-supplied estimates).

    ``first_page``/``last_page`` bound the scan range (inclusive), like
    the start/end keys of the paper's range scans.  ``estimated_speed``
    is the costing component's pages/second guess; ``estimated_pages``
    the scan-amount estimate (defaults to the range size).
    """

    table_name: str
    first_page: int
    last_page: int
    estimated_speed: float
    estimated_pages: Optional[int] = None

    def __post_init__(self) -> None:
        if self.first_page < 0 or self.last_page < self.first_page:
            raise ValueError(
                f"bad scan range [{self.first_page}, {self.last_page}] "
                f"on {self.table_name!r}"
            )
        if self.estimated_speed <= 0:
            raise ValueError(
                f"estimated_speed must be positive, got {self.estimated_speed}"
            )
        if self.estimated_pages is not None and self.estimated_pages < 0:
            raise ValueError(
                f"estimated_pages must be >= 0, got {self.estimated_pages}"
            )

    @property
    def range_pages(self) -> int:
        """Number of pages in the scan range."""
        return self.last_page - self.first_page + 1

    @property
    def estimated_total_time(self) -> float:
        """Estimated seconds to finish the scan at the estimated speed.

        An explicit ``estimated_pages=0`` (the optimizer predicting an
        empty scan) must yield 0.0, not fall back to the full range —
        hence the ``is None`` check rather than truthiness.
        """
        pages = self.range_pages if self.estimated_pages is None else self.estimated_pages
        return pages / self.estimated_speed


@dataclass
class ScanState:
    """Runtime state of one registered scan."""

    scan_id: int
    descriptor: ScanDescriptor
    start_page: int          # where the scan actually began (placement result)
    start_time: float
    speed: float             # pages/second, smoothed runtime estimate
    pages_scanned: int = 0
    last_update_time: float = 0.0
    pages_at_last_update: int = 0
    accumulated_delay: float = 0.0
    throttle_exempt: bool = False
    finished: bool = False
    group_id: Optional[int] = None
    is_leader: bool = False
    is_trailer: bool = False

    @property
    def range_pages(self) -> int:
        """Pages in the declared scan range."""
        return self.descriptor.range_pages

    @property
    def remaining_pages(self) -> int:
        """Pages left to scan."""
        return max(0, self.range_pages - self.pages_scanned)

    @property
    def position(self) -> int:
        """Current physical page position within the table.

        The scan starts at ``start_page``, advances to the end of its
        range, wraps to the range start, and finishes one page before
        ``start_page`` — so the physical position is the start offset
        plus pages scanned, modulo the range length, rebased to the
        range's first page.
        """
        first = self.descriptor.first_page
        offset = (self.start_page - first + self.pages_scanned) % self.range_pages
        return first + offset

    @property
    def wrapped(self) -> bool:
        """Whether the scan has passed the end of its range and wrapped."""
        return self.start_page + self.pages_scanned > self.descriptor.last_page

    @property
    def estimated_total_time(self) -> float:
        """Estimated total scan duration (for the fairness cap)."""
        return self.descriptor.estimated_total_time

    def forward_distance_to(self, other: "ScanState", table_pages: int) -> int:
        """Pages this scan must advance to reach ``other``'s position.

        Measured circularly over the table, in scan direction; 0 means the
        scans are at the same page.
        """
        return (other.position - self.position) % table_pages
