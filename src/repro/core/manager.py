"""The scan sharing manager (the paper's central component).

One manager exists per bufferpool.  Scan operators talk to it through
exactly the calls the paper adds to the scan code:

* :meth:`ScanSharingManager.start_scan` — register, get a start location;
* :meth:`ScanSharingManager.update_location` — report progress, possibly
  receive an inserted throttle wait;
* :meth:`ScanSharingManager.page_priority` — the priority for releasing
  the current page;
* :meth:`ScanSharingManager.end_scan` — deregister.

The manager never touches the bufferpool or the disk; it only observes
scan progress and returns placement, wait, and priority decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.buffer.page import Priority
from repro.core.config import SharingConfig
from repro.core.grouping import ScanGroup, form_groups
from repro.core.placement import PlacementDecision, choose_start
from repro.core.priority import release_priority
from repro.core.scan_state import ScanDescriptor, ScanState
from repro.core.throttle import evaluate_throttle
from repro.sim.kernel import Simulator
from repro.storage.catalog import Catalog
from repro.trace.events import (
    FairnessCapTripped,
    Regrouped,
    ScanAborted,
    ScanDeregistered,
    ScanRegistered,
    ThrottleEvaluated,
)
from repro.trace.tracer import get_tracer


@dataclass
class SharingStats:
    """Counters exposed for tests and experiment reports."""

    scans_started: int = 0
    scans_finished: int = 0
    scans_aborted: int = 0
    scans_joined_ongoing: int = 0
    scans_joined_last_finished: int = 0
    regroups: int = 0
    throttle_waits: int = 0
    total_throttle_time: float = 0.0
    fairness_cap_hits: int = 0
    # (time, number_of_groups) samples taken at each regroup.
    group_count_trace: List[Tuple[float, int]] = field(default_factory=list)


class ScanSharingManager:
    """Tracks ongoing scans and issues placement/throttle/priority decisions."""

    def __init__(
        self,
        sim: Simulator,
        catalog: Catalog,
        pool_capacity: int,
        config: Optional[SharingConfig] = None,
    ):
        self.sim = sim
        self.catalog = catalog
        self.pool_capacity = pool_capacity
        self.config = config or SharingConfig()
        self.stats = SharingStats()
        self._states: Dict[int, ScanState] = {}
        self._groups: List[ScanGroup] = []
        self._group_by_id: Dict[int, ScanGroup] = {}
        self._last_finished: Dict[str, int] = {}  # table -> final position
        self._last_regroup_time: float = -1.0
        self._next_scan_id = 0
        # Set by the fault injector: called after every group rebuild so
        # the invariant checker sees each membership change.  None (the
        # default) costs one attribute test per regroup.
        self.invariant_hook: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------
    # Scan lifecycle callbacks
    # ------------------------------------------------------------------

    def start_scan(self, descriptor: ScanDescriptor) -> ScanState:
        """Register a new scan and decide where it starts."""
        table = self.catalog.table(descriptor.table_name)
        if descriptor.last_page >= table.n_pages:
            raise ValueError(
                f"scan range [{descriptor.first_page}, {descriptor.last_page}] "
                f"exceeds table {table.name!r} of {table.n_pages} pages"
            )
        decision = self._place(descriptor, table.extent_size)
        state = ScanState(
            scan_id=self._next_scan_id,
            descriptor=descriptor,
            start_page=decision.start_page,
            start_time=self.sim.now,
            speed=descriptor.estimated_speed,
            last_update_time=self.sim.now,
        )
        self._next_scan_id += 1
        self._states[state.scan_id] = state
        self.stats.scans_started += 1
        if decision.joined_scan_id is not None:
            self.stats.scans_joined_ongoing += 1
        if decision.joined_last_finished:
            self.stats.scans_joined_last_finished += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(ScanRegistered(
                time=self.sim.now, scan_id=state.scan_id,
                table=descriptor.table_name,
                first_page=descriptor.first_page,
                last_page=descriptor.last_page,
                start_page=decision.start_page,
                joined_scan_id=decision.joined_scan_id,
                joined_last_finished=decision.joined_last_finished,
            ))
        self._regroup(force=True)
        return state

    def update_location(self, scan_id: int, pages_scanned: int) -> float:
        """Record scan progress; returns seconds of inserted throttle wait.

        ``pages_scanned`` is the cumulative page count since scan start
        (monotonically non-decreasing).
        """
        state = self._state(scan_id)
        if pages_scanned < state.pages_scanned:
            raise ValueError(
                f"scan {scan_id}: pages_scanned went backwards "
                f"({pages_scanned} < {state.pages_scanned})"
            )
        now = self.sim.now
        delta_pages = pages_scanned - state.pages_at_last_update
        delta_time = now - state.last_update_time
        state.pages_scanned = pages_scanned
        if delta_time > 0 and delta_pages > 0:
            instantaneous = delta_pages / delta_time
            alpha = self.config.speed_smoothing
            state.speed = alpha * instantaneous + (1.0 - alpha) * state.speed
        # Advance the bookkeeping unconditionally: pages reported in a
        # zero-elapsed-time update must not be counted again in the next
        # sample's delta, and a no-progress interval must not stretch the
        # next sample's time window.
        state.last_update_time = now
        state.pages_at_last_update = pages_scanned

        if not self.config.enabled:
            return 0.0

        # Regroup periodically — or immediately when scan movement has
        # invalidated the group's circular trailer→leader ordering (some
        # member now lies outside the arc the flags were stamped for).
        group = self._group_of(state)
        self._regroup(force=self._order_violated(group))
        group = self._group_of(state)
        if group is None:
            return 0.0
        table = self.catalog.table(state.descriptor.table_name)
        decision = evaluate_throttle(state, group, self.config, table.extent_size)
        if decision.capped_by_fairness:
            self.stats.fairness_cap_hits += 1
        if decision.throttled:
            state.accumulated_delay += decision.wait
            self.stats.throttle_waits += 1
            self.stats.total_throttle_time += decision.wait
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(ThrottleEvaluated(
                time=now, scan_id=state.scan_id,
                group_id=state.group_id if state.group_id is not None else -1,
                distance=decision.distance, threshold=decision.threshold,
                allowance=decision.allowance, wait=decision.wait,
                capped_by_fairness=decision.capped_by_fairness,
            ))
            if decision.capped_by_fairness:
                tracer.emit(FairnessCapTripped(
                    time=now, scan_id=state.scan_id,
                    accumulated_delay=state.accumulated_delay,
                    estimated_total_time=state.estimated_total_time,
                ))
        return decision.wait

    def page_priority(self, scan_id: int) -> Priority:
        """Replacement priority for pages this scan releases right now."""
        state = self._state(scan_id)
        group = self._group_of(state)
        group_size = group.size if group is not None else 1
        return release_priority(state, group_size, self.config)

    def end_scan(self, scan_id: int) -> None:
        """Deregister a finished scan."""
        state = self._state(scan_id)
        state.finished = True
        # Remember where the scan's *reading* stopped (one page before its
        # wrapped final position): the pages it left in the bufferpool
        # trail that location, and a future scan may start there.  A scan
        # that read nothing left nothing behind — recording its (start-1)
        # position would steer future placements at cold pages.
        if state.pages_scanned > 0:
            first = state.descriptor.first_page
            final_read = first + (state.position - first - 1) % state.range_pages
            self._last_finished[state.descriptor.table_name] = final_read
        del self._states[scan_id]
        self.stats.scans_finished += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(ScanDeregistered(
                time=self.sim.now, scan_id=scan_id,
                table=state.descriptor.table_name,
                pages_scanned=state.pages_scanned,
                accumulated_delay=state.accumulated_delay,
            ))
        self._regroup(force=True)

    def abort_scan(self, scan_id: int) -> None:
        """Deregister a scan that died without finishing.

        The death path for a killed/aborted scan: its groups are
        dissolved and re-formed immediately so no group keeps a dead
        member, no throttle anchor points at a ghost, and a throttled
        leader re-anchors on the next live trailer (or runs free).  The
        aborted scan's position is *not* recorded as a last-finished
        location — its partial footprint is not a placement signal.
        """
        state = self._state(scan_id)
        state.finished = True
        del self._states[scan_id]
        self.stats.scans_aborted += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(ScanAborted(
                time=self.sim.now, scan_id=scan_id,
                table=state.descriptor.table_name,
                pages_scanned=state.pages_scanned,
            ))
        self._regroup(force=True)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def active_scan_count(self) -> int:
        """Number of currently registered scans."""
        return len(self._states)

    def active_scans(self) -> List[ScanState]:
        """Snapshot of registered scan states."""
        return list(self._states.values())

    def groups(self) -> List[ScanGroup]:
        """The most recently formed groups."""
        return list(self._groups)

    def scan_state(self, scan_id: int) -> ScanState:
        """State of a registered scan (raises if unknown/finished)."""
        return self._state(scan_id)

    def group_of(self, scan_id: int) -> Optional[ScanGroup]:
        """The group a registered scan currently belongs to, if any."""
        return self._group_of(self._state(scan_id))

    def last_finished_position(self, table_name: str) -> Optional[int]:
        """Final position of the last scan that finished on a table."""
        return self._last_finished.get(table_name)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _state(self, scan_id: int) -> ScanState:
        try:
            return self._states[scan_id]
        except KeyError:
            raise KeyError(f"unknown or finished scan id {scan_id}") from None

    def _place(self, descriptor: ScanDescriptor, extent_size: int) -> PlacementDecision:
        candidates = [
            state
            for state in self._states.values()
            if state.descriptor.table_name == descriptor.table_name
        ]
        return choose_start(
            descriptor,
            candidates,
            self.config,
            extent_size,
            last_finished_position=self._last_finished.get(descriptor.table_name),
            # Conservative estimate of the finished scan's pages still
            # resident: other scans and tables share the pool.
            leftover_pages=self.pool_capacity // 2,
        )

    def _group_of(self, state: ScanState) -> Optional[ScanGroup]:
        if state.group_id is None:
            return None
        return self._group_by_id.get(state.group_id)

    def _order_violated(self, group: Optional[ScanGroup]) -> bool:
        """Whether scan movement has invalidated the group's flags.

        The flags stamped at group formation describe the group as a
        circular arc: trailer first, leader last, with the *largest* gap
        between circularly consecutive members lying leader→trailer
        (outside the arc).  The ordering is violated once that stops
        holding — a member overtook the flagged leader, fell behind the
        flagged trailer, or the leader drifted so far that the flagged
        split is no longer the widest gap.  Measured wrap-aware, so a
        scan that wrapped past the range end (now at a small linear
        position) is not misclassified as the trailer of its own group.
        """
        if group is None or group.size <= 1:
            return False
        circle = group.table_pages
        if circle <= 0:
            circle = self.catalog.table(group.table_name).n_pages
        ordered = sorted(group.members, key=lambda s: (s.position, s.scan_id))
        k = len(ordered)
        gaps = [
            ordered[i].forward_distance_to(ordered[(i + 1) % k], circle)
            for i in range(k)
        ]
        leader_index = next(
            i for i, s in enumerate(ordered)
            if s.scan_id == group.leader.scan_id
        )
        successor = ordered[(leader_index + 1) % k]
        return (
            successor.scan_id != group.trailer.scan_id
            or gaps[leader_index] < max(gaps)
        )

    def _regroup(self, force: bool = False) -> None:
        if not (self.config.enabled and self.config.grouping_enabled):
            # Clear stale membership flags too: a state stamped while
            # grouping was on must not keep reporting leader/trailer
            # roles (page_priority reads the flags directly).
            for state in self._states.values():
                state.group_id = None
                state.is_leader = False
                state.is_trailer = False
            self._groups = []
            self._group_by_id = {}
            if self.invariant_hook is not None:
                self.invariant_hook()
            return
        now = self.sim.now
        if not force and now - self._last_regroup_time < self.config.regroup_interval:
            return
        self._last_regroup_time = now
        by_table: Dict[str, List[ScanState]] = {}
        for state in self._states.values():
            by_table.setdefault(state.descriptor.table_name, []).append(state)
        budget = int(self.pool_capacity * self.config.pool_budget_fraction)
        self._groups = form_groups(
            by_table,
            budget,
            table_pages={
                name: self.catalog.table(name).n_pages for name in by_table
            },
        )
        self._group_by_id = {group.group_id: group for group in self._groups}
        self.stats.regroups += 1
        self.stats.group_count_trace.append((now, len(self._groups)))
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(Regrouped(
                time=now, n_scans=len(self._states),
                n_groups=len(self._groups), forced=force,
                group_sizes=tuple(group.size for group in self._groups),
            ))
        if self.invariant_hook is not None:
            self.invariant_hook()
