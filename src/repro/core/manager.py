"""The scan sharing manager (the paper's central component).

One manager exists per bufferpool.  Scan operators talk to it through
exactly the calls the paper adds to the scan code:

* :meth:`ScanSharingManager.start_scan` — register, get a start location;
* :meth:`ScanSharingManager.update_location` — report progress, possibly
  receive an inserted throttle wait;
* :meth:`ScanSharingManager.page_priority` — the priority for releasing
  the current page;
* :meth:`ScanSharingManager.end_scan` — deregister.

The manager never touches the bufferpool or the disk; it only observes
scan progress and returns placement, wait, and priority decisions.  It is
the ``grouping-throttling`` implementation of the pluggable
:class:`~repro.core.policy.SharingPolicy` interface; the rival policies
live in :mod:`repro.core.cooperative` and :mod:`repro.core.pbm`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.buffer.page import Priority
from repro.core.config import SharingConfig
from repro.core.grouping import ScanGroup, form_groups
from repro.core.placement import PlacementDecision, choose_start
from repro.core.policy import SharingPolicy, SharingStats
from repro.core.priority import release_priority
from repro.core.scan_state import ScanDescriptor, ScanState
from repro.core.throttle import evaluate_throttle
from repro.sim.kernel import Simulator
from repro.storage.catalog import Catalog
from repro.trace.events import FairnessCapTripped, Regrouped, ThrottleEvaluated
from repro.trace.tracer import get_tracer

__all__ = ["ScanSharingManager", "SharingStats"]


@dataclass(frozen=True)
class LastFinishedMark:
    """Where the last scan on a table finished, and under how much load.

    The position is only a useful placement hint while the pages trailing
    it may still be resident.  Residency is governed by eviction pressure,
    not by wall-clock time — a mark on a small hot table stays warm for
    arbitrarily long if nothing competes for frames — so the mark records
    the manager's cumulative observed scan traffic (``observed_pages``)
    at finish time.  Once the elevator has streamed enough further pages
    past the pool to have wrapped (turned over) its capacity many times,
    everything the finisher left behind is certainly cold and the mark is
    dropped.
    """

    position: int
    observed_pages: int

    def stale(self, observed_now: int, pool_capacity: int,
              retention_wraps: float) -> bool:
        """Whether observed traffic since the finish could have turned the
        pool over ``retention_wraps`` times, evicting the leftovers."""
        elapsed_pages = observed_now - self.observed_pages
        return elapsed_pages >= retention_wraps * max(pool_capacity, 1)


class ScanSharingManager(SharingPolicy):
    """Tracks ongoing scans and issues placement/throttle/priority decisions."""

    policy_name = "grouping-throttling"

    def __init__(
        self,
        sim: Simulator,
        catalog: Catalog,
        pool_capacity: int,
        config: Optional[SharingConfig] = None,
    ):
        super().__init__(sim, catalog, pool_capacity, config)
        self._groups: List[ScanGroup] = []
        self._group_by_id: Dict[int, ScanGroup] = {}
        self._last_finished: Dict[str, LastFinishedMark] = {}
        # Cumulative pages reported via update_location across all scans:
        # the eviction-pressure clock that ages last-finished marks out.
        self._observed_pages = 0
        self._last_regroup_time: float = -1.0

    # ------------------------------------------------------------------
    # Scan lifecycle callbacks
    # ------------------------------------------------------------------

    def start_scan(self, descriptor: ScanDescriptor) -> ScanState:
        """Register a new scan and decide where it starts."""
        table = self._checked_table(descriptor)
        decision = self._place(descriptor, table.extent_size)
        state = self._admit(descriptor, decision)
        self._regroup(force=True)
        return state

    def update_location(self, scan_id: int, pages_scanned: int) -> float:
        """Record scan progress; returns seconds of inserted throttle wait.

        ``pages_scanned`` is the cumulative page count since scan start
        (monotonically non-decreasing).
        """
        previously_reported = self._state(scan_id).pages_at_last_update
        state = self._record_progress(scan_id, pages_scanned)
        self._observed_pages += pages_scanned - previously_reported
        now = self.sim.now

        if not self.config.enabled:
            return 0.0

        # Regroup periodically — or immediately when scan movement has
        # invalidated the group's circular trailer→leader ordering (some
        # member now lies outside the arc the flags were stamped for).
        group = self._group_of(state)
        self._regroup(force=self._order_violated(group))
        group = self._group_of(state)
        if group is None:
            return 0.0
        table = self.catalog.table(state.descriptor.table_name)
        decision = evaluate_throttle(state, group, self.config, table.extent_size)
        if decision.capped_by_fairness:
            self.stats.fairness_cap_hits += 1
        if decision.throttled:
            state.accumulated_delay += decision.wait
            self.stats.throttle_waits += 1
            self.stats.total_throttle_time += decision.wait
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(ThrottleEvaluated(
                time=now, scan_id=state.scan_id,
                group_id=state.group_id if state.group_id is not None else -1,
                distance=decision.distance, threshold=decision.threshold,
                allowance=decision.allowance, wait=decision.wait,
                capped_by_fairness=decision.capped_by_fairness,
            ))
            if decision.capped_by_fairness:
                tracer.emit(FairnessCapTripped(
                    time=now, scan_id=state.scan_id,
                    accumulated_delay=state.accumulated_delay,
                    estimated_total_time=state.estimated_total_time,
                ))
        return decision.wait

    def page_priority(self, scan_id: int) -> Priority:
        """Replacement priority for pages this scan releases right now."""
        state = self._state(scan_id)
        group = self._group_of(state)
        group_size = group.size if group is not None else 1
        return release_priority(state, group_size, self.config)

    def end_scan(self, scan_id: int) -> None:
        """Deregister a finished scan."""
        state = self._state(scan_id)
        # Remember where the scan's *reading* stopped (one page before its
        # wrapped final position): the pages it left in the bufferpool
        # trail that location, and a future scan may start there.  A scan
        # that read nothing left nothing behind — recording its (start-1)
        # position would steer future placements at cold pages.
        if state.pages_scanned > 0:
            first = state.descriptor.first_page
            final_read = first + (state.position - first - 1) % state.range_pages
            self._last_finished[state.descriptor.table_name] = LastFinishedMark(
                position=final_read,
                observed_pages=self._observed_pages,
            )
        self._retire(scan_id, aborted=False)
        self._regroup(force=True)

    def abort_scan(self, scan_id: int) -> None:
        """Deregister a scan that died without finishing.

        The death path for a killed/aborted scan: its groups are
        dissolved and re-formed immediately so no group keeps a dead
        member, no throttle anchor points at a ghost, and a throttled
        leader re-anchors on the next live trailer (or runs free).  The
        aborted scan's position is *not* recorded as a last-finished
        location — its partial footprint is not a placement signal.
        """
        self._retire(scan_id, aborted=True)
        self._regroup(force=True)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def groups(self) -> List[ScanGroup]:
        """The most recently formed groups."""
        return list(self._groups)

    def group_of(self, scan_id: int) -> Optional[ScanGroup]:
        """The group a registered scan currently belongs to, if any."""
        return self._group_of(self._state(scan_id))

    def push_consumer_set(self, scan_id: int) -> List[int]:
        """Every member of the scan's group consumes its pushed extents."""
        group = self.group_of(scan_id)
        if group is None:
            return [scan_id]
        return [member.scan_id for member in group.members]

    def is_push_driver(self, scan_id: int) -> bool:
        """The group leader drives the push; trailers never re-request."""
        group = self.group_of(scan_id)
        return group is None or group.leader.scan_id == scan_id

    def last_finished_position(self, table_name: str) -> Optional[int]:
        """Final position of the last scan that finished on a table.

        Ages out: None once the scan traffic observed since the finish
        could have turned the bufferpool over
        ``config.last_finished_retention_wraps`` times — by then the
        pages trailing the mark are cold, and placing a late arrival
        there would only delay its own sequential start for no hits.
        """
        mark = self._last_finished.get(table_name)
        if mark is None:
            return None
        if mark.stale(self._observed_pages, self.pool_capacity,
                      self.config.last_finished_retention_wraps):
            del self._last_finished[table_name]
            return None
        return mark.position

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _place(self, descriptor: ScanDescriptor, extent_size: int) -> PlacementDecision:
        candidates = [
            state
            for state in self._states.values()
            if state.descriptor.table_name == descriptor.table_name
        ]
        return choose_start(
            descriptor,
            candidates,
            self.config,
            extent_size,
            last_finished_position=self.last_finished_position(
                descriptor.table_name
            ),
            # Conservative estimate of the finished scan's pages still
            # resident: other scans and tables share the pool.
            leftover_pages=self.pool_capacity // 2,
            table_pages=self.catalog.table(descriptor.table_name).n_pages,
        )

    def _group_of(self, state: ScanState) -> Optional[ScanGroup]:
        if state.group_id is None:
            return None
        return self._group_by_id.get(state.group_id)

    def _order_violated(self, group: Optional[ScanGroup]) -> bool:
        """Whether scan movement has invalidated the group's flags.

        The flags stamped at group formation describe the group as a
        circular arc: trailer first, leader last, with the *largest* gap
        between circularly consecutive members lying leader→trailer
        (outside the arc).  The ordering is violated once that stops
        holding — a member overtook the flagged leader, fell behind the
        flagged trailer, or the leader drifted so far that the flagged
        split is no longer the widest gap.  Measured wrap-aware, so a
        scan that wrapped past the range end (now at a small linear
        position) is not misclassified as the trailer of its own group.
        """
        if group is None or group.size <= 1:
            return False
        circle = group.table_pages
        if circle <= 0:
            circle = self.catalog.table(group.table_name).n_pages
        ordered = sorted(group.members, key=lambda s: (s.position, s.scan_id))
        k = len(ordered)
        gaps = [
            ordered[i].forward_distance_to(ordered[(i + 1) % k], circle)
            for i in range(k)
        ]
        leader_index = next(
            i for i, s in enumerate(ordered)
            if s.scan_id == group.leader.scan_id
        )
        successor = ordered[(leader_index + 1) % k]
        return (
            successor.scan_id != group.trailer.scan_id
            or gaps[leader_index] < max(gaps)
        )

    def _regroup(self, force: bool = False) -> None:
        if not (self.config.enabled and self.config.grouping_enabled):
            # Clear stale membership flags too: a state stamped while
            # grouping was on must not keep reporting leader/trailer
            # roles (page_priority reads the flags directly).
            for state in self._states.values():
                state.group_id = None
                state.is_leader = False
                state.is_trailer = False
            self._groups = []
            self._group_by_id = {}
            if self.invariant_hook is not None:
                self.invariant_hook()
            return
        now = self.sim.now
        if not force and now - self._last_regroup_time < self.config.regroup_interval:
            return
        self._last_regroup_time = now
        by_table: Dict[str, List[ScanState]] = {}
        for state in self._states.values():
            by_table.setdefault(state.descriptor.table_name, []).append(state)
        budget = int(self.pool_capacity * self.config.pool_budget_fraction)
        self._groups = form_groups(
            by_table,
            budget,
            table_pages={
                name: self.catalog.table(name).n_pages for name in by_table
            },
        )
        self._group_by_id = {group.group_id: group for group in self._groups}
        self.stats.regroups += 1
        self.stats.group_count_trace.append((now, len(self._groups)))
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(Regrouped(
                time=now, n_scans=len(self._states),
                n_groups=len(self._groups), forced=force,
                group_sizes=tuple(group.size for group in self._groups),
            ))
        if self.invariant_hook is not None:
            self.invariant_hook()
