"""Predictive Buffer Management (PBM) scan registry (arXiv 1208.4170).

Świtakowski, Boncz and Żukowski's answer to cooperative scans: leave the
scans alone (no placement steering, no throttling) and make the *buffer
manager* smart instead.  Every scan registers its range and reports its
position and speed; from those the manager predicts, for any page, when
it will next be consumed.  The companion replacement policy
(:class:`repro.buffer.replacement.pbm.PbmPolicy`) evicts the page whose
next consumption lies furthest in the future — the classic MIN/OPT rule,
driven by measured scan progress instead of clairvoyance.

This module is the manager half: the per-table registry of scan
positions/speeds and the reuse-time computation.  It implements the
:class:`~repro.core.policy.SharingPolicy` interface so the scan code is
byte-for-byte the same under PBM as under every other policy.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.buffer.page import PageKey, Priority
from repro.core.placement import PlacementDecision
from repro.core.policy import SharingPolicy
from repro.core.scan_state import ScanDescriptor, ScanState

__all__ = ["PbmScanManager"]

#: Speed floor for reuse-time predictions: a stalled scan must predict a
#: huge-but-finite reuse time, not divide by zero.
_MIN_SPEED = 1e-9


class PbmScanManager(SharingPolicy):
    """Registry of scan positions/speeds powering predictive eviction."""

    policy_name = "pbm"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # space_id -> scan_id -> state; the reuse-time map consulted by
        # the replacement policy on every victim choice.  Entries are
        # added at start_scan and dropped at end/abort, so a departed
        # scan can never pin the prediction of a page it will not read.
        self._sources: Dict[int, Dict[int, ScanState]] = {}

    # ------------------------------------------------------------------
    # Scan lifecycle callbacks
    # ------------------------------------------------------------------

    def start_scan(self, descriptor: ScanDescriptor) -> ScanState:
        """Register a scan; PBM never moves a scan's start position."""
        table = self._checked_table(descriptor)
        state = self._admit(
            descriptor, PlacementDecision(start_page=descriptor.first_page)
        )
        self._sources.setdefault(table.space_id, {})[state.scan_id] = state
        if self.invariant_hook is not None:
            self.invariant_hook()
        return state

    def update_location(self, scan_id: int, pages_scanned: int) -> float:
        """Record progress (feeding the predictions); never throttles."""
        self._record_progress(scan_id, pages_scanned)
        return 0.0

    def page_priority(self, scan_id: int) -> Priority:
        """Priorities are not PBM's lever — the victim policy is."""
        self._state(scan_id)
        return Priority.NORMAL

    def end_scan(self, scan_id: int) -> None:
        """Deregister; the scan's reuse-time entries go with it."""
        self._drop_source(scan_id)
        self._retire(scan_id, aborted=False)
        if self.invariant_hook is not None:
            self.invariant_hook()

    def abort_scan(self, scan_id: int) -> None:
        """Deregister a dead scan; its predictions must not linger."""
        self._drop_source(scan_id)
        self._retire(scan_id, aborted=True)
        if self.invariant_hook is not None:
            self.invariant_hook()

    # ------------------------------------------------------------------
    # Reuse-time predictions (consulted by the replacement policy)
    # ------------------------------------------------------------------

    def reuse_sources(self) -> Dict[int, Dict[int, ScanState]]:
        """Snapshot of the reuse-time map (space_id -> scan_id -> state)."""
        return {space: dict(scans) for space, scans in self._sources.items()}

    def next_consumption_distance(self, key: PageKey) -> Optional[int]:
        """Pages until some registered scan reaches ``key``; None = never."""
        scans = self._sources.get(key.space_id)
        if not scans:
            return None
        best: Optional[int] = None
        for state in scans.values():
            distance = self._distance(state, key.page_no)
            if distance is None:
                continue
            if best is None or distance < best:
                best = distance
        return best

    def next_consumption_time(self, key: PageKey) -> float:
        """Predicted seconds until ``key`` is next read; inf = never.

        The minimum over registered scans of (forward distance to the
        page) / (measured scan speed) — equation (1) of the PBM paper,
        with wrap-around distances because our scans are elevators.
        """
        scans = self._sources.get(key.space_id)
        if not scans:
            return math.inf
        best = math.inf
        for state in scans.values():
            distance = self._distance(state, key.page_no)
            if distance is None:
                continue
            eta = distance / max(state.speed, _MIN_SPEED)
            if eta < best:
                best = eta
        return best

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _drop_source(self, scan_id: int) -> None:
        state = self._state(scan_id)
        table = self.catalog.table(state.descriptor.table_name)
        scans = self._sources.get(table.space_id)
        if scans is not None:
            scans.pop(scan_id, None)
            if not scans:
                del self._sources[table.space_id]

    @staticmethod
    def _distance(state: ScanState, page_no: int) -> Optional[int]:
        """Forward pages from ``state``'s position to ``page_no``.

        None when the scan will never read the page: outside its range,
        or further ahead than the pages it has left before finishing.
        """
        descriptor = state.descriptor
        if not descriptor.first_page <= page_no <= descriptor.last_page:
            return None
        if state.range_pages <= 0:
            return None
        distance = (page_no - state.position) % state.range_pages
        if distance >= state.remaining_pages:
            return None
        return distance
