"""The paper's contribution: the scan sharing manager.

This package implements the mechanism of *"Increasing Buffer-Locality for
Multiple Relational Table Scans through Grouping and Throttling"*:

* a central :class:`~repro.core.manager.ScanSharingManager` that tracks
  ongoing scans' locations and speeds through three cheap callbacks
  (start / update-location / end) added to the scan operator;
* **placement** — a new scan may start in the middle of its range, at the
  position of an ongoing scan it can share bufferpool pages with, then
  wrap around (:mod:`repro.core.placement`);
* **grouping** — scans on the same table are merged into groups of nearby
  positions whose combined extent fits the bufferpool
  (:mod:`repro.core.grouping`);
* **throttling** — each group's leader is slowed with inserted waits when
  it drifts more than a threshold ahead of the trailer, bounded by an
  accumulated-slowdown fairness cap (:mod:`repro.core.throttle`);
* **page prioritization** — leaders release pages at HIGH priority
  (followers need them), trailers at LOW (:mod:`repro.core.priority`).

Everything below the manager — bufferpool, disk, storage — is treated as
a black box, exactly as the paper requires.

The manager is one of several strategies behind the pluggable
:class:`~repro.core.policy.SharingPolicy` interface; its rivals —
cooperative attach/elevator scans (:mod:`repro.core.cooperative`) and
predictive buffer management (:mod:`repro.core.pbm`) — share the exact
same scan-side callbacks, so head-to-head comparisons change nothing but
the policy.
"""

from repro.core.config import SharingConfig
from repro.core.cooperative import CooperativeScanManager
from repro.core.manager import ScanSharingManager, SharingStats
from repro.core.pbm import PbmScanManager
from repro.core.policy import (
    SHARING_POLICY_NAMES,
    SharingPolicy,
    make_sharing_policy,
)
from repro.core.scan_state import ScanDescriptor, ScanState
from repro.core.grouping import ScanGroup, form_groups

__all__ = [
    "SHARING_POLICY_NAMES",
    "CooperativeScanManager",
    "PbmScanManager",
    "ScanDescriptor",
    "ScanGroup",
    "ScanSharingManager",
    "ScanState",
    "SharingConfig",
    "SharingPolicy",
    "SharingStats",
    "form_groups",
    "make_sharing_policy",
]
