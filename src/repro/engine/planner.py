"""Predicate-driven scan planning.

Real optimizers turn a predicate on the clustering column into a
narrowed physical scan range; that is the mechanism (MDC block-index
range access) that makes the paper's warehouse queries *range* scans in
the first place.  This module provides the same derivation for the
declarative query layer: analyze a predicate, extract the implied
interval on the table's clustering column, and rewrite the step to scan
only the matching page range.

Only conjunctive constraints are used (a disjunction can widen the
range arbitrarily, so OR falls back to the full table — a sound,
conservative choice).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Tuple

from repro.engine.expressions import (
    Between,
    BooleanOp,
    Column,
    Comparison,
    Expression,
    Literal,
    NotOp,
)
from repro.engine.query import QuerySpec, ScanStep
from repro.storage.catalog import Catalog

#: An interval on the clustering column; None bound = unconstrained.
Interval = Tuple[Optional[float], Optional[float]]

_UNBOUNDED: Interval = (None, None)


def _intersect(a: Interval, b: Interval) -> Interval:
    low = a[0] if b[0] is None else (b[0] if a[0] is None else max(a[0], b[0]))
    high = a[1] if b[1] is None else (b[1] if a[1] is None else min(a[1], b[1]))
    return (low, high)


def _literal_value(expr: Expression) -> Optional[float]:
    if isinstance(expr, Literal) and isinstance(expr.value, (int, float)):
        return float(expr.value)
    return None


def extract_cluster_interval(
    predicate: Optional[Expression], column_name: str
) -> Interval:
    """The interval the predicate implies on ``column_name``.

    Returns ``(low, high)`` where either side may be None (unbounded).
    Sound but not complete: anything not recognized contributes no
    constraint.
    """
    if predicate is None:
        return _UNBOUNDED
    if isinstance(predicate, BooleanOp):
        if predicate.op == "and":
            return _intersect(
                extract_cluster_interval(predicate.left, column_name),
                extract_cluster_interval(predicate.right, column_name),
            )
        return _UNBOUNDED  # OR: conservatively unconstrained
    if isinstance(predicate, NotOp):
        return _UNBOUNDED
    if isinstance(predicate, Between) and isinstance(predicate.operand, Column):
        if predicate.operand.name == column_name:
            try:
                return (float(predicate.low), float(predicate.high))
            except (TypeError, ValueError):
                return _UNBOUNDED
        return _UNBOUNDED
    if isinstance(predicate, Comparison):
        column, value, op = _normalize_comparison(predicate, column_name)
        if column is None:
            return _UNBOUNDED
        if op in ("<", "<="):
            return (None, value)
        if op in (">", ">="):
            return (value, None)
        if op == "==":
            return (value, value)
        return _UNBOUNDED
    return _UNBOUNDED


def _normalize_comparison(comparison: Comparison, column_name: str):
    """Orient ``column OP literal``; returns (column, value, op) or Nones."""
    left, right = comparison.left, comparison.right
    if isinstance(left, Column) and left.name == column_name:
        value = _literal_value(right)
        if value is not None:
            return left, value, comparison.op
    if isinstance(right, Column) and right.name == column_name:
        value = _literal_value(left)
        if value is not None:
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
                       "==": "==", "!=": "!="}
            return right, value, flipped[comparison.op]
    return None, None, None


def plan_step(step: ScanStep, catalog: Catalog) -> ScanStep:
    """Narrow a step's scan range from its predicate, when possible.

    A step that already carries an explicit range (or whose table has no
    clustering column, or whose predicate does not constrain it) is
    returned unchanged.
    """
    if step.cluster_range is not None or step.fraction is not None:
        return step
    table = catalog.table(step.table)
    cluster = table.schema.clustering_column
    if cluster is None or step.predicate is None:
        return step
    low, high = extract_cluster_interval(step.predicate, cluster.name)
    if low is None and high is None:
        return step
    resolved_low = cluster.low if low is None else max(low, cluster.low)
    resolved_high = cluster.high if high is None else min(high, cluster.high)
    if resolved_high < resolved_low:
        # Contradictory predicate: scan the smallest possible range; the
        # filter will reject every row.
        resolved_high = resolved_low
    return replace(step, cluster_range=(resolved_low, resolved_high))


def plan_query(spec: QuerySpec, catalog: Catalog) -> QuerySpec:
    """Apply :func:`plan_step` to every step of a query."""
    planned = tuple(plan_step(step, catalog) for step in spec.steps)
    return replace(spec, steps=planned)


def resolve_budget_pages(requested: Optional[int], pool_capacity: int) -> int:
    """Turn a step's budget request into a concrete frame count.

    ``-1`` (auto) asks for a quarter of the pool — enough to matter,
    small enough that several budgeted operators plus the scans' working
    set coexist.  Explicit requests are honored up to what a reservation
    could ever grant (the pool keeps ``MIN_USABLE_FRAMES`` for itself);
    the pool may still grant less when other reservations exist.
    """
    from repro.buffer.pool import BufferPool

    ceiling = max(1, pool_capacity - BufferPool.MIN_USABLE_FRAMES)
    if requested is None or requested == -1:
        return max(1, min(ceiling, pool_capacity // 4))
    return max(1, min(ceiling, requested))
