"""Query engine: expressions, operators, queries, execution, the facade.

The public entry point is :class:`~repro.engine.database.Database` plus
the executor functions — build a database, declare
:class:`~repro.engine.query.QuerySpec` objects, and run them as
concurrent streams with :func:`~repro.engine.executor.run_workload`.
"""

from repro.engine.costs import CostModel, DEFAULT_COST_MODEL
from repro.engine.database import Database, SystemConfig
from repro.engine.executor import (
    QueryResult,
    StepResult,
    StreamResult,
    WorkloadResult,
    execute_query,
    run_stream,
    run_workload,
)
from repro.engine.expressions import Expression, col, lit
from repro.engine.operators import AggSpec, Pipeline
from repro.engine.planner import plan_query, plan_step
from repro.engine.query import QuerySpec, ScanStep

__all__ = [
    "AggSpec",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "Database",
    "Expression",
    "Pipeline",
    "QueryResult",
    "QuerySpec",
    "ScanStep",
    "StepResult",
    "StreamResult",
    "SystemConfig",
    "WorkloadResult",
    "col",
    "execute_query",
    "lit",
    "plan_query",
    "plan_step",
    "run_stream",
    "run_workload",
]
