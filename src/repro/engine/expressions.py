"""Vectorized expression AST for predicates and aggregate inputs.

Expressions evaluate against a page's column arrays and report an
abstract per-row cost used by the CPU model, so that more complex
predicates genuinely make a query more CPU-bound in the simulation.

Example::

    expr = (col("l_discount") >= lit(0.05)) & (col("l_quantity") < lit(24))
    mask = expr.evaluate(page_data)
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, Sequence

import numpy as np

from repro.storage.datagen import PageData


class Expression(ABC):
    """A vectorized expression over page columns."""

    @abstractmethod
    def evaluate(self, data: PageData) -> np.ndarray:
        """Evaluate against one page's columns."""

    @property
    @abstractmethod
    def cost_units_per_row(self) -> float:
        """Abstract CPU units this expression costs per row."""

    @abstractmethod
    def columns(self) -> FrozenSet[str]:
        """Columns the expression reads."""

    # Operator sugar -----------------------------------------------------

    def __and__(self, other: "Expression") -> "Expression":
        return BooleanOp("and", self, other)

    def __or__(self, other: "Expression") -> "Expression":
        return BooleanOp("or", self, other)

    def __invert__(self) -> "Expression":
        return NotOp(self)

    def __add__(self, other: "Expression") -> "Expression":
        return Arithmetic("+", self, other)

    def __sub__(self, other: "Expression") -> "Expression":
        return Arithmetic("-", self, other)

    def __mul__(self, other: "Expression") -> "Expression":
        return Arithmetic("*", self, other)

    def __lt__(self, other: "Expression") -> "Expression":
        return Comparison("<", self, other)

    def __le__(self, other: "Expression") -> "Expression":
        return Comparison("<=", self, other)

    def __gt__(self, other: "Expression") -> "Expression":
        return Comparison(">", self, other)

    def __ge__(self, other: "Expression") -> "Expression":
        return Comparison(">=", self, other)

    def eq(self, other: "Expression") -> "Expression":
        """Equality comparison (named to keep __eq__ for identity)."""
        return Comparison("==", self, other)

    def ne(self, other: "Expression") -> "Expression":
        """Inequality comparison."""
        return Comparison("!=", self, other)

    def between(self, low: object, high: object) -> "Expression":
        """Inclusive range predicate."""
        return Between(self, low, high)

    def isin(self, values: Sequence) -> "Expression":
        """Set-membership predicate."""
        return InSet(self, values)


class Column(Expression):
    """Reference to a stored column."""

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, data: PageData) -> np.ndarray:
        try:
            return data[self.name]
        except KeyError:
            raise KeyError(
                f"column {self.name!r} not in page (has: {sorted(data)})"
            ) from None

    @property
    def cost_units_per_row(self) -> float:
        return 0.0  # a column reference is free; operations on it cost

    def columns(self) -> FrozenSet[str]:
        return frozenset([self.name])


class Literal(Expression):
    """A constant."""

    def __init__(self, value: object):
        self.value = value

    def evaluate(self, data: PageData) -> np.ndarray:
        return self.value  # type: ignore[return-value] — broadcasting handles it

    @property
    def cost_units_per_row(self) -> float:
        return 0.0

    def columns(self) -> FrozenSet[str]:
        return frozenset()


class Comparison(Expression):
    """Binary comparison producing a boolean mask."""

    _OPS = {
        "<": np.less,
        "<=": np.less_equal,
        ">": np.greater,
        ">=": np.greater_equal,
        "==": np.equal,
        "!=": np.not_equal,
    }

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in self._OPS:
            raise ValueError(f"unknown comparison {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, data: PageData) -> np.ndarray:
        return self._OPS[self.op](self.left.evaluate(data), self.right.evaluate(data))

    @property
    def cost_units_per_row(self) -> float:
        return 1.0 + self.left.cost_units_per_row + self.right.cost_units_per_row

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()


class Between(Expression):
    """Inclusive range test on an expression."""

    def __init__(self, operand: Expression, low: object, high: object):
        self.operand = operand
        self.low = low
        self.high = high

    def evaluate(self, data: PageData) -> np.ndarray:
        values = self.operand.evaluate(data)
        return (values >= self.low) & (values <= self.high)

    @property
    def cost_units_per_row(self) -> float:
        return 2.0 + self.operand.cost_units_per_row

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns()


class InSet(Expression):
    """Set-membership test."""

    def __init__(self, operand: Expression, values: Sequence):
        self.operand = operand
        self.values = tuple(values)

    def evaluate(self, data: PageData) -> np.ndarray:
        return np.isin(self.operand.evaluate(data), self.values)

    @property
    def cost_units_per_row(self) -> float:
        return 1.0 + 0.5 * len(self.values) + self.operand.cost_units_per_row

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns()


class BooleanOp(Expression):
    """Conjunction / disjunction of boolean expressions."""

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in ("and", "or"):
            raise ValueError(f"unknown boolean op {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, data: PageData) -> np.ndarray:
        left = self.left.evaluate(data)
        right = self.right.evaluate(data)
        return (left & right) if self.op == "and" else (left | right)

    @property
    def cost_units_per_row(self) -> float:
        return 0.5 + self.left.cost_units_per_row + self.right.cost_units_per_row

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()


class NotOp(Expression):
    """Boolean negation."""

    def __init__(self, operand: Expression):
        self.operand = operand

    def evaluate(self, data: PageData) -> np.ndarray:
        return ~self.operand.evaluate(data)

    @property
    def cost_units_per_row(self) -> float:
        return 0.5 + self.operand.cost_units_per_row

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns()


class Arithmetic(Expression):
    """Elementwise arithmetic over expressions."""

    _OPS = {"+": np.add, "-": np.subtract, "*": np.multiply}

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in self._OPS:
            raise ValueError(f"unknown arithmetic op {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, data: PageData) -> np.ndarray:
        return self._OPS[self.op](self.left.evaluate(data), self.right.evaluate(data))

    @property
    def cost_units_per_row(self) -> float:
        return 1.0 + self.left.cost_units_per_row + self.right.cost_units_per_row

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()


def col(name: str) -> Column:
    """Column reference shorthand."""
    return Column(name)


def lit(value: object) -> Literal:
    """Literal shorthand."""
    return Literal(value)
