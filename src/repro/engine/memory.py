"""Operator memory management: frame budgets and simulated temp space.

Memory-budgeted operators (spillable aggregation, multibuffer joins)
compete with scans for bufferpool frames instead of assuming an infinite
private workspace.  Two pieces model that competition:

:class:`TempSpace`
    A lazily allocated contiguous region of the shared disk used for
    spill runs.  Temp I/O deliberately bypasses the bufferpool — real
    systems write sort runs and hash partitions through private buffers
    — but it *shares the device* with scan I/O, so spilling slows scans
    down the way the paper's frame competition predicts.

:class:`OperatorMemory`
    One operator's negotiated frame reservation.  It asks the pool for a
    named, claw-backable reservation
    (:meth:`~repro.buffer.pool.BufferPool.reserve_frames`); when the
    pool claws frames back under pressure the operator is flagged to
    spill.  Spill writes are issued asynchronously (operators run inside
    a scan's ``on_page`` callback and cannot drive the simulation);
    :meth:`drain` and :meth:`read_back` are generators the pipeline's
    finalize phase yields through.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.buffer.page import PageKey
from repro.buffer.pool import FrameReservation


class TempSpace:
    """Simulated temp-file region on the shared disk.

    Allocation is lazy: runs that never spill never take tablespace
    room.  Addresses are handed out bump-pointer style with wraparound —
    spill files are transient, so recycling addresses is fine; the
    addresses exist only to give temp I/O realistic positions (and
    seeks) on the shared device.
    """

    def __init__(self, database: Any, n_pages: int):
        if n_pages < 1:
            raise ValueError(f"temp space needs n_pages >= 1, got {n_pages}")
        self.db = database
        self.n_pages = n_pages
        self._space_id: Optional[int] = None
        self._base = 0
        self._cursor = 0
        self.pages_written = 0
        self.pages_read = 0
        self.write_requests = 0
        self.read_requests = 0

    @property
    def allocated(self) -> bool:
        """Whether the temp region has been carved out of the tablespace."""
        return self._space_id is not None

    def _ensure(self) -> None:
        if self._space_id is None:
            self._space_id = self.db.tablespace.allocate(self.n_pages)
            self._base = self.db.tablespace.address_of(
                PageKey(self._space_id, 0)
            )

    def write_run(self, n_pages: int) -> tuple:
        """Queue a temp write of ``n_pages``; returns ``(addr, event)``.

        The returned address can be passed to :meth:`read_run` to read
        the run back.  The event is the disk completion; callers that
        cannot yield store it and drain later.
        """
        if n_pages < 1:
            raise ValueError(f"temp write needs n_pages >= 1, got {n_pages}")
        self._ensure()
        n_pages = min(n_pages, self.n_pages)
        if self._cursor + n_pages > self.n_pages:
            self._cursor = 0
        addr = self._base + self._cursor
        self._cursor += n_pages
        self.pages_written += n_pages
        self.write_requests += 1
        return addr, self.db.disk.write(addr, n_pages)

    def read_run(self, addr: int, n_pages: int):
        """Queue a temp read; returns the disk completion event."""
        if n_pages < 1:
            raise ValueError(f"temp read needs n_pages >= 1, got {n_pages}")
        self.pages_read += n_pages
        self.read_requests += 1
        return self.db.disk.read(addr, n_pages)

    def stats(self) -> dict:
        """Spill I/O counters for reports."""
        return {
            "temp_pages_written": self.pages_written,
            "temp_pages_read": self.pages_read,
            "temp_write_requests": self.write_requests,
            "temp_read_requests": self.read_requests,
        }


class OperatorMemory:
    """One operator's frame budget, negotiated with the bufferpool.

    Lifecycle::

        mem = OperatorMemory(db, "agg[Q1]", budget_pages=32)
        mem.negotiate()          # reserve frames (clamped by the pool)
        ... operator works within mem.pages, spilling when full or
            when mem.spill_requested flips under claw-back ...
        yield from mem.drain()   # wait out async spill writes
        yield from mem.read_back(addr, n)   # re-read spilled runs
        mem.release()            # hand every frame back
    """

    def __init__(self, database: Any, name: str, budget_pages: int):
        if budget_pages < 1:
            raise ValueError(f"budget must be >= 1 page, got {budget_pages}")
        self.db = database
        self.name = name
        self.requested_pages = budget_pages
        self.reservation: Optional[FrameReservation] = None
        self.granted_initial = 0
        self.pressure_events = 0
        #: Flipped by the pool's claw-back callback; the operator checks
        #: it on every batch and sheds state when set.
        self.spill_requested = False
        self._pending: List[Any] = []

    def negotiate(self) -> int:
        """Reserve up to the requested budget; returns frames granted."""
        if self.reservation is not None:
            raise RuntimeError(f"{self.name}: budget already negotiated")
        self.reservation = self.db.pool.reserve_frames(
            self.name, self.requested_pages, on_clawback=self._on_clawback
        )
        self.granted_initial = self.reservation.granted
        return self.granted_initial

    def _on_clawback(self, reservation: FrameReservation) -> None:
        # Bookkeeping only: runs inside the pool's eviction path.
        self.pressure_events += 1
        self.spill_requested = True

    @property
    def pages(self) -> int:
        """Frames the operator currently holds."""
        return self.reservation.granted if self.reservation else 0

    @property
    def clawed_pages(self) -> int:
        """Frames the pool took back under pressure."""
        return self.reservation.clawed if self.reservation else 0

    def spill_out(self, n_pages: int) -> int:
        """Issue an async temp write of ``n_pages``; returns its address.

        Callable from non-generator contexts (an ``on_page`` callback):
        the disk completion is parked and waited out by :meth:`drain`.
        """
        addr, event = self.db.temp.write_run(n_pages)
        self._pending.append(event)
        self.spill_requested = False
        return addr

    def drain(self) -> Generator:
        """Wait for every outstanding spill write to land."""
        pending, self._pending = self._pending, []
        for event in pending:
            if not event.triggered:
                yield event

    def read_back(self, addr: int, n_pages: int) -> Generator:
        """Read a spilled run back from temp space."""
        yield self.db.temp.read_run(addr, n_pages)

    def release(self) -> int:
        """Return every held frame to the pool."""
        if self.reservation is None:
            return 0
        return self.db.pool.release_frames(self.reservation)

    def stats(self) -> dict:
        """Reservation counters for reports."""
        return {
            "requested_pages": self.requested_pages,
            "granted_pages": self.granted_initial,
            "clawed_pages": self.clawed_pages,
            "pressure_events": self.pressure_events,
        }
