"""CPU cost model for query processing.

Operator and expression costs are expressed in abstract *units per row*;
the :class:`CostModel` converts units to simulated seconds.  The default
``unit_seconds`` is calibrated so that a TPC-H Q6-shaped scan (a few
predicate terms, almost no aggregation) is strongly I/O-bound while a
Q1-shaped scan (many aggregates with arithmetic) is CPU-bound on a
four-core machine — the property the paper's two staggered-query
experiments rely on.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Conversion from abstract work units to simulated CPU seconds."""

    #: Seconds per work unit (one primitive per-row operation).
    unit_seconds: float = 0.15e-6
    #: Fixed units charged per page visited (latching, slot iteration).
    per_page_units: float = 50.0
    #: Units per row surviving a filter (copy/compact cost).
    filter_compact_units: float = 0.5
    #: Units per row per aggregate update.
    agg_units: float = 2.0
    #: Units per row for group-key hashing when grouping.
    group_key_units: float = 3.0
    #: Units per row for the NaN inspection ``count(expr)`` performs.
    count_nonnull_units: float = 0.3
    #: Units per temp page serialized when a budgeted operator spills.
    spill_write_units_per_page: float = 40.0
    #: Units per temp page deserialized when spilled state is read back.
    spill_read_units_per_page: float = 30.0
    #: Units per group merged back from a spilled partition or run.
    spill_merge_units: float = 2.5
    #: Units per group per comparison level when the sort-based
    #: aggregation strategy sorts an in-memory run before spilling it.
    sort_run_units: float = 1.2
    #: Units per probe-side row looked up in a join hash table.
    join_probe_units: float = 2.0
    #: Units per build-side row inserted into a join hash table.
    join_build_units: float = 3.0

    def __post_init__(self) -> None:
        if self.unit_seconds <= 0:
            raise ValueError(f"unit_seconds must be positive, got {self.unit_seconds}")

    def seconds(self, units: float) -> float:
        """Convert work units to simulated seconds."""
        return units * self.unit_seconds


DEFAULT_COST_MODEL = CostModel()
