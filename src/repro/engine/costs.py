"""CPU cost model for query processing.

Operator and expression costs are expressed in abstract *units per row*;
the :class:`CostModel` converts units to simulated seconds.  The default
``unit_seconds`` is calibrated so that a TPC-H Q6-shaped scan (a few
predicate terms, almost no aggregation) is strongly I/O-bound while a
Q1-shaped scan (many aggregates with arithmetic) is CPU-bound on a
four-core machine — the property the paper's two staggered-query
experiments rely on.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Conversion from abstract work units to simulated CPU seconds."""

    #: Seconds per work unit (one primitive per-row operation).
    unit_seconds: float = 0.15e-6
    #: Fixed units charged per page visited (latching, slot iteration).
    per_page_units: float = 50.0
    #: Units per row surviving a filter (copy/compact cost).
    filter_compact_units: float = 0.5
    #: Units per row per aggregate update.
    agg_units: float = 2.0
    #: Units per row for group-key hashing when grouping.
    group_key_units: float = 3.0

    def __post_init__(self) -> None:
        if self.unit_seconds <= 0:
            raise ValueError(f"unit_seconds must be positive, got {self.unit_seconds}")

    def seconds(self, units: float) -> float:
        """Convert work units to simulated seconds."""
        return units * self.unit_seconds


DEFAULT_COST_MODEL = CostModel()
