"""The database facade: one object wiring every subsystem together."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.buffer.pool import BufferPool
from repro.buffer.push import PushPipeline
from repro.buffer.replacement import make_policy
from repro.buffer.replacement.pbm import PbmPolicy
from repro.core.config import SharingConfig
from repro.core.pbm import PbmScanManager
from repro.core.policy import (
    SHARING_POLICY_NAMES,
    SharingPolicy,
    make_sharing_policy,
)
from repro.disk.array import DiskArray
from repro.disk.device import Disk
from repro.disk.geometry import DiskGeometry
from repro.engine.costs import CostModel
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.metrics.collector import MetricsCollector
from repro.metrics.cpu import CpuBreakdown, compute_cpu_breakdown
from repro.sim.kernel import Simulator
from repro.sim.resource import Resource
from repro.storage.catalog import Catalog
from repro.storage.schema import TableSchema
from repro.storage.table import Table
from repro.storage.tablespace import Tablespace


@dataclass(frozen=True)
class SystemConfig:
    """Whole-system configuration for one simulated database instance."""

    n_cpus: int = 4
    #: Absolute pool size in pages; None derives it from pool_fraction.
    pool_pages: Optional[int] = None
    #: Pool size as a fraction of the database (the paper used ~5 %).
    pool_fraction: float = 0.05
    #: Floor on the derived pool size (must cover pins + prefetch runs).
    min_pool_pages: int = 96
    policy: str = "priority-lru"
    #: Which scan-sharing strategy coordinates scans (see
    #: :data:`repro.core.policy.SHARING_POLICY_NAMES`).  ``pbm``
    #: additionally replaces the bufferpool victim policy with the
    #: reuse-time-predictive one while sharing is enabled.
    sharing_policy: str = "grouping-throttling"
    disk_scheduler: str = "fifo"
    #: Number of striped spindles; 1 = single disk (the default model).
    n_disks: int = 1
    disk_stripe_pages: int = 64
    #: Stripe unit measured in prefetch extents; when set it overrides
    #: ``disk_stripe_pages`` (as ``stripe_extents * extent_size``) so one
    #: pushed extent always lands on exactly one device.
    stripe_extents: Optional[int] = None
    #: Leader-driven push prefetch pipeline.  Off by default: the classic
    #: pull model, byte-identical to a build without the pipeline.
    push_enabled: bool = False
    #: Extents kept in flight ahead of each driving scan (0 = auto).
    push_depth: int = 0
    geometry: DiskGeometry = field(default_factory=DiskGeometry)
    sharing: SharingConfig = field(default_factory=SharingConfig)
    cost: CostModel = field(default_factory=CostModel)
    #: Kernel CPU cost attributed per physical I/O request ("system" time).
    io_syscall_cpu: float = 20e-6
    #: CPU cost of one sharing-manager call (the paper's sub-1 % overhead).
    manager_call_overhead_cpu: float = 2e-6
    #: Spill strategy for memory-budgeted aggregation: ``hash`` evicts
    #: one hash partition at a time, ``sort`` sorts the whole in-memory
    #: table into a run (the external sort-aggregate shape).  Only
    #: queries that set a budget are affected.
    agg_strategy: str = "hash"
    #: Pages of simulated temp space for operator spills.  The region is
    #: carved out of the shared device lazily, on the first spill, so
    #: spill-free runs are byte-identical to builds without temp space.
    temp_space_pages: int = 4096
    extent_size: int = 16
    seed: int = 42
    #: Record every scan's visited page order (costs memory; used by the
    #: trace analyzer in :mod:`repro.metrics.access_log`).
    record_page_visits: bool = False
    #: ``SimDispatch`` sampling for the kernel event loop: 1 traces every
    #: dispatch (the historical behavior), ``N`` every Nth, 0 turns the
    #: per-event tracer check off entirely — the setting for soak-scale
    #: runs.  Only dispatch events are affected; buffer/disk/scan trace
    #: events always emit.
    trace_dispatch_sample: int = 1
    #: Deterministic fault schedule; None (the default) leaves every
    #: injection point dormant and the system byte-identical to a build
    #: without the fault layer.
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.n_cpus < 1:
            raise ValueError(f"n_cpus must be >= 1, got {self.n_cpus}")
        if not 0.0 < self.pool_fraction <= 1.0:
            raise ValueError(
                f"pool_fraction must be in (0, 1], got {self.pool_fraction}"
            )
        if self.extent_size < 1:
            raise ValueError(f"extent_size must be >= 1, got {self.extent_size}")
        if self.n_disks < 1:
            raise ValueError(f"n_disks must be >= 1, got {self.n_disks}")
        if self.disk_stripe_pages < 1:
            raise ValueError(
                f"disk_stripe_pages must be >= 1, got {self.disk_stripe_pages}"
            )
        if self.stripe_extents is not None and self.stripe_extents < 1:
            raise ValueError(
                f"stripe_extents must be >= 1, got {self.stripe_extents}"
            )
        if self.push_depth < 0:
            raise ValueError(f"push_depth must be >= 0, got {self.push_depth}")
        if self.sharing_policy not in SHARING_POLICY_NAMES:
            raise ValueError(
                f"unknown sharing policy {self.sharing_policy!r}; "
                f"known: {SHARING_POLICY_NAMES}"
            )
        if self.trace_dispatch_sample < 0:
            raise ValueError(
                f"trace_dispatch_sample must be >= 0, "
                f"got {self.trace_dispatch_sample}"
            )
        # Imported here (not at module top) to keep database <-> spill
        # free of an import cycle.
        from repro.engine.spill import AGG_STRATEGIES

        if self.agg_strategy not in AGG_STRATEGIES:
            raise ValueError(
                f"unknown agg_strategy {self.agg_strategy!r}; "
                f"known: {AGG_STRATEGIES}"
            )
        if self.temp_space_pages < 1:
            raise ValueError(
                f"temp_space_pages must be >= 1, got {self.temp_space_pages}"
            )


class Database:
    """A simulated database instance.

    Usage::

        db = Database(SystemConfig(sharing=SharingConfig(enabled=True)))
        db.create_table(schema, n_pages=1600)
        db.open()
        ... run queries via repro.engine.executor ...
    """

    def __init__(self, config: Optional[SystemConfig] = None):
        self.config = config or SystemConfig()
        self.sim = Simulator(
            trace_dispatch_sample=self.config.trace_dispatch_sample
        )
        if self.config.n_disks > 1:
            stripe_pages = self.config.disk_stripe_pages
            if self.config.stripe_extents is not None:
                stripe_pages = self.config.stripe_extents * self.config.extent_size
            self.disk = DiskArray(
                self.sim,
                n_disks=self.config.n_disks,
                geometry=self.config.geometry,
                stripe_pages=stripe_pages,
                scheduler=self.config.disk_scheduler,
            )
        else:
            self.disk = Disk(self.sim, self.config.geometry,
                             scheduler=self.config.disk_scheduler)
        self.tablespace = Tablespace(self.config.geometry.total_pages)
        self.catalog = Catalog(self.tablespace)
        self.cpu = Resource(self.sim, self.config.n_cpus, name="cpu")
        self.metrics = MetricsCollector()
        self.cost = self.config.cost
        self._pool: Optional[BufferPool] = None
        self._sharing: Optional[SharingPolicy] = None
        self._push: Optional[PushPipeline] = None
        self.faults: Optional[FaultInjector] = None
        self._temp = None
        self._block_indexes: dict = {}
        self._index_managers: dict = {}

    # ------------------------------------------------------------------
    # Schema management
    # ------------------------------------------------------------------

    def create_table(
        self, schema: TableSchema, n_pages: int, extent_size: Optional[int] = None
    ) -> Table:
        """Create and register a table (before :meth:`open`)."""
        if self._pool is not None:
            raise RuntimeError("cannot create tables after the database is opened")
        table = Table(
            schema,
            n_pages=n_pages,
            extent_size=extent_size or self.config.extent_size,
            seed=self.config.seed,
        )
        return self.catalog.create_table(table)

    def open(self) -> "Database":
        """Size and build the bufferpool and the sharing manager."""
        if self._pool is not None:
            raise RuntimeError("database already open")
        if len(self.catalog) == 0:
            raise RuntimeError("create at least one table before opening")
        capacity = self.config.pool_pages or max(
            self.config.min_pool_pages,
            int(self.catalog.total_pages * self.config.pool_fraction),
        )
        self._sharing = make_sharing_policy(
            self.config.sharing_policy, self.sim, self.catalog, capacity,
            self.config.sharing,
        )
        if (
            self.config.sharing_policy == "pbm"
            and self.config.sharing.enabled
        ):
            # PBM *is* a replacement policy: with sharing on, the pool
            # evicts by predicted reuse time instead of config.policy.
            pool_policy = make_policy("pbm", capacity)
        else:
            pool_policy = make_policy(self.config.policy, capacity)
        if isinstance(pool_policy, PbmPolicy) and isinstance(
            self._sharing, PbmScanManager
        ):
            pool_policy.bind(self._sharing)
        self._pool = BufferPool(
            self.sim,
            self.disk,
            capacity=capacity,
            address_of=self.catalog.address_of,
            policy=pool_policy,
        )
        if self.config.push_enabled:
            self._push = PushPipeline(
                self.sim,
                self._pool,
                self.catalog,
                self._sharing,
                depth=self.config.push_depth,
            )
        if self.config.fault_plan is not None:
            self.faults = FaultInjector(self.sim, self.config.fault_plan)
            self.faults.attach(
                disk=self.disk, pool=self._pool, manager=self._sharing
            )
        return self

    @property
    def is_open(self) -> bool:
        """Whether :meth:`open` has been called."""
        return self._pool is not None

    @property
    def pool(self) -> BufferPool:
        """The bufferpool (requires :meth:`open`)."""
        if self._pool is None:
            raise RuntimeError("database not open; call Database.open() first")
        return self._pool

    @property
    def sharing(self) -> SharingPolicy:
        """The scan sharing policy (requires :meth:`open`)."""
        if self._sharing is None:
            raise RuntimeError("database not open; call Database.open() first")
        return self._sharing

    @property
    def push(self) -> Optional[PushPipeline]:
        """The push prefetch pipeline, or None when disabled/not open."""
        return self._push

    @property
    def sharing_enabled(self) -> bool:
        """Whether the sharing mechanism is active."""
        return self.config.sharing.enabled

    @property
    def temp(self):
        """Simulated temp space for operator spills (lazily created).

        The :class:`~repro.engine.memory.TempSpace` object itself is
        cheap; its tablespace region is only carved out on the first
        actual spill, so runs that never spill leave the disk layout —
        and every digest — untouched.
        """
        if self._temp is None:
            from repro.engine.memory import TempSpace

            self._temp = TempSpace(self, self.config.temp_space_pages)
        return self._temp

    # ------------------------------------------------------------------
    # Block indexes (MDC-style; used by index-scan query steps)
    # ------------------------------------------------------------------

    def create_block_index(
        self, table_name: str, block_size_pages: Optional[int] = None,
        scatter: bool = True,
    ):
        """Create an MDC-style block index over a table.

        ``scatter=True`` (default) models out-of-order inserts: entries
        are key-ordered but blocks are spread across the table, so index
        scans produce the non-sequential access pattern the SISCAN
        machinery exists for.
        """
        from repro.extensions.index_sharing.index import BlockIndex

        if table_name in self._block_indexes:
            raise ValueError(f"table {table_name!r} already has a block index")
        table = self.catalog.table(table_name)
        index = BlockIndex(
            table,
            block_size_pages=block_size_pages or self.config.extent_size,
            scatter=scatter,
            scatter_seed=self.config.seed,
        )
        self._block_indexes[table_name] = index
        return index

    def block_index(self, table_name: str):
        """The table's block index (raises if none was created)."""
        try:
            return self._block_indexes[table_name]
        except KeyError:
            raise KeyError(
                f"no block index on {table_name!r}; call create_block_index"
            ) from None

    def index_sharing_manager(self, table_name: str):
        """The (lazily created) ISM coordinating SISCANs on one index."""
        from repro.extensions.index_sharing.manager import IndexScanSharingManager

        if table_name not in self._index_managers:
            index = self.block_index(table_name)
            self._index_managers[table_name] = IndexScanSharingManager(
                self.sim,
                pages_per_entry=index.block_size_pages,
                pool_capacity=self.pool.capacity,
                config=self.config.sharing,
            )
        return self._index_managers[table_name]

    # ------------------------------------------------------------------
    # Scan support
    # ------------------------------------------------------------------

    def default_scan_speed_estimate(self, table_name: str) -> float:
        """Optimizer-style pages/second estimate for an I/O-bound scan."""
        del table_name  # same device for every table
        return 1.0 / self.config.geometry.transfer_time(1)

    def charge_manager_call_overhead(self) -> Generator:
        """Charge the CPU cost of one sharing-manager call."""
        overhead = self.config.manager_call_overhead_cpu
        if overhead > 0:
            yield self.cpu.acquire()
            yield self.sim.timeout(overhead)
            self.cpu.release()

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Drive the simulation; returns the final simulated time."""
        return self.sim.run(until)

    def cpu_breakdown(self, until: Optional[float] = None) -> CpuBreakdown:
        """iostat-style user/system/idle/iowait fractions over the run."""
        end = until if until is not None else self.sim.now
        io_requests = self.disk.stats.reads + self.disk.stats.writes
        return compute_cpu_breakdown(
            self.cpu.busy_timeline,
            self.disk.outstanding_timeline,
            cores=self.config.n_cpus,
            until=end,
            io_requests=io_requests,
            syscall_cost=self.config.io_syscall_cpu,
        )
