"""Query and stream execution on the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.engine.database import Database
from repro.engine.query import QuerySpec, ScanStep
from repro.metrics.collector import QueryRecord
from repro.scans.base import ScanResult
from repro.scans.shared_scan import SharedTableScan
from repro.scans.table_scan import TableScan
from repro.trace.events import QueryFinished, QueryStarted
from repro.trace.tracer import get_tracer


@dataclass
class StepResult:
    """Outcome of one scan step: the scan's mechanics plus its values."""

    label: str
    scan: ScanResult
    values: object
    #: Reservation/spill counters for memory-budgeted steps; None for
    #: classic steps.
    operator_stats: Optional[Dict[str, object]] = None


@dataclass
class QueryResult:
    """Outcome of one query execution."""

    name: str
    stream_id: int
    started_at: float
    finished_at: float
    steps: List[StepResult] = field(default_factory=list)

    @property
    def elapsed(self) -> float:
        """Simulated end-to-end query time."""
        return self.finished_at - self.started_at

    @property
    def pages_scanned(self) -> int:
        """Total pages visited across steps."""
        return sum(step.scan.pages_scanned for step in self.steps)

    @property
    def cpu_seconds(self) -> float:
        """Total CPU charged across steps."""
        return sum(step.scan.cpu_seconds for step in self.steps)

    @property
    def throttle_seconds(self) -> float:
        """Total inserted throttle waits served."""
        return sum(step.scan.throttle_seconds for step in self.steps)

    @property
    def values(self) -> Dict[str, object]:
        """Per-step pipeline results, keyed by step label (or index)."""
        return {
            step.label or f"step{index}": step.values
            for index, step in enumerate(self.steps)
        }

    def operator_stats(self) -> Dict[str, float]:
        """Summed reservation/spill counters over budgeted steps."""
        totals: Dict[str, float] = {}
        for step in self.steps:
            if not step.operator_stats:
                continue
            for key, value in step.operator_stats.items():
                if isinstance(value, (int, float)):
                    totals[key] = totals.get(key, 0) + value
        return totals


@dataclass
class StreamResult:
    """Outcome of one stream (a sequence of queries)."""

    stream_id: int
    started_at: float
    finished_at: float
    queries: List[QueryResult] = field(default_factory=list)

    @property
    def elapsed(self) -> float:
        """Stream duration from its first query start to its last end."""
        return self.finished_at - self.started_at


def execute_query(
    db: Database, spec: QuerySpec, stream_id: int = 0
) -> Generator:
    """Simulation process body for one query; returns a :class:`QueryResult`."""
    result = QueryResult(
        name=spec.name, stream_id=stream_id, started_at=db.sim.now, finished_at=0.0
    )
    tracer = get_tracer()
    if tracer.enabled:
        tracer.emit(QueryStarted(
            time=result.started_at, stream_id=stream_id, query=spec.name,
        ))
    # Join state threaded between a build step and its probe step(s):
    # the built hash table, the sink (for sizing), and the still-held
    # frame reservation the probe passes run under.
    join_state: Dict[str, object] = {}
    for index, step in enumerate(spec.steps):
        for repeat in range(step.repeats):
            step_result = yield from _execute_step(db, step, index, join_state)
            if step.repeats > 1:
                step_result.label = f"{step_result.label}#{repeat}"
            result.steps.append(step_result)
    _release_join_state(join_state)
    result.finished_at = db.sim.now
    tracer = get_tracer()
    if tracer.enabled:
        tracer.emit(QueryFinished(
            time=result.finished_at, stream_id=stream_id, query=spec.name,
            elapsed=result.elapsed, pages_scanned=result.pages_scanned,
            throttle_seconds=result.throttle_seconds,
        ))
    db.metrics.record_query(
        QueryRecord(
            stream_id=stream_id,
            query_name=spec.name,
            started_at=result.started_at,
            finished_at=result.finished_at,
            pages_scanned=result.pages_scanned,
            cpu_seconds=result.cpu_seconds,
            throttle_seconds=result.throttle_seconds,
        )
    )
    return result


def _terminal_operator(pipeline):
    """The pipeline's terminal (sink) operator."""
    op = pipeline.entry
    while op.downstream is not None:
        op = op.downstream
    return op


def _release_join_state(join_state: Dict[str, object]) -> None:
    """Return any frames a join still holds (end-of-query safety net)."""
    memory = join_state.pop("memory", None)
    if memory is not None:
        memory.release()
    join_state.clear()


def _negotiate_memory(db: Database, step: ScanStep, label: str, kind: str):
    """Reserve frames for a budgeted step; None for classic steps."""
    from repro.engine.memory import OperatorMemory
    from repro.engine.planner import resolve_budget_pages

    requested = (
        step.join_budget_pages if kind == "join" else step.agg_budget_pages
    )
    if requested is None:
        return None
    budget = resolve_budget_pages(requested, db.pool.capacity)
    memory = OperatorMemory(db, f"{kind}[{label}]", budget)
    memory.negotiate()
    return memory


def _run_step_scan(
    db: Database, step: ScanStep, pipeline, table, first_page, last_page
) -> Generator:
    """Run one physical scan feeding ``pipeline``; returns its result."""
    # A sharing scan may start mid-range and wrap, so a step that needs
    # rows in physical order must use the vanilla operator (paper §4.1).
    if db.sharing_enabled and not step.requires_order:
        scan = SharedTableScan(
            db,
            step.table,
            first_page,
            last_page,
            on_page=pipeline.process_page,
            estimated_speed=_estimate_scan_speed(db, step, table.schema.rows_per_page),
            record_visits=db.config.record_page_visits,
        )
    else:
        scan = TableScan(
            db, step.table, first_page, last_page,
            on_page=pipeline.process_page,
            record_visits=db.config.record_page_visits,
        )
    result = yield from scan.run()
    return result


def _execute_step(
    db: Database,
    step: ScanStep,
    index: int,
    join_state: Optional[Dict[str, object]] = None,
) -> Generator:
    if step.via_index:
        return (yield from _execute_index_step(db, step, index))
    if join_state is None:
        join_state = {}
    label = step.label or f"step{index}"
    table = db.catalog.table(step.table)
    first_page, last_page = step.page_range(table)
    if step.join_probe_key is not None:
        return (
            yield from _execute_probe_step(
                db, step, label, table, first_page, last_page, join_state
            )
        )
    memory = None
    if step.join_build_key is not None:
        # A fresh build releases whatever a previous join left behind.
        _release_join_state(join_state)
        memory = _negotiate_memory(db, step, label, "join")
    else:
        memory = _negotiate_memory(db, step, label, "agg")
    pipeline = step.build_pipeline(
        db.cost, memory=memory, agg_strategy=db.config.agg_strategy
    )
    scan_result = yield from _run_step_scan(
        db, step, pipeline, table, first_page, last_page
    )
    if pipeline.needs_finalize:
        # Spilled state merges back here — temp reads and merge CPU land
        # on the simulated clock after the scan itself finished.
        yield from pipeline.finalize(db)
    values = pipeline.result()
    operator_stats = None
    terminal = _terminal_operator(pipeline)
    if memory is not None:
        operator_stats = dict(memory.stats())
        spill = getattr(terminal, "spill", None)
        if spill is not None:
            operator_stats.update(spill.as_dict())
    if step.join_build_key is not None:
        # Keep the reservation: probe passes run under it (and compete
        # with scans for the remaining frames).  Released after probing.
        join_state["table"] = values
        join_state["sink"] = terminal
        join_state["memory"] = memory
    elif memory is not None:
        memory.release()
    return StepResult(
        label=label, scan=scan_result, values=values,
        operator_stats=operator_stats,
    )


def _execute_probe_step(
    db: Database,
    step: ScanStep,
    label: str,
    table,
    first_page: int,
    last_page: int,
    join_state: Dict[str, object],
) -> Generator:
    """Run the probe side of a join as one or more multibuffer passes.

    When the build table needs more frames than the join's reservation
    holds, the probe range is scanned once per chunk — the multibuffer
    trade of extra probe I/O for bounded memory.  Each pass counts
    matches only for its chunk's keys, so the summed counts equal the
    single-pass join result exactly.
    """
    from repro.engine.spill import chunk_factor

    build_table = join_state.get("table") or {}
    sink = join_state.get("sink")
    memory = join_state.get("memory")
    pages_needed = sink.pages_needed if sink is not None else 0
    granted = memory.pages if memory is not None else 1
    n_chunks = chunk_factor(pages_needed, max(1, granted))
    combined_scan: Optional[ScanResult] = None
    rows_probed = 0
    matches = 0
    for chunk_id in range(n_chunks):
        pipeline = step.build_pipeline(
            db.cost, join_table=build_table, chunk=(chunk_id, n_chunks)
        )
        scan_result = yield from _run_step_scan(
            db, step, pipeline, table, first_page, last_page
        )
        chunk_values = pipeline.result()
        rows_probed += chunk_values["rows_probed"]
        matches += chunk_values["matches"]
        if combined_scan is None:
            combined_scan = scan_result
        else:
            combined_scan.pages_scanned += scan_result.pages_scanned
            combined_scan.rows_seen += scan_result.rows_seen
            combined_scan.cpu_seconds += scan_result.cpu_seconds
            combined_scan.throttle_seconds += scan_result.throttle_seconds
            combined_scan.finished_at = scan_result.finished_at
    operator_stats: Dict[str, object] = {
        "join_chunks": n_chunks,
        "build_pages_needed": pages_needed,
    }
    if memory is not None:
        operator_stats.update(memory.stats())
    if sink is not None and getattr(sink, "spill", None) is not None:
        operator_stats.update(sink.spill.as_dict())
    _release_join_state(join_state)
    assert combined_scan is not None
    return StepResult(
        label=label,
        scan=combined_scan,
        values={"rows_probed": rows_probed, "matches": matches,
                "chunks": n_chunks},
        operator_stats=operator_stats,
    )


def _execute_index_step(db: Database, step: ScanStep, index: int) -> Generator:
    """Run one step as a block-index scan (IXSCAN or SISCAN)."""
    from repro.extensions.index_sharing.siscan import IndexScan, SharedIndexScan
    from repro.workloads.tpch_schema import DATE_RANGE_DAYS

    block_index = db.block_index(step.table)
    table = db.catalog.table(step.table)
    # Resolve the step's range as a fraction of the index key domain.
    if step.fraction is not None:
        lo_frac, hi_frac = step.fraction
    elif step.cluster_range is not None:
        cluster = table.schema.clustering_column
        span = (cluster.high - cluster.low) if cluster else DATE_RANGE_DAYS
        low = cluster.low if cluster else 0.0
        lo_frac = min(max((step.cluster_range[0] - low) / span, 0.0), 1.0)
        hi_frac = min(max((step.cluster_range[1] - low) / span, 0.0), 1.0)
    else:
        lo_frac, hi_frac = 0.0, 1.0
    first_entry, last_entry = block_index.entries_for_key_fraction(lo_frac, hi_frac)
    pipeline = step.build_pipeline(db.cost)
    if db.sharing_enabled and not step.requires_order:
        scan = SharedIndexScan(
            db, block_index, db.index_sharing_manager(step.table),
            first_entry, last_entry, on_page=pipeline.process_page,
        )
    else:
        scan = IndexScan(
            db, block_index, first_entry, last_entry,
            on_page=pipeline.process_page,
        )
    index_result = yield from scan.run()
    # Adapt the index-scan result to the ScanResult shape steps report.
    scan_result = ScanResult(
        table_name=step.table,
        first_page=0,
        last_page=table.n_pages - 1,
        start_page=index_result.start_entry,
        pages_scanned=index_result.pages_fixed,
        rows_seen=index_result.pages_fixed * table.schema.rows_per_page,
        cpu_seconds=index_result.cpu_seconds,
        throttle_seconds=index_result.throttle_seconds,
        started_at=index_result.started_at,
        finished_at=index_result.finished_at,
    )
    return StepResult(
        label=step.label or f"step{index}", scan=scan_result,
        values=pipeline.result(),
    )


def _estimate_scan_speed(db: Database, step: ScanStep, rows_per_page: int) -> float:
    """Optimizer-style speed estimate: bounded by CPU or I/O per page."""
    pipeline = step.build_pipeline(db.cost)
    cpu_per_page = db.cost.seconds(pipeline.estimated_units_per_page(rows_per_page))
    io_per_page = db.config.geometry.transfer_time(1)
    return 1.0 / max(cpu_per_page, io_per_page)


def run_stream(
    db: Database,
    queries: Sequence[QuerySpec],
    stream_id: int,
    start_delay: float = 0.0,
) -> Generator:
    """Simulation process body for a stream; returns a :class:`StreamResult`."""
    if start_delay > 0:
        yield db.sim.timeout(start_delay)
    result = StreamResult(
        stream_id=stream_id, started_at=db.sim.now, finished_at=0.0
    )
    for spec in queries:
        query_result = yield from execute_query(db, spec, stream_id=stream_id)
        result.queries.append(query_result)
    result.finished_at = db.sim.now
    return result


@dataclass
class WorkloadResult:
    """Everything measured over one multi-stream workload run."""

    streams: List[StreamResult]
    makespan: float
    end_time: float
    pages_read: int
    physical_requests: int
    seeks: int
    buffer_hit_ratio: float
    throttle_seconds: float

    def stream_elapsed(self, stream_id: int) -> float:
        """One stream's duration."""
        for stream in self.streams:
            if stream.stream_id == stream_id:
                return stream.elapsed
        raise KeyError(f"no stream {stream_id}")

    def query_mean_elapsed(self) -> Dict[str, float]:
        """Mean elapsed time per query template across all streams."""
        sums: Dict[str, Tuple[float, int]] = {}
        for stream in self.streams:
            for query in stream.queries:
                total, count = sums.get(query.name, (0.0, 0))
                sums[query.name] = (total + query.elapsed, count + 1)
        return {name: total / count for name, (total, count) in sums.items()}


def run_workload(
    db: Database,
    streams: Sequence[Sequence[QuerySpec]],
    stagger: float = 0.0,
    stagger_list: Optional[Sequence[float]] = None,
) -> WorkloadResult:
    """Run several streams concurrently and drain the simulation.

    ``stagger`` starts stream *i* at ``i * stagger`` seconds;
    ``stagger_list`` gives explicit per-stream start delays instead.
    """
    if stagger_list is not None and len(stagger_list) != len(streams):
        raise ValueError(
            f"stagger_list has {len(stagger_list)} entries for {len(streams)} streams"
        )
    processes = []
    for stream_id, queries in enumerate(streams):
        delay = (
            stagger_list[stream_id] if stagger_list is not None else stream_id * stagger
        )
        processes.append(
            db.sim.spawn(
                run_stream(db, queries, stream_id, start_delay=delay),
                name=f"stream-{stream_id}",
            )
        )
    db.sim.run()
    stream_results: List[StreamResult] = []
    for process in processes:
        if not process.completion.triggered:
            raise RuntimeError(f"stream process {process.name} never finished")
        if process.completion.failed:
            raise process.completion.value
        stream_results.append(process.completion.value)
    makespan = (
        max(s.finished_at for s in stream_results)
        - min(s.started_at for s in stream_results)
        if stream_results
        else 0.0
    )
    return WorkloadResult(
        streams=stream_results,
        makespan=makespan,
        end_time=db.sim.now,
        pages_read=db.disk.stats.pages_read,
        physical_requests=db.disk.stats.reads,
        seeks=db.disk.stats.seeks,
        buffer_hit_ratio=db.pool.stats.hit_ratio,
        throttle_seconds=db.metrics.total_throttle_seconds(),
    )
