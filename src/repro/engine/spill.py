"""Memory-budgeted, spillable operators.

These terminal operators work within an :class:`~repro.engine.memory.\
OperatorMemory` frame budget negotiated with the bufferpool, instead of
the classic operators' implicit infinite workspace.  When their state
outgrows the granted frames — or when the pool *claws frames back* under
scan pressure — they shed state to simulated temp space and merge it
back in the pipeline's finalize phase, after the feeding scan ends.

Determinism rules (the whole experiment stack depends on them):

* partition selection uses ``zlib.crc32`` over the key's ``repr`` —
  never the builtin ``hash``, which is salted per process;
* the spill victim is always the largest partition, ties broken by the
  lowest partition id;
* sort runs order groups by ``repr(key)``, a total order even when keys
  contain NaN.

The capacity model is deliberately coarse: a frame holds
:data:`GROUPS_PER_PAGE` group accumulators or :data:`KEYS_PER_PAGE`
join-hash entries.  What matters for the simulation is not the exact
constant but that state size maps *monotonically* to frames, so budget
cuts translate into spill I/O on the shared disk.
"""

from __future__ import annotations

import zlib
from math import ceil, log2
from typing import Dict, FrozenSet, Generator, List, Optional, Sequence, Tuple

from repro.engine.costs import CostModel
from repro.engine.memory import OperatorMemory
from repro.engine.operators import (
    AggSpec,
    GroupByAggregate,
    Operator,
    _canonical_key_column,
)
from repro.storage.datagen import PageData

#: Group accumulators per bufferpool-sized frame (hash aggregation).
GROUPS_PER_PAGE = 64
#: Join-hash entries per frame (key + row count payload).
KEYS_PER_PAGE = 128
#: Hash-aggregation fan-out: in-memory groups are bucketed into this
#: many partitions; spills evict one partition at a time.
N_PARTITIONS = 8

#: Valid values for the ``agg_strategy`` knob.
AGG_STRATEGIES = ("hash", "sort")


def partition_of(key: object, n_partitions: int) -> int:
    """Deterministic partition for a group/join key.

    ``repr`` of canonicalized Python scalars is stable across processes;
    ``zlib.crc32`` is an unsalted fixed function — together they make
    partitioning reproducible where builtin ``hash`` would not be.
    """
    return zlib.crc32(repr(key).encode()) % n_partitions


def chunk_factor(pages_needed: int, pages_granted: int) -> int:
    """Multibuffer pass count: probe scans needed to cover a build side
    of ``pages_needed`` frames with ``pages_granted`` frames of memory."""
    if pages_needed <= 0:
        return 1
    return max(1, ceil(pages_needed / max(1, pages_granted)))


def _charge_cpu(db, seconds: float) -> Generator:
    """Acquire a core and burn ``seconds`` of simulated CPU."""
    if seconds > 0:
        yield db.cpu.acquire()
        try:
            yield db.sim.timeout(seconds)
        finally:
            db.cpu.release()


class SpillStats:
    """Counters every budgeted operator exposes to reports."""

    __slots__ = (
        "spill_events", "spilled_partitions", "spilled_groups",
        "spill_pages_written", "spill_pages_read", "peak_state",
        "merged_groups",
    )

    def __init__(self) -> None:
        self.spill_events = 0
        self.spilled_partitions = 0
        self.spilled_groups = 0
        self.spill_pages_written = 0
        self.spill_pages_read = 0
        self.peak_state = 0
        self.merged_groups = 0

    def as_dict(self) -> dict:
        return {
            "spill_events": self.spill_events,
            "spilled_partitions": self.spilled_partitions,
            "spilled_groups": self.spilled_groups,
            "spill_pages_written": self.spill_pages_written,
            "spill_pages_read": self.spill_pages_read,
            "peak_state": self.peak_state,
            "merged_groups": self.merged_groups,
        }


class BudgetedGroupBy(GroupByAggregate):
    """Hash aggregation under a frame budget (the ``hash`` strategy).

    Behaves exactly like :class:`GroupByAggregate` until the in-memory
    group table outgrows ``memory.pages`` frames (or the pool claws
    frames back): it then spills the largest hash partition to temp
    space and keeps going.  Spilled partitions are read back and merged
    in :meth:`finalize_sim`, so results are always identical to the
    unbudgeted operator — only the simulated cost differs.
    """

    def __init__(
        self,
        aggregates: Sequence[AggSpec],
        cost: CostModel,
        memory: OperatorMemory,
        group_by: Sequence[str] = (),
    ):
        super().__init__(aggregates, cost, group_by=group_by)
        self.memory = memory
        self.spill = SpillStats()
        # Spilled runs: (address, n_pages, groups payload).  The payload
        # stays in host memory — the simulation models the I/O, not the
        # bytes — but it is *removed* from the live table, so accumulator
        # state genuinely shrinks and later batches re-create groups.
        self._runs: List[Tuple[int, int, Dict[Tuple, Dict[str, float]]]] = []

    def _pages_for(self, n_groups: int) -> int:
        return ceil(n_groups / GROUPS_PER_PAGE) if n_groups else 0

    def push(self, data: PageData, n_rows: int) -> float:
        units = super().push(data, n_rows)
        self.spill.peak_state = max(self.spill.peak_state, len(self._groups))
        while self._groups and (
            self.memory.spill_requested
            or self._pages_for(len(self._groups)) > max(1, self.memory.pages)
        ):
            units += self._spill_one_partition()
        return units

    def _spill_one_partition(self) -> float:
        """Evict the largest partition to temp space; returns CPU units."""
        buckets: Dict[int, List[Tuple]] = {}
        for key in self._groups:
            buckets.setdefault(partition_of(key, N_PARTITIONS), []).append(key)
        victim = max(buckets, key=lambda pid: (len(buckets[pid]), -pid))
        keys = buckets[victim]
        payload = {key: self._groups.pop(key) for key in keys}
        n_pages = self._pages_for(len(payload))
        addr = self.memory.spill_out(n_pages)
        self._runs.append((addr, n_pages, payload))
        self.spill.spill_events += 1
        self.spill.spilled_partitions += 1
        self.spill.spilled_groups += len(payload)
        self.spill.spill_pages_written += n_pages
        return n_pages * self.cost.spill_write_units_per_page

    def _merge_payload(self, payload: Dict[Tuple, Dict[str, float]]) -> None:
        groups = self._groups
        for key, src in payload.items():
            dst = groups.setdefault(key, {})
            for agg in self.aggregates:
                if agg.func == "count":
                    if agg.name in src:
                        dst[agg.name] = dst.get(agg.name, 0) + src[agg.name]
                elif agg.func in ("sum", "avg"):
                    sum_key, count_key = f"{agg.name}__sum", f"{agg.name}__count"
                    if sum_key in src:
                        dst[sum_key] = dst.get(sum_key, 0.0) + src[sum_key]
                        dst[count_key] = dst.get(count_key, 0) + src[count_key]
                elif agg.name in src:
                    current = dst.get(agg.name)
                    merged = src[agg.name]
                    if current is not None:
                        merged = (
                            min(current, merged) if agg.func == "min"
                            else max(current, merged)
                        )
                    dst[agg.name] = merged
            self.spill.merged_groups += 1

    def finalize_sim(self, db) -> Generator:
        """Post-scan merge: wait out spill writes, read runs back, merge.

        The merge phase processes one run at a time (a real hash agg
        would recursively partition; one level is enough for the cost
        model) and charges temp-read I/O plus per-group merge CPU on the
        simulated clock.
        """
        yield from self.memory.drain()
        runs, self._runs = self._runs, []
        for addr, n_pages, payload in runs:
            yield from self.memory.read_back(addr, n_pages)
            self.spill.spill_pages_read += n_pages
            units = (
                n_pages * self.cost.spill_read_units_per_page
                + len(payload) * self.cost.spill_merge_units
            )
            yield from _charge_cpu(db, self.cost.seconds(units))
            self._merge_payload(payload)


class SortSpillGroupBy(BudgetedGroupBy):
    """Sort-based aggregation fallback (the ``sort`` strategy).

    Instead of evicting one hash partition, an overflow sorts the whole
    in-memory table by key (charging ``n·log₂n`` comparison units) and
    spills it as one sorted run — the classic external sort-aggregate
    shape.  Runs merge back in the finalize phase like the hash variant.
    """

    def _spill_one_partition(self) -> float:
        n_groups = len(self._groups)
        # Total order even for NaN-bearing keys: sort by repr.
        ordered = sorted(self._groups.items(), key=lambda kv: repr(kv[0]))
        payload = dict(ordered)
        self._groups.clear()
        n_pages = self._pages_for(n_groups)
        addr = self.memory.spill_out(n_pages)
        self._runs.append((addr, n_pages, payload))
        self.spill.spill_events += 1
        self.spill.spilled_partitions += 1
        self.spill.spilled_groups += n_groups
        self.spill.spill_pages_written += n_pages
        sort_units = n_groups * max(1.0, log2(max(2, n_groups))) * (
            self.cost.sort_run_units
        )
        return n_pages * self.cost.spill_write_units_per_page + sort_units


class HashBuildSink(Operator):
    """Terminal build side of a budgeted hash join.

    Collects per-key row counts into a hash table bounded by the
    operator's frame budget; overflow spills the largest partition.
    ``finish()`` (after :meth:`finalize_sim` merged every spill back)
    returns the complete ``key -> build row count`` table the probe side
    consumes.
    """

    def __init__(self, key_column: str, cost: CostModel,
                 memory: Optional[OperatorMemory] = None):
        super().__init__(None)
        self.key_column = key_column
        self.cost = cost
        self.memory = memory
        self.table: Dict[object, int] = {}
        self.rows_in = 0
        self.spill = SpillStats()
        self._runs: List[Tuple[int, int, Dict[object, int]]] = []

    def required_columns(self) -> Optional[FrozenSet[str]]:
        return frozenset((self.key_column,))

    def estimate_units_per_row(self) -> float:
        """Static per-row cost for scan-speed estimation."""
        return self.cost.join_build_units

    def _pages_for(self, n_keys: int) -> int:
        return ceil(n_keys / KEYS_PER_PAGE) if n_keys else 0

    @property
    def pages_needed(self) -> int:
        """Frames the complete build table occupies (post-merge)."""
        total = len(self.table) + sum(len(p) for _, _, p in self._runs)
        return self._pages_for(total)

    def push(self, data: PageData, n_rows: int) -> float:
        if n_rows == 0:
            return 0.0
        units = n_rows * self.cost.join_build_units
        table = self.table
        for key in _canonical_key_column(data[self.key_column]):
            table[key] = table.get(key, 0) + 1
        self.rows_in += n_rows
        self.spill.peak_state = max(self.spill.peak_state, len(table))
        if self.memory is not None:
            while table and (
                self.memory.spill_requested
                or self._pages_for(len(table)) > max(1, self.memory.pages)
            ):
                units += self._spill_one_partition()
        return units

    def _spill_one_partition(self) -> float:
        buckets: Dict[int, List[object]] = {}
        for key in self.table:
            buckets.setdefault(partition_of(key, N_PARTITIONS), []).append(key)
        victim = max(buckets, key=lambda pid: (len(buckets[pid]), -pid))
        payload = {key: self.table.pop(key) for key in buckets[victim]}
        n_pages = self._pages_for(len(payload))
        addr = self.memory.spill_out(n_pages)
        self._runs.append((addr, n_pages, payload))
        self.spill.spill_events += 1
        self.spill.spilled_partitions += 1
        self.spill.spilled_groups += len(payload)
        self.spill.spill_pages_written += n_pages
        return n_pages * self.cost.spill_write_units_per_page

    def finalize_sim(self, db) -> Generator:
        """Read spilled build partitions back and merge their counts."""
        if self.memory is None:
            return
        yield from self.memory.drain()
        runs, self._runs = self._runs, []
        for addr, n_pages, payload in runs:
            yield from self.memory.read_back(addr, n_pages)
            self.spill.spill_pages_read += n_pages
            units = (
                n_pages * self.cost.spill_read_units_per_page
                + len(payload) * self.cost.spill_merge_units
            )
            yield from _charge_cpu(db, self.cost.seconds(units))
            for key, count in payload.items():
                self.table[key] = self.table.get(key, 0) + count
                self.spill.merged_groups += 1

    def finish(self) -> object:
        return self.table


class HashProbe(Operator):
    """Terminal probe side of a multibuffer hash join.

    A probe pass covers one *chunk* of the build table: when the build
    side needs more frames than the join was granted, the executor runs
    ``n_chunks`` full probe scans (the multibuffer trade — extra probe
    I/O instead of extra memory) and each pass counts matches only for
    the keys in its chunk.  Chunk membership uses the same deterministic
    CRC partitioning as spilling, so the per-chunk match counts sum to
    exactly the single-pass total.
    """

    def __init__(self, key_column: str, cost: CostModel,
                 build_table: Dict[object, int],
                 chunk: Tuple[int, int] = (0, 1)):
        super().__init__(None)
        self.key_column = key_column
        self.cost = cost
        self.build_table = build_table
        self.chunk_id, self.n_chunks = chunk
        if not 0 <= self.chunk_id < self.n_chunks:
            raise ValueError(f"bad chunk {chunk}")
        self.rows_probed = 0
        self.matches = 0

    def required_columns(self) -> Optional[FrozenSet[str]]:
        return frozenset((self.key_column,))

    def estimate_units_per_row(self) -> float:
        """Static per-row cost for scan-speed estimation."""
        return self.cost.join_probe_units

    def push(self, data: PageData, n_rows: int) -> float:
        if n_rows == 0:
            return 0.0
        self.rows_probed += n_rows
        table = self.build_table
        chunk_id, n_chunks = self.chunk_id, self.n_chunks
        matches = 0
        for key in _canonical_key_column(data[self.key_column]):
            if n_chunks > 1 and partition_of(key, n_chunks) != chunk_id:
                continue
            matches += table.get(key, 0)
        self.matches += matches
        return n_rows * self.cost.join_probe_units

    def finish(self) -> object:
        return {"rows_probed": self.rows_probed, "matches": self.matches}
