"""Push-based vectorized operators above the scan.

A pipeline is a chain of operators fed one page-batch at a time by the
scan operator.  Each ``push`` returns the abstract CPU units the batch
cost, which the scan converts to simulated CPU time — so heavier
pipelines genuinely slow their scans down in the simulation, which is
what creates the speed heterogeneity the paper's throttling reacts to.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.costs import CostModel
from repro.engine.expressions import Expression
from repro.storage.datagen import PageData

_AGG_FUNCS = ("sum", "count", "min", "max", "avg")

#: The one NaN object used in canonical group keys.  ``nan != nan``, so
#: NaN keys built from fresh float objects split into one group per
#: batch; routing every NaN through this single object makes tuple keys
#: compare equal (tuple comparison short-circuits on identity) and hash
#: consistently.
_CANONICAL_NAN = float("nan")


def _canonical_key_column(values: np.ndarray) -> List:
    """Python-scalar view of one group-key column.

    ``tolist`` strips numpy scalar types (a ``np.int64`` key in one
    batch and a Python ``int`` in another would still compare equal, but
    mixed-object tuples defeat dict-key identity shortcuts and confuse
    downstream consumers), and float/object columns get their NaNs
    replaced by the shared :data:`_CANONICAL_NAN`.
    """
    items = values.tolist() if hasattr(values, "tolist") else list(values)
    kind = getattr(getattr(values, "dtype", None), "kind", None)
    if kind in ("f", "O"):
        return [_CANONICAL_NAN if v != v else v for v in items]
    return items


def _count_non_nan(values: np.ndarray) -> int:
    """Row count excluding NaN inputs (SQL ``count(expr)`` semantics)."""
    if getattr(values.dtype, "kind", None) == "f":
        return int(values.shape[0] - np.count_nonzero(np.isnan(values)))
    return int(values.shape[0])


@dataclass(frozen=True)
class AggSpec:
    """One aggregate: output name, function, and input expression."""

    name: str
    func: str
    expr: Optional[Expression] = None  # None only for count

    def __post_init__(self) -> None:
        if self.func not in _AGG_FUNCS:
            raise ValueError(f"unknown aggregate {self.func!r}; known: {_AGG_FUNCS}")
        if self.func != "count" and self.expr is None:
            raise ValueError(f"aggregate {self.name!r} ({self.func}) needs an expression")


class Operator(ABC):
    """One stage of a push-based pipeline."""

    def __init__(self, downstream: Optional["Operator"] = None):
        self.downstream = downstream

    @abstractmethod
    def push(self, data: PageData, n_rows: int) -> float:
        """Process a batch; returns abstract CPU units spent (including
        downstream stages)."""

    def required_columns(self) -> Optional[FrozenSet[str]]:
        """Columns this operator (and everything downstream of it) reads
        from its input batches.

        ``None`` means "unknown — assume all".  Upstream operators use
        this for projection pushdown: :class:`Filter` compacts only the
        columns the rest of the pipeline can touch.  The charged
        compaction cost is per *row*, not per column, so skipping unread
        columns changes no simulated timing — only host CPU.
        """
        return None

    def finish(self) -> object:
        """Finalize and return the pipeline result (terminal ops override)."""
        if self.downstream is not None:
            return self.downstream.finish()
        return None


class Filter(Operator):
    """Predicate evaluation + compaction."""

    def __init__(self, predicate: Expression, downstream: Operator,
                 cost: CostModel):
        super().__init__(downstream)
        self.predicate = predicate
        self.cost = cost
        self.rows_in = 0
        self.rows_out = 0
        # Projection pushdown: the operator chain is fixed at construction,
        # so the set of columns worth compacting is too.
        self._compact_columns = downstream.required_columns()

    def required_columns(self) -> Optional[FrozenSet[str]]:
        if self._compact_columns is None:
            return None
        return frozenset(self.predicate.columns()) | self._compact_columns

    def push(self, data: PageData, n_rows: int) -> float:
        mask = self.predicate.evaluate(data)
        units = n_rows * self.predicate.cost_units_per_row
        selected = int(np.count_nonzero(mask))
        self.rows_in += n_rows
        self.rows_out += selected
        if selected == 0:
            return units
        if selected == n_rows:
            filtered = data
        else:
            # Compact only the columns the rest of the pipeline can read
            # (all of them when the downstream can't say).  The charged
            # per-row compaction cost below is column-count independent,
            # so the pushdown changes host time only, never simulated
            # time.
            needed = self._compact_columns
            if needed is None:
                filtered = {name: values[mask] for name, values in data.items()}
            else:
                filtered = {
                    name: values[mask]
                    for name, values in data.items() if name in needed
                }
            units += selected * self.cost.filter_compact_units
        assert self.downstream is not None
        return units + self.downstream.push(filtered, selected)

    @property
    def selectivity(self) -> float:
        """Observed fraction of rows passing the predicate."""
        if self.rows_in == 0:
            return 0.0
        return self.rows_out / self.rows_in


class Project(Operator):
    """Compute named expressions as new columns."""

    def __init__(self, outputs: Dict[str, Expression], downstream: Operator,
                 cost: CostModel):
        super().__init__(downstream)
        self.outputs = outputs
        self.cost = cost

    def required_columns(self) -> Optional[FrozenSet[str]]:
        below = self.downstream.required_columns() if self.downstream else None
        if below is None:
            return None
        # Forwarded columns the downstream reads but we do not produce,
        # plus everything our expressions read.
        needed = set(below) - set(self.outputs)
        for expr in self.outputs.values():
            needed |= expr.columns()
        return frozenset(needed)

    def push(self, data: PageData, n_rows: int) -> float:
        units = 0.0
        projected = dict(data)
        for name, expr in self.outputs.items():
            projected[name] = expr.evaluate(data)
            units += n_rows * max(expr.cost_units_per_row, 0.5)
        assert self.downstream is not None
        return units + self.downstream.push(projected, n_rows)


class GroupByAggregate(Operator):
    """Terminal hash aggregation, optionally grouped.

    Without group columns, the result is a dict of aggregate values.
    With group columns, the result maps group-key tuples to such dicts.
    """

    def __init__(self, aggregates: Sequence[AggSpec], cost: CostModel,
                 group_by: Sequence[str] = ()):
        super().__init__(None)
        if not aggregates:
            raise ValueError("GroupByAggregate needs at least one aggregate")
        self.aggregates = list(aggregates)
        self.group_by = list(group_by)
        self.cost = cost
        # group key -> accumulator dict; the empty tuple is the global group.
        self._groups: Dict[Tuple, Dict[str, float]] = {}

    def required_columns(self) -> Optional[FrozenSet[str]]:
        needed = set(self.group_by)
        for agg in self.aggregates:
            if agg.expr is not None:
                needed |= agg.expr.columns()
        return frozenset(needed)

    def push(self, data: PageData, n_rows: int) -> float:
        if n_rows == 0:
            return 0.0
        units = n_rows * self.cost.agg_units * len(self.aggregates)
        # Evaluate aggregate inputs once per batch.
        inputs: List[Optional[np.ndarray]] = []
        for agg in self.aggregates:
            if agg.expr is None:
                inputs.append(None)
            else:
                values = agg.expr.evaluate(data)
                # Column-shaped results (the common case) skip the
                # broadcast view; only scalar expressions still need it.
                if getattr(values, "shape", None) != (n_rows,):
                    values = np.broadcast_to(values, (n_rows,))
                inputs.append(values)
                units += n_rows * agg.expr.cost_units_per_row
                if agg.func == "count":
                    # count(expr) inspects each value for NaN.
                    units += n_rows * self.cost.count_nonnull_units
        if not self.group_by:
            self._accumulate((), inputs, None, n_rows)
            return units
        units += n_rows * self.cost.group_key_units
        key_columns = [
            _canonical_key_column(data[name]) for name in self.group_by
        ]
        # Partition rows by composite key.
        keys = list(zip(*key_columns))
        order: Dict[Tuple, List[int]] = {}
        for row_index, key in enumerate(keys):
            order.setdefault(key, []).append(row_index)
        for key, row_indexes in order.items():
            idx = np.asarray(row_indexes)
            sliced = [None if arr is None else arr[idx] for arr in inputs]
            self._accumulate(key, sliced, idx, len(row_indexes))
        return units

    def _accumulate(
        self,
        key: Tuple,
        inputs: Sequence[Optional[np.ndarray]],
        idx: Optional[np.ndarray],
        n_rows: int,
    ) -> None:
        acc = self._groups.setdefault(key, {})
        for agg, values in zip(self.aggregates, inputs):
            if agg.func == "count":
                counted = n_rows if values is None else _count_non_nan(values)
                acc[agg.name] = acc.get(agg.name, 0) + counted
                continue
            assert values is not None
            if agg.func in ("sum", "avg"):
                acc[f"{agg.name}__sum"] = acc.get(f"{agg.name}__sum", 0.0) + float(
                    values.sum()
                )
                acc[f"{agg.name}__count"] = acc.get(f"{agg.name}__count", 0) + n_rows
            elif agg.func == "min":
                current = acc.get(agg.name)
                batch_min = float(values.min())
                acc[agg.name] = batch_min if current is None else min(current, batch_min)
            elif agg.func == "max":
                current = acc.get(agg.name)
                batch_max = float(values.max())
                acc[agg.name] = batch_max if current is None else max(current, batch_max)

    def finish(self) -> object:
        results: Dict[Tuple, Dict[str, float]] = {}
        for key, acc in self._groups.items():
            out: Dict[str, float] = {}
            for agg in self.aggregates:
                if agg.func == "count":
                    out[agg.name] = acc.get(agg.name, 0)
                elif agg.func == "sum":
                    out[agg.name] = acc.get(f"{agg.name}__sum", 0.0)
                elif agg.func == "avg":
                    count = acc.get(f"{agg.name}__count", 0)
                    out[agg.name] = (
                        acc.get(f"{agg.name}__sum", 0.0) / count if count else 0.0
                    )
                else:
                    out[agg.name] = acc.get(agg.name, 0.0)
            results[key] = out
        if not self.group_by:
            return results.get((), {agg.name: 0 for agg in self.aggregates})
        return results


class RowCounter(Operator):
    """Terminal operator that just counts rows (cheap sink for tests)."""

    def __init__(self) -> None:
        super().__init__(None)
        self.rows = 0

    def required_columns(self) -> Optional[FrozenSet[str]]:
        return frozenset()

    def push(self, data: PageData, n_rows: int) -> float:
        self.rows += n_rows
        return 0.1 * n_rows

    def finish(self) -> object:
        return self.rows


class Pipeline:
    """A built pipeline: entry operator + cost conversion.

    ``process_page`` is the scan's per-page callback target; it returns
    simulated CPU seconds.
    """

    def __init__(self, entry: Operator, cost: CostModel,
                 extra_units_per_row: float = 0.0):
        self.entry = entry
        self.cost = cost
        self.extra_units_per_row = extra_units_per_row
        self.pages = 0
        self.rows = 0

    def process_page(
        self, page_no: int, data: PageData, n_rows: Optional[int] = None
    ) -> float:
        """Push one page of ``n_rows`` rows; returns CPU seconds to charge.

        Scans pass ``n_rows`` explicitly (the schema's rows-per-page);
        inferring it from a column would crash on pages that projection
        pushdown compacted to zero columns (``required_columns() ==
        frozenset()``), so the inference below is only a fallback for
        legacy two-argument callers.
        """
        if n_rows is None:
            first = next(iter(data.values()), None)
            n_rows = 0 if first is None else len(first)
        units = self.entry.push(data, n_rows)
        units += self.cost.per_page_units
        units += n_rows * self.extra_units_per_row
        self.pages += 1
        self.rows += n_rows
        return self.cost.seconds(units)

    def estimated_units_per_page(self, rows_per_page: int) -> float:
        """Static cost estimate used for scan-speed estimation."""
        units = self.cost.per_page_units + rows_per_page * self.extra_units_per_row
        op: Optional[Operator] = self.entry
        survivors = float(rows_per_page)
        while op is not None:
            if isinstance(op, Filter):
                units += survivors * op.predicate.cost_units_per_row
                # Without statistics assume half the rows survive.
                survivors *= 0.5
            elif isinstance(op, Project):
                for expr in op.outputs.values():
                    units += survivors * max(expr.cost_units_per_row, 0.5)
            elif isinstance(op, GroupByAggregate):
                units += survivors * self.cost.agg_units * len(op.aggregates)
                for agg in op.aggregates:
                    if agg.expr is not None:
                        units += survivors * agg.expr.cost_units_per_row
                        if agg.func == "count":
                            # Mirror the per-row NaN inspection charged in
                            # push, so the speed estimate does not drift.
                            units += survivors * self.cost.count_nonnull_units
                if op.group_by:
                    units += survivors * self.cost.group_key_units
            else:
                # Operators defined outside this module (join sinks and
                # probes) advertise their per-row cost via a duck-typed
                # hook, keeping this module import-cycle free.
                estimate = getattr(op, "estimate_units_per_row", None)
                if estimate is not None:
                    units += survivors * estimate()
            op = op.downstream
        return units

    @property
    def needs_finalize(self) -> bool:
        """Whether any operator has post-scan simulated work to drive."""
        op: Optional[Operator] = self.entry
        while op is not None:
            if getattr(op, "finalize_sim", None) is not None:
                return True
            op = op.downstream
        return False

    def finalize(self, db) -> "object":
        """Drive every operator's post-scan work (a simulation generator).

        Memory-budgeted operators merge spilled partitions here — temp
        reads and merge CPU are charged on the simulated clock, after
        the scan itself has finished.  Classic pipelines have nothing to
        do and the generator yields no events.
        """
        op: Optional[Operator] = self.entry
        while op is not None:
            finalize_sim = getattr(op, "finalize_sim", None)
            if finalize_sim is not None:
                yield from finalize_sim(db)
            op = op.downstream

    def result(self) -> object:
        """Finalize the terminal operator."""
        return self.entry.finish()
