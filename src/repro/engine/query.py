"""Declarative query specifications.

A :class:`QuerySpec` is a named sequence of :class:`ScanStep` objects.
Each step scans one table range through a filter/aggregate pipeline;
steps run back to back (modelling the pipelined phases of a multi-table
plan — e.g. a hash join's build scan followed by its probe scan).  The
sharing mechanism operates entirely at the scan level, so this step
model preserves exactly the workload property the paper exploits: which
table ranges are being scanned concurrently, at which speeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.engine.costs import CostModel
from repro.engine.expressions import Expression
from repro.engine.operators import AggSpec, Filter, GroupByAggregate, Pipeline
from repro.storage.table import Table


@dataclass(frozen=True)
class ScanStep:
    """One table-range scan with its processing pipeline.

    Exactly one of ``cluster_range`` / ``fraction`` may be given;
    neither means a full-table scan.

    Attributes:
        table: Table to scan.
        cluster_range: (low, high) values on the table's clustering
            column; translated to a contiguous page range.
        fraction: (lo, hi) fractional slice of the table's pages.
        predicate: Row filter applied per page.
        aggregates: Aggregates computed over surviving rows.
        group_by: Grouping columns for the aggregates.
        extra_units_per_row: Extra CPU units per input row, modelling
            work above the scan that the step model folds in (join
            probing, sorting, expression-heavy projection).
        requires_order: The plan above needs rows in physical (key)
            order.  A sharing scan may start mid-range and wrap, breaking
            that order, so an order-requiring step always runs as a plain
            scan even when sharing is enabled (the paper's rule that
            ordered plans must keep the vanilla operator).
        label: Step name used in per-step results.
    """

    table: str
    cluster_range: Optional[Tuple[float, float]] = None
    fraction: Optional[Tuple[float, float]] = None
    predicate: Optional[Expression] = None
    aggregates: Tuple[AggSpec, ...] = ()
    group_by: Tuple[str, ...] = ()
    extra_units_per_row: float = 0.0
    requires_order: bool = False
    #: Access the table through its MDC-style block index (requires
    #: ``Database.create_block_index`` on the table).  Ranges then select
    #: *index-key* slices: entries are visited in key order, which on a
    #: scattered index is a non-sequential page pattern — the index-scan
    #: sharing (SISCAN) machinery coordinates these scans.
    via_index: bool = False
    #: Execute the scan this many times back to back — the inner of a
    #: nested-loop join re-scans its range once per outer batch, which is
    #: exactly the repeated-scan case the paper's last-finished placement
    #: (and the sequel's "scan D in the future") exploits.
    repeats: int = 1
    #: Frame budget for the terminal aggregation.  ``None`` keeps the
    #: classic unbudgeted operator; ``-1`` asks the planner for an
    #: automatic budget; a positive value requests that many frames.
    #: Budgeted aggregation negotiates a claw-backable bufferpool
    #: reservation and spills to temp space under pressure.
    agg_budget_pages: Optional[int] = None
    #: Build the hash table of a join on this column (the step becomes a
    #: join build side; a later step in the same query probes it).
    join_build_key: Optional[str] = None
    #: Probe the previously built join hash table on this column.  When
    #: the build side outgrew the join's frame grant, the executor runs
    #: this scan once per multibuffer chunk.
    join_probe_key: Optional[str] = None
    #: Frame budget for the join (build table + probe working set);
    #: same conventions as ``agg_budget_pages``.  Only meaningful on the
    #: build step — probe passes reuse the build step's reservation.
    join_budget_pages: Optional[int] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.cluster_range is not None and self.fraction is not None:
            raise ValueError(
                f"step on {self.table!r}: give cluster_range or fraction, not both"
            )
        if self.repeats < 1:
            raise ValueError(
                f"step on {self.table!r}: repeats must be >= 1, got {self.repeats}"
            )
        if self.join_build_key is not None and self.join_probe_key is not None:
            raise ValueError(
                f"step on {self.table!r}: a step is either a join build or a "
                f"join probe, not both"
            )
        for name, value in (
            ("agg_budget_pages", self.agg_budget_pages),
            ("join_budget_pages", self.join_budget_pages),
        ):
            if value is not None and value == 0:
                raise ValueError(
                    f"step on {self.table!r}: {name} must be positive or -1 "
                    f"(auto), got {value}"
                )

    def page_range(self, table: Table) -> Tuple[int, int]:
        """Resolve this step's inclusive page range on ``table``."""
        if table.name != self.table:
            raise ValueError(f"step is on {self.table!r}, got table {table.name!r}")
        if self.cluster_range is not None:
            return table.pages_for_cluster_range(*self.cluster_range)
        if self.fraction is not None:
            return table.pages_for_fraction(*self.fraction)
        return (0, table.n_pages - 1)

    def build_pipeline(
        self,
        cost: CostModel,
        memory=None,
        agg_strategy: str = "hash",
        join_table=None,
        chunk: Tuple[int, int] = (0, 1),
    ) -> Pipeline:
        """Construct a fresh pipeline for one execution of this step.

        With only ``cost`` given (the planner's estimation path and
        every pre-existing call site) the classic unbudgeted pipeline is
        built.  The executor passes ``memory`` (a negotiated
        :class:`~repro.engine.memory.OperatorMemory`) to get the
        budgeted spillable terminal instead, ``join_table`` + ``chunk``
        for probe passes, and ``agg_strategy`` to pick the hash or sort
        spill flavor.
        """
        terminal: object
        if self.join_build_key is not None:
            from repro.engine.spill import HashBuildSink

            terminal = HashBuildSink(self.join_build_key, cost, memory=memory)
        elif self.join_probe_key is not None:
            from repro.engine.spill import HashProbe

            terminal = HashProbe(
                self.join_probe_key, cost,
                build_table=join_table if join_table is not None else {},
                chunk=chunk,
            )
        else:
            aggregates = self.aggregates or (AggSpec("rows", "count"),)
            if memory is not None and self.agg_budget_pages is not None:
                from repro.engine.spill import BudgetedGroupBy, SortSpillGroupBy

                op_class = (
                    SortSpillGroupBy if agg_strategy == "sort"
                    else BudgetedGroupBy
                )
                terminal = op_class(
                    aggregates, cost, memory, group_by=self.group_by
                )
            else:
                terminal = GroupByAggregate(
                    aggregates, cost, group_by=self.group_by
                )
        if self.predicate is not None:
            entry = Filter(self.predicate, terminal, cost)
        else:
            entry = terminal
        return Pipeline(entry, cost, extra_units_per_row=self.extra_units_per_row)


@dataclass(frozen=True)
class QuerySpec:
    """A named query: an ordered sequence of scan steps."""

    name: str
    steps: Tuple[ScanStep, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError(f"query {self.name!r} needs at least one step")

    @property
    def tables(self) -> Tuple[str, ...]:
        """Tables touched, in step order."""
        return tuple(step.table for step in self.steps)
