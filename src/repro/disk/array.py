"""Striped multi-disk arrays.

The paper's testbeds used storage arrays (FAStT, 16 SSA disks per
node).  This module models the device-count dimension: a
:class:`DiskArray` stripes the address space over N independent
single-arm disks in fixed-size stripe units, splits each request at
stripe boundaries, and completes it when every sub-request has landed.
It exposes the same ``read``/``write``/``stats``/``outstanding_timeline``
surface as a single :class:`~repro.disk.device.Disk`, so the bufferpool
and the metrics layer work unchanged.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.disk.device import Disk
from repro.disk.geometry import DiskGeometry, StripeMap
from repro.disk.stats import DiskStats
from repro.sim.events import Event, SimulationError
from repro.sim.kernel import Simulator
from repro.sim.timeline import StepTimeline


class ArrayStats:
    """Aggregated statistics over the member disks (read-only view).

    The aggregate properties sum over every spindle; :attr:`per_device`
    exposes the individual :class:`~repro.disk.stats.DiskStats` buckets
    so ``bench`` and ``run`` tables can report both views.
    """

    def __init__(self, disks: List[Disk]):
        self._disks = disks

    @property
    def per_device(self) -> List[DiskStats]:
        """One stats bucket per member spindle, in device order."""
        return [disk.stats for disk in self._disks]

    @property
    def reads(self) -> int:
        return sum(d.stats.reads for d in self._disks)

    @property
    def writes(self) -> int:
        return sum(d.stats.writes for d in self._disks)

    @property
    def pages_read(self) -> int:
        return sum(d.stats.pages_read for d in self._disks)

    @property
    def pages_written(self) -> int:
        return sum(d.stats.pages_written for d in self._disks)

    @property
    def seeks(self) -> int:
        return sum(d.stats.seeks for d in self._disks)

    @property
    def seek_time(self) -> float:
        return sum(d.stats.seek_time for d in self._disks)

    @property
    def busy_time(self) -> float:
        return sum(d.stats.busy_time for d in self._disks)

    @property
    def io_retries(self) -> int:
        return sum(d.stats.io_retries for d in self._disks)

    @property
    def aged_dispatches(self) -> int:
        return sum(d.stats.aged_dispatches for d in self._disks)

    def _merged_trace(self, attr: str) -> List[Tuple[float, int]]:
        merged: List[Tuple[float, int]] = []
        for disk in self._disks:
            merged.extend(getattr(disk.stats, attr))
        merged.sort(key=lambda item: item[0])
        return merged

    @property
    def read_trace(self) -> List[Tuple[float, int]]:
        return self._merged_trace("read_trace")

    @property
    def seek_trace(self) -> List[Tuple[float, int]]:
        return self._merged_trace("seek_trace")

    def pages_read_per_bucket(self, until: float, bucket: float) -> List[float]:
        """Pages read per time bucket across all spindles."""
        return DiskStats().bucket_trace(self.read_trace, until, bucket)

    def seeks_per_bucket(self, until: float, bucket: float) -> List[float]:
        """Seeks per time bucket across all spindles."""
        return DiskStats().bucket_trace(self.seek_trace, until, bucket)


class DiskArray:
    """N striped disks behind a single request interface."""

    def __init__(
        self,
        sim: Simulator,
        n_disks: int,
        geometry: Optional[DiskGeometry] = None,
        stripe_pages: int = 64,
        scheduler: str = "fifo",
        stripe_map: Optional[StripeMap] = None,
    ):
        if n_disks < 1:
            raise SimulationError(f"need at least one disk, got {n_disks}")
        if stripe_pages < 1:
            raise SimulationError(f"stripe_pages must be >= 1, got {stripe_pages}")
        if stripe_map is not None and (
            stripe_map.n_devices != n_disks or stripe_map.stripe_pages != stripe_pages
        ):
            raise SimulationError(
                f"stripe_map ({stripe_map.n_devices} devices x "
                f"{stripe_map.stripe_pages} pages) disagrees with array "
                f"({n_disks} devices x {stripe_pages} pages)"
            )
        self.sim = sim
        self.geometry = geometry or DiskGeometry()
        self.n_disks = n_disks
        self.stripe_pages = stripe_pages
        self.stripe_map = stripe_map or StripeMap(
            n_devices=n_disks, stripe_pages=stripe_pages
        )
        self.disks = [
            Disk(sim, self.geometry, scheduler=scheduler, device_index=index)
            for index in range(n_disks)
        ]
        self.stats = ArrayStats(self.disks)
        self.outstanding_timeline = StepTimeline(initial=0)
        self._outstanding = 0

    def locate(self, page: int) -> Tuple[int, int]:
        """(disk index, local page address) for a global page address."""
        return self.stripe_map.locate(page)

    def read(self, start_page: int, n_pages: int) -> Event:
        """Read a contiguous global range; completes when all stripes do."""
        return self._submit(start_page, n_pages, is_write=False)

    def write(self, start_page: int, n_pages: int) -> Event:
        """Write a contiguous global range."""
        return self._submit(start_page, n_pages, is_write=True)

    def _submit(self, start_page: int, n_pages: int, is_write: bool) -> Event:
        if n_pages <= 0:
            raise SimulationError(f"transfer needs n_pages >= 1, got {n_pages}")
        sub_events: List[Event] = []
        page = start_page
        remaining = n_pages
        while remaining > 0:
            disk_index, local_page = self.stripe_map.locate(page)
            chunk = self.stripe_map.run_on_device(page, remaining)
            disk = self.disks[disk_index]
            if is_write:
                sub_events.append(disk.write(local_page, chunk))
            else:
                sub_events.append(disk.read(local_page, chunk))
            page += chunk
            remaining -= chunk
        self._outstanding += 1
        self.outstanding_timeline.record(self.sim.now, self._outstanding)
        combined = self.sim.all_of(sub_events)
        done = Event(self.sim)

        def finish(_event: Event) -> None:
            self._outstanding -= 1
            self.outstanding_timeline.record(self.sim.now, self._outstanding)
            done.succeed(_event.value)

        combined.add_callback(finish)
        return done

    def set_fault_injector(self, injector) -> None:
        """Wire a fault injector into every member disk."""
        for disk in self.disks:
            disk.set_fault_injector(injector)

    @property
    def busy(self) -> bool:
        """Whether any member disk is servicing a request."""
        return any(disk.busy for disk in self.disks)

    @property
    def queue_length(self) -> int:
        """Total queued requests across members."""
        return sum(disk.queue_length for disk in self.disks)
