"""Simulated storage device.

The paper measures its gains in *disk reads* and *disk seeks* (HP-UX and
AIX iostat counters).  This package provides the device model those
counters come from in the reproduction: a single-arm disk with a
seek + settle + transfer service-time model, a FIFO request queue, and full
per-request tracing so the experiment harness can rebuild the paper's
"reads over time" and "seeks over time" figures.
"""

from repro.disk.geometry import DiskGeometry
from repro.disk.device import Disk, DiskRequest
from repro.disk.array import ArrayStats, DiskArray
from repro.disk.stats import DiskStats

__all__ = ["ArrayStats", "Disk", "DiskArray", "DiskGeometry", "DiskRequest",
           "DiskStats"]
