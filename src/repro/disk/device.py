"""The simulated disk: FIFO request queue over a seek/transfer model.

Requests are serviced one at a time in arrival order (a single-arm device
behind a simple elevator-less controller — the worst case the paper's
seek-reduction argument is made against).  Each request reads or writes a
*contiguous* run of pages; callers that want scattered pages issue several
requests.  The device keeps a head-position cursor so consecutive requests
from well-grouped scans are recognized as sequential and skip the seek.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from repro.disk.geometry import DiskGeometry
from repro.disk.stats import DiskStats
from repro.sim.events import Event, SimulationError
from repro.sim.kernel import Simulator
from repro.sim.timeline import StepTimeline
from repro.trace.events import (
    DiskRequestComplete,
    DiskRequestQueued,
    DiskServiceStart,
)
from repro.trace.tracer import get_tracer


@dataclass
class DiskRequest:
    """One queued transfer of a contiguous page run."""

    start_page: int
    n_pages: int
    is_write: bool
    completion: Event
    submit_time: float
    service_start: float = field(default=0.0)
    # Dispatch counter value when the request entered the queue; the
    # elevator's aging bound is measured against it.
    enqueue_dispatch: int = field(default=0)
    # Transient-error retries already taken (fault injection only).
    retries: int = field(default=0)

    @property
    def end_page(self) -> int:
        """One past the last page of the run."""
        return self.start_page + self.n_pages


_SCHEDULERS = ("fifo", "elevator")


class Disk:
    """Single-arm simulated disk with queueing and full tracing.

    ``scheduler`` selects the service order: ``"fifo"`` (arrival order —
    the pessimistic baseline the paper's seek numbers come from) or
    ``"elevator"`` (LOOK: sweep toward increasing addresses serving the
    nearest queued request, reverse at the last one).  The elevator is
    the classic *device-level* answer to seek storms; the scheduler
    ablation uses it to show that coordination above the device still
    wins, because the elevator cannot eliminate re-reads.
    """

    #: Elevator aging bound: a queued request is force-served once this
    #: many dispatches have happened since it arrived.  Far above the
    #: longest natural LOOK wait (one full sweep over the queue), so it
    #: only trips under pathological one-sided arrival streams.
    DEFAULT_AGING_LIMIT = 512

    def __init__(self, sim: Simulator, geometry: Optional[DiskGeometry] = None,
                 scheduler: str = "fifo", aging_limit: Optional[int] = None,
                 device_index: int = 0):
        if scheduler not in _SCHEDULERS:
            raise SimulationError(
                f"unknown disk scheduler {scheduler!r}; known: {_SCHEDULERS}"
            )
        if aging_limit is not None and aging_limit < 1:
            raise SimulationError(
                f"aging_limit must be >= 1, got {aging_limit}"
            )
        self.sim = sim
        # Position of this spindle within its array (0 for a lone disk);
        # fault clauses with a ``device=`` option match against it.
        self.device_index = device_index
        self.geometry = geometry or DiskGeometry()
        self.scheduler = scheduler
        self.aging_limit = (
            aging_limit if aging_limit is not None else self.DEFAULT_AGING_LIMIT
        )
        self.stats = DiskStats()
        self._queue: Deque[DiskRequest] = deque()
        self._active: Optional[DiskRequest] = None
        self._sweep_up = True
        self._head_position = 0
        self._dispatch_count = 0
        self._faults = None  # set by FaultInjector.attach
        # Number of requests outstanding (queued + active); used by the
        # metrics layer to derive iowait.
        self.outstanding_timeline = StepTimeline(initial=0)

    @property
    def busy(self) -> bool:
        """Whether a request is currently being serviced."""
        return self._active is not None

    @property
    def queue_length(self) -> int:
        """Number of requests waiting behind the active one."""
        return len(self._queue)

    @property
    def head_position(self) -> int:
        """Page address just past the most recently transferred run."""
        return self._head_position

    def read(self, start_page: int, n_pages: int) -> Event:
        """Queue a read of ``n_pages`` contiguous pages; returns completion."""
        return self._submit(start_page, n_pages, is_write=False)

    def write(self, start_page: int, n_pages: int) -> Event:
        """Queue a write of ``n_pages`` contiguous pages; returns completion."""
        return self._submit(start_page, n_pages, is_write=True)

    def _submit(self, start_page: int, n_pages: int, is_write: bool) -> Event:
        if n_pages <= 0:
            raise SimulationError(f"disk transfer needs n_pages >= 1, got {n_pages}")
        if start_page < 0 or start_page + n_pages > self.geometry.total_pages:
            raise SimulationError(
                f"transfer [{start_page}, {start_page + n_pages}) outside device "
                f"of {self.geometry.total_pages} pages"
            )
        request = DiskRequest(
            start_page=start_page,
            n_pages=n_pages,
            is_write=is_write,
            completion=Event(self.sim),
            submit_time=self.sim.now,
            enqueue_dispatch=self._dispatch_count,
        )
        self._queue.append(request)
        self._record_outstanding()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(DiskRequestQueued(
                time=self.sim.now, start_page=start_page, n_pages=n_pages,
                is_write=is_write, queue_len=len(self._queue),
            ))
        if self._active is None:
            self._start_next()
        return request.completion

    def _record_outstanding(self) -> None:
        outstanding = len(self._queue) + (1 if self._active else 0)
        self.outstanding_timeline.record(self.sim.now, outstanding)

    def set_fault_injector(self, injector) -> None:
        """Wire a fault injector into the service/completion path."""
        self._faults = injector

    def _start_next(self) -> None:
        if not self._queue:
            return
        request = self._pick_next()
        self._active = request
        self._begin_service(request)

    def _begin_service(self, request: DiskRequest) -> None:
        request.service_start = self.sim.now
        sequential = self.geometry.is_sequential(self._head_position, request.start_page)
        seek_time = (
            0.0
            if sequential
            else self.geometry.seek_time(self._head_position, request.start_page)
            + self.geometry.settle_time
        )
        xfer_time = self.geometry.transfer_time(request.n_pages)
        service_time = seek_time + xfer_time
        if self._faults is not None:
            service_time = self._faults.disk_service_time(self, service_time)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(DiskServiceStart(
                time=self.sim.now, start_page=request.start_page,
                n_pages=request.n_pages, is_write=request.is_write,
                sequential=sequential, seek_time=seek_time,
                transfer_time=xfer_time,
                wait_time=self.sim.now - request.submit_time,
            ))
        self.sim.schedule(
            service_time,
            lambda: self._complete(request, seeked=not sequential, seek_time=seek_time,
                                   xfer_time=xfer_time),
        )

    def _pick_next(self) -> DiskRequest:
        self._dispatch_count += 1
        if self.scheduler == "fifo" or len(self._queue) == 1:
            return self._queue.popleft()
        # Aging bound: the LOOK policy below always serves the nearest
        # request in sweep direction, so a far request can be deferred
        # indefinitely by a continuous stream of near one-sided arrivals.
        # Once the oldest queued request has sat through aging_limit
        # dispatches, serve it regardless of position.
        oldest = min(self._queue, key=lambda r: r.enqueue_dispatch)
        if self._dispatch_count - oldest.enqueue_dispatch > self.aging_limit:
            self.stats.aged_dispatches += 1
            self._queue.remove(oldest)
            return oldest
        # LOOK: nearest request in the sweep direction; reverse when the
        # current direction is exhausted.
        head = self._head_position
        ahead = [r for r in self._queue if r.start_page >= head]
        behind = [r for r in self._queue if r.start_page < head]
        if self._sweep_up:
            pool = ahead or behind
            self._sweep_up = bool(ahead)
        else:
            pool = behind or ahead
            self._sweep_up = not behind
        chosen = min(pool, key=lambda r: (abs(r.start_page - head), r.submit_time))
        self._queue.remove(chosen)
        return chosen

    def _complete(
        self, request: DiskRequest, seeked: bool, seek_time: float, xfer_time: float
    ) -> None:
        if self._faults is not None:
            backoff = self._faults.maybe_disk_error(self, request)
            if backoff is not None:
                # Transient failure: the request stays active and the
                # whole service (seek + transfer) reruns after backoff.
                request.retries += 1
                self.stats.io_retries += 1
                self.sim.schedule(backoff, lambda: self._begin_service(request))
                return
        self._head_position = request.end_page
        if request.is_write:
            self.stats.record_write(
                self.sim.now, request.n_pages, seeked, seek_time, xfer_time
            )
        else:
            self.stats.record_read(
                self.sim.now, request.n_pages, seeked, seek_time, xfer_time
            )
        self._active = None
        self._record_outstanding()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(DiskRequestComplete(
                time=self.sim.now, start_page=request.start_page,
                n_pages=request.n_pages, is_write=request.is_write,
                service_time=self.sim.now - request.service_start,
                total_time=self.sim.now - request.submit_time,
            ))
        request.completion.succeed(request)
        self._start_next()
