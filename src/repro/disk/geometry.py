"""Disk service-time model parameters.

The model is the classic first-order one: a request for a contiguous run
of pages costs a seek (unless it starts exactly where the previous request
ended), plus rotational settle, plus size / transfer-rate.  Seek time grows
with the square root of the distance fraction, which matches measured
voice-coil actuator behaviour closely enough for queueing studies.

Defaults approximate a mid-2000s enterprise drive (the paper's FAStT / SSA
arrays), scaled for 32 KiB pages like the DB2 prototype.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class DiskGeometry:
    """Immutable parameters of the simulated device.

    Attributes:
        page_size: Bytes per database page (DB2 prototype used 32 KiB).
        total_pages: Number of addressable pages on the device.
        min_seek_time: Seconds for a single-track (shortest) seek.
        max_seek_time: Seconds for a full-stroke seek.
        settle_time: Rotational settle added to every seeking request.
        transfer_rate: Sustained media rate in bytes/second.
        sequential_gap_pages: A request starting within this many pages
            after the previous request's end is serviced without a seek
            (read-ahead / same-track behaviour).
    """

    page_size: int = 32 * 1024
    total_pages: int = 1 << 20
    min_seek_time: float = 0.0008
    max_seek_time: float = 0.009
    settle_time: float = 0.002
    transfer_rate: float = 100.0 * 1024 * 1024
    sequential_gap_pages: int = 1

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise ValueError(f"page_size must be positive, got {self.page_size}")
        if self.total_pages <= 0:
            raise ValueError(f"total_pages must be positive, got {self.total_pages}")
        if self.transfer_rate <= 0:
            raise ValueError(f"transfer_rate must be positive, got {self.transfer_rate}")
        if self.min_seek_time < 0 or self.max_seek_time < self.min_seek_time:
            raise ValueError(
                "seek times must satisfy 0 <= min_seek_time <= max_seek_time, got "
                f"min={self.min_seek_time}, max={self.max_seek_time}"
            )
        if self.settle_time < 0:
            raise ValueError(f"settle_time must be >= 0, got {self.settle_time}")
        if self.sequential_gap_pages < 0:
            raise ValueError(
                f"sequential_gap_pages must be >= 0, got {self.sequential_gap_pages}"
            )

    def seek_time(self, from_page: int, to_page: int) -> float:
        """Seconds needed to move the head between two page addresses."""
        distance = abs(to_page - from_page)
        if distance == 0:
            return self.min_seek_time
        fraction = min(1.0, distance / self.total_pages)
        return self.min_seek_time + (self.max_seek_time - self.min_seek_time) * math.sqrt(
            fraction
        )

    def transfer_time(self, n_pages: int) -> float:
        """Seconds needed to transfer ``n_pages`` off the media."""
        if n_pages < 0:
            raise ValueError(f"n_pages must be >= 0, got {n_pages}")
        return n_pages * self.page_size / self.transfer_rate

    def is_sequential(self, last_end_page: int, next_start_page: int) -> bool:
        """Whether a request at ``next_start_page`` avoids a seek."""
        gap = next_start_page - last_end_page
        return 0 <= gap <= self.sequential_gap_pages


@dataclass(frozen=True)
class StripeMap:
    """Deterministic mapping of the global page space onto N devices.

    The address space is cut into fixed-size stripe units of
    ``stripe_pages`` pages and dealt round-robin across ``n_devices``:
    stripe *s* lives on device ``s % n_devices`` at local stripe index
    ``s // n_devices``.  The map is a pure function of its two fields,
    so two maps built from the same :class:`~repro.engine.database.\
SystemConfig` assign every extent to the same device (re-opening a
    database never migrates data), and the assignment is a total
    partition: every global page has exactly one ``(device, local)``
    home and :meth:`global_of` inverts :meth:`locate` exactly.

    With ``stripe_pages`` equal to one prefetch extent the per-device
    extent loads are balanced within ±1 extent for any table size; wider
    stripes trade balance (±``stripe_pages/extent`` extents) for longer
    sequential runs per device.
    """

    n_devices: int
    stripe_pages: int

    def __post_init__(self) -> None:
        if self.n_devices < 1:
            raise ValueError(f"n_devices must be >= 1, got {self.n_devices}")
        if self.stripe_pages < 1:
            raise ValueError(
                f"stripe_pages must be >= 1, got {self.stripe_pages}"
            )

    def locate(self, page: int) -> "tuple[int, int]":
        """``(device index, local page address)`` for a global page."""
        if page < 0:
            raise ValueError(f"page addresses are non-negative, got {page}")
        stripe, offset = divmod(page, self.stripe_pages)
        device, local_stripe = stripe % self.n_devices, stripe // self.n_devices
        return device, local_stripe * self.stripe_pages + offset

    def global_of(self, device: int, local_page: int) -> int:
        """The global page address of a device-local address (inverse)."""
        if not 0 <= device < self.n_devices:
            raise ValueError(
                f"device must be in [0, {self.n_devices}), got {device}"
            )
        if local_page < 0:
            raise ValueError(
                f"local addresses are non-negative, got {local_page}"
            )
        local_stripe, offset = divmod(local_page, self.stripe_pages)
        stripe = local_stripe * self.n_devices + device
        return stripe * self.stripe_pages + offset

    def device_of(self, page: int) -> int:
        """The device a global page lives on."""
        return self.locate(page)[0]

    def run_on_device(self, start_page: int, n_pages: int) -> int:
        """Pages of ``[start_page, start_page + n_pages)`` that stay on
        ``start_page``'s device before crossing a stripe boundary."""
        in_stripe = self.stripe_pages - (start_page % self.stripe_pages)
        return min(n_pages, in_stripe)

    def device_loads(self, total_pages: int) -> "list[int]":
        """Pages assigned to each device over ``[0, total_pages)``."""
        loads = [0] * self.n_devices
        full_stripes, tail = divmod(total_pages, self.stripe_pages)
        per_device, extra = divmod(full_stripes, self.n_devices)
        for device in range(self.n_devices):
            loads[device] = per_device * self.stripe_pages
            if device < extra:
                loads[device] += self.stripe_pages
        if tail:
            loads[full_stripes % self.n_devices] += tail
        return loads
