"""Per-device statistics and traces.

Mirrors what the paper reads out of ``iostat``: cumulative read counts,
bytes, and seeks, plus timestamped traces that the experiment harness
buckets into the "KB read per time unit" and "seeks per second" figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class DiskStats:
    """Cumulative counters plus timestamped request traces."""

    reads: int = 0
    writes: int = 0
    pages_read: int = 0
    pages_written: int = 0
    seeks: int = 0
    seek_time: float = 0.0
    transfer_time: float = 0.0
    busy_time: float = 0.0
    # Fault-injected transient failures that were retried.
    io_retries: int = 0
    # Elevator picks forced by the aging bound (anti-starvation).
    aged_dispatches: int = 0
    # Each trace entry is (completion_time, quantity).
    read_trace: List[Tuple[float, int]] = field(default_factory=list)
    seek_trace: List[Tuple[float, int]] = field(default_factory=list)

    @property
    def bytes_read(self) -> int:
        """Total bytes read; requires the caller to scale by page size."""
        return self.pages_read

    def record_read(
        self, time: float, n_pages: int, seeked: bool, seek_time: float, xfer_time: float
    ) -> None:
        """Record one completed read request."""
        self.reads += 1
        self.pages_read += n_pages
        self.transfer_time += xfer_time
        self.busy_time += seek_time + xfer_time
        self.read_trace.append((time, n_pages))
        if seeked:
            self.seeks += 1
            self.seek_time += seek_time
            self.seek_trace.append((time, 1))

    def record_write(
        self, time: float, n_pages: int, seeked: bool, seek_time: float, xfer_time: float
    ) -> None:
        """Record one completed write request."""
        self.writes += 1
        self.pages_written += n_pages
        self.transfer_time += xfer_time
        self.busy_time += seek_time + xfer_time
        if seeked:
            self.seeks += 1
            self.seek_time += seek_time
            self.seek_trace.append((time, 1))

    def bucket_trace(
        self, trace: List[Tuple[float, int]], until: float, bucket: float
    ) -> List[float]:
        """Sum a trace into consecutive time buckets of width ``bucket``."""
        if bucket <= 0:
            raise ValueError(f"bucket width must be positive, got {bucket}")
        n_buckets = max(1, int(until / bucket) + (1 if until % bucket else 0))
        sums = [0.0] * n_buckets
        for time, quantity in trace:
            index = min(int(time / bucket), n_buckets - 1)
            sums[index] += quantity
        return sums

    def pages_read_per_bucket(self, until: float, bucket: float) -> List[float]:
        """Pages read per time bucket (the paper's Figure-17 analog)."""
        return self.bucket_trace(self.read_trace, until, bucket)

    def seeks_per_bucket(self, until: float, bucket: float) -> List[float]:
        """Seeks per time bucket (the paper's Figure-18 analog)."""
        return self.bucket_trace(self.seek_trace, until, bucket)
