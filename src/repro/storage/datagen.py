"""Deterministic per-page column data generation.

Every page's contents are a pure function of ``(seed, table_name,
page_no)`` so the dataset never needs to be materialized: a page is
regenerated identically whether it is read once or a thousand times, on
any run, under any sharing mode.  That property turns query results into
an end-to-end correctness oracle for the whole engine.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from typing import Dict, Tuple

import numpy as np

from repro.storage.schema import ColumnSpec, TableSchema

PageData = Dict[str, np.ndarray]

#: Process-wide page cache shared by every :class:`PageGenerator`.
#: Page contents are a pure function of (seed, schema, total pages,
#: page number), so the cache is keyed on exactly that tuple and a hit
#: is indistinguishable from regeneration.  The share matters because a
#: base-vs-sharing comparison builds a fresh database (and generator)
#: per mode: without it, every mode regenerates every page from cold.
_SHARED_CACHE: "OrderedDict[Tuple, PageData]" = OrderedDict()
_SHARED_CACHE_LIMIT = 8192


def _page_rng(seed: int, table_name: str, page_no: int) -> np.random.Generator:
    """A generator whose stream is unique per (seed, table, page)."""
    tag = f"{seed}:{table_name}:{page_no}".encode()
    return np.random.default_rng(zlib.crc32(tag))


def generate_column(
    column: ColumnSpec,
    rng: np.random.Generator,
    page_no: int,
    rows_per_page: int,
    total_pages: int,
) -> np.ndarray:
    """Generate one page's worth of values for ``column``."""
    n = rows_per_page
    if column.kind == "int_uniform":
        return rng.integers(int(column.low), int(column.high) + 1, size=n)
    if column.kind == "float_uniform":
        return rng.uniform(column.low, column.high, size=n)
    if column.kind == "choice":
        indexes = rng.integers(0, len(column.categories), size=n)
        return np.asarray(column.categories, dtype=object)[indexes]
    if column.kind == "sequence":
        start = page_no * rows_per_page
        return np.arange(start, start + n, dtype=np.int64)
    if column.kind == "clustered":
        # Monotone across the table: page p covers an equal slice of
        # [low, high]; within the page, values are sorted uniforms in the
        # slice, so the whole column is globally non-decreasing.
        span = column.high - column.low
        slice_lo = column.low + span * (page_no / total_pages)
        slice_hi = column.low + span * ((page_no + 1) / total_pages)
        values = rng.uniform(slice_lo, slice_hi, size=n)
        values.sort()
        return values
    raise AssertionError(f"unreachable column kind {column.kind!r}")


class PageGenerator:
    """Caching generator of page contents for one table."""

    #: Default cache capacity.  Page contents are a pure function of
    #: ``(seed, table, page)``, so caching only trades memory for the
    #: regeneration cost; 4096 pages (~tens of MB at headline scale) keeps
    #: every table of a scale-1.0 run resident, where the old 128-page
    #: default thrashed whenever several streams walked a table larger
    #: than the cache and regenerated every page once per scan pass.
    DEFAULT_CACHE_PAGES = 4096

    def __init__(self, schema: TableSchema, total_pages: int, seed: int,
                 cache_pages: int = DEFAULT_CACHE_PAGES):
        if total_pages < 1:
            raise ValueError(f"table needs at least one page, got {total_pages}")
        self.schema = schema
        self.total_pages = total_pages
        self.seed = seed
        self._cache: Dict[int, PageData] = {}
        self._cache_order: list = []
        self._cache_pages = cache_pages
        # Everything page contents depend on besides the page number;
        # repr(columns) captures full column specs so two tables that
        # merely share a name and seed can never alias.
        self._shared_tag = (
            seed, schema.name, total_pages, schema.rows_per_page,
            repr(schema.columns),
        )

    def page(self, page_no: int) -> PageData:
        """Column arrays for one page (cached)."""
        cached = self._cache.get(page_no)
        if cached is not None:
            return cached
        if not 0 <= page_no < self.total_pages:
            raise IndexError(
                f"page {page_no} out of range for table {self.schema.name!r} "
                f"of {self.total_pages} pages"
            )
        shared_key = (self._shared_tag, page_no)
        data = _SHARED_CACHE.get(shared_key)
        if data is None:
            rng = _page_rng(self.seed, self.schema.name, page_no)
            data = {
                column.name: generate_column(
                    column, rng, page_no, self.schema.rows_per_page, self.total_pages
                )
                for column in self.schema.columns
            }
            _SHARED_CACHE[shared_key] = data
            if len(_SHARED_CACHE) > _SHARED_CACHE_LIMIT:
                _SHARED_CACHE.popitem(last=False)
        else:
            _SHARED_CACHE.move_to_end(shared_key)
        self._cache[page_no] = data
        self._cache_order.append(page_no)
        if len(self._cache_order) > self._cache_pages:
            evicted = self._cache_order.pop(0)
            self._cache.pop(evicted, None)
        return data
