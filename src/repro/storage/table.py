"""Tables: extent-organized page collections with clustered-range lookup."""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.storage.datagen import PageData, PageGenerator
from repro.storage.schema import TableSchema


class Table:
    """A stored table occupying ``n_pages`` pages in extents.

    The table knows how to translate a predicate range on its clustering
    column into the contiguous page range a clustered (MDC-style) scan
    would touch — the physical property the paper's overlapping range
    scans rely on.
    """

    def __init__(
        self,
        schema: TableSchema,
        n_pages: int,
        extent_size: int = 16,
        seed: int = 0,
        space_id: int = -1,
    ):
        if n_pages < 1:
            raise ValueError(f"table {schema.name!r} needs n_pages >= 1, got {n_pages}")
        if extent_size < 1:
            raise ValueError(f"extent_size must be >= 1, got {extent_size}")
        self.schema = schema
        self.n_pages = n_pages
        self.extent_size = extent_size
        self.seed = seed
        self.space_id = space_id  # assigned by the catalog
        self._generator = PageGenerator(schema, n_pages, seed)

    @property
    def name(self) -> str:
        """The table's name."""
        return self.schema.name

    @property
    def n_rows(self) -> int:
        """Total number of rows."""
        return self.n_pages * self.schema.rows_per_page

    @property
    def n_extents(self) -> int:
        """Number of (possibly partial) extents."""
        return math.ceil(self.n_pages / self.extent_size)

    def page_data(self, page_no: int) -> PageData:
        """Deterministic contents of one page."""
        return self._generator.page(page_no)

    def extent_of(self, page_no: int) -> int:
        """Extent index containing ``page_no``."""
        self._check_page(page_no)
        return page_no // self.extent_size

    def extent_pages(self, extent_no: int) -> List[int]:
        """Page numbers of one extent (the prefetch unit)."""
        if not 0 <= extent_no < self.n_extents:
            raise IndexError(
                f"extent {extent_no} out of range for table {self.name!r} "
                f"of {self.n_extents} extents"
            )
        start = extent_no * self.extent_size
        end = min(start + self.extent_size, self.n_pages)
        return list(range(start, end))

    def pages_for_cluster_range(self, low: float, high: float) -> Tuple[int, int]:
        """Page range ``[first, last]`` (inclusive) a clustered range scan
        over ``[low, high]`` on the clustering column touches.

        Raises if the table has no clustering column.
        """
        cluster = self.schema.clustering_column
        if cluster is None:
            raise ValueError(f"table {self.name!r} has no clustering column")
        if high < low:
            raise ValueError(f"cluster range reversed: [{low}, {high}]")
        span = cluster.high - cluster.low
        if span <= 0:
            return (0, self.n_pages - 1)
        lo_frac = min(max((low - cluster.low) / span, 0.0), 1.0)
        hi_frac = min(max((high - cluster.low) / span, 0.0), 1.0)
        first = min(int(lo_frac * self.n_pages), self.n_pages - 1)
        last = min(int(math.ceil(hi_frac * self.n_pages)) - 1, self.n_pages - 1)
        last = max(last, first)
        return (first, last)

    def pages_for_fraction(self, lo_frac: float, hi_frac: float) -> Tuple[int, int]:
        """Page range covering the fractional slice [lo_frac, hi_frac]."""
        if not (0.0 <= lo_frac <= hi_frac <= 1.0):
            raise ValueError(f"bad fractional range [{lo_frac}, {hi_frac}]")
        first = min(int(lo_frac * self.n_pages), self.n_pages - 1)
        last = min(max(int(math.ceil(hi_frac * self.n_pages)) - 1, first), self.n_pages - 1)
        return (first, last)

    def _check_page(self, page_no: int) -> None:
        if not 0 <= page_no < self.n_pages:
            raise IndexError(
                f"page {page_no} out of range for table {self.name!r} "
                f"of {self.n_pages} pages"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Table {self.name} pages={self.n_pages} extent={self.extent_size}>"
