"""Tablespace: contiguous disk-address allocation for tables."""

from __future__ import annotations

from typing import Dict, Optional

from repro.buffer.page import PageKey


class Tablespace:
    """Maps (space_id, page_no) keys to absolute disk page addresses.

    Each table receives its own space id and a contiguous address range —
    tables laid out one after another with an optional inter-table gap so
    cross-table transitions always cost a seek (as they would on a real
    layout).
    """

    def __init__(self, total_disk_pages: int, inter_table_gap: int = 64):
        if total_disk_pages < 1:
            raise ValueError(f"need at least one disk page, got {total_disk_pages}")
        if inter_table_gap < 0:
            raise ValueError(f"inter_table_gap must be >= 0, got {inter_table_gap}")
        self.total_disk_pages = total_disk_pages
        self.inter_table_gap = inter_table_gap
        self._base_of: Dict[int, int] = {}
        self._size_of: Dict[int, int] = {}
        self._next_free = 0
        self._next_space_id = 0

    def allocate(self, n_pages: int) -> int:
        """Allocate a contiguous range; returns the new space id."""
        if n_pages < 1:
            raise ValueError(f"allocation needs n_pages >= 1, got {n_pages}")
        if self._next_free + n_pages > self.total_disk_pages:
            raise ValueError(
                f"disk full: need {n_pages} pages at offset {self._next_free} "
                f"but device has only {self.total_disk_pages}"
            )
        space_id = self._next_space_id
        self._next_space_id += 1
        self._base_of[space_id] = self._next_free
        self._size_of[space_id] = n_pages
        self._next_free += n_pages + self.inter_table_gap
        return space_id

    def address_of(self, key: PageKey) -> int:
        """Absolute disk page address for a page key."""
        base = self._base_of.get(key.space_id)
        if base is None:
            raise KeyError(f"unknown space id {key.space_id}")
        if not 0 <= key.page_no < self._size_of[key.space_id]:
            raise IndexError(
                f"page {key.page_no} outside space {key.space_id} of "
                f"{self._size_of[key.space_id]} pages"
            )
        return base + key.page_no

    def size_of(self, space_id: int) -> int:
        """Number of pages allocated to a space."""
        if space_id not in self._size_of:
            raise KeyError(f"unknown space id {space_id}")
        return self._size_of[space_id]

    @property
    def allocated_pages(self) -> int:
        """Total pages handed out (excluding gaps)."""
        return sum(self._size_of.values())

    @property
    def next_free(self) -> Optional[int]:
        """The next unallocated disk address (for tests)."""
        return self._next_free
