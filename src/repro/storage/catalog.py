"""Catalog: the named collection of tables behind one tablespace."""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.buffer.page import PageKey
from repro.storage.table import Table
from repro.storage.tablespace import Tablespace


class Catalog:
    """Registry of tables with their tablespace placement."""

    def __init__(self, tablespace: Tablespace):
        self.tablespace = tablespace
        self._tables: Dict[str, Table] = {}
        self._by_space: Dict[int, Table] = {}

    def create_table(self, table: Table) -> Table:
        """Register a table and allocate its disk range."""
        if table.name in self._tables:
            raise ValueError(f"table {table.name!r} already exists")
        space_id = self.tablespace.allocate(table.n_pages)
        table.space_id = space_id
        self._tables[table.name] = table
        self._by_space[space_id] = table
        return table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(
                f"no table named {name!r}; known tables: {sorted(self._tables)}"
            ) from None

    def table_of_space(self, space_id: int) -> Table:
        """Look up a table by its tablespace id."""
        try:
            return self._by_space[space_id]
        except KeyError:
            raise KeyError(f"no table in space {space_id}") from None

    def page_key(self, table_name: str, page_no: int) -> PageKey:
        """Page key for a table page."""
        table = self.table(table_name)
        if not 0 <= page_no < table.n_pages:
            raise IndexError(
                f"page {page_no} out of range for table {table_name!r} "
                f"of {table.n_pages} pages"
            )
        return PageKey(table.space_id, page_no)

    def address_of(self, key: PageKey) -> int:
        """Disk address of a page key (pool adapter)."""
        return self.tablespace.address_of(key)

    @property
    def total_pages(self) -> int:
        """Sum of page counts over all tables (the 'database size')."""
        return sum(table.n_pages for table in self._tables.values())

    def table_names(self) -> List[str]:
        """All table names, sorted."""
        return sorted(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)
