"""Catalog: the named collection of tables behind one tablespace."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.buffer.page import PageKey
from repro.storage.table import Table
from repro.storage.tablespace import Tablespace


class Catalog:
    """Registry of tables with their tablespace placement.

    Page keys are **interned**: every table gets one lazily-built tuple
    holding all its :class:`PageKey` objects (index == page number), and
    extent key lists are cached slices of it.  Scan inner loops and the
    push pipeline therefore never allocate a key tuple per page — an
    extent's keys are a dictionary hit, not ``extent_size`` NamedTuple
    constructions.  Tables never change size after :meth:`create_table`,
    so the caches need no invalidation.
    """

    def __init__(self, tablespace: Tablespace):
        self.tablespace = tablespace
        self._tables: Dict[str, Table] = {}
        self._by_space: Dict[int, Table] = {}
        self._page_keys: Dict[str, Tuple[PageKey, ...]] = {}
        self._extent_keys: Dict[Tuple[str, int], List[PageKey]] = {}

    def create_table(self, table: Table) -> Table:
        """Register a table and allocate its disk range."""
        if table.name in self._tables:
            raise ValueError(f"table {table.name!r} already exists")
        space_id = self.tablespace.allocate(table.n_pages)
        table.space_id = space_id
        self._tables[table.name] = table
        self._by_space[space_id] = table
        return table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(
                f"no table named {name!r}; known tables: {sorted(self._tables)}"
            ) from None

    def table_of_space(self, space_id: int) -> Table:
        """Look up a table by its tablespace id."""
        try:
            return self._by_space[space_id]
        except KeyError:
            raise KeyError(f"no table in space {space_id}") from None

    def page_key(self, table_name: str, page_no: int) -> PageKey:
        """Page key for a table page (the interned instance)."""
        keys = self._page_keys.get(table_name)
        if keys is None:
            keys = self.page_keys(table_name)
        if not 0 <= page_no < len(keys):
            raise IndexError(
                f"page {page_no} out of range for table {table_name!r} "
                f"of {len(keys)} pages"
            )
        return keys[page_no]

    def page_keys(self, table_name: str) -> Tuple[PageKey, ...]:
        """Every page key of a table, indexed by page number."""
        keys = self._page_keys.get(table_name)
        if keys is None:
            table = self.table(table_name)
            space_id = table.space_id
            keys = tuple(
                PageKey(space_id, page) for page in range(table.n_pages)
            )
            self._page_keys[table_name] = keys
        return keys

    def extent_keys(self, table_name: str, extent_no: int) -> List[PageKey]:
        """Interned page keys of one extent (the prefetch unit).

        The returned list is cached and shared — callers must treat it as
        read-only.
        """
        cached = self._extent_keys.get((table_name, extent_no))
        if cached is None:
            table = self.table(table_name)
            if not 0 <= extent_no < table.n_extents:
                raise IndexError(
                    f"extent {extent_no} out of range for table "
                    f"{table_name!r} of {table.n_extents} extents"
                )
            start = extent_no * table.extent_size
            end = min(start + table.extent_size, table.n_pages)
            cached = list(self.page_keys(table_name)[start:end])
            self._extent_keys[(table_name, extent_no)] = cached
        return cached

    def address_of(self, key: PageKey) -> int:
        """Disk address of a page key (pool adapter)."""
        return self.tablespace.address_of(key)

    @property
    def total_pages(self) -> int:
        """Sum of page counts over all tables (the 'database size')."""
        return sum(table.n_pages for table in self._tables.values())

    def table_names(self) -> List[str]:
        """All table names, sorted."""
        return sorted(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)
