"""Storage layer: schemas, tables, deterministic page data, tablespaces.

Tables are extent-organized collections of fixed-occupancy pages mapped
onto contiguous disk address ranges by a :class:`~repro.storage.tablespace.Tablespace`.
Page *contents* are generated deterministically from ``(seed, table,
page_no)`` on demand — the simulation never stores the 100 GB TPC-H data,
yet every query computes real aggregate values that are bit-identical
across runs and across sharing modes, which is what the correctness tests
lean on.

Clustered columns are generated monotonically across the page sequence,
which models the physical clustering (MDC-style) that makes the paper's
range scans contiguous page ranges.
"""

from repro.storage.schema import ColumnSpec, TableSchema
from repro.storage.table import Table
from repro.storage.tablespace import Tablespace
from repro.storage.catalog import Catalog

__all__ = ["Catalog", "ColumnSpec", "Table", "TableSchema", "Tablespace"]
