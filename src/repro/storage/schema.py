"""Column and table schemas with declarative data distributions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple


_KINDS = (
    "int_uniform",
    "float_uniform",
    "choice",
    "sequence",
    "clustered",
)


@dataclass(frozen=True)
class ColumnSpec:
    """Declarative description of one column's synthetic distribution.

    Kinds:
        ``int_uniform``     integers uniform in [low, high].
        ``float_uniform``   floats uniform in [low, high).
        ``choice``          categorical over ``categories`` (uniform).
        ``sequence``        globally increasing row id.
        ``clustered``       monotone non-decreasing values spread across
                            the table's page range — the physical
                            clustering column (e.g. a date the table is
                            organized by); value v maps back to a unique
                            page, so key-range predicates become page
                            ranges.
    """

    name: str
    kind: str
    low: float = 0.0
    high: float = 1.0
    categories: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown column kind {self.kind!r}; known: {_KINDS}")
        if self.kind == "choice" and not self.categories:
            raise ValueError(f"choice column {self.name!r} needs categories")
        if self.kind in ("int_uniform", "float_uniform", "clustered") and not (
            self.high >= self.low
        ):
            raise ValueError(
                f"column {self.name!r}: high ({self.high}) < low ({self.low})"
            )


@dataclass(frozen=True)
class TableSchema:
    """A table's name, columns, and physical occupancy."""

    name: str
    columns: Tuple[ColumnSpec, ...]
    rows_per_page: int = 100

    def __post_init__(self) -> None:
        if not self.columns:
            raise ValueError(f"table {self.name!r} needs at least one column")
        if self.rows_per_page < 1:
            raise ValueError(
                f"table {self.name!r}: rows_per_page must be >= 1, "
                f"got {self.rows_per_page}"
            )
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise ValueError(f"table {self.name!r} has duplicate column names: {names}")

    def column(self, name: str) -> ColumnSpec:
        """Look up a column by name."""
        for column in self.columns:
            if column.name == name:
                return column
        raise KeyError(f"table {self.name!r} has no column {name!r}")

    def column_names(self) -> Sequence[str]:
        """All column names in declaration order."""
        return [column.name for column in self.columns]

    @property
    def clustering_column(self) -> Optional[ColumnSpec]:
        """The column the table is physically clustered on, if any."""
        for column in self.columns:
            if column.kind == "clustered":
                return column
        return None


def make_schema(name: str, columns: Sequence[ColumnSpec], rows_per_page: int = 100) -> TableSchema:
    """Convenience constructor accepting any column sequence."""
    return TableSchema(name=name, columns=tuple(columns), rows_per_page=rows_per_page)
