"""Templated query-set load generation for simulated user populations.

Fixed scenario specs (one handwritten :class:`ServiceClass` per
workload) stop scaling once the population does: a cluster serving a
million analysts is not three classes with three rates, it is a
*distribution* over users, each with their own favourite tables, their
own think-time rhythm, and their own query-template mix.  This module
replaces the fixed specs with a mobu-``TAPQuerySetRunner``-style
generator: every arrival is attributed to one simulated user drawn from
a (possibly zipf-skewed) population, and the user's identity
deterministically biases which query template — and therefore which
table, and ultimately which shard and replica — the arrival hits.

Two pieces live here:

* the **sweep grammar** (:class:`NoScan` / :class:`RangeScan` /
  :class:`ExplicitScan` behind :class:`Scannable`), a tiny
  ARTIQ-``scan``-style vocabulary for describing a scenario axis as a
  first-class value experiments can iterate and describe;
* the **load generator** (:class:`LoadSpec` → :func:`generate_load`),
  which renders a user population into a concrete, fully deterministic
  :class:`LoadPlan` of timestamped, user-attributed queries.

Determinism: every draw for one class comes from a single
``numpy`` generator seeded via SHA-256 from ``(seed, class name)``, in
the fixed order gap → user → template → query parameters, so a plan is
a pure function of ``(LoadSpec, seed)``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.query import QuerySpec
from repro.workloads.tpch_queries import QUERY_FACTORIES

#: Load-balancing choices a cluster router understands (re-exported by
#: :mod:`repro.cluster.spec`): pure ring preference order, or the
#: least-loaded replica among a shard's holders.
BALANCE_KINDS = ("preference", "least-loaded")


# ----------------------------------------------------------------------
# Sweep grammar (Scannable-style scenario axes)
# ----------------------------------------------------------------------


class ScanAxis:
    """One scenario axis: an iterable, self-describing value sequence.

    Subclasses implement ``__iter__``/``__len__`` plus ``describe`` —
    the dict form is JSON-safe so an axis can sit inside experiment
    metrics and name exactly which grid a result came from.
    """

    def __iter__(self) -> Iterator[Any]:  # pragma: no cover - interface
        raise NotImplementedError

    def __len__(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def describe(self) -> Dict[str, Any]:  # pragma: no cover - interface
        raise NotImplementedError


class NoScan(ScanAxis):
    """A degenerate axis: one pinned value, optionally repeated."""

    def __init__(self, value: Any, repetitions: int = 1):
        if repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {repetitions}")
        self.value = value
        self.repetitions = repetitions

    def __iter__(self) -> Iterator[Any]:
        for _ in range(self.repetitions):
            yield self.value

    def __len__(self) -> int:
        return self.repetitions

    def describe(self) -> Dict[str, Any]:
        return {"kind": "no-scan", "value": self.value,
                "repetitions": self.repetitions}


class RangeScan(ScanAxis):
    """``npoints`` evenly spaced values over ``[start, stop]``."""

    def __init__(self, start: float, stop: float, npoints: int):
        if npoints < 1:
            raise ValueError(f"npoints must be >= 1, got {npoints}")
        self.start = float(start)
        self.stop = float(stop)
        self.npoints = npoints

    def __iter__(self) -> Iterator[float]:
        if self.npoints == 1:
            yield self.start
            return
        step = (self.stop - self.start) / (self.npoints - 1)
        for index in range(self.npoints):
            yield self.start + step * index

    def __len__(self) -> int:
        return self.npoints

    def describe(self) -> Dict[str, Any]:
        return {"kind": "range-scan", "start": self.start,
                "stop": self.stop, "npoints": self.npoints}


class ExplicitScan(ScanAxis):
    """An explicit value sequence (the workhorse for replica counts)."""

    def __init__(self, sequence: Sequence[Any]):
        if not sequence:
            raise ValueError("explicit scan needs at least one value")
        self.sequence = tuple(sequence)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.sequence)

    def __len__(self) -> int:
        return len(self.sequence)

    def describe(self) -> Dict[str, Any]:
        return {"kind": "explicit-scan", "sequence": list(self.sequence)}


class Scannable:
    """A named, unit-carrying wrapper around one :class:`ScanAxis`.

    Experiments declare their axes as ``Scannable("replicas",
    ExplicitScan((1, 2, 4)))`` and iterate the wrapper; ``describe``
    composes the axis description with the axis name for metrics.
    """

    def __init__(self, name: str, axis: ScanAxis, unit: str = ""):
        if not name:
            raise ValueError("scannable needs a name")
        if not isinstance(axis, ScanAxis):
            raise TypeError(
                f"axis must be a ScanAxis (NoScan/RangeScan/ExplicitScan), "
                f"got {type(axis).__name__}"
            )
        self.name = name
        self.axis = axis
        self.unit = unit

    def __iter__(self) -> Iterator[Any]:
        return iter(self.axis)

    def __len__(self) -> int:
        return len(self.axis)

    def describe(self) -> Dict[str, Any]:
        description = {"name": self.name, **self.axis.describe()}
        if self.unit:
            description["unit"] = self.unit
        return description


# ----------------------------------------------------------------------
# User populations
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class UserClass:
    """One stratum of the simulated user population.

    ``share`` is the stratum's fraction of the population (normalized
    over all classes); its aggregate arrival rate is ``population_share
    / think_mean`` — every user fires a query once per think time on
    average, so a million light users and a thousand heavy ones are both
    one line of spec.  ``table_zipf`` skews each user toward *their own*
    preferred templates: the preference order is a pure function of the
    user id, so hot users (under a zipf-skewed population) concentrate
    load on specific tables — and, downstream, specific shards.
    """

    name: str
    #: Fraction of the population in this class (normalized over classes).
    share: float = 1.0
    #: Weighted-fair admission share (forwarded to the service layer).
    weight: float = 1.0
    #: Per-class concurrency cap (0 = only the replica MPL bound).
    max_mpl: int = 0
    #: Query templates this class draws from, in canonical order.
    templates: Tuple[str, ...] = ("Q6",)
    #: Zipf exponent biasing a user toward their preferred templates
    #: (0 = uniform over ``templates``).
    table_zipf: float = 0.0
    #: Mean seconds between one user's queries.
    think_mean: float = 1.0
    #: Lognormal sigma of the class's interarrival gaps (tail weight).
    think_sigma: float = 1.0
    #: Queued requests abandon after this wait; None waits forever.
    patience: Optional[float] = None
    #: Optional end-to-end latency SLO in simulated seconds.
    latency_slo: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("user class needs a name")
        if self.share <= 0:
            raise ValueError(f"class {self.name}: share must be positive")
        if self.weight <= 0:
            raise ValueError(f"class {self.name}: weight must be positive")
        if self.max_mpl < 0:
            raise ValueError(f"class {self.name}: max_mpl must be >= 0")
        if not self.templates:
            raise ValueError(f"class {self.name}: needs at least one template")
        for name in self.templates:
            if name not in QUERY_FACTORIES:
                raise ValueError(
                    f"class {self.name}: unknown query template {name!r}"
                )
        if self.table_zipf < 0:
            raise ValueError(f"class {self.name}: table_zipf must be >= 0")
        if self.think_mean <= 0:
            raise ValueError(f"class {self.name}: think_mean must be positive")
        if self.think_sigma <= 0:
            raise ValueError(f"class {self.name}: think_sigma must be positive")
        if self.patience is not None and self.patience <= 0:
            raise ValueError(f"class {self.name}: patience must be positive")
        if self.latency_slo is not None and self.latency_slo <= 0:
            raise ValueError(f"class {self.name}: latency_slo must be positive")

    def template_probabilities(self) -> np.ndarray:
        """The zipf-shaped pmf over preference *ranks* (not templates)."""
        ranks = np.arange(1, len(self.templates) + 1, dtype=float)
        weights = ranks ** -self.table_zipf
        return weights / weights.sum()


@dataclass(frozen=True)
class LoadSpec:
    """A whole population's load: classes, horizon, and skew knobs."""

    classes: Tuple[UserClass, ...]
    #: Simulated user population size (ids ``0 .. n_users-1``).
    n_users: int = 1_000_000
    #: Arrival window in simulated seconds.
    horizon: float = 10.0
    #: Zipf exponent skewing arrival attribution over user ids (0 =
    #: uniform; must exceed 1 otherwise, matching ``numpy``'s sampler).
    user_zipf: float = 0.0
    #: Safety bound per class.
    max_arrivals_per_class: int = 10_000

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("load spec needs at least one user class")
        names = [cls.name for cls in self.classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate user class names: {names}")
        if self.n_users < 1:
            raise ValueError(f"n_users must be >= 1, got {self.n_users}")
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")
        if self.user_zipf != 0.0 and self.user_zipf <= 1.0:
            raise ValueError(
                f"user_zipf must be 0 (uniform) or > 1, got {self.user_zipf}"
            )
        if self.max_arrivals_per_class < 1:
            raise ValueError("max_arrivals_per_class must be >= 1")

    def class_rate(self, cls: UserClass) -> float:
        """Aggregate arrivals/second this class offers the fleet."""
        total_share = sum(c.share for c in self.classes)
        return (cls.share / total_share) * self.n_users / cls.think_mean


# ----------------------------------------------------------------------
# Plan rendering
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class UserArrival:
    """One generated arrival: who, when, and what they asked for."""

    time: float
    user_id: int
    query: QuerySpec

    @property
    def table(self) -> str:
        """The query's primary table — the routing key's first half."""
        return self.query.steps[0].table


@dataclass(frozen=True)
class ClassLoadPlan:
    """Every arrival one user class generated, in time order."""

    user_class: UserClass
    arrivals: Tuple[UserArrival, ...]

    @property
    def n_arrivals(self) -> int:
        return len(self.arrivals)


@dataclass(frozen=True)
class LoadPlan:
    """A rendered :class:`LoadSpec`: the cluster's whole offered load."""

    spec: LoadSpec
    classes: Tuple[ClassLoadPlan, ...]

    @property
    def n_arrivals(self) -> int:
        return sum(plan.n_arrivals for plan in self.classes)

    def distinct_users(self) -> int:
        """How many distinct simulated users actually appear."""
        return len({
            arrival.user_id
            for plan in self.classes
            for arrival in plan.arrivals
        })


def _class_seed(base_seed: int, class_name: str) -> int:
    """Stable per-class generator seed (SHA-256, PYTHONHASHSEED-proof)."""
    payload = f"repro.loadgen:{base_seed}:{class_name}".encode()
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


def _draw_user(rng: np.random.Generator, n_users: int, zipf: float) -> int:
    """Draw one user id, zipf-skewed toward low ids when ``zipf > 1``.

    Rejection keeps the truncated-zipf pmf exact; at the exponents the
    scenarios use the reject rate over 10^6 users is negligible, and the
    loop's draws all come from ``rng`` so determinism is preserved.
    """
    if zipf == 0.0 or n_users == 1:
        return int(rng.integers(0, n_users))
    while True:
        rank = int(rng.zipf(zipf))
        if rank <= n_users:
            return rank - 1


def _preferred_template(
    cls: UserClass, user_id: int, rank: int
) -> str:
    """The user's ``rank``-th favourite template.

    Preference order is the class template list rotated by a
    Knuth-multiplicative mix of the user id: a pure function, so one
    user always favours the same tables across runs and replicas.
    """
    m = len(cls.templates)
    offset = (user_id * 2654435761) % m
    return cls.templates[(offset + rank) % m]


def generate_load(spec: LoadSpec, seed: int = 42) -> LoadPlan:
    """Render a :class:`LoadSpec` into a deterministic :class:`LoadPlan`.

    Per class: lognormal interarrival gaps with mean ``1 / class_rate``
    (the superposition of the stratum's individual think-time loops),
    each arrival attributed to a drawn user whose identity biases the
    template choice.  Draw order per arrival is strictly gap → user →
    template rank → query parameters.
    """
    plans: List[ClassLoadPlan] = []
    for cls in spec.classes:
        rng = np.random.default_rng(_class_seed(seed, cls.name))
        rate = spec.class_rate(cls)
        sigma = cls.think_sigma
        mu = float(np.log(1.0 / rate) - sigma * sigma / 2.0)
        probabilities = cls.template_probabilities()
        ranks = np.arange(len(cls.templates))
        arrivals: List[UserArrival] = []
        time = 0.0
        while len(arrivals) < spec.max_arrivals_per_class:
            time += float(rng.lognormal(mean=mu, sigma=sigma))
            if time >= spec.horizon:
                break
            user_id = _draw_user(rng, spec.n_users, spec.user_zipf)
            rank = int(rng.choice(ranks, p=probabilities))
            template = _preferred_template(cls, user_id, rank)
            query = QUERY_FACTORIES[template](rng)
            arrivals.append(UserArrival(
                time=time, user_id=user_id, query=query,
            ))
        plans.append(ClassLoadPlan(
            user_class=cls, arrivals=tuple(arrivals),
        ))
    return LoadPlan(spec=spec, classes=tuple(plans))
