"""Parametric synthetic workloads for unit tests and ablation sweeps."""

from __future__ import annotations

from typing import Optional

from repro.engine.expressions import Expression
from repro.engine.operators import AggSpec
from repro.engine.query import QuerySpec, ScanStep
from repro.storage.schema import ColumnSpec, TableSchema


def uniform_scan_query(
    table: str,
    lo_frac: float = 0.0,
    hi_frac: float = 1.0,
    cpu_units_per_row: float = 0.0,
    predicate: Optional[Expression] = None,
    name: Optional[str] = None,
) -> QuerySpec:
    """A single-step scan query over a fractional slice of a table.

    The ablation benches sweep ``cpu_units_per_row`` to dial a scan
    anywhere between I/O-bound and CPU-bound.
    """
    return QuerySpec(
        name=name or f"scan-{table}-{lo_frac:.2f}-{hi_frac:.2f}",
        steps=(
            ScanStep(
                table=table,
                fraction=(lo_frac, hi_frac),
                predicate=predicate,
                aggregates=(AggSpec("rows", "count"),),
                extra_units_per_row=cpu_units_per_row,
                label=table,
            ),
        ),
    )


def simple_table_schema(name: str = "t", rows_per_page: int = 100) -> TableSchema:
    """A minimal test table: a sequence key, a value, and a cluster date."""
    return TableSchema(
        name=name,
        rows_per_page=rows_per_page,
        columns=(
            ColumnSpec("id", "sequence"),
            ColumnSpec("value", "float_uniform", 0.0, 100.0),
            ColumnSpec("flag", "choice", categories=("a", "b", "c")),
            ColumnSpec("day", "clustered", 0.0, 1000.0),
        ),
    )
