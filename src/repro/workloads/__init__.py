"""Workloads: the TPC-H-shaped schema, queries, and stream generators.

The paper evaluates on a 100 GB TPC-H database with a bufferpool of
about 5 % of the database size.  This package builds the scaled-down
synthetic equivalent: the same tables (clustered on their date columns,
as DB2's MDC layout would be), 22 scan-centric query templates matching
the originals' table usage, selectivity, and CPU weight, and
official-style stream permutations for throughput runs.
"""

from repro.workloads.tpch_schema import (
    TPCH_BASE_PAGES,
    make_tpch_database,
    tpch_schemas,
)
from repro.workloads.tpch_queries import (
    QUERY_FACTORIES,
    make_query,
    q1,
    q6,
)
from repro.workloads.arrivals import ArrivalPlan, poisson_arrivals
from repro.workloads.loadgen import (
    ExplicitScan,
    LoadPlan,
    LoadSpec,
    NoScan,
    RangeScan,
    Scannable,
    UserArrival,
    UserClass,
    generate_load,
)
from repro.workloads.streams import tpch_stream, tpch_streams
from repro.workloads.synthetic import uniform_scan_query

__all__ = [
    "ArrivalPlan",
    "ExplicitScan",
    "LoadPlan",
    "LoadSpec",
    "NoScan",
    "QUERY_FACTORIES",
    "RangeScan",
    "Scannable",
    "UserArrival",
    "UserClass",
    "generate_load",
    "poisson_arrivals",
    "TPCH_BASE_PAGES",
    "make_query",
    "make_tpch_database",
    "q1",
    "q6",
    "tpch_schemas",
    "tpch_stream",
    "tpch_streams",
    "uniform_scan_query",
]
