"""TPC-H throughput-run stream generation.

A throughput run starts several streams at once; each stream executes all
22 queries in its own permuted order (as the official benchmark
prescribes), so different queries overlap at different times — the
concurrency pattern the paper's Table 1 is measured on.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.engine.query import QuerySpec
from repro.workloads.tpch_queries import (
    BUDGETED_QUERY_FACTORIES,
    QUERY_FACTORIES,
)


def tpch_stream(
    stream_id: int,
    seed: int = 42,
    query_names: Optional[Sequence[str]] = None,
) -> List[QuerySpec]:
    """One stream: a seeded permutation of the query templates.

    ``query_names`` restricts the stream to a subset (tests use short
    streams); by default all 22 templates are used.
    """
    names = list(query_names) if query_names is not None else sorted(
        QUERY_FACTORIES, key=lambda n: int(n[1:])
    )
    rng = np.random.default_rng(seed * 1_000_003 + stream_id)
    order = rng.permutation(len(names))
    # Budgeted templates (AG*/MJ*) are reachable only via explicit
    # query_names; the default composition — and its digests — is the
    # classic 22-template permutation.
    factories = {**QUERY_FACTORIES, **BUDGETED_QUERY_FACTORIES}
    return [factories[names[i]](rng) for i in order]


def tpch_streams(
    n_streams: int,
    seed: int = 42,
    query_names: Optional[Sequence[str]] = None,
) -> List[List[QuerySpec]]:
    """Build ``n_streams`` independently permuted streams."""
    if n_streams < 1:
        raise ValueError(f"need at least one stream, got {n_streams}")
    return [
        tpch_stream(stream_id, seed=seed, query_names=query_names)
        for stream_id in range(n_streams)
    ]
