"""Open-system workloads: stochastic query arrivals.

TPC-H's throughput test is a *closed* system (a fixed set of streams);
the paper's motivating warehouse is an *open* one — analysts fire
queries whenever they like.  This module generates open workloads:
Poisson query arrivals over a time horizon, each arrival drawing a
query template (optionally hotspot-biased), rendered as single-query
streams with explicit start delays so they plug straight into
:func:`repro.engine.executor.run_workload`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.query import QuerySpec
from repro.workloads.tpch_queries import QUERY_FACTORIES

#: Interarrival processes understood by :func:`make_arrivals`.
ARRIVAL_KINDS = ("poisson", "lognormal", "pareto", "mmpp")


@dataclass(frozen=True)
class ArrivalPlan:
    """A generated open workload: queries with their arrival times."""

    queries: List[QuerySpec]
    arrival_times: List[float]

    def as_streams(self) -> Tuple[List[List[QuerySpec]], List[float]]:
        """``(streams, stagger_list)`` for :func:`run_workload`."""
        return [[query] for query in self.queries], list(self.arrival_times)

    @property
    def n_arrivals(self) -> int:
        """Number of arrivals in the plan."""
        return len(self.queries)


def poisson_arrivals(
    rate_per_second: float,
    horizon_seconds: float,
    seed: int = 42,
    query_names: Optional[Sequence[str]] = None,
    query_weights: Optional[Dict[str, float]] = None,
    max_arrivals: int = 10_000,
) -> ArrivalPlan:
    """Poisson process of query arrivals over ``[0, horizon_seconds)``.

    Args:
        rate_per_second: Expected arrivals per simulated second.
        horizon_seconds: Length of the arrival window.
        seed: RNG seed (controls both arrival times and template params).
        query_names: Templates to draw from (default: all 22).
        query_weights: Optional relative weights per template name —
            e.g. ``{"Q6": 5.0}`` models the analyst hotspot where cheap
            recent-data queries dominate.
        max_arrivals: Safety bound.
    """
    if rate_per_second <= 0:
        raise ValueError(f"rate must be positive, got {rate_per_second}")
    if horizon_seconds <= 0:
        raise ValueError(f"horizon must be positive, got {horizon_seconds}")
    rng = np.random.default_rng(seed)
    names = list(query_names) if query_names else sorted(
        QUERY_FACTORIES, key=lambda n: int(n[1:])
    )
    weights = np.array(
        [float((query_weights or {}).get(name, 1.0)) for name in names]
    )
    if (weights <= 0).all():
        raise ValueError("at least one query weight must be positive")
    probabilities = weights / weights.sum()

    arrival_times: List[float] = []
    queries: List[QuerySpec] = []
    time = 0.0
    while len(arrival_times) < max_arrivals:
        time += float(rng.exponential(1.0 / rate_per_second))
        if time >= horizon_seconds:
            break
        name = str(rng.choice(names, p=probabilities))
        arrival_times.append(time)
        queries.append(QUERY_FACTORIES[name](rng))
    return ArrivalPlan(queries=queries, arrival_times=arrival_times)


def _validate_window(rate_per_second: float, horizon_seconds: float) -> None:
    if rate_per_second <= 0:
        raise ValueError(f"rate must be positive, got {rate_per_second}")
    if horizon_seconds <= 0:
        raise ValueError(f"horizon must be positive, got {horizon_seconds}")


def _query_mix(
    query_names: Optional[Sequence[str]],
    query_weights: Optional[Dict[str, float]],
) -> Tuple[List[str], np.ndarray]:
    names = list(query_names) if query_names else sorted(
        QUERY_FACTORIES, key=lambda n: int(n[1:])
    )
    weights = np.array(
        [float((query_weights or {}).get(name, 1.0)) for name in names]
    )
    if (weights <= 0).all():
        raise ValueError("at least one query weight must be positive")
    return names, weights / weights.sum()


def _render_arrivals(
    gaps_then_queries,
    horizon_seconds: float,
    rng: np.random.Generator,
    names: List[str],
    probabilities: np.ndarray,
    max_arrivals: int,
) -> ArrivalPlan:
    """Walk ``gaps_then_queries`` (a gap generator) into an ArrivalPlan.

    Draw order is strictly gap-then-query from the single ``rng`` so a
    plan is a pure function of ``(kind, params, seed)``.
    """
    arrival_times: List[float] = []
    queries: List[QuerySpec] = []
    time = 0.0
    while len(arrival_times) < max_arrivals:
        time += float(gaps_then_queries())
        if time >= horizon_seconds:
            break
        name = str(rng.choice(names, p=probabilities))
        arrival_times.append(time)
        queries.append(QUERY_FACTORIES[name](rng))
    return ArrivalPlan(queries=queries, arrival_times=arrival_times)


def lognormal_arrivals(
    rate_per_second: float,
    horizon_seconds: float,
    seed: int = 42,
    sigma: float = 1.0,
    query_names: Optional[Sequence[str]] = None,
    query_weights: Optional[Dict[str, float]] = None,
    max_arrivals: int = 10_000,
) -> ArrivalPlan:
    """Heavy-tailed lognormal interarrivals with mean ``1 / rate``.

    ``sigma`` sets tail weight; ``mu`` is solved so the mean gap stays
    ``1 / rate_per_second`` regardless of sigma — the offered load is
    the same as the Poisson process, but arrivals clump.
    """
    _validate_window(rate_per_second, horizon_seconds)
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    rng = np.random.default_rng(seed)
    names, probabilities = _query_mix(query_names, query_weights)
    mu = float(np.log(1.0 / rate_per_second) - sigma * sigma / 2.0)
    return _render_arrivals(
        lambda: rng.lognormal(mean=mu, sigma=sigma),
        horizon_seconds, rng, names, probabilities, max_arrivals,
    )


def pareto_arrivals(
    rate_per_second: float,
    horizon_seconds: float,
    seed: int = 42,
    alpha: float = 1.5,
    query_names: Optional[Sequence[str]] = None,
    query_weights: Optional[Dict[str, float]] = None,
    max_arrivals: int = 10_000,
) -> ArrivalPlan:
    """Pareto interarrivals ``xm * (1 + Pareto(alpha))`` with mean ``1 / rate``.

    Requires ``alpha > 1`` (the mean is infinite otherwise); ``xm`` is
    solved from ``mean = xm * alpha / (alpha - 1)``.  Smaller alpha ⇒
    heavier tail ⇒ longer quiet periods punctuated by bursts.
    """
    _validate_window(rate_per_second, horizon_seconds)
    if alpha <= 1:
        raise ValueError(f"alpha must exceed 1 for a finite mean, got {alpha}")
    rng = np.random.default_rng(seed)
    names, probabilities = _query_mix(query_names, query_weights)
    xm = (1.0 / rate_per_second) * (alpha - 1.0) / alpha
    return _render_arrivals(
        lambda: xm * (1.0 + rng.pareto(alpha)),
        horizon_seconds, rng, names, probabilities, max_arrivals,
    )


def mmpp_arrivals(
    rate_per_second: float,
    horizon_seconds: float,
    seed: int = 42,
    rate_off: float = 0.0,
    mean_on_seconds: float = 1.0,
    mean_off_seconds: float = 1.0,
    query_names: Optional[Sequence[str]] = None,
    query_weights: Optional[Dict[str, float]] = None,
    max_arrivals: int = 10_000,
) -> ArrivalPlan:
    """Two-state Markov-modulated Poisson process (bursty on/off traffic).

    The process alternates between an ON phase (Poisson at
    ``rate_per_second``) and an OFF phase (Poisson at ``rate_off``,
    default silent), with exponentially distributed phase sojourns.
    Memorylessness lets us redraw the gap at each phase switch without
    biasing the process.
    """
    _validate_window(rate_per_second, horizon_seconds)
    if rate_off < 0:
        raise ValueError(f"rate_off must be non-negative, got {rate_off}")
    if mean_on_seconds <= 0 or mean_off_seconds <= 0:
        raise ValueError("phase sojourn means must be positive")
    rng = np.random.default_rng(seed)
    names, probabilities = _query_mix(query_names, query_weights)

    arrival_times: List[float] = []
    queries: List[QuerySpec] = []
    time = 0.0
    on = True
    phase_end = float(rng.exponential(mean_on_seconds))
    while len(arrival_times) < max_arrivals:
        rate = rate_per_second if on else rate_off
        if rate > 0:
            candidate = time + float(rng.exponential(1.0 / rate))
        else:
            candidate = phase_end  # silent phase: skip straight to the switch
        if candidate < phase_end:
            if candidate >= horizon_seconds:
                break
            time = candidate
            name = str(rng.choice(names, p=probabilities))
            arrival_times.append(time)
            queries.append(QUERY_FACTORIES[name](rng))
        else:
            time = phase_end
            if time >= horizon_seconds:
                break
            on = not on
            mean = mean_on_seconds if on else mean_off_seconds
            phase_end = time + float(rng.exponential(mean))
    return ArrivalPlan(queries=queries, arrival_times=arrival_times)


def make_arrivals(
    kind: str,
    rate_per_second: float,
    horizon_seconds: float,
    seed: int = 42,
    query_names: Optional[Sequence[str]] = None,
    query_weights: Optional[Dict[str, float]] = None,
    max_arrivals: int = 10_000,
    *,
    sigma: float = 1.0,
    alpha: float = 1.5,
    rate_off: float = 0.0,
    mean_on_seconds: float = 1.0,
    mean_off_seconds: float = 1.0,
) -> ArrivalPlan:
    """Dispatch to one of :data:`ARRIVAL_KINDS` by name.

    The service layer stores arrival kind as a string in its frozen
    specs; this keeps the string→generator mapping in one place.
    """
    common = dict(
        rate_per_second=rate_per_second,
        horizon_seconds=horizon_seconds,
        seed=seed,
        query_names=query_names,
        query_weights=query_weights,
        max_arrivals=max_arrivals,
    )
    if kind == "poisson":
        return poisson_arrivals(**common)
    if kind == "lognormal":
        return lognormal_arrivals(sigma=sigma, **common)
    if kind == "pareto":
        return pareto_arrivals(alpha=alpha, **common)
    if kind == "mmpp":
        return mmpp_arrivals(
            rate_off=rate_off,
            mean_on_seconds=mean_on_seconds,
            mean_off_seconds=mean_off_seconds,
            **common,
        )
    raise ValueError(
        f"unknown arrival kind {kind!r}; expected one of {ARRIVAL_KINDS}"
    )
