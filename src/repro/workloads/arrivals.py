"""Open-system workloads: stochastic query arrivals.

TPC-H's throughput test is a *closed* system (a fixed set of streams);
the paper's motivating warehouse is an *open* one — analysts fire
queries whenever they like.  This module generates open workloads:
Poisson query arrivals over a time horizon, each arrival drawing a
query template (optionally hotspot-biased), rendered as single-query
streams with explicit start delays so they plug straight into
:func:`repro.engine.executor.run_workload`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.query import QuerySpec
from repro.workloads.tpch_queries import QUERY_FACTORIES


@dataclass(frozen=True)
class ArrivalPlan:
    """A generated open workload: queries with their arrival times."""

    queries: List[QuerySpec]
    arrival_times: List[float]

    def as_streams(self) -> Tuple[List[List[QuerySpec]], List[float]]:
        """``(streams, stagger_list)`` for :func:`run_workload`."""
        return [[query] for query in self.queries], list(self.arrival_times)

    @property
    def n_arrivals(self) -> int:
        """Number of arrivals in the plan."""
        return len(self.queries)


def poisson_arrivals(
    rate_per_second: float,
    horizon_seconds: float,
    seed: int = 42,
    query_names: Optional[Sequence[str]] = None,
    query_weights: Optional[Dict[str, float]] = None,
    max_arrivals: int = 10_000,
) -> ArrivalPlan:
    """Poisson process of query arrivals over ``[0, horizon_seconds)``.

    Args:
        rate_per_second: Expected arrivals per simulated second.
        horizon_seconds: Length of the arrival window.
        seed: RNG seed (controls both arrival times and template params).
        query_names: Templates to draw from (default: all 22).
        query_weights: Optional relative weights per template name —
            e.g. ``{"Q6": 5.0}`` models the analyst hotspot where cheap
            recent-data queries dominate.
        max_arrivals: Safety bound.
    """
    if rate_per_second <= 0:
        raise ValueError(f"rate must be positive, got {rate_per_second}")
    if horizon_seconds <= 0:
        raise ValueError(f"horizon must be positive, got {horizon_seconds}")
    rng = np.random.default_rng(seed)
    names = list(query_names) if query_names else sorted(
        QUERY_FACTORIES, key=lambda n: int(n[1:])
    )
    weights = np.array(
        [float((query_weights or {}).get(name, 1.0)) for name in names]
    )
    if (weights <= 0).all():
        raise ValueError("at least one query weight must be positive")
    probabilities = weights / weights.sum()

    arrival_times: List[float] = []
    queries: List[QuerySpec] = []
    time = 0.0
    while len(arrival_times) < max_arrivals:
        time += float(rng.exponential(1.0 / rate_per_second))
        if time >= horizon_seconds:
            break
        name = str(rng.choice(names, p=probabilities))
        arrival_times.append(time)
        queries.append(QUERY_FACTORIES[name](rng))
    return ArrivalPlan(queries=queries, arrival_times=arrival_times)
